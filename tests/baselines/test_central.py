"""Tests for the centralized reference solver."""

import numpy as np
import pytest

from repro.baselines import centralized_reference
from repro.sequential import solution_cost


class TestCentralizedReference:
    def test_median_budgets(self, small_metric):
        ref = centralized_reference(small_metric, 3, 15, objective="median", rng=0)
        assert ref.n_centers <= 3
        assert ref.outlier_weight <= 15 + 1e-9
        assert ref.metadata["reference"] == "local_search_multi_restart"

    def test_center_uses_charikar(self, small_metric):
        ref = centralized_reference(small_metric, 3, 15, objective="center")
        assert ref.metadata["reference"] == "charikar_full"

    def test_restarts_never_hurt(self, small_metric, small_cost_matrix):
        single = centralized_reference(small_metric, 3, 15, objective="median", n_restarts=1, rng=0)
        multi = centralized_reference(small_metric, 3, 15, objective="median", n_restarts=4, rng=0)
        assert multi.cost <= single.cost + 1e-9

    def test_centers_expressed_globally(self, small_metric):
        ref = centralized_reference(small_metric, 3, 15, objective="median", rng=0)
        assert np.all(ref.centers < len(small_metric))

    def test_subset_solve_relabels_to_global(self, small_metric):
        indices = np.arange(40, 120)
        ref = centralized_reference(
            small_metric, 3, 5, objective="median", indices=indices, rng=0
        )
        assert set(ref.centers.tolist()) <= set(indices.tolist())

    def test_excludes_planted_outliers(self, small_metric, small_workload, small_cost_matrix):
        ref = centralized_reference(small_metric, 3, small_workload.n_outliers, objective="median", rng=0)
        # Reference cost should be far below the no-outlier cost.
        no_outlier_cost = solution_cost(small_cost_matrix, ref.centers, 0, objective="median")
        assert ref.cost < no_outlier_cost

    def test_means_objective(self, small_metric):
        ref = centralized_reference(small_metric, 3, 15, objective="means", rng=0)
        assert ref.objective == "means"
