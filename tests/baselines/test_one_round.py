"""Tests for the 1-round (ship-t-outliers-per-site) baseline."""

import numpy as np
import pytest

from repro.analysis import evaluate_centers
from repro.baselines import centralized_reference, one_round_protocol
from repro.core import distributed_partial_median


class TestOneRoundProtocol:
    def test_single_round(self, small_instance):
        result = one_round_protocol(small_instance, rng=0)
        assert result.rounds == 1
        assert result.ledger.n_rounds() == 1

    def test_every_site_ships_its_full_budget(self, small_instance):
        result = one_round_protocol(small_instance, rng=0)
        shipped = result.metadata["t_shipped_per_site"]
        assert len(shipped) == small_instance.n_sites
        assert all(s == small_instance.t for s in shipped)

    def test_communication_scales_with_st(self, small_instance):
        # The 1-round baseline must ship ~ s * t * B words of outliers.
        result = one_round_protocol(small_instance, rng=0)
        s, t, B = small_instance.n_sites, small_instance.t, small_instance.words_per_point()
        assert result.total_words >= s * t * B  # outliers alone reach the st term

    def test_algorithm1_wins_at_larger_site_counts(self, small_metric, small_workload):
        # The st-vs-t separation is the whole point of Algorithm 1; it shows up
        # once s is large enough that s*t dominates the fixed overheads.
        from repro.distributed import DistributedInstance, partition_balanced

        shards = partition_balanced(small_workload.n_points, 8, rng=1)
        instance = DistributedInstance.from_partition(small_metric, shards, 3, 15, "median")
        one_round = one_round_protocol(instance, rng=0)
        alg1 = distributed_partial_median(instance, epsilon=0.5, rng=0)
        assert alg1.total_words < one_round.total_words

    def test_quality_comparable_to_reference(self, small_instance, small_metric):
        result = one_round_protocol(small_instance, rng=0)
        realized = evaluate_centers(
            small_metric, result.centers, result.outlier_budget, objective="median"
        )
        reference = centralized_reference(small_metric, 3, 15, objective="median", rng=1)
        assert realized.cost <= 3.0 * reference.cost

    def test_center_objective(self, small_center_instance):
        result = one_round_protocol(small_center_instance, rng=0)
        assert result.objective == "center"
        assert result.outlier_budget == small_center_instance.t
        assert result.rounds == 1

    def test_budgets(self, small_instance):
        result = one_round_protocol(small_instance, epsilon=0.5, rng=0)
        assert result.outlier_budget == int(1.5 * small_instance.t)
        assert result.n_centers <= small_instance.k

    def test_deterministic(self, small_instance):
        a = one_round_protocol(small_instance, rng=2)
        b = one_round_protocol(small_instance, rng=2)
        assert np.array_equal(a.centers, b.centers)
