"""Tests for the send-everything baseline."""

import numpy as np
import pytest

from repro.analysis import evaluate_centers
from repro.baselines import send_all_protocol


class TestSendAllProtocol:
    def test_communication_is_n_times_B(self, small_instance):
        result = send_all_protocol(small_instance, rng=0)
        expected = small_instance.n_points * small_instance.words_per_point()
        assert result.total_words == pytest.approx(expected)

    def test_single_round(self, small_instance):
        result = send_all_protocol(small_instance, rng=0)
        assert result.rounds == 1

    def test_budgets(self, small_instance):
        result = send_all_protocol(small_instance, epsilon=0.5, rng=0)
        assert result.n_centers <= small_instance.k
        assert result.outliers.size <= result.outlier_budget

    def test_center_objective_exact_budget(self, small_center_instance):
        result = send_all_protocol(small_center_instance, rng=0)
        assert result.outlier_budget == small_center_instance.t

    def test_quality_is_strong(self, small_instance, small_metric, small_workload):
        # Seeing all data, the send-all baseline should essentially isolate the
        # planted outliers.
        result = send_all_protocol(small_instance, rng=0)
        realized = evaluate_centers(
            small_metric, result.centers, result.outlier_budget, objective="median"
        )
        per_point = realized.cost / (small_workload.n_points - result.outlier_budget)
        assert per_point < 3 * 0.8  # within a few cluster standard deviations

    def test_outliers_are_global_indices(self, small_instance):
        result = send_all_protocol(small_instance, rng=0)
        assert np.all(result.outliers < small_instance.n_points)
