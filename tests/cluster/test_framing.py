"""Tests for the length-prefixed frame protocol."""

import socket
import threading

import numpy as np
import pytest

from repro.cluster.framing import FrameChannel, decode_payload, encode_payload, recv_exact


@pytest.fixture()
def channel_pair():
    a, b = socket.socketpair(socket.AF_UNIX, socket.SOCK_STREAM)
    left, right = FrameChannel(a), FrameChannel(b)
    yield left, right
    left.close()
    right.close()


class TestPayloadCodec:
    def test_roundtrip(self):
        obj = {"a": [1, 2, 3], "b": "text"}
        assert decode_payload(encode_payload(obj)) == obj

    def test_numpy_roundtrip(self):
        arr = np.arange(12, dtype=float).reshape(3, 4)
        np.testing.assert_array_equal(decode_payload(encode_payload(arr)), arr)


class TestFrameChannel:
    def test_roundtrip_and_byte_counts(self, channel_pair):
        left, right = channel_pair
        sent = left.send(("hello", 7))
        obj, received = right.recv()
        assert obj == ("hello", 7)
        # Both sides observe the identical wire size: 8-byte prefix + pickle.
        assert sent == received == 8 + len(encode_payload(("hello", 7)))
        assert left.bytes_sent == sent
        assert right.bytes_received == received
        assert left.frames_sent == right.frames_received == 1

    def test_many_frames_in_order(self, channel_pair):
        left, right = channel_pair
        for i in range(5):
            left.send({"i": i, "blob": np.full(100, i)})
        for i in range(5):
            obj, _ = right.recv()
            assert obj["i"] == i
            np.testing.assert_array_equal(obj["blob"], np.full(100, i))
        assert right.frames_received == 5

    def test_bidirectional(self, channel_pair):
        left, right = channel_pair
        left.send("ping")
        assert right.recv()[0] == "ping"
        right.send("pong")
        assert left.recv()[0] == "pong"

    def test_clean_eof_raises_connection_error(self, channel_pair):
        left, right = channel_pair
        left.close()
        with pytest.raises(ConnectionError):
            right.recv()

    def test_mid_frame_eof_raises_connection_error(self):
        a, b = socket.socketpair(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            # A header promising more bytes than will ever arrive.
            a.sendall(b"\x00\x00\x00\x00\x00\x00\x00\xff" + b"partial")
            a.close()
            with pytest.raises(ConnectionError, match="mid-frame"):
                FrameChannel(b).recv()
        finally:
            b.close()

    def test_recv_exact_requires_full_read(self):
        a, b = socket.socketpair(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            payload = bytes(range(256)) * 10

            def _writer():
                for offset in range(0, len(payload), 100):
                    a.sendall(payload[offset : offset + 100])
                a.close()

            thread = threading.Thread(target=_writer)
            thread.start()
            try:
                assert recv_exact(b, len(payload)) == payload
            finally:
                thread.join()
        finally:
            b.close()
