"""Tests for the codec-framed pickle transport."""

import socket
import threading

import numpy as np
import pytest

from repro.cluster.framing import (
    FRAME_OVERHEAD,
    HAVE_ZSTD,
    MIN_COMPRESS_BYTES,
    NONE_CODEC,
    WIRE_CODEC_ENV,
    ZLIB_CODEC,
    ZSTD_CODEC,
    FrameChannel,
    WirePolicy,
    available_codecs,
    codec_by_id,
    decode_body,
    decode_payload,
    encode_body,
    encode_frame,
    encode_payload,
    recv_exact,
    resolve_codec,
)


@pytest.fixture()
def channel_pair():
    a, b = socket.socketpair(socket.AF_UNIX, socket.SOCK_STREAM)
    left, right = FrameChannel(a), FrameChannel(b)
    yield left, right
    left.close()
    right.close()


class TestPayloadCodec:
    def test_roundtrip(self):
        obj = {"a": [1, 2, 3], "b": "text"}
        assert decode_payload(encode_payload(obj)) == obj

    def test_numpy_roundtrip(self):
        arr = np.arange(12, dtype=float).reshape(3, 4)
        np.testing.assert_array_equal(decode_payload(encode_payload(arr)), arr)


class TestBodyEnvelope:
    def test_roundtrip_with_out_of_band_buffers(self):
        obj = {"arr": np.arange(64, dtype=np.float64), "tag": "x", "n": 3}
        back = decode_body(bytearray(encode_body(obj)))
        np.testing.assert_array_equal(back["arr"], obj["arr"])
        assert back["tag"] == "x" and back["n"] == 3

    def test_decoded_arrays_alias_the_body_and_stay_writable(self):
        arr = np.arange(32, dtype=np.float64)
        body = bytearray(encode_body({"arr": arr}))
        back = decode_body(body)["arr"]
        # Out-of-band decode: the array aliases the receive buffer...
        assert back.base is not None
        # ...and is writable, exactly like an in-band pickled copy would be.
        back[0] = -1.0
        assert back[0] == -1.0

    def test_no_buffer_objects_roundtrip(self):
        assert decode_body(bytearray(encode_body(("plain", [1, 2])))) == ("plain", [1, 2])


class TestCodecRegistry:
    def test_available_always_has_none_and_zlib(self):
        names = available_codecs()
        assert "none" in names and "zlib" in names

    def test_resolve_names(self):
        assert resolve_codec(None) is NONE_CODEC
        assert resolve_codec("none") is NONE_CODEC
        assert resolve_codec("zlib") is ZLIB_CODEC
        assert resolve_codec(ZLIB_CODEC) is ZLIB_CODEC

    def test_resolve_auto_prefers_zstd_else_zlib(self):
        resolved = resolve_codec("auto")
        if HAVE_ZSTD:
            assert resolved is ZSTD_CODEC
        else:
            assert resolved is ZLIB_CODEC

    def test_zstd_falls_back_to_zlib_when_absent(self):
        resolved = resolve_codec("zstd")
        if HAVE_ZSTD:
            assert resolved is ZSTD_CODEC
        else:
            assert resolved is ZLIB_CODEC

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown wire codec"):
            resolve_codec("lz77")

    def test_codec_by_id_roundtrip(self):
        assert codec_by_id(0) is NONE_CODEC
        assert codec_by_id(1) is ZLIB_CODEC

    def test_codec_by_id_unknown_raises_connection_error(self):
        with pytest.raises(ConnectionError, match="unknown codec id"):
            codec_by_id(99)

    @pytest.mark.skipif(not HAVE_ZSTD, reason="zstandard not installed (zstd extra)")
    def test_zstd_codec_roundtrip(self):
        body = b"the quick brown fox " * 200
        compressed = ZSTD_CODEC.compress(body)
        assert len(compressed) < len(body)
        assert ZSTD_CODEC.decompress(compressed) == body
        assert codec_by_id(2) is ZSTD_CODEC


class TestEncodeFrame:
    def test_uncompressed_frame_accounting(self):
        frame = encode_frame(("hello", 7))
        assert frame.codec == "none"
        assert frame.n_bytes == frame.raw_bytes == FRAME_OVERHEAD + len(frame.data)

    def test_compression_shrinks_and_keeps_raw_len(self):
        obj = {"blob": "abc" * 5000}
        frame = encode_frame(obj, "zlib")
        assert frame.codec == "zlib"
        assert frame.n_bytes < frame.raw_bytes
        assert frame.raw_bytes == FRAME_OVERHEAD + len(encode_body(obj))

    def test_small_bodies_skip_compression(self):
        frame = encode_frame("x", "zlib")
        assert frame.codec == "none"
        assert len(frame.data) < MIN_COMPRESS_BYTES

    def test_incompressible_bodies_fall_back_to_none(self):
        rng = np.random.default_rng(0)
        # Random bytes do not compress; the frame must not grow.
        obj = rng.integers(0, 256, size=4096, dtype=np.uint8).tobytes()
        frame = encode_frame(obj, "zlib")
        assert frame.codec == "none"
        assert frame.n_bytes == frame.raw_bytes

    def test_encoding_is_deterministic(self):
        obj = {"arr": np.arange(2048, dtype=np.float64), "s": "y" * 1000}
        a, b = encode_frame(obj, "zlib"), encode_frame(obj, "zlib")
        assert a.data == b.data and a.codec == b.codec and a.raw_len == b.raw_len


class TestWirePolicy:
    def test_default_policy(self):
        policy = WirePolicy.from_env({})
        assert policy.codec_for("state_pull") is NONE_CODEC
        assert policy.codec_for("control") is NONE_CODEC
        # "auto" resolves to the best available compressor.
        assert policy.codec_for("site").name in ("zlib", "zstd")
        assert policy.codec_for("task").name in ("zlib", "zstd")

    def test_unknown_kind_is_uncompressed(self):
        assert WirePolicy.from_env({}).codec_for("mystery") is NONE_CODEC

    def test_env_override_applies_to_compressible_kinds_only(self):
        policy = WirePolicy.from_env({WIRE_CODEC_ENV: "none"})
        assert policy.codec_for("site") is NONE_CODEC
        assert policy.codec_for("task") is NONE_CODEC
        policy = WirePolicy.from_env({WIRE_CODEC_ENV: "zlib"})
        assert policy.codec_for("site") is ZLIB_CODEC
        assert policy.codec_for("state_pull") is NONE_CODEC

    def test_env_override_zstd_falls_back_when_absent(self):
        policy = WirePolicy.from_env({WIRE_CODEC_ENV: "zstd"})
        expected = "zstd" if HAVE_ZSTD else "zlib"
        assert policy.codec_for("site").name == expected


class TestFrameChannel:
    def test_roundtrip_and_byte_counts(self, channel_pair):
        left, right = channel_pair
        frame = left.send(("hello", 7))
        obj, received, raw, codec = right.recv()
        assert obj == ("hello", 7)
        assert codec == "none"
        # Both sides observe the identical wire size: 9-byte header + body.
        assert frame.n_bytes == received == FRAME_OVERHEAD + len(encode_body(("hello", 7)))
        assert received == raw
        assert left.bytes_sent == frame.n_bytes
        assert right.bytes_received == received
        assert left.frames_sent == right.frames_received == 1

    def test_compressed_roundtrip_reports_raw_and_encoded(self, channel_pair):
        left, right = channel_pair
        obj = {"text": "z" * 10000}
        frame = left.send(obj, "zlib")
        back, n_bytes, raw_bytes, codec = right.recv()
        assert back == obj
        assert codec == "zlib"
        assert n_bytes == frame.n_bytes < raw_bytes == frame.raw_bytes
        assert left.raw_bytes_sent == right.raw_bytes_received == raw_bytes
        assert left.bytes_sent == right.bytes_received == n_bytes

    def test_compressed_numpy_arrays_stay_writable(self, channel_pair):
        left, right = channel_pair
        arr = np.zeros(4096, dtype=np.float64)
        left.send({"arr": arr}, "zlib")
        back = right.recv()[0]["arr"]
        back[0] = 1.0
        assert back[0] == 1.0

    def test_many_frames_in_order(self, channel_pair):
        left, right = channel_pair
        for i in range(5):
            left.send({"i": i, "blob": np.full(100, i)})
        for i in range(5):
            obj, _, _, _ = right.recv()
            assert obj["i"] == i
            np.testing.assert_array_equal(obj["blob"], np.full(100, i))
        assert right.frames_received == 5

    def test_bidirectional(self, channel_pair):
        left, right = channel_pair
        left.send("ping")
        assert right.recv()[0] == "ping"
        right.send("pong")
        assert left.recv()[0] == "pong"

    def test_clean_eof_raises_connection_error(self, channel_pair):
        left, right = channel_pair
        left.close()
        with pytest.raises(ConnectionError):
            right.recv()

    def test_mid_frame_eof_raises_connection_error(self):
        a, b = socket.socketpair(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            # A header promising more bytes than will ever arrive
            # (8-byte length + 1-byte codec id).
            a.sendall(b"\x00\x00\x00\x00\x00\x00\x00\xff\x00" + b"partial")
            a.close()
            with pytest.raises(ConnectionError, match="mid-frame"):
                FrameChannel(b).recv()
        finally:
            b.close()

    def test_recv_exact_requires_full_read(self):
        a, b = socket.socketpair(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            payload = bytes(range(256)) * 10

            def _writer():
                for offset in range(0, len(payload), 100):
                    a.sendall(payload[offset : offset + 100])
                a.close()

            thread = threading.Thread(target=_writer)
            thread.start()
            try:
                assert recv_exact(b, len(payload)) == payload
            finally:
                thread.join()
        finally:
            b.close()

    def test_multi_megabyte_compressed_frame_in_small_chunks(self):
        """A >4 MiB compressed frame survives arbitrarily short reads.

        The writer dribbles the encoded frame through the socket in 64 KiB
        slices, so the receiver's ``recv_into`` loop sees many short reads
        — the shape a multi-MB frame actually has on a loaded socket.
        """
        # Structured float data: >16 MiB raw, compresses well below that.
        arr = np.tile(np.arange(4096, dtype=np.float64), 512)
        obj = {"arr": arr, "tag": "bulk"}
        frame = encode_frame(obj, "zlib")
        assert frame.raw_bytes > 4 * 1024 * 1024
        assert frame.codec == "zlib"

        a, b = socket.socketpair(socket.AF_UNIX, socket.SOCK_STREAM)
        left, right = FrameChannel(a), FrameChannel(b)
        try:
            error = []

            def _writer():
                try:
                    left.send_frame(frame)
                except Exception as exc:  # pragma: no cover - surfaced below
                    error.append(exc)

            thread = threading.Thread(target=_writer)
            thread.start()
            obj_back, n_bytes, raw_bytes, codec = right.recv()
            thread.join()
            assert not error
            assert codec == "zlib"
            assert n_bytes == frame.n_bytes
            assert raw_bytes == frame.raw_bytes > 4 * 1024 * 1024
            np.testing.assert_array_equal(obj_back["arr"], arr)
            assert obj_back["tag"] == "bulk"
            # Writability survives the decompression path too.
            obj_back["arr"][0] = -5.0
        finally:
            left.close()
            right.close()


class TestNonBlockingReassembly:
    """The loop-facing half of the channel: feed_bytes/take_frames and the
    backpressured send queue (queue_frame/pending_out/flush_out)."""

    def _wire_bytes(self, frame):
        import struct

        return struct.pack(">QB", len(frame.data), resolve_codec(frame.codec).wire_id) + frame.data

    def test_partial_header_yields_nothing(self, channel_pair):
        _, right = channel_pair
        frame = encode_frame(("hello", 1))
        wire = self._wire_bytes(frame)
        # Feed the header one byte at a time: no frame may materialise
        # before the body is complete.
        for i in range(FRAME_OVERHEAD):
            right.feed_bytes(wire[i : i + 1])
            assert right.take_frames() == []
        right.feed_bytes(wire[FRAME_OVERHEAD:])
        [(obj, n_bytes, raw, codec)] = right.take_frames()
        assert obj == ("hello", 1)
        assert n_bytes == raw == len(wire)
        assert codec == "none"
        assert right.frames_received == 1

    def test_split_compressed_body_reassembles(self, channel_pair):
        _, right = channel_pair
        obj = {"text": "q" * 20000}
        frame = encode_frame(obj, "zlib")
        assert frame.codec == "zlib"
        wire = self._wire_bytes(frame)
        # Dribble the compressed body through in 7-byte slices, holding the
        # final byte back; counters only advance when the frame decodes.
        for offset in range(0, len(wire) - 1, 7):
            right.feed_bytes(wire[offset : min(offset + 7, len(wire) - 1)])
        assert right.take_frames() == []
        assert right.frames_received == 0
        right.feed_bytes(wire[-1:])
        [(back, n_bytes, raw, codec)] = right.take_frames()
        assert back == obj
        assert codec == "zlib"
        assert n_bytes == frame.n_bytes < raw == frame.raw_bytes

    def test_two_frames_in_one_feed_decode_in_order(self, channel_pair):
        _, right = channel_pair
        wires = [self._wire_bytes(encode_frame(("msg", i))) for i in range(3)]
        blob = b"".join(wires)
        # First feed ends inside frame 2's body: exactly one frame decodes.
        cut = len(wires[0]) + len(wires[1]) // 2
        right.feed_bytes(blob[:cut])
        assert [f[0] for f in right.take_frames()] == [("msg", 0)]
        right.feed_bytes(blob[cut:])
        assert [f[0] for f in right.take_frames()] == [("msg", 1), ("msg", 2)]
        assert right.frames_received == 3

    def test_interleaved_frames_from_two_channels(self):
        """Byte slices of two channels' streams interleave without mixing."""
        pairs = [socket.socketpair(socket.AF_UNIX, socket.SOCK_STREAM) for _ in range(2)]
        receivers = [FrameChannel(b) for _, b in pairs]
        try:
            streams = []
            for index in range(2):
                wires = b"".join(
                    self._wire_bytes(encode_frame((f"ch{index}", i, "x" * 50)))
                    for i in range(4)
                )
                streams.append(wires)
            # Alternate 5-byte slices between the two channels, the shape a
            # selector loop actually sees when both sockets are readable.
            offsets = [0, 0]
            got = [[], []]
            while any(offsets[i] < len(streams[i]) for i in range(2)):
                for i in range(2):
                    if offsets[i] < len(streams[i]):
                        receivers[i].feed_bytes(streams[i][offsets[i] : offsets[i] + 5])
                        offsets[i] += 5
                        got[i].extend(obj for obj, _, _, _ in receivers[i].take_frames())
            for i in range(2):
                assert got[i] == [(f"ch{i}", j, "x" * 50) for j in range(4)]
        finally:
            for a, b in pairs:
                a.close()
                b.close()

    def test_queue_frame_accounts_at_queue_time_and_flushes(self, channel_pair):
        left, right = channel_pair
        frame = encode_frame({"blob": "y" * 5000}, "zlib")
        n = left.queue_frame(frame)
        assert n == frame.n_bytes
        # Accounting happened at queue time, before any byte hit the socket.
        assert left.bytes_sent == frame.n_bytes
        assert left.raw_bytes_sent == frame.raw_bytes
        assert left.pending_out == FRAME_OVERHEAD + len(frame.data)
        assert left.flush_out() is True
        assert left.pending_out == 0
        back, n_bytes, raw, codec = right.recv()
        assert back == {"blob": "y" * 5000}
        assert n_bytes == frame.n_bytes and raw == frame.raw_bytes

    def test_read_ready_feeds_the_reassembly_buffer(self, channel_pair):
        left, right = channel_pair
        left.send(("nb", 42))
        right.set_nonblocking()
        # Data is in flight on a unix socketpair immediately.
        total = 0
        frames = []
        while not frames:
            n = right.read_ready()
            if n > 0:
                total += n
            frames = right.take_frames()
        assert frames[0][0] == ("nb", 42)
        assert total == frames[0][1]

    def test_read_ready_returns_minus_one_when_idle(self, channel_pair):
        _, right = channel_pair
        right.set_nonblocking()
        assert right.read_ready() == -1

    def test_read_ready_raises_on_eof(self, channel_pair):
        left, right = channel_pair
        left.close()
        right.set_nonblocking()
        with pytest.raises(ConnectionError):
            while right.read_ready() == -1:
                pass
