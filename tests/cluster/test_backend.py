"""Tests for the ClusterBackend: registry, generic tasks, resident state, bytes."""

import os

import numpy as np
import pytest

from repro.cluster import ClusterBackend, WireLedger
from repro.distributed.instance import DistributedInstance
from repro.distributed.network import StarNetwork
from repro.metrics.euclidean import EuclideanMetric
from repro.runtime import (
    SiteTask,
    ThreadPoolBackend,
    available_backends,
    register_backend,
    resolve_backend,
    run_site_tasks,
    run_tasks,
)

pytestmark = pytest.mark.cluster


def _square(x):
    return x * x


def _raise_key_error(x):
    raise KeyError(f"payload {x} failed on purpose")


def _return_unpicklable(x):
    return lambda: x  # lambdas cannot cross the wire back


def _ping_task(ctx, scale):
    """Tiny site task: one word to the coordinator, one state entry."""
    ctx.state["seen"] = ctx.state.get("seen", 0) + 1
    ctx.send_to_coordinator("ping", float(ctx.site_id) * scale, words=1)
    return ctx.n_points


def _make_network(n_sites=3):
    points = np.arange(6 * n_sites, dtype=float).reshape(-1, 2)
    metric = EuclideanMetric(points)
    shards = [np.arange(i, len(points), n_sites) for i in range(n_sites)]
    instance = DistributedInstance.from_partition(metric, shards, 2, 1, "median")
    return StarNetwork(instance)


@pytest.fixture(scope="module")
def cluster2():
    backend = ClusterBackend(n_hosts=2)
    yield backend
    backend.close()


class TestRegistry:
    def test_cluster_spec_resolves(self):
        backend = resolve_backend("cluster:2")
        if os.environ.get("REPRO_CLUSTER_SERVICE", "") not in ("", "0"):
            # Service-mode CI: the spec checks a job out of the shared pool.
            from repro.cluster import ServiceBackend

            assert isinstance(backend, ServiceBackend)
        else:
            assert isinstance(backend, ClusterBackend)
        assert backend.n_hosts == 2
        backend.close()  # never started: close must still be a no-op

    def test_cluster_listed(self):
        assert "cluster" in available_backends()
        assert "service" in available_backends()

    def test_thread_spec_sets_workers(self):
        backend = resolve_backend("thread:4")
        assert isinstance(backend, ThreadPoolBackend)
        assert backend.max_workers == 4
        backend.close()

    def test_serial_rejects_worker_count(self):
        with pytest.raises(ValueError, match="serial backend"):
            resolve_backend("serial:2")

    def test_malformed_specs_rejected(self):
        with pytest.raises(ValueError, match="not an integer"):
            resolve_backend("thread:x")
        with pytest.raises(ValueError, match=">= 1"):
            resolve_backend("thread:0")
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("gpu:4")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("cluster", lambda workers: ClusterBackend(n_hosts=workers))

    def test_bad_registration_name_rejected(self):
        with pytest.raises(ValueError, match="':'-free"):
            register_backend("bad:name", lambda workers: None)

    def test_bad_host_count(self):
        with pytest.raises(ValueError, match="n_hosts"):
            ClusterBackend(n_hosts=0)


class TestGenericTasks:
    def test_map_ordered_matches_serial(self, cluster2):
        items = list(range(7))
        assert cluster2.map_ordered(_square, items) == [x * x for x in items]

    def test_empty_batch(self):
        backend = ClusterBackend(n_hosts=2)
        try:
            assert backend.map_ordered(_square, []) == []
            assert backend.socket_dir is None  # empty batches never spawn hosts
        finally:
            backend.close()

    def test_original_exception_type_surfaces(self, cluster2):
        with pytest.raises(KeyError, match="payload 2 failed on purpose"):
            cluster2.map_ordered(_raise_key_error, [2, 3])
        # The runner survives a task failure and serves the next batch.
        assert cluster2.map_ordered(_square, [6]) == [36]

    def test_run_tasks_records_wire_bytes(self, cluster2):
        from repro.distributed import CommunicationLedger

        ledger = CommunicationLedger()
        out = run_tasks(
            _square, [1, 2, 3], backend=cluster2, ledger=ledger, round_index=4
        )
        assert out == [1, 4, 9]
        wire = ledger.wire
        assert wire is not None
        assert wire.total_bytes() > 0
        assert set(wire.bytes_by_round()) == {4}
        assert set(wire.bytes_by_kind()) == {"task_dispatch", "task_result"}

    def test_numpy_payloads_cross_the_wire(self, cluster2):
        arrays = [np.full((10, 10), i, dtype=float) for i in range(3)]
        out = cluster2.map_ordered(_square, arrays)
        for i, result in enumerate(out):
            np.testing.assert_array_equal(result, arrays[i] * arrays[i])

    def test_unpicklable_result_fails_task_not_host(self, cluster2):
        with pytest.raises(RuntimeError, match="could not be serialized"):
            cluster2.map_ordered(_return_unpicklable, [1])
        # The runner relayed the failure instead of dying with it.
        assert cluster2.map_ordered(_square, [3]) == [9]

    def test_unpicklable_dispatch_fails_task_not_host(self, cluster2):
        with pytest.raises(RuntimeError, match="could not be serialized"):
            cluster2.map_ordered(_square, [lambda: 1])
        assert cluster2.map_ordered(_square, [4]) == [16]


class TestSiteTasks:
    def test_round_merges_and_stamps_bytes(self, cluster2):
        network = _make_network()
        network.next_round()
        results = run_site_tasks(
            network,
            [SiteTask(i, _ping_task, args=(2.0,)) for i in range(network.n_sites)],
            backend=cluster2,
        )
        assert [r.site_id for r in results] == [0, 1, 2]
        assert all(site.state["seen"] == 1 for site in network.sites)
        messages = network.ledger.filter(kind="ping")
        assert [m.sender for m in messages] == [0, 1, 2]
        # Every uplink payload crossed a socket: its wire size is stamped.
        assert all(m.n_bytes is not None and m.n_bytes > 0 for m in messages)
        assert network.ledger.total_bytes() > 0

    def test_resident_state_saves_round2_dispatch_bytes(self, cluster2):
        network = _make_network()
        tasks = lambda: [  # noqa: E731 - tiny local factory
            SiteTask(i, _ping_task, args=(1.0,)) for i in range(network.n_sites)
        ]
        network.next_round()
        run_site_tasks(network, tasks(), backend=cluster2)
        network.next_round()
        run_site_tasks(network, tasks(), backend=cluster2)
        wire = network.ledger.wire
        dispatch_by_round = {1: 0, 2: 0}
        for rec in wire.records:
            if rec.kind == "site_dispatch":
                dispatch_by_round[rec.round_index] += rec.n_bytes
        # Round 1 ships (shard, local_metric); round 2 reuses the resident
        # copy and ships only the per-round state — materially fewer bytes.
        assert 0 < dispatch_by_round[2] < dispatch_by_round[1]

    def test_clear_resident_forces_reshipping(self, cluster2):
        network = _make_network()
        network.next_round()
        run_site_tasks(
            network, [SiteTask(0, _ping_task, args=(1.0,))], backend=cluster2
        )
        network.next_round()
        run_site_tasks(
            network, [SiteTask(0, _ping_task, args=(1.0,))], backend=cluster2
        )
        cluster2.clear_resident()
        network.next_round()
        run_site_tasks(
            network, [SiteTask(0, _ping_task, args=(1.0,))], backend=cluster2
        )
        wire = network.ledger.wire
        dispatch = {}
        for rec in wire.records:
            if rec.kind == "site_dispatch":
                dispatch[rec.round_index] = dispatch.get(rec.round_index, 0) + rec.n_bytes
        assert dispatch[2] < dispatch[1]          # cached
        assert dispatch[3] > dispatch[2]          # cache dropped: sticky re-shipped

    def test_shared_pool_evicts_superseded_resident_state(self, cluster2):
        """Fresh protocol runs reuse site slots: runner-resident memory is
        bounded by live slots, not by the number of runs served."""
        for _ in range(2):
            network = _make_network()
            network.next_round()
            run_site_tasks(
                network,
                [SiteTask(i, _ping_task, args=(1.0,)) for i in range(network.n_sites)],
                backend=cluster2,
            )
        # One resident key per (host, site slot) — superseded keys are gone.
        for host in cluster2._hosts:
            assert len(host.resident_keys) == len(host.resident_by_site)
        total_slots = sum(len(h.resident_by_site) for h in cluster2._hosts)
        assert sum(len(h.resident_keys) for h in cluster2._hosts) == total_slots == 3

    def test_deterministic_repeat_run_bytes(self):
        # Raw bytes are the run-invariant column: the per-run uuid resident
        # keys pickle to the same *length* every run, but their bytes differ,
        # so the zlib-encoded frame sizes may wobble by a few bytes.
        def one_run():
            backend = ClusterBackend(n_hosts=2)
            try:
                network = _make_network()
                network.next_round()
                run_site_tasks(
                    network,
                    [SiteTask(i, _ping_task, args=(1.0,)) for i in range(3)],
                    backend=backend,
                )
                return network.ledger.total_raw_bytes(), network.ledger.total_words()
            finally:
                backend.close()

        assert one_run() == one_run()


class TestLifecycle:
    def test_close_removes_socket_dir_and_is_idempotent(self):
        backend = ClusterBackend(n_hosts=1)
        assert backend.map_ordered(_square, [3]) == [9]
        socket_dir = backend.socket_dir
        assert socket_dir is not None and os.path.exists(socket_dir)
        backend.close()
        assert not os.path.exists(socket_dir)
        assert backend.socket_dir is None
        backend.close()  # second close is a no-op

    def test_backend_restarts_after_close(self):
        backend = ClusterBackend(n_hosts=1)
        try:
            assert backend.map_ordered(_square, [2]) == [4]
            backend.close()
            assert backend.map_ordered(_square, [5]) == [25]
        finally:
            backend.close()
