"""The live-telemetry plane on a real cluster: heartbeats, samples, parity.

The acceptance bar for the telemetry tentpole: with ``telemetry=`` on, every
protocol stays bit-identical to a plain serial run while (a) runner resource
samples ride the heartbeat frames onto the coordinator timeline — zero extra
round trips, every heartbeat byte accounted under the wire ledger's ``hb``
kind in bit-for-bit trace/ledger agreement — and (b) the snapshot thread
publishes live Prometheus/JSONL views whose mid-run rows carry nonzero
round/task/wire gauges.  With telemetry off (the default), nothing changes.
"""

import json
import time
from types import SimpleNamespace

import numpy as np
import pytest

from repro import (
    partial_kcenter,
    partial_kmedian,
    uncertain_partial_kcenter_g,
    uncertain_partial_kmedian,
)
from repro.cluster import ClusterBackend
from repro.core.algorithm1_modified import distributed_partial_median_no_shipping
from repro.distributed.messages import CommunicationLedger
from repro.obs import assert_byte_parity, byte_parity_diff
from repro.obs.live import TelemetrySession, telemetry_scope
from repro.runtime.tasks import run_tasks

pytestmark = pytest.mark.cluster

#: Long enough that heartbeats (20-50/s) flow while every runner is busy.
SLEEP_S = 0.4


def _sleep_task(payload):
    """Module-level so runner subprocesses can import it by qualified name."""
    index, duration = payload
    time.sleep(duration)
    return index


def _assert_same_result(base, other):
    np.testing.assert_array_equal(base.centers, other.centers)
    assert base.cost == other.cost
    assert base.ledger.total_words() == other.ledger.total_words()
    assert base.ledger.words_by_kind() == other.ledger.words_by_kind()
    if base.outliers is None:
        assert other.outliers is None
    else:
        np.testing.assert_array_equal(base.outliers, other.outliers)


@pytest.fixture(scope="module")
def live_run(tmp_path_factory):
    """One slow structure-free round on cluster:3 with the full plane on.

    Heartbeats every 20ms against a 0.4s task guarantee mid-run liveness
    traffic on every host; the snapshot thread writes JSONL rows at the
    same cadence.  Yields everything the assertions below inspect.
    """
    tmp = tmp_path_factory.mktemp("telemetry")
    jsonl_path = str(tmp / "snapshots.jsonl")
    session = TelemetrySession(
        sample_interval=0.02, snapshot_interval=0.02,
        jsonl_path=jsonl_path, label="live-test",
    )
    backend = ClusterBackend(n_hosts=3)
    # Installed before the first dispatch so runners spawn with heartbeat
    # sampling in their environment (the driver path does the same via
    # apply_telemetry inside backend_scope).
    backend.set_telemetry(session)
    tracer = session.adopt_tracer(None)  # telemetry implies a tracer
    ledger = CommunicationLedger()
    try:
        with telemetry_scope(session):
            results = run_tasks(
                _sleep_task, [(i, SLEEP_S) for i in range(3)],
                backend=backend, ledger=ledger, round_index=1, tracer=tracer,
            )
    finally:
        backend.close()
    session.close()
    with open(jsonl_path) as fh:
        rows = [json.loads(line) for line in fh]
    yield SimpleNamespace(
        session=session, tracer=tracer, ledger=ledger, wire=ledger.wire,
        rows=rows, results=results,
    )


class TestHeartbeatAccounting:
    def test_results_unaffected(self, live_run):
        assert live_run.results == [0, 1, 2]

    def test_hb_frames_on_the_wire_ledger(self, live_run):
        """Heartbeat bytes land under their own ``hb`` kind, recv direction."""
        by_kind = live_run.wire.bytes_by_kind()
        assert by_kind.get("hb", 0) > 0
        hb_records = [r for r in live_run.wire.records if r.kind == "hb"]
        # ~20 heartbeats/s/host over a 0.4s round: plenty, from every host.
        assert len(hb_records) >= 3
        assert all(r.direction == "recv" for r in hb_records)
        assert {r.host for r in hb_records} == {0, 1, 2}

    def test_hb_byte_parity_bit_for_bit(self, live_run):
        """Trace counters mirror the ledger exactly, heartbeats included."""
        result = SimpleNamespace(trace=live_run.tracer, ledger=live_run.ledger)
        assert byte_parity_diff(result) == []
        assert_byte_parity(result, label="hb")
        hb_raw = sum(r.raw_bytes for r in live_run.wire.records if r.kind == "hb")
        assert int(live_run.tracer.counter("wire.bytes.hb")) == hb_raw > 0


class TestRunnerSamplesOnTimeline:
    def test_resource_sample_events_from_every_host(self, live_run):
        samples = [e for e in live_run.tracer.events if e.name == "resource_sample"]
        assert samples
        assert {e.origin for e in samples} == {"host-0", "host-1", "host-2"}
        for event in samples:
            assert event.tags["rss_bytes"] > 0
            assert event.tags["cpu_s"] >= 0.0

    def test_per_host_resource_gauges(self, live_run):
        gauges = live_run.tracer.metrics.gauges
        for host in range(3):
            assert gauges[f"resource.host-{host}.rss_bytes"] > 0
            assert gauges[f"resource.host-{host}.peak_rss_bytes"] > 0
            assert gauges[f"resource.host-{host}.peak_rss_bytes"] >= (
                gauges[f"resource.host-{host}.rss_bytes"]
            )

    def test_coordinator_sampler_ran_too(self, live_run):
        assert live_run.session.peak_rss > 0
        gauges = live_run.session.last_snapshot["gauges"]
        assert gauges["resource.coordinator.rss_bytes"] > 0


class TestMidRunSnapshots:
    def test_snapshots_streamed_during_the_run(self, live_run):
        # Start + final + at least one 20ms tick inside the 0.4s round.
        assert len(live_run.rows) >= 3

    def test_mid_run_row_has_live_gauges(self, live_run):
        """A snapshot taken while tasks were in flight shows real progress."""
        mid = [
            row for row in live_run.rows[:-1]
            if row["counters"].get("wire.bytes", 0) > 0
            and row["gauges"].get("progress.round") == 1
            and row["gauges"].get("progress.tasks_in_flight", 0) > 0
        ]
        assert mid, "no mid-run snapshot observed dispatched-but-unfinished tasks"

    def test_rows_labelled_and_monotone(self, live_run):
        assert all(row["label"] == "live-test" for row in live_run.rows)
        clocks = [row["clock"] for row in live_run.rows]
        assert clocks == sorted(clocks)
        # Counters only grow: the final row carries the round's full traffic.
        totals = [row["counters"].get("wire.bytes", 0) for row in live_run.rows]
        assert totals == sorted(totals)
        assert live_run.rows[-1]["counters"]["wire.bytes"] > 0


@pytest.fixture(scope="module")
def telemetry_cluster():
    """cluster:3 spawned with a telemetry session installed: runners heartbeat
    (20ms) and sample from the first dispatch on."""
    session = TelemetrySession(sample_interval=0.02, snapshot_interval=0.1)
    backend = ClusterBackend(n_hosts=3)
    backend.set_telemetry(session)
    yield backend, session
    backend.close()
    session.close()


class TestTelemetryParity:
    """Every protocol: telemetry on cluster:3 == plain serial, bytes match."""

    def test_kmedian(self, small_workload, telemetry_cluster):
        backend, session = telemetry_cluster
        base = partial_kmedian(small_workload.points, 3, 15, n_sites=3, seed=42)
        live = partial_kmedian(
            small_workload.points, 3, 15, n_sites=3, seed=42,
            backend=backend, trace=True, telemetry=session,
        )
        _assert_same_result(base, live)
        assert_byte_parity(live, label="kmedian")

    def test_kcenter(self, small_workload, telemetry_cluster):
        backend, session = telemetry_cluster
        base = partial_kcenter(small_workload.points, 3, 15, n_sites=3, seed=42)
        live = partial_kcenter(
            small_workload.points, 3, 15, n_sites=3, seed=42,
            backend=backend, trace=True, telemetry=session,
        )
        _assert_same_result(base, live)
        assert_byte_parity(live, label="kcenter")

    def test_no_shipping_variant(self, small_instance, telemetry_cluster):
        backend, session = telemetry_cluster
        base = distributed_partial_median_no_shipping(small_instance, rng=42)
        live = distributed_partial_median_no_shipping(
            small_instance, rng=42, backend=backend, trace=True, telemetry=session,
        )
        _assert_same_result(base, live)
        assert_byte_parity(live, label="no_shipping")

    def test_uncertain_kmedian(self, small_uncertain_workload, telemetry_cluster):
        backend, session = telemetry_cluster
        base = uncertain_partial_kmedian(
            small_uncertain_workload.instance, 3, 6, n_sites=3, seed=42
        )
        live = uncertain_partial_kmedian(
            small_uncertain_workload.instance, 3, 6, n_sites=3, seed=42,
            backend=backend, trace=True, telemetry=session,
        )
        _assert_same_result(base, live)
        assert_byte_parity(live, label="uncertain_kmedian")

    def test_center_g(self, small_uncertain_workload, telemetry_cluster):
        backend, session = telemetry_cluster
        base = uncertain_partial_kcenter_g(
            small_uncertain_workload.instance, 3, 6, n_sites=3, seed=42
        )
        live = uncertain_partial_kcenter_g(
            small_uncertain_workload.instance, 3, 6, n_sites=3, seed=42,
            backend=backend, trace=True, telemetry=session,
        )
        _assert_same_result(base, live)
        assert_byte_parity(live, label="center_g")

    def test_telemetry_implies_trace(self, small_workload, telemetry_cluster):
        """``telemetry=True`` alone still yields a private traced timeline."""
        backend, _ = telemetry_cluster
        base = partial_kmedian(small_workload.points, 3, 15, n_sites=3, seed=42)
        live = partial_kmedian(
            small_workload.points, 3, 15, n_sites=3, seed=42,
            backend=backend, telemetry=True,
        )
        _assert_same_result(base, live)
        assert live.trace is not None and live.trace.enabled
        assert_byte_parity(live, label="telemetry-only")


class TestTelemetryOffIsInert:
    def test_default_run_carries_no_telemetry_state(self, small_workload):
        result = partial_kmedian(small_workload.points, 3, 15, n_sites=3,
                                 seed=42, trace=True)
        assert not any(
            name.startswith("resource.") for name in result.trace.metrics.gauges
        )

    def test_fresh_backend_without_telemetry_has_none(self):
        backend = ClusterBackend(n_hosts=2)
        try:
            assert backend.telemetry is None
        finally:
            backend.close()
