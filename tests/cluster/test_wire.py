"""Tests for the wire ledger and its merge into the communication ledger."""

import pytest

from repro.cluster.wire import WireLedger, WireRecord
from repro.distributed import CommunicationLedger, Message
from repro.distributed.messages import COORDINATOR


def _msg(sender=0, receiver=COORDINATOR, round_index=1, kind="x", words=10.0, n_bytes=None):
    return Message(sender, receiver, round_index, kind, words, n_bytes=n_bytes)


class TestWireLedger:
    def _filled(self):
        wire = WireLedger()
        wire.record(round_index=1, host=0, direction="send", kind="site_dispatch", n_bytes=100)
        wire.record(round_index=1, host=0, direction="recv", kind="site_result", n_bytes=40)
        wire.record(round_index=2, host=1, direction="send", kind="site_dispatch", n_bytes=60)
        return wire

    def test_aggregations(self):
        wire = self._filled()
        assert wire.total_bytes() == 200
        assert wire.bytes_by_round() == {1: 140, 2: 60}
        assert wire.bytes_by_host() == {0: 140, 1: 60}
        assert wire.bytes_by_kind() == {"site_dispatch": 160, "site_result": 40}
        assert wire.bytes_by_direction() == {"send": 160, "recv": 40}
        assert wire.n_frames() == 3

    def test_merge(self):
        a, b = self._filled(), self._filled()
        a.merge(b)
        assert a.total_bytes() == 400
        assert a.n_frames() == 6

    def test_summary_keys(self):
        summary = self._filled().summary()
        assert {
            "total_bytes", "frames", "by_round", "by_host",
            "by_kind", "by_host_kind", "by_direction",
        } <= set(summary)

    def test_summary_kind_breakdowns(self):
        summary = self._filled().summary()
        assert summary["by_kind"] == {"site_dispatch": 160, "site_result": 40}
        assert summary["by_host_kind"] == {
            0: {"site_dispatch": 100, "site_result": 40},
            1: {"site_dispatch": 60},
        }

    def test_bytes_by_round_host(self):
        wire = self._filled()
        assert wire.bytes_by_round_host() == {1: {0: 140}, 2: {1: 60}}

    def test_invalid_records_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            WireRecord(1, 0, "send", "x", -1)
        with pytest.raises(ValueError, match="direction"):
            WireRecord(1, 0, "sideways", "x", 1)


class TestRawEncodedSplit:
    def _filled(self):
        wire = WireLedger()
        wire.record(
            round_index=1, host=0, direction="send", kind="site_dispatch",
            n_bytes=100, raw_bytes=250, codec="zlib",
        )
        wire.record(round_index=1, host=0, direction="recv", kind="site_result", n_bytes=40)
        wire.record(
            round_index=2, host=1, direction="send", kind="task_dispatch",
            n_bytes=50, raw_bytes=100, codec="zlib",
        )
        return wire

    def test_raw_defaults_to_encoded(self):
        rec = WireRecord(1, 0, "send", "x", 70)
        assert rec.raw_bytes == 70
        assert rec.codec == "none"

    def test_codecs_never_grow_a_frame(self):
        with pytest.raises(ValueError, match="never grow"):
            WireRecord(1, 0, "send", "x", n_bytes=100, raw_bytes=50)

    def test_raw_aggregations(self):
        wire = self._filled()
        assert wire.total_bytes() == 190
        assert wire.total_raw_bytes() == 390
        assert wire.raw_bytes_by_kind() == {
            "site_dispatch": 250, "site_result": 40, "task_dispatch": 100,
        }
        assert wire.raw_bytes_by_direction() == {"send": 350, "recv": 40}

    def test_compression_by_kind(self):
        wire = self._filled()
        ratios = wire.compression_by_kind()
        assert ratios["site_dispatch"] == 2.5
        assert ratios["site_result"] == 1.0
        assert ratios["task_dispatch"] == 2.0
        assert wire.compression_ratio() == pytest.approx(390 / 190)

    def test_summary_has_raw_and_compression(self):
        summary = self._filled().summary()
        assert summary["raw_bytes"] == 390
        assert summary["compression"] == pytest.approx(390 / 190)
        assert summary["raw_by_kind"]["site_dispatch"] == 250
        assert summary["compression_by_kind"]["task_dispatch"] == 2.0
        assert summary["raw_by_direction"] == {"send": 350, "recv": 40}

    def test_merge_carries_raw_bytes(self):
        a, b = self._filled(), self._filled()
        a.merge(b)
        assert a.total_raw_bytes() == 780


class TestMessageBytes:
    def test_n_bytes_defaults_to_none(self):
        assert _msg().n_bytes is None
        assert _msg().n_bytes_encoded is None

    def test_negative_n_bytes_rejected(self):
        with pytest.raises(ValueError, match="byte count"):
            _msg(n_bytes=-5)

    def test_encoded_cannot_exceed_raw(self):
        with pytest.raises(ValueError, match="cannot exceed"):
            Message(0, COORDINATOR, 1, "x", 1.0, n_bytes=10, n_bytes_encoded=20)

    def test_encoded_stamp_accepted(self):
        m = Message(0, COORDINATOR, 1, "x", 1.0, n_bytes=100, n_bytes_encoded=40)
        assert m.n_bytes_encoded == 40

    def test_uplink_bytes_from_stamps(self):
        ledger = CommunicationLedger()
        ledger.record(Message(0, COORDINATOR, 1, "x", 1.0, n_bytes=100, n_bytes_encoded=40))
        ledger.record(Message(0, COORDINATOR, 1, "y", 1.0, n_bytes=60))
        assert ledger.uplink_bytes() == {"raw": 160, "encoded": 100}
        assert ledger.summary()["uplink_bytes"] == {"raw": 160, "encoded": 100}


class TestLedgerBytes:
    def test_zero_without_wire_transport(self):
        ledger = CommunicationLedger()
        ledger.record(_msg(words=10))
        assert ledger.total_bytes() == 0
        assert ledger.bytes_by_round() == {}
        summary = ledger.summary()
        assert summary["total_bytes"] == 0
        assert summary["bytes_by_round"] == {}

    def test_message_stamps_counted_without_wire(self):
        ledger = CommunicationLedger()
        ledger.record(_msg(words=10, n_bytes=128))
        ledger.record(_msg(words=5, round_index=2, n_bytes=64))
        assert ledger.total_bytes() == 192
        assert ledger.bytes_by_round() == {1: 128, 2: 64}

    def test_attached_wire_is_authoritative(self):
        ledger = CommunicationLedger()
        ledger.record(_msg(words=10, n_bytes=128))
        wire = ledger.ensure_wire()
        assert ledger.ensure_wire() is wire  # idempotent
        wire.record(round_index=1, host=0, direction="send", kind="site_dispatch", n_bytes=500)
        wire.record(round_index=1, host=0, direction="recv", kind="site_result", n_bytes=300)
        # Frame traffic covers dispatch + result; it supersedes the stamps.
        assert ledger.total_bytes() == 800
        assert ledger.bytes_by_round() == {1: 800}
        assert ledger.summary()["total_bytes"] == 800


class TestLedgerIndices:
    def test_record_after_index_built_stays_consistent(self):
        ledger = CommunicationLedger()
        ledger.record(_msg(kind="a", words=1))
        assert ledger.words_by_kind() == {"a": 1.0}  # builds the index
        ledger.record(_msg(kind="a", words=2))
        ledger.record(_msg(kind="b", words=4))
        assert ledger.words_by_kind() == {"a": 3.0, "b": 4.0}
        assert len(ledger.filter(kind="a")) == 2

    def test_merge_updates_built_indices(self):
        a, b = CommunicationLedger(), CommunicationLedger()
        a.record(_msg(sender=0, kind="profile", words=1))
        # Build both lazy indices before merging.
        assert a.words_by_kind() == {"profile": 1.0}
        assert a.words_by_site() == {0: 1.0}
        b.record(_msg(sender=1, kind="profile", words=2))
        b.record(_msg(sender=1, kind="solution", words=8))
        a.merge(b)
        assert a.words_by_kind() == {"profile": 3.0, "solution": 8.0}
        assert a.words_by_site() == {0: 1.0, 1: 10.0}
        assert len(a.filter(kind="solution")) == 1

    def test_merge_before_index_built(self):
        a, b = CommunicationLedger(), CommunicationLedger()
        a.record(_msg(kind="a", words=1))
        b.record(_msg(kind="b", words=2))
        a.merge(b)
        assert a.words_by_kind() == {"a": 1.0, "b": 2.0}

    def test_merge_carries_wire_ledgers(self):
        a, b = CommunicationLedger(), CommunicationLedger()
        b.ensure_wire().record(
            round_index=1, host=0, direction="send", kind="task_dispatch", n_bytes=77
        )
        a.merge(b)
        assert a.total_bytes() == 77

    def test_downlink_not_in_site_index(self):
        ledger = CommunicationLedger()
        ledger.record(_msg(sender=COORDINATOR, receiver=2, words=3))
        ledger.record(_msg(sender=2, words=5))
        assert ledger.words_by_site() == {2: 5.0}
