"""Tracing on the cluster backend: one timeline, bit-for-bit byte parity.

The acceptance bar for the observability layer: a ``trace=True`` run on
``cluster:3`` yields (a) a tracer whose independently counted wire bytes
equal the :class:`~repro.cluster.wire.WireLedger` exactly, (b) runner spans
rebased onto the coordinator timeline inside the rpc windows that carried
them, (c) resident-cache / state / prefetch counters per protocol — while
``trace=False`` stays bit-identical to an untraced serial run.  The runner
Timer merge (``runner_timers()``) rides the same result-frame extras and is
asserted here too.
"""

import numpy as np
import pytest

from repro import (
    partial_kcenter,
    partial_kmedian,
    uncertain_partial_kcenter_g,
    uncertain_partial_kmedian,
)
from repro.cluster import ClusterBackend
from repro.core.algorithm1_modified import distributed_partial_median_no_shipping
from repro.distributed.instance import DistributedInstance
from repro.distributed.network import StarNetwork
from repro.metrics.euclidean import EuclideanMetric
from repro.obs import protocol_summary, round_report, to_chrome_trace
from repro.runtime import SiteTask, run_site_tasks

pytestmark = pytest.mark.cluster


@pytest.fixture(scope="module")
def cluster3():
    backend = ClusterBackend(n_hosts=3)
    yield backend
    backend.close()


def _assert_same_result(base, other):
    np.testing.assert_array_equal(base.centers, other.centers)
    assert base.cost == other.cost
    assert base.ledger.total_words() == other.ledger.total_words()
    assert base.ledger.words_by_kind() == other.ledger.words_by_kind()
    if base.outliers is None:
        assert other.outliers is None
    else:
        np.testing.assert_array_equal(base.outliers, other.outliers)


def _assert_trace_bytes_match(result):
    """The tracer's wire counters mirror the WireLedger bit for bit.

    Both columns of the raw/encoded split are cross-checked: ``wire.bytes*``
    counters carry pre-codec sizes and must equal the ledger's ``raw_*``
    totals, while ``wire.bytes_encoded*`` carry what physically crossed the
    sockets and must equal ``total_bytes()``/``bytes_by_*``.
    """
    tracer = result.trace
    wire = result.ledger.wire
    assert int(tracer.counter("wire.bytes")) == wire.total_raw_bytes()
    assert int(tracer.counter("wire.bytes_encoded")) == wire.total_bytes()
    raw_by_direction = wire.raw_bytes_by_direction()
    enc_by_direction = wire.bytes_by_direction()
    assert int(tracer.counter("wire.bytes.send")) == raw_by_direction["send"]
    assert int(tracer.counter("wire.bytes.recv")) == raw_by_direction["recv"]
    assert int(tracer.counter("wire.bytes_encoded.send")) == enc_by_direction["send"]
    assert int(tracer.counter("wire.bytes_encoded.recv")) == enc_by_direction["recv"]
    for kind, raw_bytes in wire.raw_bytes_by_kind().items():
        assert int(tracer.counter(f"wire.bytes.{kind}")) == raw_bytes
    for kind, n_bytes in wire.bytes_by_kind().items():
        assert int(tracer.counter(f"wire.bytes_encoded.{kind}")) == n_bytes
    summary = protocol_summary(result)
    assert summary["bytes_match"] is True
    assert summary["wire_bytes_ledger"] == wire.total_bytes()
    assert summary["wire_raw_ledger"] == wire.total_raw_bytes()
    assert summary["compression"] >= 1.0


class TestTracedClusterParity:
    """Every protocol: traced on cluster:3 == untraced on serial, bytes match."""

    def test_kmedian(self, small_workload, cluster3):
        base = partial_kmedian(small_workload.points, 3, 15, n_sites=3, seed=42)
        traced = partial_kmedian(
            small_workload.points, 3, 15, n_sites=3, seed=42,
            backend=cluster3, trace=True,
        )
        _assert_same_result(base, traced)
        _assert_trace_bytes_match(traced)
        assert traced.trace.counter("cluster.resident_hit") > 0
        assert traced.trace.counter("cluster.resident_miss") > 0
        assert traced.trace.counter("cluster.state_pulls") > 0

    def test_kcenter(self, small_workload, cluster3):
        base = partial_kcenter(small_workload.points, 3, 15, n_sites=3, seed=42)
        traced = partial_kcenter(
            small_workload.points, 3, 15, n_sites=3, seed=42,
            backend=cluster3, trace=True,
        )
        _assert_same_result(base, traced)
        _assert_trace_bytes_match(traced)

    def test_no_shipping_variant(self, small_instance, cluster3):
        base = distributed_partial_median_no_shipping(small_instance, rng=42)
        traced = distributed_partial_median_no_shipping(
            small_instance, rng=42, backend=cluster3, trace=True
        )
        _assert_same_result(base, traced)
        _assert_trace_bytes_match(traced)

    def test_uncertain_kmedian(self, small_uncertain_workload, cluster3):
        base = uncertain_partial_kmedian(
            small_uncertain_workload.instance, 3, 6, n_sites=3, seed=42
        )
        traced = uncertain_partial_kmedian(
            small_uncertain_workload.instance, 3, 6, n_sites=3, seed=42,
            backend=cluster3, trace=True,
        )
        _assert_same_result(base, traced)
        _assert_trace_bytes_match(traced)
        # Structure-free tasks cross as task frames, counted all the same.
        assert traced.trace.counter("wire.bytes.task_dispatch") > 0
        assert traced.trace.counter("wire.bytes.task_result") > 0

    def test_center_g(self, small_uncertain_workload, cluster3):
        base = uncertain_partial_kcenter_g(
            small_uncertain_workload.instance, 3, 6, n_sites=3, seed=42
        )
        traced = uncertain_partial_kcenter_g(
            small_uncertain_workload.instance, 3, 6, n_sites=3, seed=42,
            backend=cluster3, trace=True,
        )
        _assert_same_result(base, traced)
        _assert_trace_bytes_match(traced)
        # The per-tau sweeps run fused reduction plans on every runner.
        assert traced.trace.counter("plan.executions") > 0


class TestClusterTimeline:
    @pytest.fixture(scope="class")
    def traced(self, small_workload, cluster3):
        return partial_kmedian(
            small_workload.points, 3, 15, n_sites=3, seed=42,
            backend=cluster3, trace=True,
        )

    def test_rpc_spans_cover_all_hosts(self, traced):
        rpc = traced.trace.find_spans("rpc")
        assert {s.tags["host"] for s in rpc} == {0, 1, 2}
        assert all(s.end >= s.start and s.tags["n_bytes"] > 0 for s in rpc)

    def test_runner_spans_rebased_onto_run_timeline(self, traced):
        tracer = traced.trace
        run = tracer.find_spans("run")[0]
        host_spans = [s for s in tracer.spans if s.origin.startswith("host-")]
        assert host_spans
        slack = 1e-6
        for span in host_spans:
            assert run.start - slack <= span.start <= span.end <= run.end + slack
        assert {s.origin for s in host_spans} == {"host-0", "host-1", "host-2"}

    def test_state_pull_events_recorded(self, traced):
        pulls = [e for e in traced.trace.events if e.name == "state_pull"]
        assert len(pulls) == int(traced.trace.counter("cluster.state_pulls"))
        assert all(e.tags["keys"] >= 1 for e in pulls)

    def test_round_report_bytes_match_wire(self, traced):
        rows = round_report(traced)
        wire = traced.ledger.wire
        per_round_host = wire.bytes_by_round_host()
        for row in rows:
            expected = per_round_host[row["round"]][row["host"]]
            assert row["sent_bytes"] + row["recv_bytes"] == expected
            assert sum(row["bytes_by_kind"].values()) == expected
            # The compression column is raw-over-encoded for this cell.
            assert row["raw_bytes"] >= expected
            assert row["compression"] == pytest.approx(row["raw_bytes"] / expected)
        # Every (round, host) cell of the wire ledger appears in the report.
        assert {(r["round"], r["host"]) for r in rows} >= {
            (rnd, host)
            for rnd, hosts in per_round_host.items()
            for host in hosts
        }

    def test_chrome_export_carries_all_origins(self, traced):
        doc = to_chrome_trace(traced.trace)
        names = {
            e["args"]["name"] for e in doc["traceEvents"] if e["ph"] == "M"
        }
        assert {"coordinator", "host-0", "host-1", "host-2"} <= names


class TestPrefetchCounters:
    def test_spilled_run_counts_prefetch_and_plan_traffic(self, small_workload, cluster3):
        # A tiny budget forces site cost matrices onto disk shards, which
        # auto-enables the tile prefetcher inside every runner.
        base = partial_kmedian(
            small_workload.points, 3, 15, n_sites=3, seed=42, memory_budget="8KB"
        )
        traced = partial_kmedian(
            small_workload.points, 3, 15, n_sites=3, seed=42,
            memory_budget="8KB", backend=cluster3, trace=True,
        )
        _assert_same_result(base, traced)
        _assert_trace_bytes_match(traced)
        tracer = traced.trace
        assert tracer.counter("plan.executions") > 0
        assert tracer.counter("plan.tiles") > 0
        assert tracer.counter("blocked.spills") > 0
        hits = tracer.counter("prefetch.hit")
        misses = tracer.counter("prefetch.miss")
        assert hits + misses > 0
        summary = protocol_summary(traced)
        assert summary["prefetch.hit"] == hits


class TestRunnerTimers:
    def _network(self, n_sites=3):
        points = np.arange(6 * n_sites, dtype=float).reshape(-1, 2)
        metric = EuclideanMetric(points)
        shards = [np.arange(i, len(points), n_sites) for i in range(n_sites)]
        instance = DistributedInstance.from_partition(metric, shards, 2, 1, "median")
        return StarNetwork(instance)

    @staticmethod
    def _timed_task(ctx, scale):
        with ctx.timer.measure("work"):
            total = float(ctx.site_id) * scale
        ctx.send_to_coordinator("ping", total, words=1)
        return ctx.n_points

    def test_site_timer_keys_match_serial_up_to_cluster_labels(self, cluster3):
        serial_net, cluster_net = self._network(), self._network()
        tasks = lambda: [  # noqa: E731 - tiny local factory
            SiteTask(i, self._timed_task, args=(2.0,)) for i in range(3)
        ]
        serial_net.next_round()
        run_site_tasks(serial_net, tasks())
        cluster_net.next_round()
        run_site_tasks(cluster_net, tasks(), backend=cluster3)
        for serial_site, cluster_site in zip(serial_net.sites, cluster_net.sites):
            serial_keys = set(serial_site.timer.totals)
            cluster_keys = set(cluster_site.timer.totals)
            extra = cluster_keys - serial_keys
            # The runner adds only its own cluster:* labels; everything the
            # task itself timed matches the serial run key-for-key.
            assert {k for k in cluster_keys if not k.startswith("cluster:")} == serial_keys
            assert extra and all(k.startswith("cluster:") for k in extra)
            assert all(cluster_site.timer.totals[k] > 0 for k in extra)

    def test_runner_timers_report_frame_work(self, cluster3):
        network = self._network()
        network.next_round()
        run_site_tasks(
            network,
            [SiteTask(i, self._timed_task, args=(1.0,)) for i in range(3)],
            backend=cluster3,
        )
        timers = cluster3.runner_timers()
        assert set(timers) == {0, 1, 2}
        for timer in timers.values():
            assert timer.total("cluster:task") > 0
