"""Fault-tolerant rounds: detection, re-pinning, replay, budgets, accounting.

The recovery subsystem's contract (see :mod:`repro.cluster.recovery`): with a
:class:`RetryPolicy` installed, a runner death mid-round — crash, socket
error or heartbeat silence — is recovered by deterministically re-pinning
the dead host's sites onto survivors and replaying their dispatch logs, and
the run's results stay bit-identical to a failure-free run.  Every fault
here is injected through the deterministic :class:`FaultPlan` harness (or a
direct signal on the runner process), never timing races.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro import partial_kmedian
from repro.cluster import ClusterBackend, DeadHostError, FaultPlan, RetryPolicy
from repro.cluster.recovery import FAIL_FAST, resolve_retry_policy
from repro.distributed.instance import DistributedInstance
from repro.distributed.network import StarNetwork
from repro.runtime import SiteTask, run_site_tasks

pytestmark = pytest.mark.cluster


def _double(x):
    return 2 * x


def _stateful_task(ctx, scale):
    round_no = ctx.state.get("rounds", 0) + 1
    ctx.state["rounds"] = round_no
    if round_no == 1:
        ctx.state["big"] = np.full(2048, float(ctx.site_id))
    total = float(np.sum(ctx.state["big"])) + ctx.site_id * scale
    ctx.send_to_coordinator("probe", total, words=1)
    return total


def _make_network(n_sites=3):
    from repro.metrics.euclidean import EuclideanMetric

    points = np.arange(8 * n_sites, dtype=float).reshape(-1, 2)
    metric = EuclideanMetric(points)
    shards = [np.arange(i, len(points), n_sites) for i in range(n_sites)]
    instance = DistributedInstance.from_partition(metric, shards, 2, 1, "median")
    return StarNetwork(instance)


def _run_rounds(backend, n_rounds=2, n_sites=3):
    network = _make_network(n_sites)
    for _ in range(n_rounds):
        network.next_round()
        results = run_site_tasks(
            network,
            [SiteTask(i, _stateful_task, args=(2.0,)) for i in range(network.n_sites)],
            backend=backend,
        )
    return network, [r.value for r in results]


class TestRetryPolicy:
    def test_default_backend_is_fail_fast(self):
        backend = ClusterBackend(n_hosts=1)
        try:
            assert backend.retry.fail_fast
            assert not backend.retry.enabled
        finally:
            backend.close()

    def test_policy_defaults_enable_recovery(self):
        policy = RetryPolicy()
        assert policy.max_retries == 1
        assert policy.enabled

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_s=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(heartbeat_timeout=0.0)

    def test_resolve(self):
        assert resolve_retry_policy(None) is FAIL_FAST
        policy = RetryPolicy(max_retries=3)
        assert resolve_retry_policy(policy) is policy
        with pytest.raises(TypeError):
            resolve_retry_policy(2)


class TestFaultPlan:
    def test_parse_round_trips_fields(self):
        plan = FaultPlan.parse(
            "kill host=1 round=2 task=3 when=after kind=site; "
            "delay kind=task seconds=0.5 once=true"
        )
        kill, delay = plan.actions
        assert (kill.op, kill.host, kill.round_index, kill.task) == ("kill", 1, 2, 3)
        assert (kill.when, kill.kind) == ("after", "site")
        assert (delay.op, delay.seconds, delay.once) == ("delay", 0.5, True)

    def test_parse_rejects_bad_specs(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("explode host=1")
        with pytest.raises(ValueError):
            FaultPlan.parse("kill host=x")
        with pytest.raises(ValueError):
            FaultPlan.parse("kill when=sometimes")

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", "kill host=0 task=1")
        plan = FaultPlan.from_env()
        assert plan is not None and plan.actions[0].op == "kill"
        monkeypatch.delenv("REPRO_FAULT_PLAN")
        assert FaultPlan.from_env() is None

    def test_delay_plan_never_changes_results(self):
        """A recurring delay fault is pure latency — results stay identical."""
        backend = ClusterBackend(
            n_hosts=2, fault_plan=FaultPlan.parse("delay kind=task seconds=0.001")
        )
        try:
            assert backend.map_ordered(_double, [1, 2, 3, 4]) == [2, 4, 6, 8]
        finally:
            backend.close()


class TestTaskRecovery:
    def test_kill_before_dispatch_recovers_map_ordered(self):
        backend = ClusterBackend(
            n_hosts=2,
            retry=RetryPolicy(max_retries=1),
            fault_plan=FaultPlan.parse("kill host=1 round=0 task=1 when=before"),
        )
        try:
            assert backend.map_ordered(_double, [10, 11, 12, 13]) == [20, 22, 24, 26]
            # The dead host stays dead; later batches keep working on survivors.
            assert backend.map_ordered(_double, [5, 6]) == [10, 12]
        finally:
            backend.close()

    def test_budget_exhaustion_is_terminal_with_context(self):
        backend = ClusterBackend(
            n_hosts=2,
            retry=RetryPolicy(max_retries=1),
            fault_plan=FaultPlan.parse(
                "kill host=0 round=0 task=1 when=before; "
                "kill host=1 round=0 task=1 when=before"
            ),
        )
        try:
            # Near-simultaneous deaths race: either the budget trips first or
            # the second death leaves no survivor to re-pin onto.  Both are
            # clean terminal errors.
            with pytest.raises(
                DeadHostError,
                match="retry budget exhausted|no surviving cluster hosts",
            ):
                backend.map_ordered(_double, [1, 2, 3, 4])
        finally:
            backend.close()

    def test_fail_fast_error_names_tasks_round_and_epochs(self):
        backend = ClusterBackend(
            n_hosts=1,
            fault_plan=FaultPlan.parse("kill host=0 round=0 task=1 when=before"),
        )
        try:
            with pytest.raises(DeadHostError) as excinfo:
                backend.map_ordered(_double, [1])
        finally:
            backend.close()
        message = str(excinfo.value)
        assert "died mid-round" in message
        assert "in-flight tasks:" in message and "task seq" in message
        assert "last committed state epoch" in message
        assert excinfo.value.host_id == 0


class TestSiteRecovery:
    def test_repin_is_deterministic(self):
        """Dead host 2 of 3: site 2 lands on alive[2 % 2] = host 0, always."""
        for _ in range(2):
            backend = ClusterBackend(
                n_hosts=3,
                retry=RetryPolicy(max_retries=1),
                fault_plan=FaultPlan.parse("kill host=2 round=2 task=1 when=before"),
            )
            try:
                network, values = _run_rounds(backend, n_rounds=2)
            finally:
                backend.close()
            serial_network, serial_values = _run_rounds(None, n_rounds=2)
            assert values == serial_values
            events = network.ledger.wire.summary()["recovery"]
            assert len(events) == 1
            assert events[0]["repin"] == {2: 0}

    def test_replay_bytes_match_ledger_and_counters(self):
        base = partial_kmedian(np.random.default_rng(1).normal(size=(90, 2)), 3, 9,
                               n_sites=3, seed=11)
        backend = ClusterBackend(
            n_hosts=3,
            retry=RetryPolicy(max_retries=1),
            fault_plan=FaultPlan.parse("kill host=1 round=1 task=1 when=after"),
        )
        try:
            result = partial_kmedian(
                np.random.default_rng(1).normal(size=(90, 2)), 3, 9,
                n_sites=3, seed=11, backend=backend, trace=True,
            )
        finally:
            backend.close()
        assert result.cost == base.cost
        wire = result.ledger.wire
        replay_bytes = sum(
            n for kind, n in wire.bytes_by_kind().items() if kind.startswith("replay")
        )
        assert replay_bytes > 0
        assert result.trace.counter("recovery.replay_bytes") == replay_bytes
        assert result.trace.counter("recovery.host_failures") == 1
        assert result.trace.counter("recovery.replayed_frames") >= 1
        assert result.trace.counter("recovery.digest_checks") >= 1
        events = wire.summary()["recovery"]
        assert len(events) == 1 and events[0]["host"] == 1
        # The semantic word ledger never sees the failure.
        from repro.obs.report import protocol_summary

        assert protocol_summary(result)["bytes_match"]

    def test_proxy_fault_after_death_raises_dead_host_error(self):
        backend = ClusterBackend(n_hosts=1)
        try:
            network, _ = _run_rounds(backend, n_rounds=1, n_sites=1)
            backend._hosts[0].process.kill()
            state = network.sites[0].state
            with pytest.raises(DeadHostError) as excinfo:
                state["big"]
            assert excinfo.value.host_id == 0
            # DeadHostError stays a RuntimeError: pre-recovery callers that
            # matched on RuntimeError("cluster host N ...") keep working.
            assert isinstance(excinfo.value, RuntimeError)
        finally:
            backend.close()


class TestHeartbeat:
    def test_stalled_runner_times_out_and_recovers(self):
        backend = ClusterBackend(
            n_hosts=2,
            retry=RetryPolicy(max_retries=1, heartbeat_timeout=1.0),
            fault_plan=FaultPlan.parse("stall host=1 round=1 task=1 when=before"),
        )
        try:
            network, values = _run_rounds(backend, n_rounds=2)
        finally:
            backend.close()
        _, serial_values = _run_rounds(None, n_rounds=2)
        assert values == serial_values
        events = network.ledger.wire.summary()["recovery"]
        assert len(events) == 1
        assert "heartbeat" in events[0]["reason"]

    def test_stalled_runner_fail_fast_raises_heartbeat_error(self):
        backend = ClusterBackend(
            n_hosts=1,
            retry=RetryPolicy(max_retries=0, heartbeat_timeout=1.0, fail_fast=True),
            fault_plan=FaultPlan.parse("stall host=0 round=0 task=1 when=before"),
        )
        try:
            with pytest.raises(DeadHostError, match="heartbeat"):
                backend.map_ordered(_double, [1])
        finally:
            backend.close()


class TestCloseEscalation:
    def test_close_kills_a_stalled_runner(self):
        backend = ClusterBackend(n_hosts=1)
        try:
            assert backend.map_ordered(_double, [1]) == [2]
            process = backend._hosts[0].process
            process.send_signal(signal.SIGSTOP)
        finally:
            t0 = time.monotonic()
            backend.close()
        # terminate() cannot reach a stopped process; close() must escalate
        # to SIGKILL within its bounded timeout rather than hang.
        assert time.monotonic() - t0 < 15.0
        assert process.poll() is not None
