"""Tests for content-addressed payload residency (:mod:`repro.cluster.payloads`)."""

import pickle

import numpy as np
import pytest

from repro.cluster.framing import encode_payload
from repro.cluster.payloads import (
    ENCODE_DEPTH,
    MIN_COMPONENT_BYTES,
    PAYLOAD_REF_TAG,
    PAYLOAD_VAL_TAG,
    PayloadCache,
    is_payload_ref,
    is_payload_val,
    payload_digest,
)


def _big_array(seed=0, n=1024):
    return np.random.default_rng(seed).normal(size=n)


def _pair():
    """The two ends of one simulated channel."""
    return PayloadCache(), PayloadCache()


class TestTags:
    def test_val_and_ref_predicates(self):
        blob = encode_payload("x")
        digest = payload_digest(blob)
        assert is_payload_val((PAYLOAD_VAL_TAG, digest, blob))
        assert is_payload_ref((PAYLOAD_REF_TAG, digest))
        assert not is_payload_val((PAYLOAD_REF_TAG, digest))
        assert not is_payload_ref(("other", digest))
        assert not is_payload_val("plain string")

    def test_digest_is_16_bytes_and_content_addressed(self):
        b1, b2 = encode_payload("a"), encode_payload("b")
        assert len(payload_digest(b1)) == 16
        assert payload_digest(b1) != payload_digest(b2)
        assert payload_digest(b1) == payload_digest(encode_payload("a"))


class TestEncodeDecode:
    def test_small_components_stay_inline(self):
        sender, receiver = _pair()
        payload = {"k": 3, "tag": "tiny"}
        encoded = sender.encode(payload)
        assert encoded == payload
        assert len(sender) == 0
        assert receiver.decode(encoded) == payload

    def test_first_crossing_is_val_second_is_ref(self):
        sender, receiver = _pair()
        arr = _big_array()
        e1 = sender.encode({"arr": arr})
        assert is_payload_val(e1["arr"])
        d1 = receiver.decode(e1)
        np.testing.assert_array_equal(d1["arr"], arr)
        e2 = sender.encode({"arr": arr})
        assert is_payload_ref(e2["arr"])
        d2 = receiver.decode(e2)
        np.testing.assert_array_equal(d2["arr"], arr)

    def test_counts_track_hits_and_misses(self):
        sender, receiver = _pair()
        arr = _big_array()
        counts = {}
        receiver.decode(sender.encode({"arr": arr}, counts=counts), counts=counts)
        receiver.decode(sender.encode({"arr": arr}, counts=counts), counts=counts)
        # miss at encode + miss at decode, then hit at encode + hit at decode.
        assert counts == {"hit": 2, "miss": 2}

    def test_decodes_never_alias(self):
        sender, receiver = _pair()
        arr = _big_array()
        d1 = receiver.decode(sender.encode({"arr": arr}))["arr"]
        d2 = receiver.decode(sender.encode({"arr": arr}))["arr"]
        d2[0] = 123.0
        assert d1[0] != 123.0

    def test_nested_dicts_componentized_to_depth(self):
        sender, receiver = _pair()
        arr = _big_array()
        nested = {"level1": {"level2": {"arr": arr}}}
        encoded = sender.encode(nested)
        # Depth 3 reaches the array itself (payload -> level1 -> level2 -> leaf).
        assert ENCODE_DEPTH >= 3
        assert is_payload_val(encoded["level1"]["level2"]["arr"])
        back = receiver.decode(encoded)
        np.testing.assert_array_equal(back["level1"]["level2"]["arr"], arr)

    def test_sibling_reuse_within_one_payload(self):
        sender, receiver = _pair()
        arr = _big_array()
        encoded = sender.encode({"a": arr, "b": arr})
        kinds = sorted(v[0] for v in encoded.values())
        assert kinds == [PAYLOAD_REF_TAG, PAYLOAD_VAL_TAG]
        back = receiver.decode(encoded)
        np.testing.assert_array_equal(back["a"], back["b"])

    def test_missing_ref_raises(self):
        receiver = PayloadCache()
        digest = payload_digest(encode_payload("ghost"))
        with pytest.raises(RuntimeError, match="not resident"):
            receiver.decode({"x": (PAYLOAD_REF_TAG, digest)})


class TestAliasDigests:
    def test_reencode_of_decoded_component_hits(self):
        """The round-trip digest keeps re-shipped state on the REF path.

        Re-pickling a decoded object graph is not byte-identical to the
        original pickle, so without the alias a result component re-sent in
        the next dispatch would miss the cache every time.
        """
        sender, receiver = _pair()
        payload = {"state": {"solutions": {"q": list(range(400)), "tag": "x" * 600}}}
        decoded = receiver.decode(sender.encode(payload))
        # The receiver now re-sends what it decoded (the coordinator's
        # round-2 dispatch of a round-1 result).
        counts = {}
        reencoded = receiver.encode(decoded, counts=counts)
        assert counts.get("miss", 0) == 0, "alias digest did not match"
        back = sender.decode(reencoded, counts=counts)
        assert back == payload

    def test_alias_is_a_pickle_fixpoint(self):
        blob = encode_payload({"nested": {"objective": "median"}, "objective": "x"})
        rt = encode_payload(pickle.loads(blob))
        rt2 = encode_payload(pickle.loads(rt))
        assert rt == rt2

    def test_mutated_component_misses_honestly(self):
        sender, receiver = _pair()
        decoded = receiver.decode(sender.encode({"arr": _big_array()}))
        decoded["arr"][0] += 1.0
        counts = {}
        reencoded = receiver.encode(decoded, counts=counts)
        # Changed content must re-ship its bytes, never a stale digest.
        assert counts == {"miss": 1}
        back = sender.decode(reencoded)
        assert back["arr"][0] == decoded["arr"][0]


class TestLifecycle:
    def test_clear_drops_everything(self):
        sender, receiver = _pair()
        arr = _big_array()
        receiver.decode(sender.encode({"arr": arr}))
        assert len(sender) > 0 and len(receiver) > 0
        sender.clear()
        receiver.clear()
        assert len(sender) == len(receiver) == 0
        # The next crossing is a VAL again.
        assert is_payload_val(sender.encode({"arr": arr})["arr"])

    def test_stored_bytes_accounts_for_blobs(self):
        cache = PayloadCache()
        arr = _big_array()
        cache.encode({"arr": arr})
        assert cache.stored_bytes() >= len(encode_payload(arr))

    def test_min_component_bytes_threshold(self):
        cache = PayloadCache()
        small = np.arange(8)
        assert len(encode_payload(small)) < MIN_COMPONENT_BYTES
        assert cache.encode({"small": small}) == {"small": small}
        assert len(cache) == 0
