"""Runner-crash propagation: a dying host must fail loudly and clean up."""

import os
import time

import numpy as np
import pytest

from repro import partial_kmedian
from repro.cluster import ClusterBackend
from repro.distributed.instance import DistributedInstance
from repro.distributed.network import StarNetwork
from repro.metrics.euclidean import EuclideanMetric
from repro.runtime import SiteTask, backend_scope, run_site_tasks

pytestmark = pytest.mark.cluster


def _square(x):
    return x * x


def _kill_runner(x):
    os._exit(3)  # simulate a host crash mid-task: no cleanup, no goodbye


def _kill_runner_if_odd(x):
    if x % 2:
        os._exit(3)
    return x


def _kill_runner_site_task(ctx):
    os._exit(3)


def _echo_site_task(ctx):
    return ctx.site_id


def _make_network(n_sites=2):
    points = np.arange(6 * n_sites, dtype=float).reshape(-1, 2)
    metric = EuclideanMetric(points)
    shards = [np.arange(i, len(points), n_sites) for i in range(n_sites)]
    instance = DistributedInstance.from_partition(metric, shards, 2, 1, "median")
    return StarNetwork(instance)


class TestCrashPropagation:
    def test_error_names_the_host(self):
        backend = ClusterBackend(n_hosts=1)
        try:
            with pytest.raises(RuntimeError, match="cluster host 0"):
                backend.map_ordered(_kill_runner, [1])
        finally:
            backend.close()

    def test_later_submissions_fail_fast_after_death(self):
        backend = ClusterBackend(n_hosts=1)
        try:
            with pytest.raises(RuntimeError, match="cluster host 0"):
                backend.map_ordered(_kill_runner, [1])
            with pytest.raises(RuntimeError, match="cluster host 0"):
                backend.map_ordered(_square, [2])
        finally:
            backend.close()

    def test_mid_round_crash_names_host_and_cleans_up(self):
        """A site task kills its runner mid-round; the scheduler surfaces a
        RuntimeError naming the host and backend_scope's finally removes the
        sockets and scratch directory."""
        network = _make_network(n_sites=2)
        network.next_round()
        socket_dir = None
        with pytest.raises(RuntimeError, match="cluster host 1"):
            with backend_scope("cluster:2") as backend:
                tasks = [
                    SiteTask(0, _echo_site_task),
                    SiteTask(1, _kill_runner_site_task),
                ]
                try:
                    run_site_tasks(network, tasks, backend=backend)
                finally:
                    socket_dir = backend.socket_dir
        assert socket_dir is not None
        assert not os.path.exists(socket_dir)

    def test_externally_killed_runner_fails_protocol_run(self, small_workload):
        """Kill a runner process out from under a protocol: the run raises a
        clean RuntimeError naming the host instead of hanging."""
        backend = ClusterBackend(n_hosts=2)
        try:
            backend.map_ordered(_square, [1, 2])  # spawn the hosts
            victim = backend._hosts[0]
            victim.process.kill()
            victim.process.wait(timeout=10)
            time.sleep(0.1)  # let the reader observe the EOF
            with pytest.raises(RuntimeError, match="cluster host 0"):
                partial_kmedian(
                    small_workload.points, 3, 15, n_sites=3, seed=42, backend=backend
                )
        finally:
            socket_dir = backend.socket_dir
            backend.close()
            assert socket_dir is not None and not os.path.exists(socket_dir)

    def test_surviving_hosts_keep_serving(self):
        backend = ClusterBackend(n_hosts=2)
        try:
            # Item index picks the host: index 1 -> host 1 dies, host 0 lives.
            with pytest.raises(RuntimeError, match="cluster host 1"):
                backend.map_ordered(_kill_runner_if_odd, [0, 1])
            futures = backend.submit_tasks(_square, [8])  # index 0 -> host 0
            assert futures[0].result() == 64
        finally:
            backend.close()
