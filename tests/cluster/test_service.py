"""Clustering-as-a-service: admission, isolation, and the event-loop shape.

Covers the service tentpole's acceptance surface:

* concurrent jobs on one shared warm pool are bit-identical to their
  serial-backend runs, with disjoint wire ledgers and no cross-job
  payload-cache or resident-state leakage;
* FIFO admission keyed on ``memory_budget`` admits >= 4 concurrent jobs
  and never starves an oversized job;
* the coordinator runs **zero per-host threads** — one selector loop
  multiplexes every runner channel — and ``close()`` leaks neither
  threads nor file descriptors (sampler fd accounting);
* ``when=io`` faults fire at exact loop-dispatch ordinals and recovery
  keeps results bit-identical.
"""

import os
import threading
import time

import numpy as np
import pytest

from repro import partial_kcenter, partial_kmedian
from repro.cluster import (
    ClusterBackend,
    ClusterService,
    FaultPlan,
    RetryPolicy,
    WireLedger,
)
from repro.obs.sampler import read_resource_sample

pytestmark = pytest.mark.cluster


def _double(x):
    return x * 2


def _slow_double(x):
    time.sleep(0.05)  # keep later tasks in flight when an io fault fires
    return x * 2


def _payload_sum(payload):
    return float(np.sum(payload["arr"]))


def _points(seed=0, n=240):
    return np.random.default_rng(seed).normal(size=(n, 3))


def _die(x):
    os._exit(3)  # simulate a host crash mid-task: no cleanup, no goodbye


def _assert_same_result(cluster_result, serial_result):
    np.testing.assert_array_equal(cluster_result.centers, serial_result.centers)
    assert cluster_result.cost == serial_result.cost
    assert (cluster_result.ledger.total_words()
            == serial_result.ledger.total_words())
    assert (cluster_result.ledger.words_by_kind()
            == serial_result.ledger.words_by_kind())


@pytest.fixture(scope="module")
def service2():
    with ClusterService(n_hosts=2) as svc:
        yield svc


class TestConcurrentJobs:
    def test_two_jobs_bit_identical_to_serial_with_disjoint_ledgers(self, service2):
        pts = _points(3)
        jobs = [
            service2.submit(
                lambda b, s=s: partial_kmedian(
                    pts, 3, 10, n_sites=4, seed=s, backend=b
                ),
                label=f"kmedian-{s}",
            )
            for s in (1, 2)
        ]
        results = [job.result(timeout=180) for job in jobs]
        for seed, result in zip((1, 2), results):
            _assert_same_result(
                result, partial_kmedian(pts, 3, 10, n_sites=4, seed=seed)
            )
        # Disjoint wire accounting: each job's ledger is its own object and
        # each matches its standalone-run byte totals independently.
        first, second = (r.ledger.wire for r in results)
        assert first is not second
        assert first.summary()["total_bytes"] > 0
        assert second.summary()["total_bytes"] > 0

    def test_mixed_protocols_concurrently(self, service2):
        pts = _points(4)
        j1 = service2.submit(
            lambda b: partial_kmedian(pts, 3, 8, n_sites=4, seed=5, backend=b)
        )
        j2 = service2.submit(
            lambda b: partial_kcenter(pts, 3, 8, n_sites=4, seed=5, backend=b)
        )
        _assert_same_result(
            j1.result(180), partial_kmedian(pts, 3, 8, n_sites=4, seed=5)
        )
        _assert_same_result(
            j2.result(180), partial_kcenter(pts, 3, 8, n_sites=4, seed=5)
        )

    def test_no_cross_job_payload_cache_leakage(self, service2):
        """Identical payload bytes shipped by job A must re-ship for job B.

        Payload caches are per job namespace on both ends: a digest-only
        dispatch for B after A shipped the same content would mean B's wire
        ledger lies about the bytes its run moved.
        """
        payload = {"arr": np.random.default_rng(9).normal(size=4096)}

        def shipped(backend):
            wire = WireLedger()
            value = backend.submit_tasks(_payload_sum, [payload], wire=wire)[0].result()
            return value, wire.bytes_by_kind()["task_dispatch"]

        a = service2.checkout(label="cache-a")
        b = service2.checkout(label="cache-b")
        try:
            assert a.job != b.job
            _, first_a = shipped(a)
            _, again_a = shipped(a)
            assert first_a > 30_000        # full bytes on first contact
            assert again_a < 2_048         # digest-only within the job...
            _, first_b = shipped(b)
            assert first_b > 30_000        # ...but never across jobs
        finally:
            a.close()
            b.close()

    def test_resident_state_keyed_by_job_namespace(self, service2):
        """Two concurrent protocol runs keep per-job site slots on the pool."""
        pts = _points(6)
        a = service2.checkout(label="slots-a")
        b = service2.checkout(label="slots-b")
        try:
            ra = partial_kmedian(pts, 3, 6, n_sites=4, seed=1, backend=a)
            rb = partial_kmedian(pts, 3, 6, n_sites=4, seed=2, backend=b)
            pool = a._pool
            namespaces = {job for (job, _site) in
                          pool._hosts[0].resident_by_site}
            assert a.job in namespaces and b.job in namespaces
            _assert_same_result(ra, partial_kmedian(pts, 3, 6, n_sites=4, seed=1))
            _assert_same_result(rb, partial_kmedian(pts, 3, 6, n_sites=4, seed=2))
        finally:
            a.close()
            b.close()


class TestAdmission:
    def test_admits_four_concurrent_jobs(self):
        with ClusterService(n_hosts=2, capacity="256MB") as svc:
            started = threading.Barrier(4, timeout=60)

            def job(backend):
                started.wait()  # all four must be admitted simultaneously
                return backend.map_ordered(_double, [1, 2, 3, 4])

            jobs = [
                svc.submit(job, memory_budget="16MB", label=f"j{i}")
                for i in range(4)
            ]
            for j in jobs:
                assert j.result(timeout=120) == [2, 4, 6, 8]
            lanes = {j.job for j in jobs}
            assert len(lanes) == 4

    def test_memory_budget_gates_admission_fifo(self):
        with ClusterService(n_hosts=1, capacity=100) as svc:
            first = svc.checkout(memory_budget=60, label="big")
            admitted = threading.Event()
            second = []

            def waiter():
                backend = svc.checkout(memory_budget=60, label="blocked")
                second.append(backend)
                admitted.set()

            thread = threading.Thread(target=waiter, daemon=True)
            thread.start()
            # 60 + 60 > 100: the second job must wait for the first lane.
            assert not admitted.wait(timeout=0.3)
            first.close()
            assert admitted.wait(timeout=30)
            second[0].close()
            thread.join(timeout=10)

    def test_oversized_job_admitted_alone(self):
        with ClusterService(n_hosts=1, capacity=10) as svc:
            backend = svc.checkout(memory_budget="64MB", label="oversized")
            try:
                assert backend.map_ordered(_double, [7]) == [14]
            finally:
                backend.close()

    def test_lanes_recycle_smallest_first(self):
        with ClusterService(n_hosts=1) as svc:
            a, b, c = (svc.checkout() for _ in range(3))
            assert [a.job, b.job, c.job] == ["job-1", "job-2", "job-3"]
            a.close()
            b.close()
            d = svc.checkout()
            assert d.job == "job-1"  # the smallest freed lane comes back first
            d.close()
            c.close()

    def test_closed_service_refuses_checkout(self):
        svc = ClusterService(n_hosts=1)
        svc.close()
        with pytest.raises(RuntimeError, match="closed"):
            svc.checkout()


class TestEventLoopShape:
    def test_zero_per_host_threads_and_clean_close(self):
        """cluster:3 runs one loop thread total, and close() leaks nothing."""
        before_threads = set(threading.enumerate())
        before_fds = read_resource_sample()["n_fds"]

        backend = ClusterBackend(n_hosts=3)
        try:
            assert backend.map_ordered(_double, [1, 2, 3, 4, 5, 6]) == [
                2, 4, 6, 8, 10, 12,
            ]
            new_threads = [
                t for t in threading.enumerate() if t not in before_threads
            ]
            # One selector loop multiplexes all three runner channels: no
            # per-host reader or sender threads exist at all.
            assert len(new_threads) == 1
            assert new_threads[0].name == "repro-cluster-loop"
        finally:
            backend.close()

        leaked = [t for t in threading.enumerate() if t not in before_threads]
        assert leaked == []
        # All sockets, the selector and its wakeup pair are gone; give the
        # kernel a beat to reap the runner processes' pipe ends.
        deadline = time.monotonic() + 5.0
        while (read_resource_sample()["n_fds"] > before_fds
               and time.monotonic() < deadline):
            time.sleep(0.05)
        assert read_resource_sample()["n_fds"] <= before_fds

    def test_service_jobs_share_one_loop_thread(self, service2):
        jobs = [
            service2.submit(lambda b: b.map_ordered(_double, [1, 2, 3]))
            for _ in range(3)
        ]
        for j in jobs:
            assert j.result(timeout=60) == [2, 4, 6]
        loops = [
            t for t in threading.enumerate() if t.name == "repro-cluster-loop"
        ]
        assert len(loops) == 1


class TestIoFaults:
    def test_io_trigger_fires_at_exact_loop_ordinal(self):
        """A when=io kill lands while the loop handles host 0's 2nd reply.

        The task sleeps, so host 0's later tasks are still in flight at the
        trigger point: the kill forces a real re-dispatch, and the futures
        can only resolve after recovery ran.
        """
        plan = FaultPlan.parse("kill host=0 when=io task=2")
        assert plan.has_io_actions
        backend = ClusterBackend(
            n_hosts=2, retry=RetryPolicy(max_retries=1), fault_plan=plan
        )
        try:
            wire = WireLedger()
            futures = backend.submit_tasks(
                _slow_double, list(range(8)), wire=wire
            )
            assert [f.result() for f in futures] == [x * 2 for x in range(8)]
            assert plan.actions[0].fired
            assert backend.dead_hosts() == {0: backend.dead_hosts()[0]}
            events = wire.summary()["recovery"]
            assert len(events) == 1 and events[0]["host"] == 0
        finally:
            backend.close()

    def test_io_ordinals_count_per_host(self):
        plan = FaultPlan.parse("stall host=1 when=io task=3")
        assert plan.next_io_ordinal(0) == 1
        assert plan.next_io_ordinal(1) == 1
        assert plan.next_io_ordinal(1) == 2
        assert plan.next_io_ordinal(0) == 2
        # The only io action matches host 1's 3rd loop-handled reply, ever.
        assert plan.take(1, 0, "task", 2, "io") == []
        assert len(plan.take(1, 5, "task", 3, "io")) == 1

    def test_io_fault_protocol_run_stays_bit_identical(self):
        pts = _points(11, n=180)
        base = partial_kmedian(pts, 3, 9, n_sites=3, seed=11)
        backend = ClusterBackend(
            n_hosts=3,
            retry=RetryPolicy(max_retries=1),
            fault_plan=FaultPlan.parse("kill host=1 when=io task=2"),
        )
        try:
            result = partial_kmedian(pts, 3, 9, n_sites=3, seed=11, backend=backend)
        finally:
            backend.close()
        _assert_same_result(result, base)
        assert len(result.ledger.wire.summary()["recovery"]) == 1


class TestBrokenPoolRetirement:
    def test_release_discards_dead_failfast_pool(self):
        with ClusterService(n_hosts=1) as svc:
            backend = svc.checkout(label="doomed")
            pool = backend._pool
            with pytest.raises(RuntimeError, match="cluster host 0"):
                backend.map_ordered(_die, [1])
            assert pool.dead_hosts()
            backend.close()
            # The wreck was retired with its scratch dir; the next checkout
            # gets a fresh, working pool.
            assert pool.socket_dir is None
            fresh = svc.checkout(label="replacement")
            try:
                assert fresh._pool is not pool
                assert fresh.map_ordered(_double, [4]) == [8]
            finally:
                fresh.close()
