"""Runner-resident mutable site state: digests, lazy faults, clears, ceilings.

The honesty bug this guards against: site state (e.g. the precluster's
cached ``n_i x n_i`` cost matrix) being pickled back to the coordinator
after round 1 and re-shipped in the round-2 dispatch.  With residency, the
result frame carries a digest, the next dispatch an epoch token, and the
coordinator faults individual entries only on explicit access — so round>=2
dispatch bytes must stay near the frame floor, which
``test_kmedian_round2_dispatch_byte_ceiling`` pins with a fixed ceiling.
"""

import numpy as np
import pytest

from repro import partial_kmedian
from repro.cluster import ClusterBackend
from repro.cluster.wire import FRAME_KINDS, WireLedger
from repro.distributed.instance import DistributedInstance
from repro.distributed.network import StarNetwork
from repro.metrics.euclidean import EuclideanMetric
from repro.runtime import RemoteStateProxy, SiteTask, run_site_tasks

pytestmark = pytest.mark.cluster

#: Fixed byte ceiling for the whole round-2 site dispatch of the kmedian
#: regression run below (3 sites on 2 hosts).  A dispatch that re-ships the
#: preclusters is two orders of magnitude above this; the honest token
#: dispatch measures ~2.6 KB.
KMEDIAN_ROUND2_DISPATCH_CEILING = 8 * 1024


def _accumulate_task(ctx, scale):
    """Two-round toy: grows state in round 1, consumes it in round 2."""
    round_no = ctx.state.get("rounds", 0) + 1
    ctx.state["rounds"] = round_no
    if round_no == 1:
        ctx.state["big"] = np.full(4096, float(ctx.site_id))  # 32 KiB of state
        ctx.state["small"] = ctx.site_id * scale
    total = float(np.sum(ctx.state["big"])) + ctx.state["small"]
    extra = float(ctx.state.get("injected", 0.0))
    ctx.send_to_coordinator("probe", total + extra, words=1)
    return total + extra


def _make_network(n_sites=3):
    points = np.arange(8 * n_sites, dtype=float).reshape(-1, 2)
    metric = EuclideanMetric(points)
    shards = [np.arange(i, len(points), n_sites) for i in range(n_sites)]
    instance = DistributedInstance.from_partition(metric, shards, 2, 1, "median")
    return StarNetwork(instance)


def _dispatch_bytes_by_round(ledger, kind="site_dispatch", *, raw=False):
    out = {}
    for rec in ledger.wire.records:
        if rec.kind == kind:
            n = rec.raw_bytes if raw else rec.n_bytes
            out[rec.round_index] = out.get(rec.round_index, 0) + n
    return out


def _two_rounds(backend, *, clear_between=False, inject=None):
    """Run the toy task for two rounds; returns (network, round-2 values)."""
    network = _make_network()
    for round_no in (1, 2):
        network.next_round()
        results = run_site_tasks(
            network,
            [SiteTask(i, _accumulate_task, args=(2.0,)) for i in range(network.n_sites)],
            backend=backend,
        )
        if round_no == 1:
            if inject is not None:
                for site in network.sites:
                    site.state["injected"] = inject
            if clear_between and isinstance(backend, ClusterBackend):
                backend.clear_resident()
    return network, [r.value for r in results]


@pytest.fixture(scope="module")
def cluster2():
    backend = ClusterBackend(n_hosts=2)
    yield backend
    backend.close()


class TestStateResidency:
    def test_state_comes_back_as_a_lazy_proxy(self, cluster2):
        network, _ = _two_rounds(cluster2)
        for site in network.sites:
            proxy = site.state
            assert isinstance(proxy, RemoteStateProxy)
            assert proxy.epoch == 2  # one epoch per completed round
            assert set(proxy) == {"rounds", "big", "small"}
            # The 32 KiB entry is priced in the digest but still remote.
            assert proxy.sizes["big"] > 30_000
            assert proxy.resident_bytes() > 30_000

    def test_round2_dispatch_ships_token_not_state(self, cluster2):
        network, _ = _two_rounds(cluster2)
        dispatch = _dispatch_bytes_by_round(network.ledger)
        results = _dispatch_bytes_by_round(network.ledger, "site_result")
        # Round 1 pays for the sticky half; round 2 is a token + inbox —
        # and neither is within sight of the 3 x 32 KiB of mutable state.
        assert 0 < dispatch[2] < dispatch[1]
        assert dispatch[2] < 8192
        # Neither result frame carried the 3 x 32 KiB of mutable state.
        assert results[1] < 8192 and results[2] < 8192

    def test_faults_are_lazy_accounted_and_correct(self, cluster2):
        network, values = _two_rounds(cluster2)
        wire = network.ledger.wire
        assert "state_pull_dispatch" not in wire.bytes_by_kind()
        site = network.sites[1]
        big = site.state["big"]  # faults 32 KiB over the wire, once
        np.testing.assert_array_equal(big, np.full(4096, 1.0))
        kinds = wire.bytes_by_kind()
        assert kinds["state_pull_result"] > 30_000
        before = wire.n_frames()
        _ = site.state["big"]  # cached: no second fault
        assert wire.n_frames() == before
        assert values[1] == float(np.sum(big)) + 1 * 2.0

    def test_matches_serial_bit_for_bit(self, cluster2):
        base_net, base_values = _two_rounds(None)
        net, values = _two_rounds(cluster2)
        assert values == base_values
        assert net.ledger.total_words() == base_net.ledger.total_words()
        assert net.ledger.words_by_kind() == base_net.ledger.words_by_kind()
        for site, base_site in zip(net.sites, base_net.sites):
            assert set(site.state) == set(base_site.state)
            np.testing.assert_array_equal(site.state["big"], base_site.state["big"])
            assert site.state["small"] == base_site.state["small"]
            assert site.state["rounds"] == base_site.state["rounds"]

    def test_coordinator_writes_ride_the_token(self, cluster2):
        base_net, base_values = _two_rounds(None, inject=7.5)
        net, values = _two_rounds(cluster2, inject=7.5)
        assert values == base_values
        assert net.ledger.words_by_kind() == base_net.ledger.words_by_kind()

    def test_stale_epoch_proxy_raises(self, cluster2):
        network = _make_network()
        network.next_round()
        run_site_tasks(
            network,
            [SiteTask(i, _accumulate_task, args=(2.0,)) for i in range(network.n_sites)],
            backend=cluster2,
        )
        stale = network.sites[0].state
        network.next_round()
        run_site_tasks(
            network,
            [SiteTask(i, _accumulate_task, args=(2.0,)) for i in range(network.n_sites)],
            backend=cluster2,
        )
        assert network.sites[0].state is not stale
        with pytest.raises(RuntimeError, match="stale|advanced"):
            _ = stale["big"]

    def test_pull_state_detaches_and_survives_eviction(self, cluster2):
        network, _ = _two_rounds(cluster2)
        snapshots = [site.state.pull_state() for site in network.sites]
        for site, snap in zip(network.sites, snapshots):
            assert site.state.detached
            assert set(snap) == {"rounds", "big", "small"}
        # Residency can now be dropped without losing anything.
        cluster2.clear_resident()
        for site in network.sites:
            np.testing.assert_array_equal(
                site.state["big"], np.full(4096, float(site.site_id))
            )

    def test_evict_frees_the_read_cache(self, cluster2):
        network, _ = _two_rounds(cluster2)
        site = network.sites[0]
        _ = site.state["big"]
        wire = network.ledger.wire
        before = wire.n_frames()
        site.state.evict("big")
        _ = site.state["big"]  # re-faults after the evict
        # One fault = one dispatch frame + one result frame.
        assert wire.n_frames() == before + 2


class TestClearResident:
    """End-to-end coverage for the runner's ``clear_resident`` path."""

    def test_clear_forces_full_reshipping(self, cluster2):
        kept, _ = _two_rounds(cluster2)
        cleared, _ = _two_rounds(cluster2, clear_between=True)
        kept_dispatch = _dispatch_bytes_by_round(kept.ledger)
        cleared_dispatch = _dispatch_bytes_by_round(cleared.ledger)
        kept_raw = _dispatch_bytes_by_round(kept.ledger, raw=True)
        cleared_raw = _dispatch_bytes_by_round(cleared.ledger, raw=True)
        # Round 1 ships the same things either way (raw column: the runs'
        # uuid resident keys differ byte-for-byte, so encoded sizes wobble)...
        assert cleared_raw[1] == kept_raw[1]
        # ...but after the clear, round 2 re-ships the sticky half AND the
        # full mutable state (32 KiB per site) instead of a token.  The
        # constant-valued state compresses to almost nothing on the wire,
        # so the content claim lives in the raw (pre-codec) column too.
        assert cleared_dispatch[2] > kept_dispatch[2]
        assert cleared_raw[2] > kept_raw[2] + 3 * 30_000

    def test_mid_run_clear_is_bit_identical(self, cluster2):
        base_net, base_values = _two_rounds(None)
        net, values = _two_rounds(cluster2, clear_between=True)
        assert values == base_values
        assert net.ledger.total_words() == base_net.ledger.total_words()
        assert net.ledger.words_by_kind() == base_net.ledger.words_by_kind()
        for site, base_site in zip(net.sites, base_net.sites):
            np.testing.assert_array_equal(site.state["big"], base_site.state["big"])
            assert site.state["rounds"] == base_site.state["rounds"] == 2

    def test_clear_materializes_live_proxies_first(self, cluster2):
        network = _make_network()
        network.next_round()
        run_site_tasks(
            network,
            [SiteTask(i, _accumulate_task, args=(2.0,)) for i in range(network.n_sites)],
            backend=cluster2,
        )
        proxies = [site.state for site in network.sites]
        assert all(not p.detached for p in proxies)
        cluster2.clear_resident()
        # Nothing was lost: the clear pulled every entry to the coordinator.
        for site_id, proxy in enumerate(proxies):
            assert proxy.detached
            np.testing.assert_array_equal(
                proxy["big"], np.full(4096, float(site_id))
            )


def _payload_task(payload):
    """Structure-free task body for the payload-residency tests below."""
    return float(np.sum(payload["arr"]))


class TestPayloadCacheLifecycle:
    """Content-addressed payload residency dies with the slot it rode in on.

    The coordinator mirrors each runner's :class:`PayloadCache`; both ends
    must drop it together on ``clear_resident()`` and on warm-pool slot
    eviction — a surviving runner-side copy would satisfy REFs for bytes
    the accounting says were never re-shipped.
    """

    #: 32 KiB of incompressible (random) floats: the dispatch that ships it
    #: stays ~raw-sized, the digest-only dispatch is two orders smaller.
    _ARR = np.random.default_rng(7).normal(size=4096)

    def _dispatch_once(self, backend, payload):
        wire = WireLedger()
        futures = backend.submit_tasks(_payload_task, [payload], wire=wire)
        return futures[0].result(), wire.bytes_by_kind()["task_dispatch"]

    def test_repeat_dispatch_collapses_to_digest(self, cluster2):
        payload = {"arr": self._ARR, "tag": "lifecycle"}
        v1, first = self._dispatch_once(cluster2, payload)
        v2, second = self._dispatch_once(cluster2, payload)
        assert v1 == v2 == float(np.sum(self._ARR))
        assert first > 30_000
        assert second < 2_048

    def test_clear_resident_drops_both_payload_caches(self, cluster2):
        payload = {"arr": self._ARR, "tag": "lifecycle-clear"}
        self._dispatch_once(cluster2, payload)
        def cached_entries(host):
            # host.payloads maps job namespace -> PayloadCache; the default
            # run lives under "".  Count entries across every namespace.
            return sum(len(cache) for cache in host.payloads.values())

        assert any(cached_entries(host) for host in cluster2._hosts)
        cluster2.clear_resident()
        assert all(cached_entries(host) == 0 for host in cluster2._hosts)
        # The runner's copy died with the mirror: the re-dispatch ships the
        # full bytes again (a stale runner cache would satisfy a REF and
        # the dispatch would stay digest-sized).
        value, reshipped = self._dispatch_once(cluster2, payload)
        assert value == float(np.sum(self._ARR))
        assert reshipped > 30_000

    def test_slot_eviction_drops_payload_cache_and_reships(self, cluster2):
        payload = {"arr": self._ARR, "tag": "lifecycle-evict"}
        self._dispatch_once(cluster2, payload)
        _, resident = self._dispatch_once(cluster2, payload)
        assert resident < 2_048  # digest-only while residency lasts
        # Two fresh protocol runs take over the hosts' site slots in turn;
        # the second run's keys supersede the first's, and that eviction
        # frame ends payload residency on both ends with the slot.
        _two_rounds(cluster2)
        _two_rounds(cluster2)
        assert all(
            sum(len(cache) for cache in host.payloads.values()) == 0
            for host in cluster2._hosts
        )
        value, after = self._dispatch_once(cluster2, payload)
        assert value == float(np.sum(self._ARR))
        assert after > 30_000


class TestKmedianDispatchCeiling:
    """Tier-1 regression: the kmedian state round-trip must not return."""

    def test_kmedian_round2_dispatch_byte_ceiling(self, small_workload):
        backend = ClusterBackend(n_hosts=2)
        try:
            result = partial_kmedian(
                small_workload.points, 3, 15, n_sites=3, seed=42, backend=backend
            )
        finally:
            backend.close()
        # Every frame the run recorded is a declared kind (the ledger's
        # vocabulary and the backend's `kind + suffix` construction agree).
        assert {rec.kind for rec in result.ledger.wire.records} <= set(FRAME_KINDS)
        dispatch = _dispatch_bytes_by_round(result.ledger)
        assert dispatch[2] > 0
        # Before residency this was ~300 KB (the preclusters riding back
        # out); the honest token dispatch is ~2.6 KB.  A fixed ceiling keeps
        # the bug from silently returning.
        assert dispatch[2] < KMEDIAN_ROUND2_DISPATCH_CEILING
        # The result frames must not round-trip the state either: their
        # bytes stay near the outbox payloads, far below the precluster.
        results_bytes = _dispatch_bytes_by_round(result.ledger, "site_result")
        assert results_bytes[1] < 64 * 1024
        assert results_bytes[2] < 64 * 1024
