"""Tests for realized-cost evaluation and outlier recovery."""

import numpy as np
import pytest

from repro.analysis import evaluate_assignment, evaluate_centers, outlier_recovery


class TestEvaluateCenters:
    def test_matches_manual_computation(self, tiny_metric):
        # Centers 0 and 3; budget 1 excludes the far point 6.
        result = evaluate_centers(tiny_metric, [0, 3], 1, objective="median")
        expected = sum(
            min(tiny_metric.distance(i, 0), tiny_metric.distance(i, 3)) for i in range(6)
        )
        assert result.cost == pytest.approx(expected)
        assert np.array_equal(result.outlier_indices, [6])

    def test_zero_budget(self, tiny_metric):
        result = evaluate_centers(tiny_metric, [0], 0, objective="median")
        assert result.outlier_indices.size == 0

    def test_center_objective(self, tiny_metric):
        result = evaluate_centers(tiny_metric, [0, 3], 1, objective="center")
        expected = max(
            min(tiny_metric.distance(i, 0), tiny_metric.distance(i, 3)) for i in range(6)
        )
        assert result.cost == pytest.approx(expected)

    def test_subset_evaluation(self, tiny_metric):
        result = evaluate_centers(tiny_metric, [0], 0, objective="median", indices=[0, 1, 2])
        expected = sum(tiny_metric.distance(i, 0) for i in range(3))
        assert result.cost == pytest.approx(expected)

    def test_assignment_uses_global_ids(self, tiny_metric):
        result = evaluate_centers(tiny_metric, [3, 0], 0, objective="median")
        assert set(np.unique(result.solution.assignment)) <= {0, 3}

    def test_empty_centers_rejected(self, tiny_metric):
        with pytest.raises(ValueError):
            evaluate_centers(tiny_metric, [], 0)

    def test_budget_monotonicity(self, small_metric):
        costs = [
            evaluate_centers(small_metric, [0, 50, 100], t, objective="median").cost
            for t in (0, 5, 10, 20)
        ]
        assert all(a >= b - 1e-9 for a, b in zip(costs, costs[1:]))


class TestEvaluateAssignment:
    def test_median(self, tiny_metric):
        cost = evaluate_assignment(tiny_metric, {1: 0, 2: 0}, objective="median")
        assert cost == pytest.approx(tiny_metric.distance(1, 0) + tiny_metric.distance(2, 0))

    def test_center(self, tiny_metric):
        cost = evaluate_assignment(tiny_metric, {1: 0, 6: 0}, objective="center")
        assert cost == pytest.approx(tiny_metric.distance(6, 0))

    def test_means(self, tiny_metric):
        cost = evaluate_assignment(tiny_metric, {1: 0}, objective="means")
        assert cost == pytest.approx(tiny_metric.distance(1, 0) ** 2)

    def test_empty(self, tiny_metric):
        assert evaluate_assignment(tiny_metric, {}) == 0.0


class TestOutlierRecovery:
    def test_perfect_recovery(self):
        stats = outlier_recovery([1, 2, 3], [1, 2, 3])
        assert stats == {"precision": 1.0, "recall": 1.0, "f1": 1.0}

    def test_partial_recovery(self):
        stats = outlier_recovery([1, 2, 7, 8], [1, 2, 3, 4])
        assert stats["precision"] == pytest.approx(0.5)
        assert stats["recall"] == pytest.approx(0.5)

    def test_no_reported(self):
        stats = outlier_recovery([], [1, 2])
        assert stats["precision"] == 0.0
        assert stats["recall"] == 0.0
        assert stats["f1"] == 0.0

    def test_both_empty(self):
        assert outlier_recovery([], [])["f1"] == 1.0
