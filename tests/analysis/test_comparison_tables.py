"""Tests for comparison utilities and table formatting."""

import numpy as np
import pytest

from repro.analysis import (
    approximation_ratio,
    communication_ratio,
    compare_results,
    format_markdown_table,
    format_table,
    summarize_result,
)
from repro.analysis.comparison import scaling_exponent
from repro.baselines import centralized_reference, send_all_protocol
from repro.core import distributed_partial_median


class TestRatios:
    def test_approximation_ratio(self):
        assert approximation_ratio(6.0, 3.0) == 2.0

    def test_zero_reference(self):
        assert approximation_ratio(0.0, 0.0) == 1.0
        assert approximation_ratio(1.0, 0.0) == float("inf")

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            approximation_ratio(-1.0, 2.0)

    def test_communication_ratio(self, small_instance):
        alg1 = distributed_partial_median(small_instance, rng=0)
        naive = send_all_protocol(small_instance, rng=0)
        ratio = communication_ratio(alg1, naive)
        assert 0 < ratio < 1


class TestScalingExponent:
    def test_quadratic_series(self):
        xs = np.asarray([100, 200, 400, 800], dtype=float)
        ys = 3.0 * xs**2
        assert scaling_exponent(xs, ys) == pytest.approx(2.0, abs=1e-6)

    def test_subquadratic_series(self):
        xs = np.asarray([100, 200, 400, 800], dtype=float)
        ys = 5.0 * xs**1.33
        assert scaling_exponent(xs, ys) == pytest.approx(1.33, abs=1e-6)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            scaling_exponent([1.0], [1.0])
        with pytest.raises(ValueError):
            scaling_exponent([1.0, 0.0], [1.0, 2.0])


class TestSummaries:
    def test_summarize_result_keys(self, small_instance, small_metric, small_workload):
        result = distributed_partial_median(small_instance, rng=0)
        reference = centralized_reference(small_metric, 3, 15, objective="median", rng=1)
        row = summarize_result(
            small_metric,
            result,
            reference=reference,
            true_outliers=np.flatnonzero(small_workload.outlier_mask),
            label="alg1",
        )
        assert row["label"] == "alg1"
        assert row["approx_ratio"] > 0
        assert 0 <= row["outlier_recall"] <= 1
        assert row["total_words"] > 0

    def test_compare_results(self, small_instance, small_metric):
        runs = {
            "alg1": distributed_partial_median(small_instance, rng=0),
            "send_all": send_all_protocol(small_instance, rng=0),
        }
        rows = compare_results(small_metric, runs)
        assert [r["label"] for r in rows] == ["alg1", "send_all"]


class TestTables:
    def test_format_table_alignment(self):
        rows = [{"name": "a", "value": 1.23456}, {"name": "bb", "value": 7.0}]
        text = format_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert format_table([]) == ""
        assert format_table([], title="t") == "t"

    def test_missing_keys_render_empty(self):
        text = format_table([{"a": 1}, {"b": 2}], columns=["a", "b"])
        assert "1" in text and "2" in text

    def test_markdown_table(self):
        rows = [{"x": 1, "y": "hello"}]
        md = format_markdown_table(rows)
        assert md.splitlines()[0] == "| x | y |"
        assert "| 1 | hello |" in md

    def test_markdown_empty(self):
        assert format_markdown_table([]) == ""
