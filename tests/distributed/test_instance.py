"""Tests for DistributedInstance and UncertainDistributedInstance."""

import numpy as np
import pytest

from repro.distributed import DistributedInstance, UncertainDistributedInstance


class TestDistributedInstance:
    def test_basic_properties(self, small_instance, small_workload):
        assert small_instance.n_sites == 3
        assert small_instance.n_points == small_workload.n_points
        assert small_instance.site_sizes.sum() == small_workload.n_points

    def test_all_indices_cover_everything(self, small_instance, small_workload):
        assert np.array_equal(
            np.sort(small_instance.all_indices()), np.arange(small_workload.n_points)
        )

    def test_site_of_point(self, small_instance):
        owner = small_instance.site_of_point()
        for i, shard in enumerate(small_instance.shards):
            assert np.all(owner[shard] == i)

    def test_overlapping_shards_rejected(self, small_metric):
        with pytest.raises(ValueError):
            DistributedInstance.from_partition(small_metric, [[0, 1, 2], [2, 3]], 1, 0)

    def test_empty_shard_rejected(self, small_metric):
        with pytest.raises(ValueError):
            DistributedInstance.from_partition(small_metric, [[0, 1], []], 1, 0)

    def test_no_sites_rejected(self, small_metric):
        with pytest.raises(ValueError):
            DistributedInstance(metric=small_metric, shards=[], k=1, t=0)

    def test_k_t_validated(self, small_metric):
        with pytest.raises(ValueError):
            DistributedInstance.from_partition(small_metric, [[0, 1], [2, 3]], 10, 0)

    def test_out_of_range_indices_rejected(self, small_metric):
        n = len(small_metric)
        with pytest.raises(IndexError):
            DistributedInstance.from_partition(small_metric, [[0, 1], [n + 5]], 1, 0)

    def test_words_per_point(self, small_instance):
        assert small_instance.words_per_point() == 2  # 2-D Euclidean data


class TestUncertainDistributedInstance:
    def test_basic_properties(self, small_uncertain_workload):
        inst = small_uncertain_workload.instance
        shards = [np.arange(0, 20), np.arange(20, 40), np.arange(40, inst.n_nodes)]
        dist = UncertainDistributedInstance.from_partition(inst, shards, 3, 6)
        assert dist.n_sites == 3
        assert dist.n_nodes == inst.n_nodes
        assert dist.ground_metric is inst.ground_metric
        assert dist.words_per_point() == 2
        assert dist.node_words() > 2

    def test_disjointness_enforced(self, small_uncertain_workload):
        inst = small_uncertain_workload.instance
        with pytest.raises(ValueError):
            UncertainDistributedInstance.from_partition(inst, [[0, 1], [1, 2]], 1, 0)

    def test_node_range_enforced(self, small_uncertain_workload):
        inst = small_uncertain_workload.instance
        with pytest.raises(ValueError):
            UncertainDistributedInstance.from_partition(inst, [[0], [inst.n_nodes]], 1, 0)

    def test_empty_shard_rejected(self, small_uncertain_workload):
        inst = small_uncertain_workload.instance
        with pytest.raises(ValueError):
            UncertainDistributedInstance.from_partition(inst, [[0, 1], []], 1, 0)
