"""Tests for the data partitioners."""

import numpy as np
import pytest

from repro.distributed import (
    partition_balanced,
    partition_by_cluster,
    partition_dirichlet,
    partition_outliers_concentrated,
    partition_round_robin,
)


def _check_is_partition(shards, n):
    allp = np.concatenate(shards)
    assert np.array_equal(np.sort(allp), np.arange(n))
    assert all(s.size > 0 for s in shards)


class TestBalanced:
    def test_partition(self):
        shards = partition_balanced(100, 4, rng=0)
        _check_is_partition(shards, 100)
        sizes = [s.size for s in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_uneven_division(self):
        shards = partition_balanced(10, 3, rng=0)
        _check_is_partition(shards, 10)

    def test_single_site(self):
        shards = partition_balanced(5, 1, rng=0)
        assert len(shards) == 1
        _check_is_partition(shards, 5)

    def test_more_sites_than_points_rejected(self):
        with pytest.raises(ValueError):
            partition_balanced(3, 5)

    def test_deterministic_given_seed(self):
        a = partition_balanced(50, 4, rng=1)
        b = partition_balanced(50, 4, rng=1)
        for x, y in zip(a, b):
            assert np.array_equal(x, y)


class TestRoundRobin:
    def test_partition(self):
        shards = partition_round_robin(10, 3)
        _check_is_partition(shards, 10)
        assert np.array_equal(shards[0], [0, 3, 6, 9])


class TestDirichlet:
    def test_partition(self):
        shards = partition_dirichlet(200, 5, alpha=0.3, rng=0)
        _check_is_partition(shards, 200)

    def test_skew_increases_with_small_alpha(self):
        skewed = partition_dirichlet(500, 5, alpha=0.1, rng=0)
        balanced = partition_dirichlet(500, 5, alpha=50.0, rng=0)
        skew_range = max(s.size for s in skewed) - min(s.size for s in skewed)
        bal_range = max(s.size for s in balanced) - min(s.size for s in balanced)
        assert skew_range >= bal_range

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            partition_dirichlet(10, 2, alpha=0.0)


class TestOutliersConcentrated:
    def test_outliers_land_on_designated_sites(self):
        mask = np.zeros(100, dtype=bool)
        mask[:10] = True
        shards = partition_outliers_concentrated(mask, 4, n_outlier_sites=1, rng=0)
        _check_is_partition(shards, 100)
        outlier_ids = set(np.flatnonzero(mask).tolist())
        assert outlier_ids <= set(shards[0].tolist())

    def test_spread_over_two_sites(self):
        mask = np.zeros(60, dtype=bool)
        mask[:12] = True
        shards = partition_outliers_concentrated(mask, 4, n_outlier_sites=2, rng=0)
        outlier_ids = set(np.flatnonzero(mask).tolist())
        assert outlier_ids <= set(shards[0].tolist()) | set(shards[1].tolist())

    def test_invalid_outlier_site_count(self):
        with pytest.raises(ValueError):
            partition_outliers_concentrated(np.zeros(10, dtype=bool), 3, n_outlier_sites=4)


class TestByCluster:
    def test_partition(self):
        labels = np.repeat(np.arange(6), 20)
        shards = partition_by_cluster(labels, 3, rng=0)
        _check_is_partition(shards, 120)

    def test_clusters_not_split(self):
        labels = np.repeat(np.arange(6), 20)
        shards = partition_by_cluster(labels, 3, rng=0)
        for cluster in range(6):
            members = set(np.flatnonzero(labels == cluster).tolist())
            holders = [i for i, s in enumerate(shards) if members & set(s.tolist())]
            assert len(holders) == 1

    def test_noise_spread(self):
        labels = np.concatenate([np.repeat(np.arange(3), 30), -np.ones(9, dtype=int)])
        shards = partition_by_cluster(labels, 3, rng=0)
        _check_is_partition(shards, labels.size)
