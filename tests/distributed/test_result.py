"""Tests for the DistributedResult container."""

import numpy as np
import pytest

from repro.distributed import CommunicationLedger, DistributedResult, Message
from repro.distributed.messages import COORDINATOR


def _result(**overrides):
    ledger = CommunicationLedger()
    ledger.record(Message(0, COORDINATOR, 1, "profile", 10))
    ledger.record(Message(1, COORDINATOR, 2, "solution", 30))
    ledger.record(Message(COORDINATOR, 0, 2, "allocation", 2))
    defaults = dict(
        centers=np.asarray([3, 7, 7]),
        outlier_budget=5.0,
        objective="median",
        cost=12.5,
        ledger=ledger,
        rounds=2,
        outliers=np.asarray([11, 12]),
        site_time={0: 0.2, 1: 0.5},
        coordinator_time=0.1,
    )
    defaults.update(overrides)
    return DistributedResult(**defaults)


class TestDistributedResult:
    def test_n_centers_deduplicates(self):
        assert _result().n_centers == 2

    def test_total_words(self):
        assert _result().total_words == 42.0

    def test_site_time_aggregates(self):
        result = _result()
        assert result.site_time_max == pytest.approx(0.5)
        assert result.site_time_total == pytest.approx(0.7)

    def test_site_time_empty(self):
        result = _result(site_time={})
        assert result.site_time_max == 0.0
        assert result.site_time_total == 0.0

    def test_outliers_optional(self):
        result = _result(outliers=None)
        assert result.outliers is None

    def test_summary_keys(self):
        summary = _result().summary()
        assert {
            "objective",
            "n_centers",
            "outlier_budget",
            "protocol_cost",
            "rounds",
            "total_words",
            "site_time_max",
            "coordinator_time",
        } <= set(summary)
        assert summary["rounds"] == 2

    def test_arrays_coerced_to_int(self):
        result = _result(centers=[1.0, 2.0], outliers=[3.0])
        assert result.centers.dtype.kind == "i"
        assert result.outliers.dtype.kind == "i"
