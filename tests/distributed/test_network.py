"""Tests for sites, coordinator and the star network."""

import numpy as np
import pytest

from repro.distributed import StarNetwork


class TestSite:
    def test_local_metric_reindexes(self, small_instance):
        network = StarNetwork(small_instance)
        site = network.sites[0]
        assert len(site.local_metric) == site.n_points
        global_d = small_instance.metric.distance(int(site.shard[0]), int(site.shard[1]))
        assert site.local_metric.distance(0, 1) == pytest.approx(global_d)

    def test_to_global(self, small_instance):
        network = StarNetwork(small_instance)
        site = network.sites[1]
        assert np.array_equal(site.to_global([0, 2]), site.shard[[0, 2]])


class TestStarNetwork:
    def test_requires_round_before_send(self, small_instance):
        network = StarNetwork(small_instance)
        with pytest.raises(RuntimeError):
            network.send_to_coordinator(0, "x", None, 1)

    def test_round_progression(self, small_instance):
        network = StarNetwork(small_instance)
        assert network.current_round == 0
        assert network.next_round() == 1
        assert network.next_round() == 2

    def test_send_to_coordinator_delivers_and_charges(self, small_instance):
        network = StarNetwork(small_instance)
        network.next_round()
        network.send_to_coordinator(0, "profile", {"v": 1}, 12)
        assert network.ledger.total_words() == 12.0
        assert len(network.coordinator.inbox) == 1
        assert network.coordinator.inbox[0].payload == {"v": 1}

    def test_send_to_site_delivers(self, small_instance):
        network = StarNetwork(small_instance)
        network.next_round()
        network.send_to_site(2, "alloc", 7, 1)
        assert network.sites[2].inbox[0].payload == 7

    def test_broadcast_charges_per_site(self, small_instance):
        network = StarNetwork(small_instance)
        network.next_round()
        network.broadcast("alloc", "stop", 3)
        assert network.ledger.total_words() == 3.0 * network.n_sites

    def test_unknown_site_rejected(self, small_instance):
        network = StarNetwork(small_instance)
        network.next_round()
        with pytest.raises(ValueError):
            network.send_to_coordinator(99, "x", None, 1)
        with pytest.raises(ValueError):
            network.send_to_site(-1, "x", None, 1)

    def test_messages_from_filtering(self, small_instance):
        network = StarNetwork(small_instance)
        network.next_round()
        network.send_to_coordinator(0, "a", 1, 1)
        network.send_to_coordinator(1, "a", 2, 1)
        network.send_to_coordinator(0, "b", 3, 1)
        assert [m.payload for m in network.coordinator.messages_from(0, "a")] == [1]
        assert len(network.coordinator.messages_from(0)) == 2

    def test_site_times_default_zero(self, small_instance):
        network = StarNetwork(small_instance)
        times = network.site_times()
        assert set(times) == set(range(network.n_sites))
        assert all(v == 0.0 for v in times.values())

    def test_timers_recorded(self, small_instance):
        network = StarNetwork(small_instance)
        with network.sites[0].timer.measure("work"):
            sum(range(1000))
        with network.coordinator.timer.measure("solve"):
            sum(range(1000))
        assert network.site_times()[0] > 0
        assert network.coordinator_time() > 0
        assert network.coordinator_time("solve") == network.coordinator_time()

    def test_drain_inbox(self, small_instance):
        network = StarNetwork(small_instance)
        network.next_round()
        network.send_to_site(0, "x", 1, 1)
        drained = network.sites[0].drain_inbox()
        assert len(drained) == 1
        assert network.sites[0].inbox == []
