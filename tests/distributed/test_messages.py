"""Tests for messages and the communication ledger."""

import pytest

from repro.distributed import CommunicationLedger, Message
from repro.distributed.messages import COORDINATOR


def _msg(sender=0, receiver=COORDINATOR, round_index=1, kind="x", words=10.0):
    return Message(sender, receiver, round_index, kind, words)


class TestMessage:
    def test_to_coordinator_flag(self):
        assert _msg().to_coordinator
        assert not _msg(sender=COORDINATOR, receiver=2).to_coordinator

    def test_negative_words_rejected(self):
        with pytest.raises(ValueError):
            _msg(words=-1.0)

    def test_round_index_validated(self):
        with pytest.raises(ValueError):
            _msg(round_index=0)

    def test_frozen(self):
        message = _msg()
        with pytest.raises(AttributeError):
            message.words = 5.0


class TestCommunicationLedger:
    def test_total_words(self):
        ledger = CommunicationLedger()
        ledger.record(_msg(words=10))
        ledger.record(_msg(words=5, round_index=2))
        assert ledger.total_words() == 15.0

    def test_words_by_round(self):
        ledger = CommunicationLedger()
        ledger.record(_msg(words=10, round_index=1))
        ledger.record(_msg(words=5, round_index=2))
        ledger.record(_msg(words=3, round_index=2))
        assert ledger.words_by_round() == {1: 10.0, 2: 8.0}

    def test_words_by_kind(self):
        ledger = CommunicationLedger()
        ledger.record(_msg(kind="profile", words=2))
        ledger.record(_msg(kind="solution", words=7))
        ledger.record(_msg(kind="profile", words=1))
        assert ledger.words_by_kind() == {"profile": 3.0, "solution": 7.0}

    def test_words_by_direction(self):
        ledger = CommunicationLedger()
        ledger.record(_msg(words=10))
        ledger.record(_msg(sender=COORDINATOR, receiver=1, words=4))
        directions = ledger.words_by_direction()
        assert directions["to_coordinator"] == 10.0
        assert directions["to_sites"] == 4.0

    def test_words_by_site(self):
        ledger = CommunicationLedger()
        ledger.record(_msg(sender=0, words=10))
        ledger.record(_msg(sender=1, words=4))
        ledger.record(_msg(sender=0, words=1))
        assert ledger.words_by_site() == {0: 11.0, 1: 4.0}

    def test_rounds_and_message_counts(self):
        ledger = CommunicationLedger()
        assert ledger.n_rounds() == 0
        ledger.record(_msg(round_index=3))
        assert ledger.n_rounds() == 3
        assert ledger.n_messages() == 1

    def test_filter(self):
        ledger = CommunicationLedger()
        ledger.record(_msg(kind="a", round_index=1))
        ledger.record(_msg(kind="b", round_index=2))
        assert len(ledger.filter(kind="a")) == 1
        assert len(ledger.filter(round_index=2)) == 1
        assert len(ledger.filter(kind="a", round_index=2)) == 0

    def test_merge(self):
        a, b = CommunicationLedger(), CommunicationLedger()
        a.record(_msg(words=1))
        b.record(_msg(words=2))
        a.merge(b)
        assert a.total_words() == 3.0

    def test_summary_keys(self):
        ledger = CommunicationLedger()
        ledger.record(_msg())
        summary = ledger.summary()
        assert {"total_words", "rounds", "messages", "by_round", "by_direction"} <= set(summary)

    def test_summary_without_wire_reports_none(self):
        ledger = CommunicationLedger()
        ledger.record(_msg())
        summary = ledger.summary()
        assert summary["wire"] is None
        assert summary["total_bytes"] == 0

    def test_merge_with_wire_ledger(self):
        """Merging a cluster-run ledger attaches its wire ledger wholesale."""
        from repro.cluster.wire import WireLedger

        plain = CommunicationLedger()
        plain.record(_msg(words=1))

        clustered = CommunicationLedger()
        clustered.record(_msg(words=2, round_index=2))
        clustered.ensure_wire().record(
            round_index=2, host=0, direction="send", kind="site_dispatch", n_bytes=300
        )
        clustered.ensure_wire().record(
            round_index=2, host=0, direction="recv", kind="site_result", n_bytes=200
        )

        plain.merge(clustered)
        # Words are the union of both runs; bytes come from the merged wire.
        assert plain.total_words() == 3.0
        assert plain.total_bytes() == 500
        summary = plain.summary()
        assert summary["total_bytes"] == 500
        assert summary["bytes_by_round"] == {2: 500}
        assert summary["wire"]["by_kind"] == {"site_dispatch": 300, "site_result": 200}
        assert summary["wire"]["by_host_kind"] == {0: {"site_dispatch": 300, "site_result": 200}}

    def test_merge_two_wire_ledgers_accumulates(self):
        a, b = CommunicationLedger(), CommunicationLedger()
        a.ensure_wire().record(
            round_index=1, host=0, direction="send", kind="site_dispatch", n_bytes=100
        )
        b.ensure_wire().record(
            round_index=1, host=1, direction="send", kind="site_dispatch", n_bytes=50
        )
        a.merge(b)
        assert a.total_bytes() == 150
        assert a.wire.bytes_by_host() == {0: 100, 1: 50}
