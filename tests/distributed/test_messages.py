"""Tests for messages and the communication ledger."""

import pytest

from repro.distributed import CommunicationLedger, Message
from repro.distributed.messages import COORDINATOR


def _msg(sender=0, receiver=COORDINATOR, round_index=1, kind="x", words=10.0):
    return Message(sender, receiver, round_index, kind, words)


class TestMessage:
    def test_to_coordinator_flag(self):
        assert _msg().to_coordinator
        assert not _msg(sender=COORDINATOR, receiver=2).to_coordinator

    def test_negative_words_rejected(self):
        with pytest.raises(ValueError):
            _msg(words=-1.0)

    def test_round_index_validated(self):
        with pytest.raises(ValueError):
            _msg(round_index=0)

    def test_frozen(self):
        message = _msg()
        with pytest.raises(AttributeError):
            message.words = 5.0


class TestCommunicationLedger:
    def test_total_words(self):
        ledger = CommunicationLedger()
        ledger.record(_msg(words=10))
        ledger.record(_msg(words=5, round_index=2))
        assert ledger.total_words() == 15.0

    def test_words_by_round(self):
        ledger = CommunicationLedger()
        ledger.record(_msg(words=10, round_index=1))
        ledger.record(_msg(words=5, round_index=2))
        ledger.record(_msg(words=3, round_index=2))
        assert ledger.words_by_round() == {1: 10.0, 2: 8.0}

    def test_words_by_kind(self):
        ledger = CommunicationLedger()
        ledger.record(_msg(kind="profile", words=2))
        ledger.record(_msg(kind="solution", words=7))
        ledger.record(_msg(kind="profile", words=1))
        assert ledger.words_by_kind() == {"profile": 3.0, "solution": 7.0}

    def test_words_by_direction(self):
        ledger = CommunicationLedger()
        ledger.record(_msg(words=10))
        ledger.record(_msg(sender=COORDINATOR, receiver=1, words=4))
        directions = ledger.words_by_direction()
        assert directions["to_coordinator"] == 10.0
        assert directions["to_sites"] == 4.0

    def test_words_by_site(self):
        ledger = CommunicationLedger()
        ledger.record(_msg(sender=0, words=10))
        ledger.record(_msg(sender=1, words=4))
        ledger.record(_msg(sender=0, words=1))
        assert ledger.words_by_site() == {0: 11.0, 1: 4.0}

    def test_rounds_and_message_counts(self):
        ledger = CommunicationLedger()
        assert ledger.n_rounds() == 0
        ledger.record(_msg(round_index=3))
        assert ledger.n_rounds() == 3
        assert ledger.n_messages() == 1

    def test_filter(self):
        ledger = CommunicationLedger()
        ledger.record(_msg(kind="a", round_index=1))
        ledger.record(_msg(kind="b", round_index=2))
        assert len(ledger.filter(kind="a")) == 1
        assert len(ledger.filter(round_index=2)) == 1
        assert len(ledger.filter(kind="a", round_index=2)) == 0

    def test_merge(self):
        a, b = CommunicationLedger(), CommunicationLedger()
        a.record(_msg(words=1))
        b.record(_msg(words=2))
        a.merge(b)
        assert a.total_words() == 3.0

    def test_summary_keys(self):
        ledger = CommunicationLedger()
        ledger.record(_msg())
        summary = ledger.summary()
        assert {"total_words", "rounds", "messages", "by_round", "by_direction"} <= set(summary)
