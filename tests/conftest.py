"""Shared fixtures: small, deterministic workloads used across the test suite."""

from __future__ import annotations

import os
import signal
import threading

import numpy as np
import pytest

from repro.data import gaussian_mixture_with_outliers, uncertain_nodes_from_mixture
from repro.distributed import DistributedInstance, partition_balanced
from repro.metrics import EuclideanMetric, build_cost_matrix


@pytest.fixture(autouse=True)
def _cluster_hard_timeout(request):
    """Hard per-test timeout for ``cluster``-marked tests.

    Socket-based tests hang rather than fail when a runner wedges, so every
    test that spawns runner subprocesses gets a SIGALRM deadline
    (``REPRO_CLUSTER_TEST_TIMEOUT`` seconds, default 120).  The alarm
    interrupts blocking socket waits in the main thread and raises, turning
    a silent hang into a loud failure.
    """
    if request.node.get_closest_marker("cluster") is None:
        yield
        return
    if not hasattr(signal, "SIGALRM") or threading.current_thread() is not threading.main_thread():
        yield  # pragma: no cover - non-POSIX / exotic runner
        return
    seconds = int(os.environ.get("REPRO_CLUSTER_TEST_TIMEOUT", "120"))

    def _expired(signum, frame):
        raise TimeoutError(
            f"cluster test exceeded its {seconds}s hard timeout "
            f"(REPRO_CLUSTER_TEST_TIMEOUT)"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(scope="session")
def small_workload():
    """Three well-separated Gaussian clusters plus 15 far-away outliers (165 points)."""
    return gaussian_mixture_with_outliers(
        n_inliers=150, n_outliers=15, n_clusters=3, dim=2, separation=12.0,
        cluster_std=0.8, rng=12345,
    )


@pytest.fixture(scope="session")
def small_metric(small_workload):
    """Euclidean metric over the small workload."""
    return small_workload.to_metric()


@pytest.fixture(scope="session")
def small_cost_matrix(small_metric):
    """Full median cost matrix of the small workload."""
    n = len(small_metric)
    return build_cost_matrix(small_metric, range(n), range(n), "median")


@pytest.fixture(scope="session")
def small_instance(small_metric, small_workload):
    """The small workload split across 3 sites, (k, t) = (3, 15), median objective."""
    shards = partition_balanced(small_workload.n_points, 3, rng=7)
    return DistributedInstance.from_partition(small_metric, shards, 3, 15, "median")


@pytest.fixture(scope="session")
def small_center_instance(small_metric, small_workload):
    """Same partition with the center objective."""
    shards = partition_balanced(small_workload.n_points, 3, rng=7)
    return DistributedInstance.from_partition(small_metric, shards, 3, 15, "center")


@pytest.fixture(scope="session")
def tiny_points():
    """A handful of hand-placed planar points used for exactness checks."""
    return np.asarray(
        [
            [0.0, 0.0],
            [1.0, 0.0],
            [0.0, 1.0],
            [10.0, 10.0],
            [11.0, 10.0],
            [10.0, 11.0],
            [100.0, 100.0],  # an obvious outlier
        ]
    )


@pytest.fixture(scope="session")
def tiny_metric(tiny_points):
    """Euclidean metric over the hand-placed points."""
    return EuclideanMetric(tiny_points)


@pytest.fixture(scope="session")
def small_uncertain_workload():
    """60 uncertain nodes over 3 clusters with 6 planted outlier nodes."""
    return uncertain_nodes_from_mixture(
        n_nodes=54, n_outlier_nodes=6, n_clusters=3, ground_size=200, support_size=5, rng=2024,
    )


@pytest.fixture
def rng():
    """Fresh deterministic generator for tests that need one-off randomness."""
    return np.random.default_rng(987)
