"""Backend parity: every protocol must be bit-identical across backends.

The acceptance bar for the runtime subsystem: for a fixed seed, serial,
thread and process backends (and the pickle transport) return the same
centers, the same cost and the same ledger word counts — parallelism and
payload materialisation are pure execution details.
"""

import numpy as np
import pytest

from repro import (
    partial_kcenter,
    partial_kmedian,
    uncertain_partial_kcenter_g,
    uncertain_partial_kmedian,
)
from repro.core.algorithm1_modified import distributed_partial_median_no_shipping
from repro.runtime import ProcessPoolBackend, ThreadPoolBackend

PARALLEL_BACKENDS = ["thread", "process"]


def _assert_same_result(base, other):
    np.testing.assert_array_equal(base.centers, other.centers)
    assert base.cost == other.cost
    assert base.rounds == other.rounds
    assert base.ledger.total_words() == other.ledger.total_words()
    assert base.ledger.words_by_round() == other.ledger.words_by_round()
    assert base.ledger.words_by_kind() == other.ledger.words_by_kind()
    assert base.ledger.n_messages() == other.ledger.n_messages()
    if base.outliers is None:
        assert other.outliers is None
    else:
        np.testing.assert_array_equal(base.outliers, other.outliers)
    assert base.metadata["t_allocated"] == other.metadata["t_allocated"]


class TestDeterministicProtocolParity:
    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_kmedian(self, small_workload, backend):
        base = partial_kmedian(small_workload.points, 3, 15, n_sites=3, seed=42, backend="serial")
        other = partial_kmedian(small_workload.points, 3, 15, n_sites=3, seed=42, backend=backend)
        _assert_same_result(base, other)

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_kcenter(self, small_workload, backend):
        base = partial_kcenter(small_workload.points, 3, 15, n_sites=3, seed=42, backend="serial")
        other = partial_kcenter(small_workload.points, 3, 15, n_sites=3, seed=42, backend=backend)
        _assert_same_result(base, other)

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_no_shipping_variant(self, small_instance, backend):
        base = distributed_partial_median_no_shipping(small_instance, rng=42, backend="serial")
        other = distributed_partial_median_no_shipping(small_instance, rng=42, backend=backend)
        _assert_same_result(base, other)

    def test_pickle_transport_matches_reference(self, small_workload):
        base = partial_kmedian(small_workload.points, 3, 15, n_sites=3, seed=42)
        other = partial_kmedian(
            small_workload.points, 3, 15, n_sites=3, seed=42, transport="pickle"
        )
        _assert_same_result(base, other)

    def test_backend_instance_is_shared_across_runs(self, small_workload):
        base = partial_kmedian(small_workload.points, 3, 15, n_sites=3, seed=42)
        with ThreadPoolBackend(max_workers=2) as pool:
            first = partial_kmedian(small_workload.points, 3, 15, n_sites=3, seed=42, backend=pool)
            second = partial_kmedian(small_workload.points, 3, 15, n_sites=3, seed=42, backend=pool)
        _assert_same_result(base, first)
        _assert_same_result(base, second)


class TestUncertainProtocolParity:
    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_uncertain_kmedian(self, small_uncertain_workload, backend):
        base = uncertain_partial_kmedian(
            small_uncertain_workload.instance, 3, 6, n_sites=3, seed=42, backend="serial"
        )
        other = uncertain_partial_kmedian(
            small_uncertain_workload.instance, 3, 6, n_sites=3, seed=42, backend=backend
        )
        _assert_same_result(base, other)
        assert base.metadata["node_assignment"] == other.metadata["node_assignment"]

    def test_center_g_process_parity(self, small_uncertain_workload):
        base = uncertain_partial_kcenter_g(
            small_uncertain_workload.instance, 3, 6, n_sites=3, seed=42, backend="serial"
        )
        with ProcessPoolBackend(max_workers=2) as pool:
            other = uncertain_partial_kcenter_g(
                small_uncertain_workload.instance, 3, 6, n_sites=3, seed=42, backend=pool
            )
        _assert_same_result(base, other)
        assert base.metadata["tau_hat"] == other.metadata["tau_hat"]
