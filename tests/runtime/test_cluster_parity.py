"""Cluster parity: every protocol is bit-identical on the cluster backend.

The acceptance bar for the cluster subsystem: for a fixed seed, all five
distributed protocols return the same centers, cost, outliers and — down to
the per-kind/per-round breakdown — the same word ledger on
``backend="cluster:3"`` as on ``"serial"``, while only the cluster run
reports positive wire bytes (``total_bytes``).  Async round scheduling is a
pure latency knob: enabling it changes no result either.

One shared three-host backend serves the module (the runners are real
subprocesses; spawning them once keeps the suite fast).  The accounting is
per run — each protocol's ledger gets its own wire ledger — so sharing the
pool never leaks bytes between runs.
"""

import numpy as np
import pytest

from repro import (
    partial_kcenter,
    partial_kmedian,
    uncertain_partial_kcenter_g,
    uncertain_partial_kmedian,
)
from repro.cluster import ClusterBackend, FaultPlan, RetryPolicy
from repro.core.algorithm1_modified import distributed_partial_median_no_shipping

pytestmark = pytest.mark.cluster


@pytest.fixture(scope="module")
def cluster3():
    backend = ClusterBackend(n_hosts=3)
    yield backend
    backend.close()


def _assert_same_result(base, other):
    np.testing.assert_array_equal(base.centers, other.centers)
    assert base.cost == other.cost
    assert base.rounds == other.rounds
    assert base.ledger.total_words() == other.ledger.total_words()
    assert base.ledger.words_by_round() == other.ledger.words_by_round()
    assert base.ledger.words_by_kind() == other.ledger.words_by_kind()
    assert base.ledger.words_by_site() == other.ledger.words_by_site()
    assert base.ledger.n_messages() == other.ledger.n_messages()
    if base.outliers is None:
        assert other.outliers is None
    else:
        np.testing.assert_array_equal(base.outliers, other.outliers)
    assert base.metadata["t_allocated"] == other.metadata["t_allocated"]


def _assert_cluster_bytes(base, cluster_result):
    """Wire bytes exist exactly on the cluster run; words never carry them."""
    assert base.ledger.total_bytes() == 0
    assert cluster_result.ledger.total_bytes() > 0
    assert any(v > 0 for v in cluster_result.ledger.bytes_by_round().values())
    summary = cluster_result.ledger.summary()
    assert summary["total_bytes"] == cluster_result.ledger.total_bytes()


class TestClusterProtocolParity:
    def test_kmedian(self, small_workload, cluster3):
        base = partial_kmedian(small_workload.points, 3, 15, n_sites=3, seed=42, backend="serial")
        other = partial_kmedian(small_workload.points, 3, 15, n_sites=3, seed=42, backend=cluster3)
        _assert_same_result(base, other)
        _assert_cluster_bytes(base, other)
        # Uplink payloads crossed a real socket: each message knows its size.
        uplink = [m for m in other.ledger.messages if m.to_coordinator]
        assert uplink and all(m.n_bytes is not None and m.n_bytes > 0 for m in uplink)

    def test_kcenter(self, small_workload, cluster3):
        base = partial_kcenter(small_workload.points, 3, 15, n_sites=3, seed=42, backend="serial")
        other = partial_kcenter(small_workload.points, 3, 15, n_sites=3, seed=42, backend=cluster3)
        _assert_same_result(base, other)
        _assert_cluster_bytes(base, other)

    def test_no_shipping_variant(self, small_instance, cluster3):
        base = distributed_partial_median_no_shipping(small_instance, rng=42, backend="serial")
        other = distributed_partial_median_no_shipping(small_instance, rng=42, backend=cluster3)
        _assert_same_result(base, other)
        _assert_cluster_bytes(base, other)

    def test_uncertain_kmedian(self, small_uncertain_workload, cluster3):
        base = uncertain_partial_kmedian(
            small_uncertain_workload.instance, 3, 6, n_sites=3, seed=42, backend="serial"
        )
        other = uncertain_partial_kmedian(
            small_uncertain_workload.instance, 3, 6, n_sites=3, seed=42, backend=cluster3
        )
        _assert_same_result(base, other)
        _assert_cluster_bytes(base, other)
        assert base.metadata["node_assignment"] == other.metadata["node_assignment"]

    def test_center_g(self, small_uncertain_workload, cluster3):
        base = uncertain_partial_kcenter_g(
            small_uncertain_workload.instance, 3, 6, n_sites=3, seed=42, backend="serial"
        )
        other = uncertain_partial_kcenter_g(
            small_uncertain_workload.instance, 3, 6, n_sites=3, seed=42, backend=cluster3
        )
        _assert_same_result(base, other)
        _assert_cluster_bytes(base, other)
        assert base.metadata["tau_hat"] == other.metadata["tau_hat"]

    def test_cluster_spec_string(self, small_workload, cluster3):
        """``backend="cluster:3"`` (fresh pool) matches the shared instance."""
        base = partial_kmedian(
            small_workload.points, 3, 15, n_sites=3, seed=42, backend=cluster3
        )
        other = partial_kmedian(
            small_workload.points, 3, 15, n_sites=3, seed=42, backend="cluster:3"
        )
        _assert_same_result(base, other)
        # Byte totals are close but not identical across pools: a warm pool's
        # round-1 frames carry eviction notes for the site slots it served
        # before.  Exact repeat-run determinism is asserted in
        # tests/cluster/test_backend.py with fresh pools on both sides.
        assert other.ledger.total_bytes() > 0


class TestRecoveryParity:
    """Kill a runner mid-round: recovery must keep every protocol bit-identical.

    Each protocol gets a fresh three-host pool with a retry policy and a
    deterministic fault plan that kills host 2 right after it returns its
    first site result of round 1.  The surviving run must match serial on
    every axis ``_assert_same_result`` checks, and the wire ledger must show
    the recovery honestly (a recovery event plus ``replay_*`` frame bytes).
    """

    PLAN = "kill host=2 round=1 task=1 when=after"

    def _run_with_kill(self, fn, *args, plan=None, **kwargs):
        backend = ClusterBackend(
            n_hosts=3,
            retry=RetryPolicy(max_retries=1),
            fault_plan=FaultPlan.parse(plan or self.PLAN),
        )
        try:
            result = fn(*args, backend=backend, **kwargs)
        finally:
            backend.close()
        events = result.ledger.wire.summary()["recovery"]
        assert len(events) == 1 and events[0]["host"] == 2
        assert any(
            kind.startswith("replay") and n > 0
            for kind, n in result.ledger.wire.bytes_by_kind().items()
        )
        return result

    def test_kmedian(self, small_workload):
        base = partial_kmedian(small_workload.points, 3, 15, n_sites=3, seed=42, backend="serial")
        other = self._run_with_kill(
            partial_kmedian, small_workload.points, 3, 15, n_sites=3, seed=42
        )
        _assert_same_result(base, other)

    def test_kcenter(self, small_workload):
        base = partial_kcenter(small_workload.points, 3, 15, n_sites=3, seed=42, backend="serial")
        other = self._run_with_kill(
            partial_kcenter, small_workload.points, 3, 15, n_sites=3, seed=42
        )
        _assert_same_result(base, other)

    def test_no_shipping_variant(self, small_instance):
        base = distributed_partial_median_no_shipping(small_instance, rng=42, backend="serial")
        other = self._run_with_kill(
            distributed_partial_median_no_shipping, small_instance, rng=42
        )
        _assert_same_result(base, other)

    def test_uncertain_kmedian(self, small_uncertain_workload):
        base = uncertain_partial_kmedian(
            small_uncertain_workload.instance, 3, 6, n_sites=3, seed=42, backend="serial"
        )
        # Algorithm 3 fans out structure-free tasks (no resident site state),
        # so the kill fires *before* the dispatch: the in-flight task is what
        # recovery re-dispatches (the ``replay_task`` path).
        other = self._run_with_kill(
            uncertain_partial_kmedian, small_uncertain_workload.instance, 3, 6,
            n_sites=3, seed=42, plan="kill host=2 round=1 task=1 when=before",
        )
        _assert_same_result(base, other)
        assert base.metadata["node_assignment"] == other.metadata["node_assignment"]

    def test_center_g(self, small_uncertain_workload):
        base = uncertain_partial_kcenter_g(
            small_uncertain_workload.instance, 3, 6, n_sites=3, seed=42, backend="serial"
        )
        other = self._run_with_kill(
            uncertain_partial_kcenter_g, small_uncertain_workload.instance, 3, 6,
            n_sites=3, seed=42,
        )
        _assert_same_result(base, other)
        assert base.metadata["tau_hat"] == other.metadata["tau_hat"]


class TestAsyncRounds:
    def test_async_rounds_identical_on_cluster(self, small_workload, cluster3):
        base = partial_kmedian(small_workload.points, 3, 15, n_sites=3, seed=42, backend="serial")
        streamed = partial_kmedian(
            small_workload.points, 3, 15, n_sites=3, seed=42,
            backend=cluster3, async_rounds=True,
        )
        _assert_same_result(base, streamed)
        _assert_cluster_bytes(base, streamed)
        assert streamed.metadata["async_rounds"] is True

    def test_async_rounds_identical_on_center_g_cluster(self, small_uncertain_workload, cluster3):
        base = uncertain_partial_kcenter_g(
            small_uncertain_workload.instance, 3, 6, n_sites=3, seed=42, backend="serial"
        )
        streamed = uncertain_partial_kcenter_g(
            small_uncertain_workload.instance, 3, 6, n_sites=3, seed=42,
            backend=cluster3, async_rounds=True,
        )
        _assert_same_result(base, streamed)

    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_async_rounds_identical_in_process(self, small_workload, backend):
        base = partial_kmedian(small_workload.points, 3, 15, n_sites=3, seed=42)
        streamed = partial_kmedian(
            small_workload.points, 3, 15, n_sites=3, seed=42,
            backend=backend, async_rounds=True,
        )
        _assert_same_result(base, streamed)
        assert streamed.ledger.total_bytes() == 0
