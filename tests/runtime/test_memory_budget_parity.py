"""Blocked-vs-dense parity: every protocol must be bit-identical across budgets.

Modeled on ``tests/runtime/test_backend_parity.py``: for a fixed seed, a
protocol run under any ``memory_budget`` — including one small enough to
spill every site's cost matrix to a disk shard, and one smaller than a
single matrix row — returns the same centers, the same cost and the same
ledger word counts as the dense (``memory_budget=None``) run.  Memory
discipline is a pure execution detail.
"""

import numpy as np
import pytest

from repro import (
    partial_kcenter,
    partial_kmeans,
    partial_kmedian,
    uncertain_partial_kcenter_g,
    uncertain_partial_kmedian,
)
from repro.core.algorithm1_modified import distributed_partial_median_no_shipping

# The small workload has 165 points over 3 sites (55 per site), so one row of
# a site cost matrix is 55 * 8 = 440 bytes: 4096 spills matrices to disk
# shards, and 64 is *smaller than one row* (tiles degenerate to row slivers).
BUDGETS = [1 << 30, 4096, 64]


def _assert_same_result(base, other):
    np.testing.assert_array_equal(base.centers, other.centers)
    assert base.cost == other.cost
    assert base.rounds == other.rounds
    assert base.ledger.total_words() == other.ledger.total_words()
    assert base.ledger.words_by_round() == other.ledger.words_by_round()
    assert base.ledger.words_by_kind() == other.ledger.words_by_kind()
    assert base.ledger.n_messages() == other.ledger.n_messages()
    if base.outliers is None:
        assert other.outliers is None
    else:
        np.testing.assert_array_equal(base.outliers, other.outliers)
    assert base.metadata["t_allocated"] == other.metadata["t_allocated"]


class TestDeterministicProtocolParity:
    @pytest.mark.parametrize("budget", BUDGETS)
    def test_kmedian(self, small_workload, budget):
        base = partial_kmedian(small_workload.points, 3, 15, n_sites=3, seed=42)
        other = partial_kmedian(
            small_workload.points, 3, 15, n_sites=3, seed=42, memory_budget=budget
        )
        _assert_same_result(base, other)

    def test_kmedian_small_budget_uses_memmap_shards(self, small_workload):
        result = partial_kmedian(
            small_workload.points, 3, 15, n_sites=3, seed=42, memory_budget=4096
        )
        assert result.metadata["memory_budget"] == 4096
        assert result.metadata["cost_matrix_storage"] == ["memmap"] * 3

    def test_kmedian_generous_budget_stays_dense(self, small_workload):
        result = partial_kmedian(
            small_workload.points, 3, 15, n_sites=3, seed=42, memory_budget=1 << 30
        )
        assert result.metadata["cost_matrix_storage"] == ["dense"] * 3

    @pytest.mark.parametrize("budget", BUDGETS)
    def test_kmeans(self, small_workload, budget):
        base = partial_kmeans(small_workload.points, 3, 15, n_sites=3, seed=42)
        other = partial_kmeans(
            small_workload.points, 3, 15, n_sites=3, seed=42, memory_budget=budget
        )
        _assert_same_result(base, other)

    @pytest.mark.parametrize("budget", BUDGETS)
    def test_kcenter(self, small_workload, budget):
        base = partial_kcenter(small_workload.points, 3, 15, n_sites=3, seed=42)
        other = partial_kcenter(
            small_workload.points, 3, 15, n_sites=3, seed=42, memory_budget=budget
        )
        _assert_same_result(base, other)

    @pytest.mark.parametrize("budget", BUDGETS)
    def test_no_shipping_variant(self, small_instance, budget):
        base = distributed_partial_median_no_shipping(small_instance, rng=42)
        other = distributed_partial_median_no_shipping(
            small_instance, rng=42, memory_budget=budget
        )
        _assert_same_result(base, other)

    def test_string_budget_spec(self, small_workload):
        base = partial_kmedian(small_workload.points, 3, 15, n_sites=3, seed=42)
        other = partial_kmedian(
            small_workload.points, 3, 15, n_sites=3, seed=42, memory_budget="4KB"
        )
        _assert_same_result(base, other)


class TestUncertainProtocolParity:
    @pytest.mark.parametrize("budget", BUDGETS)
    def test_uncertain_kmedian(self, small_uncertain_workload, budget):
        base = uncertain_partial_kmedian(
            small_uncertain_workload.instance, 3, 6, n_sites=3, seed=42
        )
        other = uncertain_partial_kmedian(
            small_uncertain_workload.instance, 3, 6, n_sites=3, seed=42,
            memory_budget=budget,
        )
        _assert_same_result(base, other)
        assert base.metadata["node_assignment"] == other.metadata["node_assignment"]

    @pytest.mark.parametrize("budget", [1 << 30, 2048])
    def test_center_g(self, small_uncertain_workload, budget):
        base = uncertain_partial_kcenter_g(
            small_uncertain_workload.instance, 3, 6, n_sites=3, seed=42
        )
        other = uncertain_partial_kcenter_g(
            small_uncertain_workload.instance, 3, 6, n_sites=3, seed=42,
            memory_budget=budget,
        )
        _assert_same_result(base, other)
        assert base.metadata["tau_hat"] == other.metadata["tau_hat"]


class TestBudgetComposesWithRuntime:
    def test_process_backend_ships_shard_handles(self, small_workload):
        """Memmap shards must cross the worker boundary as handles.

        A site's round-1 state (holding a disk-backed cost matrix) is
        pickled back to the parent and out to a (possibly different) worker
        in round 2; the shard-handle pickling keeps that exchange cheap and
        the results bit-identical to the serial dense run.
        """
        base = partial_kmedian(small_workload.points, 3, 15, n_sites=3, seed=42)
        other = partial_kmedian(
            small_workload.points, 3, 15, n_sites=3, seed=42,
            backend="process", memory_budget=4096,
        )
        _assert_same_result(base, other)
        assert other.metadata["cost_matrix_storage"] == ["memmap"] * 3

    def test_pickle_transport_with_budget(self, small_workload):
        base = partial_kmedian(small_workload.points, 3, 15, n_sites=3, seed=42)
        other = partial_kmedian(
            small_workload.points, 3, 15, n_sites=3, seed=42,
            transport="pickle", memory_budget=4096,
        )
        _assert_same_result(base, other)
