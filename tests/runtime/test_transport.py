"""Tests for the transport policies."""

import numpy as np
import pytest

from repro.runtime import (
    PickleTransport,
    ReferenceTransport,
    resolve_transport,
)


class TestResolveTransport:
    def test_none_is_reference(self):
        assert isinstance(resolve_transport(None), ReferenceTransport)

    def test_names(self):
        assert isinstance(resolve_transport("reference"), ReferenceTransport)
        assert isinstance(resolve_transport("pickle"), PickleTransport)

    def test_instance_passes_through(self):
        policy = PickleTransport()
        assert resolve_transport(policy) is policy

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown transport"):
            resolve_transport("carrier-pigeon")

    def test_bad_type(self):
        with pytest.raises(TypeError):
            resolve_transport(3.14)


class TestReferenceTransport:
    def test_roundtrip_is_identity(self):
        policy = ReferenceTransport()
        payload = {"a": np.arange(5)}
        assert policy.roundtrip(payload) is payload

    def test_counts_messages_not_bytes(self):
        policy = ReferenceTransport()
        policy.roundtrip([1, 2, 3])
        policy.roundtrip("x")
        assert policy.messages_encoded == 2
        assert policy.bytes_encoded == 0


class TestPickleTransport:
    def test_roundtrip_materializes_a_copy(self):
        policy = PickleTransport()
        payload = {"values": np.arange(4, dtype=float), "label": "profile"}
        received = policy.roundtrip(payload)
        assert received is not payload
        assert received["label"] == "profile"
        np.testing.assert_array_equal(received["values"], payload["values"])
        # Mutating the received copy must not leak back to the sender.
        received["values"][0] = 99.0
        assert payload["values"][0] == 0.0

    def test_byte_counters_accumulate(self):
        policy = PickleTransport()
        policy.roundtrip(np.zeros(100))
        first = policy.bytes_encoded
        assert first > 0
        policy.roundtrip(np.zeros(100))
        assert policy.bytes_encoded == 2 * first
        assert policy.messages_encoded == 2
