"""Tests for site tasks and the run_site_tasks scheduler."""

import numpy as np
import pytest

from repro.distributed.instance import DistributedInstance
from repro.distributed.network import StarNetwork
from repro.metrics.euclidean import EuclideanMetric
from repro.runtime import PickleTransport, SiteTask, run_site_tasks, run_tasks
from repro.utils.rng import spawn_rngs

ALL_BACKENDS = ["serial", "thread", "process"]


def _make_network(n_sites=3):
    points = np.arange(6 * n_sites, dtype=float).reshape(-1, 2)
    metric = EuclideanMetric(points)
    shards = [np.arange(i, len(points), n_sites) for i in range(n_sites)]
    instance = DistributedInstance.from_partition(metric, shards, 2, 1, "median")
    return StarNetwork(instance)


def _sum_task(ctx, scale):
    """Report the scaled sum of the site's own coordinates."""
    with ctx.timer.measure("sum"):
        total = float(ctx.local_metric.pairwise(np.arange(ctx.n_points), [0]).sum())
    ctx.state["total"] = total
    ctx.send_to_coordinator("partial_sum", total * scale, words=1)
    return total * scale


def _rng_task(ctx):
    """Draw from the site's stream so its state must advance."""
    value = float(ctx.rng.uniform())
    ctx.state["draw"] = value
    return value


def _echo_inbox_task(ctx):
    return [m.payload for m in ctx.messages("config")]


def _mutate_inbox_task(ctx):
    payload = ctx.messages("config")[0].payload
    payload["mutated"] = True
    return None


def _boom_task(ctx):
    raise RuntimeError(f"site {ctx.site_id} exploded")


class TestRunSiteTasks:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_state_timer_and_ledger_merge_back(self, backend):
        network = _make_network()
        network.next_round()
        results = run_site_tasks(
            network,
            [SiteTask(i, _sum_task, args=(2.0,)) for i in range(network.n_sites)],
            backend=backend,
        )
        # Results come back in site order with the task's return value.
        assert [r.site_id for r in results] == [0, 1, 2]
        for site, result in zip(network.sites, results):
            assert site.state["total"] * 2.0 == result.value
            assert site.timer.count("sum") == 1
        # One charged message per site, replayed in site order.
        messages = network.ledger.filter(kind="partial_sum")
        assert [m.sender for m in messages] == [0, 1, 2]
        assert network.ledger.total_words() == 3.0
        assert len(network.coordinator.inbox) == 3

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_rng_stream_advances_and_returns(self, backend):
        network = _make_network()
        network.next_round()
        rngs = spawn_rngs(123, network.n_sites)
        reference = [rng.uniform() for rng in spawn_rngs(123, network.n_sites)]
        results = run_site_tasks(
            network,
            [SiteTask(i, _rng_task, rng=rngs[i]) for i in range(network.n_sites)],
            backend=backend,
        )
        assert [r.value for r in results] == reference
        # The returned generators continue the per-site streams: a second
        # round must see the draws a serial run would have seen.
        continued = [float(r.rng.uniform()) for r in results]
        fresh = spawn_rngs(123, network.n_sites)
        for rng in fresh:
            rng.uniform()
        assert continued == [float(rng.uniform()) for rng in fresh]

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_inbox_is_delivered_and_drained(self, backend):
        network = _make_network()
        network.next_round()
        for i in range(network.n_sites):
            network.send_to_site(i, "config", {"offset": i}, words=1)
        results = run_site_tasks(
            network,
            [SiteTask(i, _echo_inbox_task) for i in range(network.n_sites)],
            backend=backend,
        )
        assert [r.value for r in results] == [[{"offset": i}] for i in range(network.n_sites)]
        assert all(not site.inbox for site in network.sites)

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_original_exception_surfaces(self, backend):
        network = _make_network()
        network.next_round()
        with pytest.raises(RuntimeError, match="site 1 exploded"):
            run_site_tasks(
                network,
                [SiteTask(i, _boom_task if i == 1 else _echo_inbox_task) for i in range(3)],
                backend=backend,
            )

    def test_rejects_unknown_site(self):
        network = _make_network()
        with pytest.raises(ValueError, match="unknown site id"):
            run_site_tasks(network, [SiteTask(99, _rng_task)])

    def test_rejects_duplicate_site(self):
        network = _make_network()
        with pytest.raises(ValueError, match="multiple tasks"):
            run_site_tasks(network, [SiteTask(0, _rng_task), SiteTask(0, _rng_task)])

    def test_pickle_transport_isolates_inbox_payloads(self):
        network = _make_network()
        network.next_round()
        original = {"mutated": False}
        network.send_to_site(0, "config", original, words=1)
        run_site_tasks(
            network,
            [SiteTask(0, _mutate_inbox_task)],
            backend="serial",
            transport=PickleTransport(),
        )
        # The site mutated its materialized copy, not the coordinator's object.
        assert original["mutated"] is False


def _double(payload):
    return payload * 2


def _fail_on_two(payload):
    if payload == 2:
        raise KeyError("payload two")
    return payload


class TestRunTasks:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_plain_map(self, backend):
        assert run_tasks(_double, [1, 2, 3], backend=backend) == [2, 4, 6]

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_exception_propagates(self, backend):
        with pytest.raises(KeyError, match="payload two"):
            run_tasks(_fail_on_two, [1, 2, 3], backend=backend)
