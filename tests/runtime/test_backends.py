"""Tests for the execution backends."""

import os

import pytest

from repro.runtime import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
    backend_scope,
    default_worker_count,
    effective_cpu_count,
    resolve_backend,
)

ALL_BACKENDS = ["serial", "thread", "process"]


class TestEffectiveCpuCount:
    def test_affinity_mask_wins_over_cpu_count(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 64)
        monkeypatch.setattr(
            os, "sched_getaffinity", lambda pid: {0, 1, 2, 3}, raising=False
        )
        assert effective_cpu_count() == 4

    def test_falls_back_to_cpu_count_without_affinity(self, monkeypatch):
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        assert effective_cpu_count() == 8

    def test_clamps_to_at_least_one(self, monkeypatch):
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: set(), raising=False)
        assert effective_cpu_count() == 1


def _square(x):
    return x * x


def _explode(x):
    raise ValueError(f"site task {x} failed on purpose")


class TestResolveBackend:
    def test_none_is_serial(self):
        assert isinstance(resolve_backend(None), SerialBackend)

    @pytest.mark.parametrize(
        "name, cls",
        [("serial", SerialBackend), ("thread", ThreadPoolBackend), ("process", ProcessPoolBackend)],
    )
    def test_names(self, name, cls):
        backend = resolve_backend(name)
        assert isinstance(backend, cls)
        assert backend.name == name
        backend.close()

    def test_names_are_case_insensitive(self):
        assert isinstance(resolve_backend("SERIAL"), SerialBackend)

    def test_instance_passes_through(self):
        backend = SerialBackend()
        assert resolve_backend(backend) is backend

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("gpu")

    def test_bad_type(self):
        with pytest.raises(TypeError):
            resolve_backend(42)

    def test_bad_worker_count(self):
        with pytest.raises(ValueError):
            ThreadPoolBackend(max_workers=0)

    def test_default_worker_count_positive(self):
        assert default_worker_count() >= 1


class TestMapOrdered:
    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_results_in_submission_order(self, name):
        with backend_scope(name) as backend:
            assert backend.map_ordered(_square, list(range(10))) == [x * x for x in range(10)]

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_empty_batch(self, name):
        with backend_scope(name) as backend:
            assert backend.map_ordered(_square, []) == []

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_single_item(self, name):
        with backend_scope(name) as backend:
            assert backend.map_ordered(_square, [7]) == [49]

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_original_exception_surfaces(self, name):
        with backend_scope(name) as backend:
            with pytest.raises(ValueError, match="site task 3 failed on purpose"):
                backend.map_ordered(_explode, [3, 4])

    def test_pool_is_reused_across_batches(self):
        backend = ThreadPoolBackend(max_workers=2)
        try:
            backend.map_ordered(_square, [1, 2, 3])
            pool = backend._executor
            backend.map_ordered(_square, [4, 5, 6])
            assert backend._executor is pool
        finally:
            backend.close()
        assert backend._executor is None

    def test_close_is_idempotent(self):
        backend = ThreadPoolBackend(max_workers=2)
        backend.map_ordered(_square, [1, 2])
        backend.close()
        backend.close()


class TestBackendScope:
    def test_owned_backend_is_closed(self):
        with backend_scope("thread") as backend:
            backend.map_ordered(_square, [1, 2, 3])
            assert backend._executor is not None
        assert backend._executor is None

    def test_caller_owned_backend_stays_open(self):
        backend = ThreadPoolBackend(max_workers=2)
        try:
            with backend_scope(backend) as scoped:
                assert scoped is backend
                scoped.map_ordered(_square, [1, 2, 3])
            assert backend._executor is not None  # still warm for the next round
        finally:
            backend.close()

    def test_context_manager_protocol(self):
        with ThreadPoolBackend(max_workers=2) as backend:
            assert isinstance(backend, ExecutionBackend)
            backend.map_ordered(_square, [1, 2])
        assert backend._executor is None
