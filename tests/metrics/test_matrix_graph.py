"""Tests for MatrixMetric and GraphMetric."""

import networkx as nx
import numpy as np
import pytest

from repro.metrics import GraphMetric, MatrixMetric


def _valid_matrix():
    return np.asarray(
        [
            [0.0, 1.0, 2.0],
            [1.0, 0.0, 1.5],
            [2.0, 1.5, 0.0],
        ]
    )


class TestMatrixMetric:
    def test_roundtrip(self):
        metric = MatrixMetric(_valid_matrix())
        assert len(metric) == 3
        assert metric.distance(0, 2) == pytest.approx(2.0)
        assert np.allclose(metric.full_matrix(), _valid_matrix())

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            MatrixMetric(np.ones((2, 3)))

    def test_rejects_asymmetric(self):
        bad = _valid_matrix()
        bad[0, 1] = 5.0
        with pytest.raises(ValueError):
            MatrixMetric(bad)

    def test_rejects_nonzero_diagonal(self):
        bad = _valid_matrix()
        bad[1, 1] = 0.3
        with pytest.raises(ValueError):
            MatrixMetric(bad)

    def test_rejects_negative(self):
        bad = _valid_matrix()
        bad[0, 2] = bad[2, 0] = -1.0
        with pytest.raises(ValueError):
            MatrixMetric(bad)

    def test_validate_flag_skips_checks(self):
        bad = _valid_matrix()
        bad[0, 1] = 5.0
        metric = MatrixMetric(bad, validate=False)  # trusted input path
        assert metric.distance(0, 1) == pytest.approx(5.0)

    def test_triangle_check(self):
        assert MatrixMetric(_valid_matrix()).check_triangle_inequality()
        bad = np.asarray(
            [
                [0.0, 1.0, 10.0],
                [1.0, 0.0, 1.0],
                [10.0, 1.0, 0.0],
            ]
        )
        assert not MatrixMetric(bad).check_triangle_inequality()

    def test_words_per_point(self):
        assert MatrixMetric(_valid_matrix(), words_per_point=4).words_per_point == 4


class TestGraphMetric:
    def _path_graph(self):
        g = nx.Graph()
        g.add_edge("a", "b", weight=1.0)
        g.add_edge("b", "c", weight=2.0)
        g.add_edge("c", "d", weight=3.0)
        return g

    def test_shortest_path_distances(self):
        metric = GraphMetric(self._path_graph())
        a, d = metric.node_index("a"), metric.node_index("d")
        assert metric.distance(a, d) == pytest.approx(6.0)

    def test_metric_properties(self):
        metric = GraphMetric(self._path_graph())
        mat = metric.full_matrix()
        assert np.allclose(np.diag(mat), 0.0)
        assert np.allclose(mat, mat.T)

    def test_disconnected_rejected(self):
        g = nx.Graph()
        g.add_edge(0, 1, weight=1.0)
        g.add_node(2)
        with pytest.raises(ValueError):
            GraphMetric(g)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            GraphMetric(nx.Graph())

    def test_nodes_in_index_order(self):
        metric = GraphMetric(self._path_graph())
        assert len(metric.nodes) == len(metric)

    def test_pairwise_block(self):
        metric = GraphMetric(self._path_graph())
        block = metric.pairwise([0, 1], [2, 3])
        assert block.shape == (2, 2)
