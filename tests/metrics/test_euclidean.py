"""Tests for the Euclidean metric."""

import numpy as np
import pytest

from repro.metrics import EuclideanMetric


class TestEuclideanMetric:
    def test_len_and_dim(self, tiny_points):
        metric = EuclideanMetric(tiny_points)
        assert len(metric) == tiny_points.shape[0]
        assert metric.dim == 2

    def test_distance_matches_numpy(self, tiny_points):
        metric = EuclideanMetric(tiny_points)
        for i in range(len(metric)):
            for j in range(len(metric)):
                expected = float(np.linalg.norm(tiny_points[i] - tiny_points[j]))
                assert metric.distance(i, j) == pytest.approx(expected, abs=1e-9)

    def test_pairwise_block_matches_individual(self, tiny_points):
        metric = EuclideanMetric(tiny_points)
        rows, cols = [0, 2, 4], [1, 3]
        block = metric.pairwise(rows, cols)
        assert block.shape == (3, 2)
        for a, i in enumerate(rows):
            for b, j in enumerate(cols):
                assert block[a, b] == pytest.approx(metric.distance(i, j), abs=1e-9)

    def test_distances_from_matches_pairwise(self, tiny_points):
        metric = EuclideanMetric(tiny_points)
        cols = np.arange(len(metric))
        row = metric.distances_from(3, cols)
        block = metric.pairwise([3], cols)[0]
        assert np.allclose(row, block)

    def test_self_distance_zero(self, tiny_metric):
        for i in range(len(tiny_metric)):
            assert tiny_metric.distance(i, i) == pytest.approx(0.0, abs=1e-9)

    def test_symmetry(self, tiny_metric):
        mat = tiny_metric.full_matrix()
        assert np.allclose(mat, mat.T)

    def test_words_per_point_is_dimension(self, tiny_points):
        assert EuclideanMetric(tiny_points).words_per_point == 2

    def test_high_dim_no_negative_sqrt(self, rng):
        # Near-duplicate points stress the a^2+b^2-2ab cancellation.
        base = rng.normal(size=(50, 16))
        pts = np.vstack([base, base + 1e-9])
        metric = EuclideanMetric(pts)
        mat = metric.full_matrix()
        assert np.all(np.isfinite(mat))
        assert np.all(mat >= 0)

    def test_from_random(self, rng):
        metric = EuclideanMetric.from_random(20, 3, rng)
        assert len(metric) == 20
        assert metric.dim == 3

    def test_diameter_and_spread(self, tiny_metric, tiny_points):
        diffs = tiny_points[:, None, :] - tiny_points[None, :, :]
        expected = float(np.sqrt((diffs**2).sum(axis=-1)).max())
        assert tiny_metric.diameter() == pytest.approx(expected, rel=1e-9)
        assert tiny_metric.spread() > 1.0

    def test_triangle_inequality_on_random_points(self, rng):
        metric = EuclideanMetric(rng.normal(size=(30, 3)))
        mat = metric.full_matrix()
        for m in range(len(metric)):
            assert np.all(mat <= mat[:, [m]] + mat[[m], :] + 1e-9)
