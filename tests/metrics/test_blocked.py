"""Unit tests for the blocked, memory-budgeted metric layer.

The acceptance bar (mirroring ``tests/runtime/test_backend_parity.py`` for
backends): every blocked computation must be *bitwise* identical to its
dense counterpart for every memory budget, including budgets smaller than a
single row.
"""

import pickle

import numpy as np
import pytest

from repro.metrics import EuclideanMetric, MatrixMetric, build_cost_matrix
from repro.metrics.blocked import (
    MemmapCostShard,
    argmin_per_row,
    contiguous_slice,
    count_within,
    iter_blocks,
    materialize,
    materialize_rows,
    memmap_handle,
    open_memmap,
    reduce_max,
    reduce_min_per_row,
    reduce_min_positive,
    resolve_memory_budget,
)

BUDGETS = [None, 1 << 30, 4096, 256, 64, 8]  # 64 and 8 are below one row


@pytest.fixture(scope="module")
def euclid():
    rng = np.random.default_rng(7)
    return EuclideanMetric(rng.normal(size=(83, 3)) * 5.0)


@pytest.fixture(scope="module")
def matrix_metric(euclid):
    return MatrixMetric(euclid.full_matrix(), validate=False)


class TestBudgetParsing:
    def test_none_passthrough(self):
        assert resolve_memory_budget(None) is None

    @pytest.mark.parametrize(
        "spec,expected",
        [(4096, 4096), (4096.0, 4096), ("4096", 4096), ("4KB", 4 * 2**10),
         ("64MB", 64 * 2**20), ("2GiB", 2 * 2**30), ("1 mb", 2**20)],
    )
    def test_parsing(self, spec, expected):
        assert resolve_memory_budget(spec) == expected

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            resolve_memory_budget("lots")

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            resolve_memory_budget(0)


class TestContiguousSlice:
    def test_contiguous_run(self):
        assert contiguous_slice(np.arange(3, 9)) == slice(3, 9)

    def test_single_index(self):
        assert contiguous_slice(np.asarray([5])) == slice(5, 6)

    @pytest.mark.parametrize("idx", [[3, 5, 6], [4, 3, 2], [1, 1, 2], []])
    def test_non_contiguous(self, idx):
        assert contiguous_slice(np.asarray(idx, dtype=int)) is None


class TestIterBlocks:
    @pytest.mark.parametrize("budget", BUDGETS[1:])
    def test_tiles_cover_and_respect_budget(self, euclid, budget):
        dense = euclid.full_matrix()
        assembled = np.full_like(dense, np.nan)
        for rs, cs, block in iter_blocks(euclid, memory_budget=budget):
            assert block.nbytes <= max(budget, block.shape[0] * 8)  # >= one element per row
            if budget >= dense.shape[1] * 8:
                assert block.nbytes <= budget
            assembled[rs, cs] = block
        np.testing.assert_array_equal(assembled, dense)

    def test_budget_none_is_one_tile(self, euclid):
        tiles = list(iter_blocks(euclid))
        assert len(tiles) == 1
        np.testing.assert_array_equal(tiles[0][2], euclid.full_matrix())

    def test_array_source_and_subsets(self, euclid):
        dense = euclid.full_matrix()
        rows, cols = [4, 9, 2], [0, 7]
        for source in (euclid, dense):
            tiles = list(iter_blocks(source, rows, cols, memory_budget=16))
            assembled = np.empty((3, 2))
            for rs, cs, block in tiles:
                assembled[rs, cs] = block
            np.testing.assert_array_equal(assembled, dense[np.ix_(rows, cols)])


class TestBlockedReductions:
    @pytest.mark.parametrize("budget", BUDGETS)
    def test_reduce_max_bitwise(self, euclid, matrix_metric, budget):
        for metric in (euclid, matrix_metric):
            dense = metric.full_matrix()
            assert reduce_max(metric, memory_budget=budget) == float(dense.max())

    @pytest.mark.parametrize("budget", BUDGETS)
    def test_reduce_min_positive_bitwise(self, euclid, budget):
        dense = euclid.full_matrix()
        expected = float(dense[dense > 0].min())
        assert reduce_min_positive(euclid, memory_budget=budget) == expected

    def test_min_positive_all_zero(self):
        metric = MatrixMetric(np.zeros((4, 4)))
        assert reduce_min_positive(metric, memory_budget=16) == 0.0

    @pytest.mark.parametrize("budget", [None, 1 << 20, 64])
    def test_empty_slab_returns_defaults(self, euclid, budget):
        """An empty rows/cols axis must hit the documented defaults, not a
        ZeroDivisionError in the tile-shape arithmetic."""
        assert reduce_max(euclid, [], [], memory_budget=budget) == 0.0
        assert reduce_min_positive(euclid, [], None, memory_budget=budget) == 0.0
        assert list(iter_blocks(np.empty((0, 0)), memory_budget=budget)) == []
        assert reduce_max(np.empty((0, 5)), memory_budget=budget) == 0.0

    @pytest.mark.parametrize("budget", BUDGETS)
    def test_reduce_min_per_row_bitwise(self, euclid, budget):
        dense = euclid.full_matrix()
        cols = np.asarray([3, 1, 17, 40, 8])
        got = reduce_min_per_row(euclid, None, cols, memory_budget=budget)
        np.testing.assert_array_equal(got, dense[:, cols].min(axis=1))

    @pytest.mark.parametrize("budget", BUDGETS)
    def test_argmin_per_row_bitwise(self, euclid, budget):
        dense = euclid.full_matrix()
        cols = np.asarray([3, 1, 17, 40, 8])
        values, positions = argmin_per_row(euclid, None, cols, memory_budget=budget)
        block = dense[:, cols]
        np.testing.assert_array_equal(positions, np.argmin(block, axis=1))
        np.testing.assert_array_equal(values, block.min(axis=1))

    @pytest.mark.parametrize("budget", [None, 64, 8])
    def test_argmin_ties_first_occurrence(self, budget):
        # Duplicate minima in every row: ties must resolve like np.argmin.
        mat = np.zeros((3, 6))
        mat[:, [1, 4]] = -1.0
        values, positions = argmin_per_row(mat, memory_budget=budget)
        np.testing.assert_array_equal(positions, np.full(3, 1))
        np.testing.assert_array_equal(values, np.full(3, -1.0))

    @pytest.mark.parametrize("budget", BUDGETS)
    def test_count_within_weighted_bitwise(self, euclid, budget):
        dense = euclid.full_matrix()
        w = np.random.default_rng(3).random(dense.shape[0])
        threshold = float(np.median(dense))
        got = count_within(euclid, threshold, weights=w, memory_budget=budget)
        # The canonical accumulation is column-contiguous (Fortran order);
        # it is what every budget, including None, must reproduce bitwise.
        expected = np.add.reduce(
            np.multiply(w[:, None], dense <= threshold, order="F"), axis=0
        )
        np.testing.assert_array_equal(got, expected)
        assert np.allclose(got, (w[:, None] * (dense <= threshold)).sum(axis=0))

    def test_count_within_unweighted(self, euclid):
        dense = euclid.full_matrix()
        threshold = float(np.median(dense))
        got = count_within(euclid, threshold, memory_budget=128)
        np.testing.assert_array_equal(got, (dense <= threshold).sum(axis=0).astype(float))


class TestMetricHelpersBlocked:
    @pytest.mark.parametrize("budget", BUDGETS)
    def test_diameter_spread_budget_invariant(self, euclid, budget):
        dense = euclid.full_matrix()
        assert euclid.diameter(memory_budget=budget) == float(dense.max())
        assert euclid.min_positive_distance(memory_budget=budget) == float(dense[dense > 0].min())
        expected_spread = float(dense.max()) / float(dense[dense > 0].min())
        assert euclid.spread(memory_budget=budget) == expected_spread

    def test_subset_metric_helpers(self, euclid):
        sub = euclid.subset([2, 11, 30, 4, 55])
        dense = sub.full_matrix()
        assert sub.diameter(memory_budget=32) == float(dense.max())
        assert sub.diameter() == sub.diameter(memory_budget=16)

    def test_degenerate_sizes(self, euclid):
        assert euclid.diameter([3]) == 0.0
        assert euclid.min_positive_distance([]) == 0.0


class TestEuclideanTilingInvariance:
    def test_pairwise_subblock_equals_slice(self, euclid):
        """The kernel contract the whole blocked layer rests on."""
        full = euclid.full_matrix()
        n = len(euclid)
        for chunk in (1, 7, 30):
            for r0 in range(0, n, chunk):
                rows = np.arange(r0, min(r0 + chunk, n))
                np.testing.assert_array_equal(
                    euclid.pairwise(rows, np.arange(n)), full[rows]
                )
        cols = np.arange(13, 29)
        np.testing.assert_array_equal(
            euclid.pairwise(np.arange(n), cols), full[:, cols]
        )

    def test_identical_points_exact_zero(self):
        pts = np.vstack([np.ones((2, 4)), np.zeros((1, 4))])
        metric = EuclideanMetric(pts)
        assert metric.pairwise([0], [1])[0, 0] == 0.0


class TestMatrixMetricAliasing:
    def test_full_matrix_is_readonly_view(self, matrix_metric):
        mat = matrix_metric.full_matrix()
        assert np.shares_memory(mat, matrix_metric.matrix)
        with pytest.raises(ValueError):
            mat[0, 0] = 1.0

    def test_contiguous_pairwise_is_view(self, matrix_metric):
        block = matrix_metric.pairwise(np.arange(2, 9), np.arange(4, 11))
        assert np.shares_memory(block, matrix_metric.matrix)
        np.testing.assert_array_equal(block, matrix_metric.matrix[2:9, 4:11])

    def test_fancy_pairwise_matches(self, matrix_metric):
        rows, cols = [5, 2, 9], [1, 8]
        np.testing.assert_array_equal(
            matrix_metric.pairwise(rows, cols),
            matrix_metric.matrix[np.ix_(rows, cols)],
        )

    def test_negative_indices_keep_fancy_semantics(self, matrix_metric, euclid):
        """contiguous_slice must not turn [-1] into the empty slice(-1, 0)."""
        assert contiguous_slice(np.asarray([-1])) is None
        assert contiguous_slice(np.asarray([-2, -1])) is None
        n = len(matrix_metric)
        np.testing.assert_array_equal(
            matrix_metric.pairwise([0, 1], [-1]),
            matrix_metric.matrix[np.ix_([0, 1], [n - 1])],
        )
        np.testing.assert_array_equal(
            euclid.pairwise([0], [-1]), euclid.pairwise([0], [len(euclid) - 1])
        )


class TestMaterialize:
    def test_in_ram_when_it_fits(self, euclid, tmp_path):
        dense = euclid.full_matrix()
        got = materialize(euclid, memory_budget=1 << 30, workdir=str(tmp_path))
        assert not isinstance(got, np.memmap)
        np.testing.assert_array_equal(got, dense)

    @pytest.mark.parametrize("budget", [4096, 64])
    def test_spills_to_memmap_bitwise(self, euclid, tmp_path, budget):
        dense = euclid.full_matrix()
        got = materialize(euclid, memory_budget=budget, workdir=str(tmp_path))
        assert isinstance(got, np.memmap)
        assert str(got.filename).startswith(str(tmp_path))
        np.testing.assert_array_equal(np.asarray(got), dense)
        with pytest.raises(ValueError):
            got[0, 0] = 1.0  # read-only by contract

    def test_transform_rows(self, euclid, tmp_path):
        offsets = np.arange(len(euclid), dtype=float)
        dense = euclid.full_matrix() ** 2 + offsets[:, None]
        got = materialize(
            euclid,
            transform=lambda block, rs: block * block + offsets[rs][:, None],
            memory_budget=256,
            workdir=str(tmp_path),
        )
        np.testing.assert_array_equal(np.asarray(got), dense)

    def test_materialize_rows_shape_check(self):
        with pytest.raises(ValueError):
            materialize_rows(lambda rs: np.zeros((rs.stop - rs.start, 3)), 4, 5)


class TestBuildCostMatrixBudget:
    @pytest.mark.parametrize("objective", ["median", "means", "center"])
    @pytest.mark.parametrize("budget", [None, 1 << 30, 512, 16])
    def test_bitwise_parity(self, euclid, tmp_path, objective, budget):
        n = len(euclid)
        dense = build_cost_matrix(euclid, range(n), range(n), objective)
        got = build_cost_matrix(
            euclid, range(n), range(n), objective,
            memory_budget=budget, workdir=str(tmp_path),
        )
        np.testing.assert_array_equal(np.asarray(got), dense)

    def test_spill_only_beyond_budget(self, euclid, tmp_path):
        n = len(euclid)
        fits = build_cost_matrix(
            euclid, range(n), range(n), "median",
            memory_budget=n * n * 8, workdir=str(tmp_path),
        )
        spilled = build_cost_matrix(
            euclid, range(n), range(n), "median",
            memory_budget=n * n * 8 - 1, workdir=str(tmp_path),
        )
        assert not isinstance(fits, np.memmap)
        assert isinstance(spilled, np.memmap)


class TestMemmapCostShard:
    def _make(self, tmp_path, rng):
        data = rng.random((37, 23))
        shard = MemmapCostShard.create(data.shape, workdir=str(tmp_path))
        shard.write_rows(slice(0, 20), data[:20])
        shard.write_rows(slice(20, 37), data[20:])
        shard.finalize()
        return shard, data

    def test_round_trip(self, tmp_path, rng):
        shard, data = self._make(tmp_path, rng)
        np.testing.assert_array_equal(np.asarray(shard.matrix), data)
        assert shard.nbytes == data.nbytes

    def test_pickles_as_handle_not_data(self, tmp_path, rng):
        shard, data = self._make(tmp_path, rng)
        blob = pickle.dumps(shard)
        # The whole point: a shard handle costs a filename, not n^2 bytes.
        assert len(blob) < 500 < data.nbytes
        clone = pickle.loads(blob)
        np.testing.assert_array_equal(np.asarray(clone.matrix), data)

    def test_memmap_handle_reopen(self, tmp_path, rng):
        shard, data = self._make(tmp_path, rng)
        handle = memmap_handle(shard.matrix)
        assert handle is not None
        path, shape, dtype = handle
        np.testing.assert_array_equal(np.asarray(open_memmap(path, shape, dtype)), data)
        assert memmap_handle(data) is None

    def test_handle_detected_through_views(self, tmp_path, rng):
        shard, data = self._make(tmp_path, rng)
        view = np.asarray(shard.matrix)  # base-class view of the memmap
        assert memmap_handle(view) is not None

    def test_no_handle_for_partial_views(self, tmp_path, rng):
        """A sliced/offset view must NOT produce a handle — reopening by
        (path, shape) would silently read the wrong rows."""
        shard, data = self._make(tmp_path, rng)
        mm = shard.matrix
        assert memmap_handle(mm[2:5]) is None
        assert memmap_handle(mm[::2]) is None
        assert memmap_handle(mm[:, 1:]) is None
        assert memmap_handle(mm[:]) is not None  # the full view is fine

    def test_unlink(self, tmp_path, rng):
        shard, _ = self._make(tmp_path, rng)
        shard.unlink()
        import os
        assert not os.path.exists(shard.path)

    def test_write_after_finalize_raises(self, tmp_path, rng):
        shard, _ = self._make(tmp_path, rng)
        with pytest.raises(RuntimeError):
            shard.write_rows(slice(0, 1), np.zeros((1, 23)))
