"""Tests for the truncated distance L_tau (Definition 5.7)."""

import numpy as np
import pytest

from repro.metrics import EuclideanMetric, TruncatedDistance, truncate_matrix


class TestTruncateMatrix:
    def test_elementwise(self):
        d = np.asarray([[0.0, 1.0], [3.0, 0.5]])
        out = truncate_matrix(d, 1.0)
        assert np.allclose(out, [[0.0, 0.0], [2.0, 0.0]])

    def test_tau_zero_identity(self):
        d = np.asarray([[0.0, 2.0], [2.0, 0.0]])
        assert np.allclose(truncate_matrix(d, 0.0), d)

    def test_negative_tau_rejected(self):
        with pytest.raises(ValueError):
            truncate_matrix(np.zeros((2, 2)), -0.1)


class TestTruncatedDistance:
    def test_matches_definition(self, tiny_metric):
        tau = 5.0
        trunc = TruncatedDistance(tiny_metric, tau)
        for i in range(len(tiny_metric)):
            for j in range(len(tiny_metric)):
                expected = max(tiny_metric.distance(i, j) - tau, 0.0)
                assert trunc.distance(i, j) == pytest.approx(expected)

    def test_pairwise(self, tiny_metric):
        trunc = TruncatedDistance(tiny_metric, 2.0)
        block = trunc.pairwise([0, 6], [1, 3])
        assert block.shape == (2, 2)
        assert np.all(block >= 0)

    def test_rescaled(self, tiny_metric):
        trunc = TruncatedDistance(tiny_metric, 2.0)
        assert trunc.rescaled(3.0).tau == pytest.approx(6.0)
        assert trunc.rescaled(3.0).base is tiny_metric

    def test_relaxed_triangle_inequality(self, rng):
        # L_tau(u1,u2) + L_tau(u2,u3) >= L_{2 tau}(u1,u3) (used in Lemma 5.12).
        metric = EuclideanMetric(rng.normal(scale=5.0, size=(20, 2)))
        tau = 1.0
        l_tau = truncate_matrix(metric.full_matrix(), tau)
        l_2tau = truncate_matrix(metric.full_matrix(), 2 * tau)
        n = len(metric)
        for mid in range(n):
            lhs = l_tau[:, [mid]] + l_tau[[mid], :]
            assert np.all(lhs >= l_2tau - 1e-9)

    def test_not_a_metric_space_subclass(self, tiny_metric):
        from repro.metrics import MetricSpace

        assert not isinstance(TruncatedDistance(tiny_metric, 1.0), MetricSpace)

    def test_negative_tau_rejected(self, tiny_metric):
        with pytest.raises(ValueError):
            TruncatedDistance(tiny_metric, -1.0)
