"""Tests for the MetricSpace defaults and SubsetMetric view."""

import numpy as np
import pytest

from repro.metrics import EuclideanMetric, SubsetMetric


class TestSubsetMetric:
    def test_reindexing(self, tiny_metric):
        subset = tiny_metric.subset([3, 4, 5])
        assert len(subset) == 3
        assert subset.distance(0, 1) == pytest.approx(tiny_metric.distance(3, 4))

    def test_to_parent(self, tiny_metric):
        subset = tiny_metric.subset([6, 2, 0])
        assert np.array_equal(subset.to_parent([0, 2]), [6, 0])

    def test_pairwise_matches_parent(self, tiny_metric):
        indices = [1, 3, 6]
        subset = tiny_metric.subset(indices)
        sub_block = subset.pairwise(range(3), range(3))
        parent_block = tiny_metric.pairwise(indices, indices)
        assert np.allclose(sub_block, parent_block)

    def test_words_per_point_inherited(self, tiny_metric):
        assert tiny_metric.subset([0, 1]).words_per_point == tiny_metric.words_per_point

    def test_invalid_indices_rejected(self, tiny_metric):
        with pytest.raises(IndexError):
            tiny_metric.subset([0, 99])

    def test_nested_subsets(self, tiny_metric):
        outer = tiny_metric.subset([0, 2, 4, 6])
        inner = outer.subset([1, 3])
        assert inner.distance(0, 1) == pytest.approx(tiny_metric.distance(2, 6))


class TestMetricDefaults:
    def test_validate_indices_empty_ok(self, tiny_metric):
        out = tiny_metric.validate_indices([])
        assert out.size == 0

    def test_min_positive_distance_excludes_zero(self):
        pts = np.asarray([[0.0], [0.0], [5.0]])
        metric = EuclideanMetric(pts)
        assert metric.min_positive_distance() == pytest.approx(5.0)

    def test_single_point_diameter_zero(self):
        metric = EuclideanMetric(np.asarray([[1.0, 2.0]]))
        assert metric.diameter() == 0.0
        assert metric.spread() == 1.0

    def test_subset_diameter(self, tiny_metric):
        # Restricted to the first cluster, the diameter is small.
        assert tiny_metric.diameter([0, 1, 2]) < 2.0
