"""Tests for the fused reduction planner (``repro.metrics.plan``).

The acceptance bar mirrors ``tests/metrics/test_blocked.py``: every fused
plan must be *bitwise* identical to the equivalent sequence of standalone
blocked reductions — for dense arrays, budgeted tiles, memmap-backed shards,
and with the prefetcher on or off.  On top of parity, the pass-count tests
prove (via :class:`~repro.metrics.plan.CountingSource`, deterministically —
no wall-clock) that a fused plan reads each tile exactly once where the
standalone sequence reads the slab once per reduction.
"""

import numpy as np
import pytest

from repro.metrics import EuclideanMetric
from repro.metrics.blocked import (
    MemmapCostShard,
    argmin_per_row,
    count_within,
    reduce_max,
    reduce_min_per_row,
    reduce_min_positive,
)
from repro.metrics.plan import (
    DEFAULT_CACHE_TARGET,
    CountingSource,
    ReductionPlan,
    effective_tile_bytes,
    is_memmap_backed,
)

BUDGETS = [None, 1 << 30, 4096, 256, 64, 8]  # 64 and 8 are below one row


@pytest.fixture(scope="module")
def matrix():
    rng = np.random.default_rng(17)
    base = rng.normal(size=(61, 37)) * 4.0
    return np.abs(base)


@pytest.fixture(scope="module")
def euclid():
    rng = np.random.default_rng(23)
    return EuclideanMetric(rng.normal(size=(53, 3)) * 5.0)


@pytest.fixture()
def memmap_matrix(matrix, tmp_path):
    shard = MemmapCostShard.create(matrix.shape, workdir=str(tmp_path))
    shard.write_rows(slice(0, matrix.shape[0]), matrix)
    return shard.finalize()


def _full_plan(source, *, radii, weights, budget, prefetch):
    plan = ReductionPlan(source, memory_budget=budget, prefetch=prefetch)
    handles = {
        "max": plan.add_max(),
        "min_positive": plan.add_min_positive(),
        "min_per_row": plan.add_min_per_row(),
        "argmin": plan.add_argmin_per_row(),
        "count": plan.add_count_within(radii, weights=weights),
        "count_scalar": plan.add_count_within(float(radii[0]), weights=weights),
    }
    plan.execute()
    return plan, handles


class TestEffectiveTileBytes:
    def test_none_none(self):
        assert effective_tile_bytes(None, None) is None

    def test_budget_only(self):
        assert effective_tile_bytes(1024, None) == 1024

    def test_cache_only(self):
        assert effective_tile_bytes(None) == DEFAULT_CACHE_TARGET

    def test_min_of_both(self):
        assert effective_tile_bytes(1 << 30) == DEFAULT_CACHE_TARGET
        assert effective_tile_bytes(512) == 512

    def test_string_budget(self):
        assert effective_tile_bytes("1KB", None) == 1024


class TestFusedParity:
    """Fused results must be bitwise equal to the standalone sequence."""

    @pytest.mark.parametrize("budget", BUDGETS)
    @pytest.mark.parametrize("prefetch", [False, True])
    def test_array_source(self, matrix, budget, prefetch):
        rng = np.random.default_rng(5)
        weights = rng.uniform(0.1, 3.0, size=matrix.shape[0])
        radii = np.quantile(matrix, [0.2, 0.5, 0.9])
        plan, handles = _full_plan(
            matrix, radii=radii, weights=weights, budget=budget, prefetch=prefetch
        )
        assert handles["max"].value == reduce_max(matrix, memory_budget=budget)
        assert handles["min_positive"].value == reduce_min_positive(matrix, memory_budget=budget)
        np.testing.assert_array_equal(
            handles["min_per_row"].value, reduce_min_per_row(matrix, memory_budget=budget)
        )
        values, positions = handles["argmin"].value
        exp_values, exp_positions = argmin_per_row(matrix, memory_budget=budget)
        np.testing.assert_array_equal(values, exp_values)
        np.testing.assert_array_equal(positions, exp_positions)
        for pos, radius in enumerate(radii):
            np.testing.assert_array_equal(
                handles["count"].value[pos],
                count_within(matrix, float(radius), weights=weights, memory_budget=budget),
            )
        np.testing.assert_array_equal(
            handles["count_scalar"].value,
            count_within(matrix, float(radii[0]), weights=weights, memory_budget=budget),
        )
        # count_within forces full-height column strips.
        assert plan.orientation == "cols"
        assert plan.stats.passes == pytest.approx(1.0)

    @pytest.mark.parametrize("budget", [None, 4096, 64])
    def test_metric_source(self, euclid, budget):
        plan = ReductionPlan(euclid, memory_budget=budget)
        h_max = plan.add_max()
        h_arg = plan.add_argmin_per_row()
        plan.execute()
        assert h_max.value == reduce_max(euclid, memory_budget=budget)
        values, positions = h_arg.value
        exp_values, exp_positions = argmin_per_row(euclid, memory_budget=budget)
        np.testing.assert_array_equal(values, exp_values)
        np.testing.assert_array_equal(positions, exp_positions)

    @pytest.mark.parametrize("budget", [4096, 256, 64])
    @pytest.mark.parametrize("prefetch", [None, False, True])
    def test_memmap_source(self, matrix, memmap_matrix, budget, prefetch):
        weights = np.linspace(0.5, 2.0, matrix.shape[0])
        radii = np.quantile(matrix, [0.3, 0.7])
        plan, handles = _full_plan(
            memmap_matrix, radii=radii, weights=weights, budget=budget, prefetch=prefetch
        )
        # Parity against the *dense in-RAM* standalone calls: the memmap, the
        # budget and the prefetcher must all be invisible in the values.
        assert handles["max"].value == reduce_max(matrix)
        np.testing.assert_array_equal(
            handles["min_per_row"].value, reduce_min_per_row(matrix)
        )
        for pos, radius in enumerate(radii):
            np.testing.assert_array_equal(
                handles["count"].value[pos],
                count_within(matrix, float(radius), weights=weights),
            )
        # Auto-prefetch engages for multi-tile memmap plans.
        if prefetch is None and plan.stats.n_tiles > 1:
            assert plan.stats.prefetch

    def test_rows_cols_subsets(self, matrix):
        rows = [3, 4, 5, 9, 11]
        cols = [0, 2, 30, 31]
        plan = ReductionPlan(matrix, rows, cols, memory_budget=64)
        h = plan.add_argmin_per_row()
        plan.execute()
        values, positions = h.value
        exp_values, exp_positions = argmin_per_row(matrix, rows, cols, memory_budget=64)
        np.testing.assert_array_equal(values, exp_values)
        np.testing.assert_array_equal(positions, exp_positions)

    def test_empty_slab_defaults(self, matrix):
        plan = ReductionPlan(matrix, rows=[], cols=None)
        h_max = plan.add_max()
        h_count = plan.add_count_within(1.0)
        plan.execute()
        assert h_max.value == 0.0
        np.testing.assert_array_equal(h_count.value, np.zeros(matrix.shape[1]))
        assert plan.stats.n_tiles == 0


class TestPassCounts:
    """Deterministic pass-count proofs via the counting source wrapper."""

    def test_fused_plan_reads_each_tile_exactly_once(self, matrix):
        source = CountingSource(matrix)
        plan = ReductionPlan(source, memory_budget=2048, prefetch=False)
        plan.add_max()
        plan.add_argmin_per_row()
        plan.add_count_within([0.5, 1.5, 2.5], weights=np.ones(matrix.shape[0]))
        plan.execute()
        # Every cell served exactly once: one streaming pass for all six
        # reductions (3 thresholds fused into one op + max + argmin).
        assert source.cells_read == matrix.size
        assert source.cell_counts.min() == 1
        assert source.cell_counts.max() == 1
        assert plan.stats.passes == pytest.approx(1.0)

    def test_standalone_sequence_reads_slab_per_reduction(self, matrix):
        source = CountingSource(matrix)
        reduce_max(source, memory_budget=2048)
        argmin_per_row(source, memory_budget=2048)
        for radius in (0.5, 1.5, 2.5):
            count_within(source, radius, memory_budget=2048)
        # Five standalone calls -> five full passes; the fused plan above
        # does the same work in one.
        assert source.cells_read == 5 * matrix.size
        assert source.cell_counts.min() == 5

    def test_prefetch_does_not_change_pass_count(self, matrix):
        source = CountingSource(matrix)
        plan = ReductionPlan(source, memory_budget=2048, prefetch=True)
        plan.add_count_within([1.0, 2.0])
        plan.execute()
        assert source.cells_read == matrix.size
        assert plan.stats.prefetch


class TestTileShapes:
    def test_tiles_respect_budget_and_cache(self, matrix):
        plan = ReductionPlan(matrix, memory_budget=1 << 30, cache_target=2048)
        plan.add_max()
        plan.execute()
        # Cache target caps the tile even under a huge budget.
        assert plan.stats.tile_rows * plan.stats.tile_cols * 8 <= 2048

    def test_count_plans_use_column_strips(self, matrix):
        plan = ReductionPlan(matrix, memory_budget=4096)
        plan.add_count_within(1.0)
        plan.execute()
        assert plan.stats.orientation == "cols"
        assert plan.stats.tile_rows == matrix.shape[0]

    def test_pure_row_reductions_use_row_blocks(self, matrix):
        plan = ReductionPlan(matrix, memory_budget=4096)
        plan.add_argmin_per_row()
        plan.execute()
        assert plan.stats.orientation == "rows"

    def test_prefetch_buffers_fit_inside_the_budget(self, memmap_matrix):
        """With prefetch, up to PREFETCH_DEPTH queued copies + the in-flight
        tile + the consumer's tile coexist; the budget covers them all."""
        from repro.metrics.plan import PREFETCH_DEPTH

        budget = 4096
        plan = ReductionPlan(memmap_matrix, memory_budget=budget, prefetch=True)
        plan.add_max()  # overhead-0 op: the buffer chain is the whole story
        plan.execute()
        tile_bytes = plan.stats.tile_rows * plan.stats.tile_cols * 8
        assert tile_bytes * (PREFETCH_DEPTH + 2) <= budget
        assert plan.stats.prefetch

    def test_unbudgeted_uncached_plan_is_one_tile(self, matrix):
        plan = ReductionPlan(matrix, memory_budget=None, cache_target=None)
        plan.add_max()
        plan.execute()
        assert plan.stats.n_tiles == 1


class TestPlanLifecycle:
    def test_value_before_execute_raises(self, matrix):
        plan = ReductionPlan(matrix)
        handle = plan.add_max()
        with pytest.raises(RuntimeError, match="not been executed"):
            _ = handle.value

    def test_execute_twice_raises(self, matrix):
        plan = ReductionPlan(matrix)
        plan.add_max()
        plan.execute()
        with pytest.raises(RuntimeError, match="only be called once"):
            plan.execute()

    def test_add_after_execute_raises(self, matrix):
        plan = ReductionPlan(matrix)
        plan.add_max()
        plan.execute()
        with pytest.raises(RuntimeError, match="executed plan"):
            plan.add_min_positive()

    def test_count_weight_shape_validated(self, matrix):
        plan = ReductionPlan(matrix)
        with pytest.raises(ValueError, match="weights"):
            plan.add_count_within(1.0, weights=np.ones(3))


class TestPrefetcher:
    def test_loader_error_propagates_to_consumer(self):
        class Exploding:
            shape = (8, 8)

            def __init__(self):
                self.calls = 0

            def get_block(self, rows, cols):
                self.calls += 1
                if self.calls > 1:
                    raise RuntimeError("disk on fire")
                return np.zeros((len(rows), len(cols)))

        plan = ReductionPlan(Exploding(), memory_budget=64, prefetch=True)
        plan.add_argmin_per_row()
        with pytest.raises(RuntimeError, match="disk on fire"):
            plan.execute()

    def test_prefetch_load_copies_memmap_tiles(self, matrix, memmap_matrix):
        """The producer must materialise memmap tiles, not park lazy views.

        Row tiles of a C-order memmap are themselves C-contiguous views, so
        a naive ``ascontiguousarray`` would be a no-op and the page-in
        would silently move back into the consumer.
        """
        plan = ReductionPlan(memmap_matrix, memory_budget=2048, prefetch=True)
        plan.add_argmin_per_row()  # rows orientation: contiguous row tiles
        block = plan._load(slice(0, 4), slice(0, matrix.shape[1]), True)
        assert not np.shares_memory(block, memmap_matrix)
        assert not is_memmap_backed(block)
        np.testing.assert_array_equal(block, matrix[:4])

    def test_is_memmap_backed(self, matrix, memmap_matrix):
        assert not is_memmap_backed(matrix)
        assert is_memmap_backed(memmap_matrix)
        # A view of a memmap is still memmap-backed.
        assert is_memmap_backed(np.asarray(memmap_matrix)[2:5])
