"""Tests for the compressed graph of Definition 5.2."""

import numpy as np
import pytest

from repro.metrics import CompressedGraph, EuclideanMetric


@pytest.fixture
def simple_graph(tiny_metric):
    # Three "nodes" anchored at ground points 0, 3 and 6 with collapse costs.
    return CompressedGraph(
        ground_metric=tiny_metric,
        anchor_indices=np.asarray([0, 3, 6]),
        collapse_costs=np.asarray([0.5, 1.0, 2.0]),
    )


class TestCompressedGraph:
    def test_validation_alignment(self, tiny_metric):
        with pytest.raises(ValueError):
            CompressedGraph(tiny_metric, np.asarray([0, 1]), np.asarray([0.1]))

    def test_negative_collapse_rejected(self, tiny_metric):
        with pytest.raises(ValueError):
            CompressedGraph(tiny_metric, np.asarray([0]), np.asarray([-0.1]))

    def test_anchor_out_of_range_rejected(self, tiny_metric):
        with pytest.raises(IndexError):
            CompressedGraph(tiny_metric, np.asarray([99]), np.asarray([0.1]))

    def test_demand_to_point(self, simple_graph, tiny_metric):
        # d_G(p_j, u) = l_j + d(y_j, u)
        expected = 1.0 + tiny_metric.distance(3, 0)
        assert simple_graph.demand_to_point(1, 0) == pytest.approx(expected)

    def test_demand_facility_costs(self, simple_graph, tiny_metric):
        costs = simple_graph.demand_facility_costs([0, 1, 2], [0, 1, 2])
        # Row j, column j': l_j + d(y_j, y_j')
        for j, (anchor_j, l_j) in enumerate(zip([0, 3, 6], [0.5, 1.0, 2.0])):
            for jp, anchor_jp in enumerate([0, 3, 6]):
                expected = l_j + tiny_metric.distance(anchor_j, anchor_jp)
                assert costs[j, jp] == pytest.approx(expected)

    def test_demand_pairwise_symmetric_except_offsets(self, simple_graph):
        block = simple_graph.demand_pairwise([0, 1, 2], [0, 1, 2])
        assert np.allclose(np.diag(block), 0.0)
        assert np.allclose(block, block.T)

    def test_demand_pairwise_formula(self, simple_graph, tiny_metric):
        block = simple_graph.demand_pairwise([0], [1])
        expected = 0.5 + tiny_metric.distance(0, 3) + 1.0
        assert block[0, 0] == pytest.approx(expected)

    def test_tentacle_only_to_own_anchor(self, simple_graph, tiny_metric):
        # Reaching another node's demand vertex always pays both collapse costs,
        # so it is never cheaper than going directly to the anchor.
        d_via_anchor = simple_graph.demand_to_point(0, 3)
        d_to_demand = simple_graph.demand_pairwise([0], [1])[0, 0]
        assert d_to_demand >= d_via_anchor

    def test_as_metric(self, simple_graph):
        metric = simple_graph.as_metric()
        assert len(metric) == 3
        assert metric.distance(1, 1) == 0.0
        assert metric.distance(0, 2) == pytest.approx(
            simple_graph.demand_pairwise([0], [2])[0, 0]
        )
        assert metric.graph is simple_graph

    def test_facility_point_index(self, simple_graph):
        assert simple_graph.facility_point_index(2) == 6

    def test_zero_collapse_recovers_ground_distances(self, tiny_metric):
        graph = CompressedGraph(
            tiny_metric, np.arange(len(tiny_metric)), np.zeros(len(tiny_metric))
        )
        block = graph.demand_facility_costs(range(len(tiny_metric)), range(len(tiny_metric)))
        assert np.allclose(block, tiny_metric.full_matrix())
