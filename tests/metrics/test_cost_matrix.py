"""Tests for cost-matrix construction and objective validation."""

import numpy as np
import pytest

from repro.metrics import build_cost_matrix
from repro.metrics.cost_matrix import costs_from_distances, validate_objective


class TestValidateObjective:
    @pytest.mark.parametrize("name", ["median", "means", "center"])
    def test_accepts_valid(self, name):
        assert validate_objective(name) == name

    def test_case_insensitive(self):
        assert validate_objective("MEDIAN") == "median"

    def test_rejects_unknown(self):
        with pytest.raises(ValueError):
            validate_objective("kmeanz")


class TestBuildCostMatrix:
    def test_median_is_distance(self, tiny_metric):
        costs = build_cost_matrix(tiny_metric, [0, 1], [2, 3], "median")
        assert costs[0, 0] == pytest.approx(tiny_metric.distance(0, 2))

    def test_means_is_squared(self, tiny_metric):
        d = build_cost_matrix(tiny_metric, [0, 1], [2, 3], "median")
        sq = build_cost_matrix(tiny_metric, [0, 1], [2, 3], "means")
        assert np.allclose(sq, d * d)

    def test_center_is_distance(self, tiny_metric):
        d = build_cost_matrix(tiny_metric, [0, 5], [6], "center")
        assert d[1, 0] == pytest.approx(tiny_metric.distance(5, 6))

    def test_shape(self, tiny_metric):
        costs = build_cost_matrix(tiny_metric, range(7), [0, 3, 6], "median")
        assert costs.shape == (7, 3)


class TestCostsFromDistances:
    def test_means_squares(self):
        d = np.asarray([1.0, 2.0, 3.0])
        assert np.allclose(costs_from_distances(d, "means"), d * d)

    def test_median_identity(self):
        d = np.asarray([1.0, 2.0])
        assert np.allclose(costs_from_distances(d, "median"), d)
