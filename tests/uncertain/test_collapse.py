"""Tests for 1-median / 1-mean collapse and the compressed-graph construction."""

import numpy as np
import pytest

from repro.uncertain import (
    UncertainNode,
    build_compressed_graph,
    collapse_nodes,
    one_mean,
    one_median,
)


@pytest.fixture
def skewed_node():
    # Mostly realises near the first cluster of the tiny metric.
    return UncertainNode(
        support=np.asarray([0, 1, 6]), probabilities=np.asarray([0.45, 0.45, 0.10])
    )


class TestOneMedian:
    def test_minimises_expected_distance(self, skewed_node, tiny_metric):
        y, cost = one_median(skewed_node, tiny_metric, candidates=range(len(tiny_metric)))
        all_costs = skewed_node.expected_distances(tiny_metric, np.arange(len(tiny_metric)))
        assert cost == pytest.approx(all_costs.min())
        assert all_costs[y] == pytest.approx(cost)

    def test_default_candidates_are_support(self, skewed_node, tiny_metric):
        y, _ = one_median(skewed_node, tiny_metric)
        assert y in skewed_node.support

    def test_support_restricted_within_factor_two(self, skewed_node, tiny_metric):
        _, cost_support = one_median(skewed_node, tiny_metric)
        _, cost_full = one_median(skewed_node, tiny_metric, candidates=range(len(tiny_metric)))
        assert cost_support <= 2 * cost_full + 1e-9

    def test_deterministic_node_zero_cost(self, tiny_metric):
        node = UncertainNode.deterministic(5)
        y, cost = one_median(node, tiny_metric)
        assert y == 5
        assert cost == pytest.approx(0.0)


class TestOneMean:
    def test_minimises_expected_sq_distance(self, skewed_node, tiny_metric):
        y, cost = one_mean(skewed_node, tiny_metric, candidates=range(len(tiny_metric)))
        all_costs = skewed_node.expected_sq_distances(tiny_metric, np.arange(len(tiny_metric)))
        assert cost == pytest.approx(all_costs.min())

    def test_may_differ_from_one_median(self, tiny_metric):
        # With one far-away support point the mean-minimiser is pulled harder.
        node = UncertainNode(
            support=np.asarray([0, 6]), probabilities=np.asarray([0.7, 0.3])
        )
        y_med, _ = one_median(node, tiny_metric, candidates=range(len(tiny_metric)))
        y_mean, _ = one_mean(node, tiny_metric, candidates=range(len(tiny_metric)))
        # Not asserting inequality (depends on geometry), just that both are valid.
        assert 0 <= y_med < len(tiny_metric)
        assert 0 <= y_mean < len(tiny_metric)


class TestCollapseNodes:
    def test_shapes(self, small_uncertain_workload):
        inst = small_uncertain_workload.instance
        anchors, costs = collapse_nodes(inst.nodes, inst.ground_metric)
        assert anchors.shape == (inst.n_nodes,)
        assert costs.shape == (inst.n_nodes,)
        assert np.all(costs >= 0)
        assert np.all(anchors < inst.n_ground_points)

    def test_means_objective_uses_one_mean(self, small_uncertain_workload):
        inst = small_uncertain_workload.instance
        _, costs_median = collapse_nodes(inst.nodes, inst.ground_metric, "median")
        _, costs_means = collapse_nodes(inst.nodes, inst.ground_metric, "means")
        # Squared collapse costs are in squared units; just check both valid.
        assert np.all(costs_means >= 0)
        assert costs_median.shape == costs_means.shape


class TestBuildCompressedGraph:
    def test_graph_structure(self, small_uncertain_workload):
        inst = small_uncertain_workload.instance
        graph = build_compressed_graph(inst.nodes, inst.ground_metric)
        assert graph.n_nodes == inst.n_nodes
        assert graph.ground_metric is inst.ground_metric

    def test_instance_helper_matches(self, small_uncertain_workload):
        inst = small_uncertain_workload.instance
        g1 = inst.compressed_graph()
        g2 = build_compressed_graph(inst.nodes, inst.ground_metric)
        assert np.array_equal(g1.anchor_indices, g2.anchor_indices)
        assert np.allclose(g1.collapse_costs, g2.collapse_costs)

    def test_collapse_cost_bounds_assignment_cost(self, small_uncertain_workload):
        # For any node j and ground point u:
        #   |E d(sigma, u) - d(y_j, u)| <= l_j   (triangle inequality in expectation),
        # which is what makes the compressed graph a constant-factor proxy.
        inst = small_uncertain_workload.instance
        graph = inst.compressed_graph()
        points = np.arange(0, inst.n_ground_points, 17)
        for j in range(0, inst.n_nodes, 7):
            node = inst.nodes[j]
            expected = node.expected_distances(inst.ground_metric, points)
            anchor_dist = inst.ground_metric.pairwise([graph.anchor_indices[j]], points)[0]
            assert np.all(np.abs(expected - anchor_dist) <= graph.collapse_costs[j] + 1e-9)
