"""Tests for uncertain objective evaluation (exact and Monte-Carlo)."""

import numpy as np
import pytest

from repro.uncertain import (
    UncertainInstance,
    UncertainNode,
    estimate_center_g_cost,
    exact_assigned_cost,
    sample_realizations,
)


@pytest.fixture
def deterministic_instance(tiny_metric):
    """Nodes that realise to a single ground point each — expectations are exact distances."""
    nodes = [UncertainNode.deterministic(i) for i in range(len(tiny_metric))]
    return UncertainInstance(ground_metric=tiny_metric, nodes=nodes)


class TestExactAssignedCost:
    def test_median(self, deterministic_instance, tiny_metric):
        assignment = {0: 1, 2: 1, 3: 4}
        expected = (
            tiny_metric.distance(0, 1) + tiny_metric.distance(2, 1) + tiny_metric.distance(3, 4)
        )
        assert exact_assigned_cost(deterministic_instance, assignment, "median") == pytest.approx(
            expected
        )

    def test_means(self, deterministic_instance, tiny_metric):
        assignment = {0: 1}
        assert exact_assigned_cost(deterministic_instance, assignment, "means") == pytest.approx(
            tiny_metric.distance(0, 1) ** 2
        )

    def test_center_pp_is_max(self, deterministic_instance, tiny_metric):
        assignment = {0: 1, 6: 0}
        expected = max(tiny_metric.distance(0, 1), tiny_metric.distance(6, 0))
        assert exact_assigned_cost(deterministic_instance, assignment, "center") == pytest.approx(
            expected
        )

    def test_empty_assignment(self, deterministic_instance):
        assert exact_assigned_cost(deterministic_instance, {}, "median") == 0.0

    def test_out_of_range_node_rejected(self, deterministic_instance):
        with pytest.raises(ValueError):
            exact_assigned_cost(deterministic_instance, {99: 0}, "median")

    def test_uncertain_node_expectation(self, tiny_metric):
        node = UncertainNode(support=np.asarray([0, 6]), probabilities=np.asarray([0.5, 0.5]))
        inst = UncertainInstance(ground_metric=tiny_metric, nodes=[node])
        expected = 0.5 * tiny_metric.distance(0, 3) + 0.5 * tiny_metric.distance(6, 3)
        assert exact_assigned_cost(inst, {0: 3}, "median") == pytest.approx(expected)


class TestSampleRealizations:
    def test_shape_and_range(self, small_uncertain_workload, rng):
        inst = small_uncertain_workload.instance
        reals = sample_realizations(inst, 25, rng)
        assert reals.shape == (25, inst.n_nodes)
        for j in range(inst.n_nodes):
            assert set(np.unique(reals[:, j])) <= set(inst.nodes[j].support.tolist())

    def test_invalid_count(self, small_uncertain_workload):
        with pytest.raises(ValueError):
            sample_realizations(small_uncertain_workload.instance, 0)


class TestCenterGEstimate:
    def test_deterministic_equals_max_distance(self, deterministic_instance, tiny_metric):
        assignment = {0: 1, 6: 0}
        expected = max(tiny_metric.distance(0, 1), tiny_metric.distance(6, 0))
        est = estimate_center_g_cost(deterministic_instance, assignment, n_samples=10, rng=0)
        assert est == pytest.approx(expected)

    def test_empty_assignment(self, deterministic_instance):
        assert estimate_center_g_cost(deterministic_instance, {}, n_samples=5, rng=0) == 0.0

    def test_center_g_at_least_center_pp(self, small_uncertain_workload):
        # E[max] >= max E by Jensen; check on the sampled estimate with slack.
        inst = small_uncertain_workload.instance
        anchors = {j: int(inst.nodes[j].support[0]) for j in range(0, inst.n_nodes, 3)}
        pp = exact_assigned_cost(inst, anchors, "center")
        g = estimate_center_g_cost(inst, anchors, n_samples=300, rng=1)
        assert g >= pp - 0.15 * pp

    def test_paired_realizations(self, small_uncertain_workload):
        inst = small_uncertain_workload.instance
        reals = sample_realizations(inst, 50, rng=3)
        assignment = {j: int(inst.nodes[j].support[0]) for j in range(inst.n_nodes)}
        a = estimate_center_g_cost(inst, assignment, realizations=reals)
        b = estimate_center_g_cost(inst, assignment, realizations=reals)
        assert a == pytest.approx(b)

    def test_wrong_realization_width_rejected(self, small_uncertain_workload):
        inst = small_uncertain_workload.instance
        with pytest.raises(ValueError):
            estimate_center_g_cost(inst, {0: 0}, realizations=np.zeros((5, 3), dtype=int))
