"""Tests for UncertainNode."""

import numpy as np
import pytest

from repro.uncertain import UncertainNode


@pytest.fixture
def two_point_node():
    # Realises to ground point 0 with prob 0.25 and point 6 with prob 0.75.
    return UncertainNode(support=np.asarray([0, 6]), probabilities=np.asarray([0.25, 0.75]))


class TestConstruction:
    def test_normalisation(self):
        node = UncertainNode(support=np.asarray([0, 1]), probabilities=np.asarray([2.0, 2.0]))
        assert np.allclose(node.probabilities, [0.5, 0.5])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            UncertainNode(support=np.asarray([0, 1, 2]), probabilities=np.asarray([0.5, 0.5]))

    def test_duplicate_support_rejected(self):
        with pytest.raises(ValueError):
            UncertainNode(support=np.asarray([3, 3]), probabilities=np.asarray([0.5, 0.5]))

    def test_deterministic_constructor(self):
        node = UncertainNode.deterministic(4)
        assert node.support_size == 1
        assert node.probabilities[0] == 1.0

    def test_uniform_constructor(self):
        node = UncertainNode.uniform_over([1, 2, 3, 4])
        assert np.allclose(node.probabilities, 0.25)


class TestExpectedDistances:
    def test_expected_distance_formula(self, two_point_node, tiny_metric):
        expected = 0.25 * tiny_metric.distance(0, 3) + 0.75 * tiny_metric.distance(6, 3)
        assert two_point_node.expected_distance(tiny_metric, 3) == pytest.approx(expected)

    def test_expected_distances_vectorised(self, two_point_node, tiny_metric):
        pts = np.arange(len(tiny_metric))
        vec = two_point_node.expected_distances(tiny_metric, pts)
        for p in pts:
            assert vec[p] == pytest.approx(two_point_node.expected_distance(tiny_metric, int(p)))

    def test_expected_sq_distances(self, two_point_node, tiny_metric):
        vec = two_point_node.expected_sq_distances(tiny_metric, [3])
        expected = 0.25 * tiny_metric.distance(0, 3) ** 2 + 0.75 * tiny_metric.distance(6, 3) ** 2
        assert vec[0] == pytest.approx(expected)

    def test_expected_truncated_distances(self, two_point_node, tiny_metric):
        tau = 5.0
        vec = two_point_node.expected_truncated_distances(tiny_metric, [3], tau)
        expected = 0.25 * max(tiny_metric.distance(0, 3) - tau, 0.0) + 0.75 * max(
            tiny_metric.distance(6, 3) - tau, 0.0
        )
        assert vec[0] == pytest.approx(expected)

    def test_truncation_negative_tau_rejected(self, two_point_node, tiny_metric):
        with pytest.raises(ValueError):
            two_point_node.expected_truncated_distances(tiny_metric, [0], -1.0)

    def test_truncated_le_plain(self, two_point_node, tiny_metric):
        pts = np.arange(len(tiny_metric))
        plain = two_point_node.expected_distances(tiny_metric, pts)
        trunc = two_point_node.expected_truncated_distances(tiny_metric, pts, 1.0)
        assert np.all(trunc <= plain + 1e-12)

    def test_deterministic_node_matches_metric(self, tiny_metric):
        node = UncertainNode.deterministic(2)
        assert node.expected_distance(tiny_metric, 5) == pytest.approx(tiny_metric.distance(2, 5))


class TestSamplingAndEncoding:
    def test_sample_within_support(self, two_point_node, rng):
        draws = two_point_node.sample(rng, size=200)
        assert set(np.unique(draws)) <= {0, 6}

    def test_sample_frequencies(self, two_point_node):
        draws = two_point_node.sample(np.random.default_rng(0), size=4000)
        freq = np.mean(draws == 6)
        assert freq == pytest.approx(0.75, abs=0.05)

    def test_scalar_sample(self, two_point_node, rng):
        assert two_point_node.sample(rng) in (0, 6)

    def test_encoding_words(self, two_point_node):
        assert two_point_node.encoding_words(words_per_point=2) == pytest.approx(6.0)
        assert two_point_node.encoding_words(words_per_point=1) == pytest.approx(4.0)

    def test_mean_point(self, two_point_node, tiny_metric):
        mean = two_point_node.mean_point(tiny_metric)
        expected = 0.25 * tiny_metric.points[0] + 0.75 * tiny_metric.points[6]
        assert np.allclose(mean, expected)
