"""Tests for UncertainInstance."""

import numpy as np
import pytest

from repro.uncertain import UncertainInstance, UncertainNode


class TestUncertainInstance:
    def test_basic_properties(self, small_uncertain_workload):
        inst = small_uncertain_workload.instance
        assert inst.n_nodes == 60
        assert inst.n_ground_points == 200
        assert inst.spread() > 1.0

    def test_support_out_of_range_rejected(self, tiny_metric):
        bad = UncertainNode(support=np.asarray([99]), probabilities=np.asarray([1.0]))
        with pytest.raises(ValueError):
            UncertainInstance(ground_metric=tiny_metric, nodes=[bad])

    def test_empty_rejected(self, tiny_metric):
        with pytest.raises(ValueError):
            UncertainInstance(ground_metric=tiny_metric, nodes=[])

    def test_node_subset(self, small_uncertain_workload):
        inst = small_uncertain_workload.instance
        sub = inst.node_subset([0, 5, 9])
        assert sub.n_nodes == 3
        assert sub.ground_metric is inst.ground_metric
        assert sub.nodes[1] is inst.nodes[5]

    def test_encoding_words(self, small_uncertain_workload):
        inst = small_uncertain_workload.instance
        total = inst.encoding_words()
        per_node_max = inst.max_node_words()
        assert total > 0
        assert per_node_max <= total
        assert total <= per_node_max * inst.n_nodes + 1e-9

    def test_expected_cost_matrix_median(self, small_uncertain_workload):
        inst = small_uncertain_workload.instance
        nodes = [0, 1, 2]
        points = [0, 10, 20]
        mat = inst.expected_cost_matrix(nodes, points, "median")
        assert mat.shape == (3, 3)
        expected = inst.nodes[1].expected_distances(inst.ground_metric, points)
        assert np.allclose(mat[1], expected)

    def test_expected_cost_matrix_means_ge_squared_median_bound(self, small_uncertain_workload):
        inst = small_uncertain_workload.instance
        nodes = [0, 1]
        points = [0, 5]
        med = inst.expected_cost_matrix(nodes, points, "median")
        means = inst.expected_cost_matrix(nodes, points, "means")
        # Jensen: E[d^2] >= (E[d])^2.
        assert np.all(means >= med**2 - 1e-9)

    def test_expected_cost_matrix_truncated(self, small_uncertain_workload):
        inst = small_uncertain_workload.instance
        plain = inst.expected_cost_matrix([0, 1], [0, 1, 2], "median")
        trunc = inst.expected_cost_matrix([0, 1], [0, 1, 2], tau=2.0)
        assert np.all(trunc <= plain + 1e-12)

    def test_support_union(self, small_uncertain_workload):
        inst = small_uncertain_workload.instance
        union = inst.support_union([0, 1])
        manual = np.unique(np.concatenate([inst.nodes[0].support, inst.nodes[1].support]))
        assert np.array_equal(union, manual)
        full = inst.support_union()
        assert union.size <= full.size

    def test_sample_realization(self, small_uncertain_workload, rng):
        inst = small_uncertain_workload.instance
        sigma = inst.sample_realization(rng)
        assert sigma.shape == (inst.n_nodes,)
        for j, realized in enumerate(sigma):
            assert realized in inst.nodes[j].support
