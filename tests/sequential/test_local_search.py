"""Tests for the outlier-aware local-search solver."""

import numpy as np
import pytest

from repro.metrics import build_cost_matrix
from repro.sequential import local_search_partial, solution_cost
from repro.sequential.local_search import plus_plus_seeding


class TestPlusPlusSeeding:
    def test_count_and_uniqueness(self, small_cost_matrix, rng):
        seeds = plus_plus_seeding(small_cost_matrix, 5, np.ones(small_cost_matrix.shape[0]), rng)
        assert seeds.size == 5
        assert np.unique(seeds).size == 5

    def test_spreads_across_clusters(self, small_workload, small_cost_matrix, rng):
        seeds = plus_plus_seeding(small_cost_matrix, 3, np.ones(small_cost_matrix.shape[0]), rng)
        labels = {small_workload.labels[s] for s in seeds}
        # With three far-apart clusters, ++-seeding should touch at least two.
        assert len(labels) >= 2

    def test_k_capped_by_facilities(self, rng):
        costs = np.random.default_rng(0).random((10, 3))
        seeds = plus_plus_seeding(costs, 5, np.ones(10), rng)
        assert seeds.size == 3


class TestLocalSearchPartial:
    def test_budgets_respected(self, small_cost_matrix):
        sol = local_search_partial(small_cost_matrix, 3, 15, rng=0)
        assert sol.n_centers <= 3
        assert sol.outlier_weight <= 15 + 1e-9
        assert sol.objective == "median"

    def test_cost_is_consistent_with_assignment(self, small_cost_matrix):
        sol = local_search_partial(small_cost_matrix, 3, 15, rng=0)
        recomputed = solution_cost(small_cost_matrix, sol.centers, 15, objective="median")
        assert sol.cost == pytest.approx(recomputed, rel=1e-9)

    def test_beats_random_centers(self, small_cost_matrix, rng):
        sol = local_search_partial(small_cost_matrix, 3, 15, rng=1)
        random_centers = rng.choice(small_cost_matrix.shape[1], size=3, replace=False)
        random_cost = solution_cost(small_cost_matrix, random_centers, 15, objective="median")
        assert sol.cost <= random_cost + 1e-9

    def test_recovers_cluster_structure(self, small_workload, small_metric):
        n = small_workload.n_points
        costs = build_cost_matrix(small_metric, range(n), range(n), "median")
        sol = local_search_partial(costs, 3, small_workload.n_outliers, rng=2, max_iter=30)
        # Every returned center should sit inside a true cluster (not an outlier).
        for c in sol.centers:
            assert small_workload.labels[c] >= 0

    def test_means_objective(self, small_metric):
        n = len(small_metric)
        costs = build_cost_matrix(small_metric, range(n), range(n), "means")
        sol = local_search_partial(costs, 3, 15, objective="means", rng=0)
        assert sol.objective == "means"
        assert sol.cost >= 0

    def test_center_objective_rejected(self, small_cost_matrix):
        with pytest.raises(ValueError):
            local_search_partial(small_cost_matrix, 3, 15, objective="center")

    def test_weighted_demands(self):
        costs = np.asarray(
            [
                [0.0, 8.0],
                [8.0, 0.0],
                [9.0, 1.0],
                [100.0, 100.0],
            ]
        )
        weights = np.asarray([5.0, 5.0, 5.0, 1.0])
        sol = local_search_partial(costs, 2, 1, weights=weights, rng=0)
        # The weight-1 far point is the only affordable outlier; the remaining
        # cost is demand 2 served from facility 1 at unit cost 1 and weight 5.
        assert np.array_equal(sol.outlier_indices, [3])
        assert sol.cost == pytest.approx(5.0)

    def test_warm_start(self, small_cost_matrix):
        warm = local_search_partial(small_cost_matrix, 3, 15, rng=0, max_iter=5)
        sol = local_search_partial(
            small_cost_matrix, 3, 15, init_centers=warm.centers, rng=1, max_iter=5
        )
        assert sol.cost <= warm.cost * 1.2

    def test_zero_outliers(self, small_cost_matrix):
        sol = local_search_partial(small_cost_matrix, 4, 0, rng=0)
        assert sol.outlier_indices.size == 0

    def test_k_larger_than_facilities(self):
        costs = np.random.default_rng(1).random((6, 4))
        sol = local_search_partial(costs, 10, 0, rng=0)
        assert sol.n_centers <= 4

    def test_invalid_parameters(self, small_cost_matrix):
        with pytest.raises(ValueError):
            local_search_partial(small_cost_matrix, 0, 1)
        with pytest.raises(ValueError):
            local_search_partial(small_cost_matrix, 1, -1)
        with pytest.raises(ValueError):
            local_search_partial(small_cost_matrix, 1, 0, weights=np.ones(3))

    def test_metadata(self, small_cost_matrix):
        sol = local_search_partial(small_cost_matrix, 3, 15, rng=0)
        assert sol.metadata["method"] == "local_search_partial"
        assert sol.metadata["iterations"] >= 1

    def test_deterministic_given_seed(self, small_cost_matrix):
        a = local_search_partial(small_cost_matrix, 3, 15, rng=7)
        b = local_search_partial(small_cost_matrix, 3, 15, rng=7)
        assert np.array_equal(a.centers, b.centers)
        assert a.cost == pytest.approx(b.cost)
