"""Tests for the ClusterSolution container."""

import numpy as np
import pytest

from repro.sequential import ClusterSolution


def _solution():
    return ClusterSolution(
        centers=np.asarray([0, 2]),
        assignment=np.asarray([0, 0, 2, 2, -1]),
        outlier_weight=1.0,
        cost=3.5,
        objective="median",
        dropped_weight=np.asarray([0.0, 0.0, 0.0, 0.0, 1.0]),
    )


class TestClusterSolution:
    def test_basic_properties(self):
        sol = _solution()
        assert sol.n_centers == 2
        assert np.array_equal(sol.outlier_indices, [4])
        assert np.array_equal(sol.served_indices, [0, 1, 2, 3])

    def test_center_weights_unit(self):
        weights = _solution().center_weights()
        assert weights == {0: 2.0, 2: 2.0}

    def test_center_weights_custom(self):
        sol = _solution()
        w = np.asarray([1.0, 2.0, 3.0, 4.0, 5.0])
        weights = sol.center_weights(w)
        assert weights[0] == pytest.approx(3.0)
        assert weights[2] == pytest.approx(7.0)

    def test_center_weights_subtract_partial_drops(self):
        sol = ClusterSolution(
            centers=np.asarray([0]),
            assignment=np.asarray([0, 0]),
            outlier_weight=1.5,
            cost=1.0,
            objective="median",
            dropped_weight=np.asarray([0.5, 1.0]),
        )
        weights = sol.center_weights(np.asarray([2.0, 3.0]))
        assert weights[0] == pytest.approx(3.5)

    def test_center_weights_shape_mismatch(self):
        with pytest.raises(ValueError):
            _solution().center_weights(np.ones(3))

    def test_dropped_weight_shape_validated(self):
        with pytest.raises(ValueError):
            ClusterSolution(
                centers=np.asarray([0]),
                assignment=np.asarray([0, 0]),
                outlier_weight=0.0,
                cost=0.0,
                objective="median",
                dropped_weight=np.asarray([0.0]),
            )

    def test_relabel(self):
        sol = _solution()
        mapping = np.asarray([10, 11, 12, 13, 14])
        new = sol.relabel(mapping)
        assert np.array_equal(new.centers, [10, 12])
        assert np.array_equal(new.assignment, [10, 10, 12, 12, -1])
        # Original untouched.
        assert np.array_equal(sol.centers, [0, 2])

    def test_summary_contains_key_facts(self):
        text = _solution().summary()
        assert "median" in text
        assert "2" in text

    def test_duplicate_centers_counted_once(self):
        sol = ClusterSolution(
            centers=np.asarray([1, 1, 2]),
            assignment=np.asarray([1, 2]),
            outlier_weight=0.0,
            cost=0.0,
            objective="median",
        )
        assert sol.n_centers == 2
