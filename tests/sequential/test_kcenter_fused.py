"""Fused radius probes for the Charikar ``(k, t)``-center greedy.

Two properties are locked down here:

* **Parity** — the fused/batched/incremental search is bit-identical across
  memory budgets, memmap-backed matrices, prefetch settings and probe-batch
  sizes (the batched binary search lands on the same smallest feasible
  candidate radius as the one-at-a-time search under the analysis's
  monotonicity assumption).
* **Pass counts** — via :class:`~repro.metrics.plan.CountingSource`
  (deterministic; no wall-clock): one fused probe reads each tile of the
  cost matrix exactly once, where the classic phrasing re-streams the slab
  ``k`` times per radius guess plus once for the initial gains — ``k + 1``
  full passes.
"""

import numpy as np
import pytest

from repro.data import gaussian_mixture_with_outliers
from repro.metrics.blocked import MemmapCostShard, count_within
from repro.metrics.plan import CountingSource
from repro.sequential import kcenter_with_outliers
from repro.sequential.kcenter_outliers import (
    _greedy_cover,
    candidate_radii,
    probe_gains,
)


@pytest.fixture(scope="module")
def workload():
    return gaussian_mixture_with_outliers(
        n_inliers=150, n_outliers=15, n_clusters=3, separation=12.0, rng=11
    )


@pytest.fixture(scope="module")
def cost_matrix(workload):
    return workload.to_metric().full_matrix()


def _assert_same_solution(base, other):
    np.testing.assert_array_equal(base.centers, other.centers)
    np.testing.assert_array_equal(base.assignment, other.assignment)
    assert base.cost == other.cost
    assert base.outlier_weight == other.outlier_weight
    np.testing.assert_array_equal(base.dropped_weight, other.dropped_weight)


class TestFusedParity:
    @pytest.mark.parametrize("budget", [1 << 30, 4096, 64])
    def test_budget_parity(self, cost_matrix, budget):
        base = kcenter_with_outliers(cost_matrix, 3, 15)
        other = kcenter_with_outliers(cost_matrix, 3, 15, memory_budget=budget)
        _assert_same_solution(base, other)

    @pytest.mark.parametrize("prefetch", [False, True])
    def test_memmap_and_prefetch_parity(self, cost_matrix, tmp_path, prefetch):
        shard = MemmapCostShard.create(cost_matrix.shape, workdir=str(tmp_path))
        shard.write_rows(slice(0, cost_matrix.shape[0]), cost_matrix)
        mm = shard.finalize()
        base = kcenter_with_outliers(cost_matrix, 3, 15)
        other = kcenter_with_outliers(
            mm, 3, 15, memory_budget=4096, prefetch=prefetch
        )
        _assert_same_solution(base, other)

    @pytest.mark.parametrize("probe_batch", [1, 2, 5])
    def test_probe_batch_agreement_on_monotone_workload(self, cost_matrix, probe_batch):
        """Every batch width finds the same smallest feasible candidate radius
        *on this workload*, whose greedy feasibility is monotone over the
        candidate list (the analysis's assumption).  This is a deterministic
        regression pin, not a universal guarantee: on adversarial inputs with
        non-monotone feasibility, different batch widths may legitimately
        settle on different feasible radii (see the module docstring)."""
        base = kcenter_with_outliers(cost_matrix, 3, 15)
        other = kcenter_with_outliers(cost_matrix, 3, 15, probe_batch=probe_batch)
        _assert_same_solution(base, other)
        assert base.metadata["radius_guess"] == other.metadata["radius_guess"]

    def test_weighted_parity(self, cost_matrix):
        rng = np.random.default_rng(3)
        weights = rng.uniform(0.5, 4.0, size=cost_matrix.shape[0])
        base = kcenter_with_outliers(cost_matrix, 4, 20.0, weights=weights)
        other = kcenter_with_outliers(
            cost_matrix, 4, 20.0, weights=weights, memory_budget=2048, probe_batch=4
        )
        _assert_same_solution(base, other)

    def test_probe_gains_matches_standalone_count_within(self, cost_matrix):
        weights = np.ones(cost_matrix.shape[0])
        radii = np.quantile(cost_matrix, [0.1, 0.4, 0.8])
        gains = probe_gains(cost_matrix, radii, weights, memory_budget=4096)
        for pos, radius in enumerate(radii):
            np.testing.assert_array_equal(
                gains[pos],
                count_within(cost_matrix, float(radius), weights=weights, memory_budget=4096),
            )

    def test_metadata_records_probe_stats(self, cost_matrix):
        sol = kcenter_with_outliers(cost_matrix, 3, 15, probe_batch=4)
        assert sol.metadata["probe_batch"] == 4
        assert sol.metadata["probe_rounds"] >= 1
        # A batch of 4 probes narrows ~5x per round: far fewer rounds than
        # candidates.
        assert sol.metadata["probe_rounds"] <= np.ceil(
            np.log(max(2, sol.metadata["n_radius_candidates"])) / np.log(5)
        ) + 1


class TestPassCounts:
    def test_fused_probe_reads_each_tile_exactly_once(self, cost_matrix):
        """The acceptance-criteria pass-count proof.

        One fused probe over a batch of radii streams the slab exactly once
        — each tile loaded one time — where the old path issued the initial
        gains pass plus ``k`` re-streams: ``k + 1`` full passes.
        """
        k = 8
        radii = np.quantile(cost_matrix, [0.2, 0.5, 0.8])
        weights = np.ones(cost_matrix.shape[0])

        source = CountingSource(cost_matrix)
        probe_gains(source, radii, weights, memory_budget=2048, prefetch=False)
        assert source.cells_read == cost_matrix.size
        assert source.cell_counts.min() == 1
        assert source.cell_counts.max() == 1

        # The equivalent of ONE radius guess on the old path: k full
        # count_within re-streams plus the initial gains pass.
        old_path = CountingSource(cost_matrix)
        for _ in range(k + 1):
            count_within(old_path, float(radii[0]), weights=weights, memory_budget=2048)
        assert old_path.cells_read == (k + 1) * cost_matrix.size

    def test_incremental_greedy_rereads_at_most_one_extra_pass(self, cost_matrix):
        """Beyond the fused gains, the greedy touches each row at most once
        more (its zeroing downdate) plus one column per chosen center."""
        k = 8
        n, m = cost_matrix.shape
        radius = float(np.quantile(cost_matrix, 0.5))
        source = CountingSource(cost_matrix)
        centers, _ = _greedy_cover(
            source, np.ones(n), k, radius, 3.0, memory_budget=2048
        )
        assert centers.size >= 1
        # gains pass (n*m) + downdates (<= n*m total) + k columns (k*n).
        assert source.cells_read <= 2 * n * m + k * n

    def test_full_solve_beats_old_path_pass_count(self, cost_matrix):
        k, t = 6, 15
        n, m = cost_matrix.shape
        source = CountingSource(cost_matrix)
        sol = kcenter_with_outliers(source, k, t, memory_budget=2048, probe_batch=3)
        probed = sol.metadata["probe_rounds"] * sol.metadata["probe_batch"]
        # Old path: per probed radius, (k + 1) full passes (plus the radius
        # collection).  New path: one fused pass per probe *round* plus
        # sub-pass downdates.  Even charging every probed radius, the new
        # path must come in far under the old bound.
        old_lower_bound = probed * (k + 1) * n * m
        assert source.cells_read < old_lower_bound / 2


class TestCandidateRadiiBatchedMerge:
    @pytest.mark.parametrize("budget", [8, 64, 2048, 1 << 20])
    def test_matches_dense_unique(self, cost_matrix, budget):
        dense = candidate_radii(cost_matrix, max_candidates=10_000)
        blocked = candidate_radii(
            cost_matrix, max_candidates=10_000, memory_budget=budget
        )
        np.testing.assert_array_equal(dense, blocked)

    def test_subsampled_still_matches(self, cost_matrix):
        dense = candidate_radii(cost_matrix, max_candidates=32)
        blocked = candidate_radii(cost_matrix, max_candidates=32, memory_budget=256)
        np.testing.assert_array_equal(dense, blocked)

    def test_block_source_supported(self, cost_matrix):
        source = CountingSource(cost_matrix)
        out = candidate_radii(source, max_candidates=64, memory_budget=1024)
        np.testing.assert_array_equal(
            out, candidate_radii(cost_matrix, max_candidates=64)
        )
        # The streamed collection is one full pass, not one pass per merge.
        assert source.cells_read == cost_matrix.size
