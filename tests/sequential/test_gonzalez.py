"""Tests for the Gonzalez farthest-first traversal."""

import numpy as np
import pytest

from repro.metrics import EuclideanMetric
from repro.sequential import gonzalez
from repro.sequential.gonzalez import center_witnesses


class TestGonzalez:
    def test_ordering_is_permutation(self, small_metric):
        result = gonzalez(small_metric, rng=0)
        assert np.array_equal(np.sort(result.ordering), np.arange(len(small_metric)))

    def test_radii_non_increasing(self, small_metric):
        result = gonzalez(small_metric, rng=0)
        radii = result.radii[1:]
        assert np.all(np.diff(radii) <= 1e-9)

    def test_first_radius_is_inf(self, small_metric):
        assert gonzalez(small_metric, rng=0).radii[0] == np.inf

    def test_coverage_radius_non_increasing(self, small_metric):
        result = gonzalez(small_metric, rng=0)
        assert np.all(np.diff(result.coverage_radius) <= 1e-9)

    def test_prefix_2_approximation(self, small_metric, small_cost_matrix):
        # For every r, the coverage radius of the r-prefix is at most twice the
        # optimal r-center cost; check against a brute-force lower bound
        # (any r-center solution has cost >= (r+1)-th Gonzalez radius).
        result = gonzalez(small_metric, rng=3)
        for r in [2, 3, 5]:
            lower_bound = result.radii[r]  # opt(r) >= radii[r] / 2 is the classic bound
            assert result.coverage_radius[r - 1] <= 2 * lower_bound + 1e-9 or (
                result.coverage_radius[r - 1] <= result.radii[r] * 2 + 1e-9
            )

    def test_m_limits_traversal(self, small_metric):
        result = gonzalez(small_metric, m=10, rng=0)
        assert result.ordering.size == 10

    def test_explicit_start(self, small_metric):
        result = gonzalez(small_metric, start=5, rng=0)
        assert result.ordering[0] == 5

    def test_subset_traversal(self, small_metric):
        indices = np.arange(0, 40)
        result = gonzalez(small_metric, indices=indices, rng=0)
        assert set(result.ordering.tolist()) == set(indices.tolist())

    def test_empty_rejected(self, small_metric):
        with pytest.raises(ValueError):
            gonzalez(small_metric, indices=[])

    def test_invalid_m_rejected(self, small_metric):
        with pytest.raises(ValueError):
            gonzalez(small_metric, m=0)

    def test_deterministic_given_start(self, small_metric):
        a = gonzalez(small_metric, start=0)
        b = gonzalez(small_metric, start=0)
        assert np.array_equal(a.ordering, b.ordering)

    def test_two_clusters_second_point_far(self):
        pts = np.vstack([np.zeros((5, 2)), np.full((5, 2), 100.0)])
        metric = EuclideanMetric(pts)
        result = gonzalez(metric, start=0)
        # The second traversed point must come from the far cluster.
        assert result.ordering[1] >= 5


class TestCenterWitnesses:
    def test_length_and_monotonicity(self, small_metric):
        result = gonzalez(small_metric, rng=0)
        w = center_witnesses(result, k=3, t=10)
        assert w.size == 10
        assert np.all(np.diff(w) <= 1e-9)

    def test_matches_radii(self, small_metric):
        result = gonzalez(small_metric, rng=0)
        w = center_witnesses(result, k=3, t=5)
        assert w[0] == pytest.approx(result.radii[3])
        assert w[4] == pytest.approx(result.radii[7])

    def test_zero_beyond_traversal(self):
        metric = EuclideanMetric(np.random.default_rng(0).normal(size=(6, 2)))
        result = gonzalez(metric, rng=0)
        w = center_witnesses(result, k=4, t=10)
        assert np.all(w[2:] == 0.0)

    def test_invalid_parameters(self, small_metric):
        result = gonzalez(small_metric, rng=0)
        with pytest.raises(ValueError):
            center_witnesses(result, k=0, t=1)
        with pytest.raises(ValueError):
            center_witnesses(result, k=1, t=-1)
