"""Tests for nearest-center assignment with weighted outlier trimming."""

import numpy as np
import pytest

from repro.sequential import assign_with_outliers, nearest_center_distances, solution_cost
from repro.sequential.assignment import trim_outliers


@pytest.fixture
def costs():
    # 5 demands x 3 facilities.
    return np.asarray(
        [
            [0.0, 5.0, 9.0],
            [1.0, 4.0, 8.0],
            [6.0, 0.0, 3.0],
            [7.0, 1.0, 2.0],
            [20.0, 20.0, 20.0],  # expensive everywhere: the natural outlier
        ]
    )


class TestNearestCenterDistances:
    def test_single_center(self, costs):
        unit, nearest = nearest_center_distances(costs, [1])
        assert np.allclose(unit, costs[:, 1])
        assert np.all(nearest == 1)

    def test_two_centers(self, costs):
        unit, nearest = nearest_center_distances(costs, [0, 2])
        assert np.allclose(unit, np.minimum(costs[:, 0], costs[:, 2]))
        assert np.array_equal(nearest, [0, 0, 2, 2, 0])

    def test_empty_centers_rejected(self, costs):
        with pytest.raises(ValueError):
            nearest_center_distances(costs, [])


class TestTrimOutliers:
    def test_median_drops_most_expensive(self):
        unit = np.asarray([1.0, 5.0, 2.0])
        w = np.ones(3)
        dropped, cost = trim_outliers(unit, w, 1, "median")
        assert dropped[1] == pytest.approx(1.0)
        assert cost == pytest.approx(3.0)

    def test_partial_drop_of_weighted_demand(self):
        unit = np.asarray([1.0, 10.0])
        w = np.asarray([1.0, 5.0])
        dropped, cost = trim_outliers(unit, w, 2, "median")
        assert dropped[1] == pytest.approx(2.0)
        assert cost == pytest.approx(1.0 + 3 * 10.0)

    def test_center_never_partially_drops(self):
        unit = np.asarray([1.0, 10.0])
        w = np.asarray([1.0, 5.0])
        dropped, cost = trim_outliers(unit, w, 2, "center")
        # The weight-5 demand does not fit in the budget, so the max stays.
        assert dropped[1] == 0.0
        assert cost == pytest.approx(10.0)

    def test_center_full_drop(self):
        unit = np.asarray([1.0, 10.0])
        w = np.asarray([1.0, 5.0])
        dropped, cost = trim_outliers(unit, w, 5, "center")
        assert dropped[1] == pytest.approx(5.0)
        assert cost == pytest.approx(1.0)

    def test_zero_budget(self):
        unit = np.asarray([1.0, 2.0])
        dropped, cost = trim_outliers(unit, np.ones(2), 0, "median")
        assert np.allclose(dropped, 0.0)
        assert cost == pytest.approx(3.0)

    def test_budget_exceeds_total_weight(self):
        unit = np.asarray([1.0, 2.0])
        dropped, cost = trim_outliers(unit, np.ones(2), 10, "median")
        assert cost == pytest.approx(0.0)
        assert dropped.sum() == pytest.approx(2.0)

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            trim_outliers(np.asarray([1.0]), np.asarray([1.0]), -1, "median")

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            trim_outliers(np.asarray([1.0]), np.asarray([-1.0]), 0, "median")

    def test_ties_are_stable(self):
        unit = np.asarray([5.0, 5.0, 5.0])
        dropped, _ = trim_outliers(unit, np.ones(3), 1, "median")
        # Stable sort keeps the first index among equals.
        assert dropped[0] == pytest.approx(1.0)


class TestAssignWithOutliers:
    def test_median_outlier_identified(self, costs):
        sol = assign_with_outliers(costs, [0, 1], 1, objective="median")
        assert np.array_equal(sol.outlier_indices, [4])
        assert sol.cost == pytest.approx(0.0 + 1.0 + 0.0 + 1.0)

    def test_center_objective(self, costs):
        sol = assign_with_outliers(costs, [0, 1], 1, objective="center")
        assert sol.cost == pytest.approx(1.0)
        assert sol.objective == "center"

    def test_zero_budget_serves_everyone(self, costs):
        sol = assign_with_outliers(costs, [0, 1], 0, objective="median")
        assert sol.outlier_indices.size == 0
        assert sol.outlier_weight == 0.0

    def test_weighted(self, costs):
        w = np.asarray([1.0, 1.0, 1.0, 1.0, 3.0])
        sol = assign_with_outliers(costs, [0, 1], 3, weights=w, objective="median")
        assert sol.outlier_weight == pytest.approx(3.0)
        assert np.array_equal(sol.outlier_indices, [4])

    def test_weights_shape_validated(self, costs):
        with pytest.raises(ValueError):
            assign_with_outliers(costs, [0], 0, weights=np.ones(3))

    def test_solution_cost_shortcut(self, costs):
        assert solution_cost(costs, [0, 1], 1, objective="median") == pytest.approx(2.0)

    def test_cost_monotone_in_budget(self, costs):
        costs_at = [
            solution_cost(costs, [0, 1], t, objective="median") for t in range(5)
        ]
        assert all(a >= b - 1e-12 for a, b in zip(costs_at, costs_at[1:]))
