"""Tests for the Charikar-style (k, t)-center with outliers."""

import numpy as np
import pytest

from repro.metrics import build_cost_matrix
from repro.sequential import kcenter_with_outliers
from repro.sequential.kcenter_outliers import candidate_radii


class TestCandidateRadii:
    def test_contains_all_distinct_values_when_small(self):
        mat = np.asarray([[0.0, 1.0], [2.0, 3.0]])
        radii = candidate_radii(mat)
        assert set(radii.tolist()) == {0.0, 1.0, 2.0, 3.0}

    def test_subsampling_respects_bounds(self, small_cost_matrix):
        radii = candidate_radii(small_cost_matrix, max_candidates=32)
        assert radii.size <= 32
        assert radii[0] == pytest.approx(small_cost_matrix.min())
        assert radii[-1] == pytest.approx(small_cost_matrix.max())

    def test_sorted(self, small_cost_matrix):
        radii = candidate_radii(small_cost_matrix, max_candidates=50)
        assert np.all(np.diff(radii) >= 0)


class TestKCenterWithOutliers:
    def test_respects_budgets(self, small_cost_matrix, small_workload):
        sol = kcenter_with_outliers(small_cost_matrix, 3, 15)
        assert sol.n_centers <= 3
        assert sol.outlier_weight <= 15 + 1e-9

    def test_outliers_improve_cost(self, small_cost_matrix):
        with_outliers = kcenter_with_outliers(small_cost_matrix, 3, 15)
        without = kcenter_with_outliers(small_cost_matrix, 3, 0)
        assert with_outliers.cost <= without.cost + 1e-9

    def test_ignores_planted_outliers(self, small_cost_matrix, small_workload):
        sol = kcenter_with_outliers(small_cost_matrix, 3, small_workload.n_outliers)
        planted = set(np.flatnonzero(small_workload.outlier_mask).tolist())
        found = set(sol.outlier_indices.tolist())
        # At least two thirds of the planted outliers should be excluded on a
        # well-separated workload.
        assert len(found & planted) >= int(0.66 * len(planted))

    def test_approximation_vs_planted_structure(self, small_cost_matrix, small_workload):
        # Excluding the planted outliers, the remaining radius should be on the
        # order of the cluster spread (<< the outlier distances).
        sol = kcenter_with_outliers(small_cost_matrix, 3, small_workload.n_outliers)
        inlier_spread = 6 * 0.8  # ~6 sigma of the generating Gaussian
        assert sol.cost < 3 * inlier_spread

    def test_weighted_budget(self):
        costs = np.asarray(
            [
                [0.0, 10.0],
                [10.0, 0.0],
                [50.0, 50.0],
            ]
        )
        weights = np.asarray([1.0, 1.0, 2.0])
        # Budget 1 cannot absorb the weight-2 demand: it stays and dominates.
        sol_small = kcenter_with_outliers(costs, 2, 1, weights=weights)
        assert sol_small.cost == pytest.approx(50.0)
        # Budget 2 can drop it entirely.
        sol_big = kcenter_with_outliers(costs, 2, 2, weights=weights)
        assert sol_big.cost == pytest.approx(0.0)

    def test_zero_outliers_still_covers(self, small_cost_matrix):
        sol = kcenter_with_outliers(small_cost_matrix, 5, 0)
        assert sol.outlier_indices.size == 0
        assert np.all(sol.assignment >= 0)

    def test_single_center(self, small_cost_matrix):
        sol = kcenter_with_outliers(small_cost_matrix, 1, 0)
        assert sol.n_centers == 1
        assert sol.cost == pytest.approx(small_cost_matrix[:, sol.centers[0]].max())

    def test_invalid_parameters(self, small_cost_matrix):
        with pytest.raises(ValueError):
            kcenter_with_outliers(small_cost_matrix, 0, 1)
        with pytest.raises(ValueError):
            kcenter_with_outliers(small_cost_matrix, 1, -1)
        with pytest.raises(ValueError):
            kcenter_with_outliers(np.ones(3), 1, 0)

    def test_metadata_records_method(self, small_cost_matrix):
        sol = kcenter_with_outliers(small_cost_matrix, 3, 5)
        assert sol.metadata["method"] == "charikar_greedy"
        assert sol.metadata["radius_guess"] is not None

    def test_asymmetric_demand_facility_sets(self, small_metric):
        # Facilities restricted to the first 20 points.
        costs = build_cost_matrix(small_metric, range(len(small_metric)), range(20), "center")
        sol = kcenter_with_outliers(costs, 3, 10)
        assert np.all(sol.centers < 20)
