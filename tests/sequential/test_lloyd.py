"""Tests for the trimmed Lloyd k-means solver."""

import numpy as np
import pytest

from repro.sequential import trimmed_lloyd_kmeans


class TestTrimmedLloyd:
    def test_basic_output(self, small_workload):
        sol = trimmed_lloyd_kmeans(small_workload.points, 3, 15, rng=0)
        assert sol.objective == "means"
        assert sol.n_centers <= 3
        assert sol.outlier_weight == pytest.approx(15.0)

    def test_snapped_centers_are_input_indices(self, small_workload):
        sol = trimmed_lloyd_kmeans(small_workload.points, 3, 15, rng=0)
        assert np.all(sol.centers >= 0)
        assert np.all(sol.centers < small_workload.n_points)
        assert sol.metadata["snapped"] is True

    def test_unsnapped_keeps_continuous_centers(self, small_workload):
        sol = trimmed_lloyd_kmeans(small_workload.points, 3, 15, snap_to_points=False, rng=0)
        assert sol.metadata["center_coords"].shape == (3, 2)
        assert sol.metadata["snapped"] is False

    def test_trimming_excludes_planted_outliers(self, small_workload):
        sol = trimmed_lloyd_kmeans(
            small_workload.points, 3, small_workload.n_outliers, rng=1, n_init=3
        )
        planted = set(np.flatnonzero(small_workload.outlier_mask).tolist())
        found = set(sol.outlier_indices.tolist())
        assert len(found & planted) >= int(0.6 * len(planted))

    def test_outliers_reduce_cost(self, small_workload):
        trimmed = trimmed_lloyd_kmeans(small_workload.points, 3, 15, rng=0)
        untrimmed = trimmed_lloyd_kmeans(small_workload.points, 3, 0, rng=0)
        assert trimmed.cost < untrimmed.cost

    def test_t_zero(self, small_workload):
        sol = trimmed_lloyd_kmeans(small_workload.points, 3, 0, rng=0)
        assert sol.outlier_indices.size == 0

    def test_weights_accepted(self, small_workload):
        w = np.ones(small_workload.n_points)
        sol = trimmed_lloyd_kmeans(small_workload.points, 3, 10, weights=w, rng=0)
        assert sol.cost >= 0

    def test_invalid_parameters(self, small_workload):
        pts = small_workload.points
        with pytest.raises(ValueError):
            trimmed_lloyd_kmeans(pts, 0, 1)
        with pytest.raises(ValueError):
            trimmed_lloyd_kmeans(pts, 2, pts.shape[0])
        with pytest.raises(ValueError):
            trimmed_lloyd_kmeans(pts, 2, 1, weights=np.ones(3))

    def test_deterministic_given_seed(self, small_workload):
        a = trimmed_lloyd_kmeans(small_workload.points, 3, 15, rng=11)
        b = trimmed_lloyd_kmeans(small_workload.points, 3, 15, rng=11)
        assert a.cost == pytest.approx(b.cost)
