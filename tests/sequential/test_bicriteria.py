"""Tests for the Theorem 3.1 bicriteria interface."""

import numpy as np
import pytest

from repro.sequential import bicriteria_solve
from repro.sequential.bicriteria import relaxed_budgets


class TestRelaxedBudgets:
    def test_relax_outliers(self):
        assert relaxed_budgets(3, 10, 0.5, "outliers") == (3, 15)

    def test_relax_centers(self):
        assert relaxed_budgets(3, 10, 0.5, "centers") == (5, 10)

    def test_epsilon_zero(self):
        assert relaxed_budgets(3, 10, 0.0, "outliers") == (3, 10)

    def test_floor_and_ceil_behaviour(self):
        # (1 + 0.1) * 7 = 7.7 -> 7 outliers; ceil for centers: 3.3 -> 4.
        assert relaxed_budgets(3, 7, 0.1, "outliers") == (3, 7)
        assert relaxed_budgets(3, 7, 0.1, "centers") == (4, 7)

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValueError):
            relaxed_budgets(3, 10, -0.5, "outliers")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            relaxed_budgets(3, 10, 0.5, "both")


class TestBicriteriaSolve:
    def test_outlier_relaxation_median(self, small_cost_matrix):
        sol = bicriteria_solve(small_cost_matrix, 3, 10, epsilon=1.0, objective="median", rng=0)
        assert sol.n_centers <= 3
        assert sol.outlier_weight <= 20 + 1e-9
        assert sol.metadata["t_used"] == 20

    def test_center_relaxation_opens_more_centers(self, small_cost_matrix):
        sol = bicriteria_solve(
            small_cost_matrix, 3, 10, epsilon=1.0, relax="centers", objective="median", rng=0
        )
        assert sol.metadata["k_used"] == 6
        assert sol.outlier_weight <= 10 + 1e-9

    def test_center_objective_routed_to_charikar(self, small_cost_matrix):
        sol = bicriteria_solve(small_cost_matrix, 3, 10, epsilon=0.5, objective="center")
        assert sol.metadata["method"] == "charikar_greedy"

    def test_means_objective(self, small_metric):
        from repro.metrics import build_cost_matrix

        n = len(small_metric)
        costs = build_cost_matrix(small_metric, range(n), range(n), "means")
        sol = bicriteria_solve(costs, 3, 15, epsilon=0.5, objective="means", rng=0)
        assert sol.objective == "means"

    def test_larger_epsilon_never_hurts_much(self, small_cost_matrix):
        tight = bicriteria_solve(small_cost_matrix, 3, 10, epsilon=0.1, objective="median", rng=0)
        loose = bicriteria_solve(small_cost_matrix, 3, 10, epsilon=1.0, objective="median", rng=0)
        # More allowed outliers should not lead to a (much) costlier solution.
        assert loose.cost <= tight.cost * 1.05 + 1e-9

    def test_weights_forwarded(self, small_cost_matrix):
        w = np.ones(small_cost_matrix.shape[0])
        w[:5] = 10.0
        sol = bicriteria_solve(
            small_cost_matrix, 3, 10, epsilon=0.5, weights=w, objective="median", rng=0
        )
        assert sol.outlier_weight <= 15 + 1e-9

    def test_metadata_records_requested_budgets(self, small_cost_matrix):
        sol = bicriteria_solve(small_cost_matrix, 4, 9, epsilon=0.5, objective="median", rng=0)
        assert sol.metadata["k_requested"] == 4
        assert sol.metadata["t_requested"] == 9.0
