"""Tests for site-local preclustering (geometric grids, cost curves, witnesses)."""

import numpy as np
import pytest

from repro.core import geometric_grid, precluster_site
from repro.core.preclustering import precluster_site_center
from repro.metrics import build_cost_matrix


class TestGeometricGrid:
    def test_contains_endpoints(self):
        grid = geometric_grid(40, rho=2.0)
        assert grid[0] == 0
        assert grid[-1] == 40

    def test_logarithmic_size(self):
        grid = geometric_grid(1000, rho=2.0)
        assert grid.size <= 2 + int(np.log2(1000)) + 1

    def test_rho_controls_density(self):
        coarse = geometric_grid(100, rho=4.0)
        fine = geometric_grid(100, rho=1.2)
        assert fine.size > coarse.size

    def test_t_zero(self):
        assert np.array_equal(geometric_grid(0), [0])

    def test_upper_clipping(self):
        grid = geometric_grid(100, rho=2.0, upper=10)
        assert grid.max() == 10

    def test_invalid_rho(self):
        with pytest.raises(ValueError):
            geometric_grid(10, rho=1.0)

    def test_negative_t(self):
        with pytest.raises(ValueError):
            geometric_grid(-1)

    def test_values_strictly_increasing(self):
        grid = geometric_grid(64, rho=2.0)
        assert np.all(np.diff(grid) > 0)


class TestPreclusterSite:
    @pytest.fixture
    def local_costs(self, small_metric):
        indices = np.arange(0, 60)
        return build_cost_matrix(small_metric, indices, indices, "median")

    def test_costs_non_increasing_in_q(self, local_costs):
        pre = precluster_site(local_costs, 4, 12, rng=0)
        assert np.all(np.diff(pre.costs) <= 1e-9)

    def test_grid_is_geometric(self, local_costs):
        pre = precluster_site(local_costs, 4, 12, rng=0)
        assert np.array_equal(pre.grid, geometric_grid(12, upper=60))

    def test_profile_matches_costs_at_vertices(self, local_costs):
        pre = precluster_site(local_costs, 4, 12, rng=0)
        for q, cost in zip(pre.grid, pre.costs):
            # Hull value is a lower bound and coincides at hull vertices.
            assert pre.profile(int(q)) <= cost + 1e-9

    def test_solutions_cached(self, local_costs):
        pre = precluster_site(local_costs, 4, 12, rng=0)
        for q in pre.grid:
            assert int(q) in pre.solutions
            assert pre.solutions[int(q)].outlier_weight <= q + 1e-9

    def test_solution_for_uncached_value(self, local_costs):
        pre = precluster_site(local_costs, 4, 12, rng=0)
        sol = pre.solution_for(3, 4, "median", rng=1)
        assert sol.outlier_weight <= 3 + 1e-9
        assert 3 in pre.solutions

    def test_q_exceeding_site_size_gives_zero_cost(self, small_metric):
        indices = np.arange(0, 10)
        costs = build_cost_matrix(small_metric, indices, indices, "median")
        pre = precluster_site(costs, 2, 20, rng=0)
        assert pre.costs[-1] == pytest.approx(0.0)

    def test_explicit_grid(self, local_costs):
        pre = precluster_site(local_costs, 4, 12, grid=[0, 5, 12], rng=0)
        assert np.array_equal(pre.grid, [0, 5, 12])

    def test_weights_supported(self, local_costs):
        w = np.ones(local_costs.shape[0])
        w[:3] = 4.0
        pre = precluster_site(local_costs, 4, 6, weights=w, rng=0)
        assert np.all(np.diff(pre.costs) <= 1e-9)

    def test_means_objective(self, small_metric):
        indices = np.arange(0, 50)
        costs = build_cost_matrix(small_metric, indices, indices, "means")
        pre = precluster_site(costs, 4, 10, objective="means", rng=0)
        assert pre.metadata["objective"] == "means"


class TestPreclusterSiteCenter:
    def test_witnesses_monotone(self, small_metric):
        local = small_metric.subset(np.arange(0, 70))
        pre = precluster_site_center(local, 3, 12, rng=0)
        assert pre.witnesses.size == 12
        assert np.all(np.diff(pre.witnesses) <= 1e-9)

    def test_marginals_from_grid_conservative(self, small_metric):
        local = small_metric.subset(np.arange(0, 70))
        pre = precluster_site_center(local, 3, 12, rng=0)
        reconstructed = pre.marginals_from_grid(12)
        assert reconstructed.shape == (12,)
        assert np.all(np.diff(reconstructed) <= 1e-9)
        # Reconstruction never underestimates the true witness.
        assert np.all(reconstructed >= pre.witnesses - 1e-9)

    def test_transmitted_words_scale_with_grid(self, small_metric):
        local = small_metric.subset(np.arange(0, 70))
        pre = precluster_site_center(local, 3, 12, rho=2.0, rng=0)
        assert pre.transmitted_words() == 2 * pre.grid.size

    def test_tiny_site(self, small_metric):
        local = small_metric.subset(np.arange(0, 4))
        pre = precluster_site_center(local, 3, 12, rng=0)
        # Witnesses beyond the site's size are zero.
        assert np.all(pre.witnesses[3:] == 0.0)
