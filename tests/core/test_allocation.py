"""Tests for the outlier-budget allocation (Lemmas 3.3 / 3.4)."""

import numpy as np
import pytest

from repro.core import CostProfile, allocate_outlier_budget, optimal_allocation_dp
from repro.core.allocation import allocate_from_profiles


def _profile_from_costs(costs):
    qs = np.arange(len(costs))
    return CostProfile.from_evaluations(qs, costs, t_max=len(costs) - 1)


class TestAllocateOutlierBudget:
    def test_budget_distributed_to_largest_marginals(self):
        # Site 0 gains a lot from its first two outliers; site 1 gains little.
        m0 = np.asarray([10.0, 8.0, 0.5, 0.1])
        m1 = np.asarray([1.0, 0.5, 0.2, 0.1])
        alloc = allocate_outlier_budget([m0, m1], budget=3)
        assert alloc.t_allocated[0] == 2
        assert alloc.t_allocated[1] == 1
        assert alloc.total_allocated == 3

    def test_total_equals_budget(self):
        rng = np.random.default_rng(0)
        marginals = [np.sort(rng.random(20))[::-1] for _ in range(5)]
        alloc = allocate_outlier_budget(marginals, budget=17)
        assert alloc.total_allocated == 17

    def test_budget_zero(self):
        alloc = allocate_outlier_budget([np.asarray([1.0, 0.5])], budget=0)
        assert alloc.total_allocated == 0
        assert alloc.exceptional_site is None

    def test_budget_exceeds_marginals(self):
        alloc = allocate_outlier_budget([np.asarray([1.0]), np.asarray([0.5])], budget=10)
        assert alloc.total_allocated == 2

    def test_threshold_is_rank_budget_value(self):
        m0 = np.asarray([10.0, 4.0])
        m1 = np.asarray([6.0, 1.0])
        alloc = allocate_outlier_budget([m0, m1], budget=2)
        # Sorted marginals: 10 (s0,q1), 6 (s1,q1), 4, 1 -> rank 2 is 6 at site 1.
        assert alloc.threshold == pytest.approx(6.0)
        assert alloc.exceptional_site == 1
        assert alloc.exceptional_q == 1

    def test_stable_tie_break_prefers_lexicographic(self):
        m0 = np.asarray([5.0, 5.0])
        m1 = np.asarray([5.0, 5.0])
        alloc = allocate_outlier_budget([m0, m1], budget=2)
        # Ties broken by (site, q): the two winners are (0,1) and (0,2).
        assert alloc.t_allocated[0] == 2
        assert alloc.t_allocated[1] == 0

    def test_increasing_marginals_rejected(self):
        with pytest.raises(ValueError):
            allocate_outlier_budget([np.asarray([1.0, 2.0])], budget=1)

    def test_negative_marginals_rejected(self):
        with pytest.raises(ValueError):
            allocate_outlier_budget([np.asarray([-0.5])], budget=1)

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            allocate_outlier_budget([np.asarray([1.0])], budget=-1)

    def test_no_sites_rejected(self):
        with pytest.raises(ValueError):
            allocate_outlier_budget([], budget=1)

    def test_empty_marginals_ok(self):
        alloc = allocate_outlier_budget([np.empty(0), np.empty(0)], budget=3)
        assert alloc.total_allocated == 0

    def test_different_lengths(self):
        alloc = allocate_outlier_budget(
            [np.asarray([5.0, 4.0, 3.0]), np.asarray([10.0])], budget=3
        )
        assert alloc.t_allocated[1] == 1
        assert alloc.t_allocated[0] == 2


class TestOptimalityAgainstDP:
    def test_matches_dp_on_convex_tables(self):
        rng = np.random.default_rng(2)
        profiles = []
        tables = []
        for _ in range(4):
            # Random convex non-increasing cost table on {0..12}.
            marg = np.sort(rng.random(12))[::-1] * 10
            costs = np.concatenate([[marg.sum()], marg.sum() - np.cumsum(marg)])
            tables.append(costs)
            profiles.append(_profile_from_costs(costs))
        budget = 9
        alloc = allocate_from_profiles(profiles, budget)
        greedy_cost = sum(p(int(q)) for p, q in zip(profiles, alloc.t_allocated))
        _, dp_cost = optimal_allocation_dp(tables, budget)
        assert greedy_cost == pytest.approx(dp_cost, rel=1e-9)

    def test_dp_traceback_valid(self):
        tables = [np.asarray([10.0, 4.0, 1.0]), np.asarray([8.0, 7.0, 6.9])]
        t_alloc, cost = optimal_allocation_dp(tables, 2)
        assert t_alloc.sum() <= 2
        assert cost == pytest.approx(tables[0][int(t_alloc[0])] + tables[1][int(t_alloc[1])])
        # Both units should go to site 0 whose marginals are much larger.
        assert t_alloc[0] == 2

    def test_dp_invalid_inputs(self):
        with pytest.raises(ValueError):
            optimal_allocation_dp([np.asarray([1.0])], -1)
        with pytest.raises(ValueError):
            optimal_allocation_dp([np.empty(0)], 1)

    def test_dp_matches_brute_force_on_arbitrary_tables(self):
        """The vectorised min-plus step must equal exhaustive enumeration
        (cost *and* a feasible optimal traceback) on non-convex tables."""
        import itertools

        rng = np.random.default_rng(7)
        for trial in range(5):
            tables = [
                rng.random(int(rng.integers(1, 6))) * 10 for _ in range(3)
            ]
            budget = int(rng.integers(0, 8))
            t_alloc, cost = optimal_allocation_dp(tables, budget)
            assert t_alloc.sum() <= budget
            assert cost == pytest.approx(
                sum(tbl[min(int(q), tbl.size - 1)] for tbl, q in zip(tables, t_alloc))
            )
            best = min(
                sum(tbl[q] for tbl, q in zip(tables, qs))
                for qs in itertools.product(*(range(tbl.size) for tbl in tables))
                if sum(qs) <= budget
            )
            assert cost == pytest.approx(best)

    def test_dp_zero_budget(self):
        tables = [np.asarray([5.0, 1.0]), np.asarray([3.0, 2.0])]
        t_alloc, cost = optimal_allocation_dp(tables, 0)
        np.testing.assert_array_equal(t_alloc, [0, 0])
        assert cost == pytest.approx(8.0)

    def test_dp_ties_resolve_to_smallest_q(self):
        # Flat tables: every allocation is optimal; the ascending argmin
        # must keep q = 0 everywhere (the old scan's behaviour).
        tables = [np.full(4, 2.0), np.full(4, 3.0)]
        t_alloc, cost = optimal_allocation_dp(tables, 5)
        np.testing.assert_array_equal(t_alloc, [0, 0])
        assert cost == pytest.approx(5.0)


class TestAllocationFromProfiles:
    def test_profiles_path(self):
        p0 = _profile_from_costs(np.asarray([20.0, 10.0, 5.0, 2.5]))
        p1 = _profile_from_costs(np.asarray([4.0, 3.0, 2.0, 1.0]))
        alloc = allocate_from_profiles([p0, p1], budget=3)
        assert alloc.t_allocated[0] == 3
        assert alloc.t_allocated[1] == 0
