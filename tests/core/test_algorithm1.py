"""Tests for Algorithm 1 (distributed (k, (1+eps)t)-median/means)."""

import math

import numpy as np
import pytest

from repro.analysis import evaluate_centers
from repro.baselines import centralized_reference
from repro.core import distributed_partial_median
from repro.distributed import DistributedInstance, partition_balanced


@pytest.fixture(scope="module")
def result(small_instance):
    return distributed_partial_median(small_instance, epsilon=0.5, rng=0)


class TestAlgorithm1Structure:
    def test_two_rounds(self, result):
        assert result.rounds == 2
        assert result.ledger.n_rounds() == 2

    def test_k_centers(self, result, small_instance):
        assert 1 <= result.n_centers <= small_instance.k

    def test_centers_are_input_points(self, result, small_instance):
        assert np.all(result.centers >= 0)
        assert np.all(result.centers < small_instance.n_points)

    def test_outlier_budget(self, result, small_instance):
        expected = math.floor(1.5 * small_instance.t)
        assert result.outlier_budget == expected
        assert result.outliers.size <= expected

    def test_allocation_metadata(self, result, small_instance):
        t_alloc = result.metadata["t_allocated"]
        assert len(t_alloc) == small_instance.n_sites
        assert sum(t_alloc) <= 2 * small_instance.t  # rho * t with rho = 2
        assert all(ti >= 0 for ti in t_alloc)

    def test_message_kinds(self, result):
        kinds = result.ledger.words_by_kind()
        assert {"cost_profile", "allocation", "local_solution"} <= set(kinds)

    def test_round1_is_profiles_only(self, result):
        round1 = result.ledger.filter(round_index=1)
        assert all(m.kind == "cost_profile" for m in round1)

    def test_site_and_coordinator_times_recorded(self, result, small_instance):
        assert len(result.site_time) == small_instance.n_sites
        assert result.site_time_max > 0
        assert result.coordinator_time > 0


class TestAlgorithm1Communication:
    def test_words_scale_with_sk_plus_t(self, small_instance):
        result = distributed_partial_median(small_instance, epsilon=0.5, rng=0)
        s, k, t = small_instance.n_sites, small_instance.k, small_instance.t
        B = small_instance.words_per_point()
        # Generous constant: the point is the scale, not the constant.
        bound = 20 * (s * k + t) * B + 20 * s * np.log2(max(t, 2))
        assert result.total_words <= bound

    def test_cheaper_than_send_all(self, small_instance):
        from repro.baselines import send_all_protocol

        result = distributed_partial_median(small_instance, epsilon=0.5, rng=0)
        naive = send_all_protocol(small_instance, rng=0)
        assert result.total_words < naive.total_words


class TestAlgorithm1Quality:
    def test_constant_factor_vs_reference(self, small_instance, small_metric):
        result = distributed_partial_median(small_instance, epsilon=0.5, rng=0)
        realized = evaluate_centers(
            small_metric, result.centers, result.outlier_budget, objective="median"
        )
        reference = centralized_reference(
            small_metric, small_instance.k, small_instance.t, objective="median", rng=1
        )
        assert realized.cost <= 3.0 * reference.cost + 1e-9

    def test_finds_planted_outliers(self, small_instance, small_workload):
        result = distributed_partial_median(small_instance, epsilon=0.5, rng=0)
        planted = set(np.flatnonzero(small_workload.outlier_mask).tolist())
        found = set(result.outliers.tolist())
        assert len(found & planted) >= int(0.6 * len(planted))

    def test_epsilon_relaxation_grows_budget(self, small_instance):
        tight = distributed_partial_median(small_instance, epsilon=0.2, rng=0)
        loose = distributed_partial_median(small_instance, epsilon=1.0, rng=0)
        assert loose.outlier_budget > tight.outlier_budget

    def test_means_objective(self, small_metric, small_workload):
        shards = partition_balanced(small_workload.n_points, 3, rng=3)
        instance = DistributedInstance.from_partition(small_metric, shards, 3, 15, "means")
        result = distributed_partial_median(instance, epsilon=0.5, rng=0)
        assert result.objective == "means"
        realized = evaluate_centers(
            small_metric, result.centers, result.outlier_budget, objective="means"
        )
        reference = centralized_reference(small_metric, 3, 15, objective="means", rng=1)
        assert realized.cost <= 6.0 * reference.cost + 1e-9

    def test_deterministic_given_seed(self, small_instance):
        a = distributed_partial_median(small_instance, epsilon=0.5, rng=42)
        b = distributed_partial_median(small_instance, epsilon=0.5, rng=42)
        assert np.array_equal(a.centers, b.centers)
        assert a.total_words == b.total_words


class TestAlgorithm1Validation:
    def test_center_objective_rejected(self, small_center_instance):
        with pytest.raises(ValueError):
            distributed_partial_median(small_center_instance)

    def test_bad_epsilon(self, small_instance):
        with pytest.raises(ValueError):
            distributed_partial_median(small_instance, epsilon=0.0)

    def test_bad_rho(self, small_instance):
        with pytest.raises(ValueError):
            distributed_partial_median(small_instance, rho=1.0)

    def test_single_site(self, small_metric, small_workload):
        instance = DistributedInstance.from_partition(
            small_metric, [np.arange(small_workload.n_points)], 3, 15, "median"
        )
        result = distributed_partial_median(instance, epsilon=0.5, rng=0)
        assert result.n_centers <= 3

    def test_realize_false_returns_explicit_outliers(self, small_instance):
        result = distributed_partial_median(small_instance, epsilon=0.5, rng=0, realize=False)
        assert result.outliers is not None
        assert result.metadata["realized_assignment"] is None
