"""Tests for the Theorem 3.8 no-shipping variant."""

import numpy as np
import pytest

from repro.analysis import evaluate_centers
from repro.baselines import centralized_reference
from repro.core import distributed_partial_median, distributed_partial_median_no_shipping
from repro.core.algorithm1_modified import combine_two_solutions
from repro.metrics import build_cost_matrix
from repro.sequential import local_search_partial


@pytest.fixture(scope="module")
def result(small_instance):
    return distributed_partial_median_no_shipping(small_instance, epsilon=0.5, delta=0.5, rng=0)


class TestNoShippingStructure:
    def test_two_rounds(self, result):
        assert result.rounds == 2

    def test_no_outlier_points_cross_the_wire(self, result, small_instance):
        # Communication must not grow with t: every round-2 message carries at
        # most 2k centers (B words each) + counts + a scalar.
        B = small_instance.words_per_point()
        k = small_instance.k
        for message in result.ledger.filter(kind="local_solution"):
            assert message.words <= 4 * k * (B + 1) + 1 + 1e-9

    def test_outliers_not_named(self, result):
        assert result.outliers is None

    def test_budget_is_two_plus_eps_plus_delta(self, result, small_instance):
        assert result.outlier_budget == int((2 + 0.5 + 0.5) * small_instance.t)

    def test_cheaper_than_shipping_variant(self, small_instance):
        shipping = distributed_partial_median(small_instance, epsilon=0.5, rng=0)
        no_shipping = distributed_partial_median_no_shipping(
            small_instance, epsilon=0.5, delta=0.5, rng=0
        )
        assert no_shipping.total_words < shipping.total_words

    def test_preclustering_ignored_recorded(self, result, small_instance):
        ignored = result.metadata["preclustering_ignored"]
        assert 0 <= ignored <= (1 + 0.5) * small_instance.t + 1


class TestNoShippingQuality:
    def test_constant_factor_with_larger_budget(self, small_instance, small_metric):
        result = distributed_partial_median_no_shipping(
            small_instance, epsilon=0.5, delta=0.5, rng=0
        )
        realized = evaluate_centers(
            small_metric, result.centers, result.outlier_budget, objective="median"
        )
        reference = centralized_reference(
            small_metric, small_instance.k, small_instance.t, objective="median", rng=1
        )
        assert realized.cost <= 3.0 * reference.cost + 1e-9

    def test_validation(self, small_instance, small_center_instance):
        with pytest.raises(ValueError):
            distributed_partial_median_no_shipping(small_center_instance)
        with pytest.raises(ValueError):
            distributed_partial_median_no_shipping(small_instance, delta=0.0)


class TestCombineTwoSolutions:
    def test_lemma_3_7_interpolation_bound(self, small_metric):
        indices = np.arange(0, 80)
        costs = build_cost_matrix(small_metric, indices, indices, "median")
        sol_low = local_search_partial(costs, 4, 2, rng=0)
        sol_high = local_search_partial(costs, 4, 10, rng=1)
        t_i = 6
        combined = combine_two_solutions(costs, sol_low, sol_high, t_i, "median")
        theta = (t_i - 2) / (10 - 2)
        interpolated = (1 - theta) * sol_low.cost + theta * sol_high.cost
        # Lemma 3.7: the 4k-center combination is no worse than the interpolation.
        assert combined.cost <= interpolated + 1e-9
        assert combined.n_centers <= sol_low.n_centers + sol_high.n_centers
        assert combined.outlier_weight <= t_i + 1e-9

    def test_union_of_centers(self, small_metric):
        indices = np.arange(0, 40)
        costs = build_cost_matrix(small_metric, indices, indices, "median")
        sol_low = local_search_partial(costs, 2, 1, rng=0)
        sol_high = local_search_partial(costs, 2, 5, rng=1)
        combined = combine_two_solutions(costs, sol_low, sol_high, 3, "median")
        union = set(sol_low.centers.tolist()) | set(sol_high.centers.tolist())
        assert set(combined.centers.tolist()) <= union
