"""Tests for lower convex hulls and CostProfile."""

import numpy as np
import pytest

from repro.core import CostProfile, lower_convex_hull


class TestLowerConvexHull:
    def test_convex_input_kept_entirely(self):
        qs = np.asarray([0.0, 1.0, 2.0, 4.0])
        costs = np.asarray([10.0, 6.0, 3.0, 0.0])  # strictly convex decreasing
        hx, hy = lower_convex_hull(qs, costs)
        assert np.array_equal(hx, qs)
        assert np.array_equal(hy, costs)

    def test_concave_point_dropped(self):
        qs = np.asarray([0.0, 1.0, 2.0])
        costs = np.asarray([10.0, 9.5, 0.0])  # middle point lies above the chord
        hx, hy = lower_convex_hull(qs, costs)
        assert np.array_equal(hx, [0.0, 2.0])
        assert np.array_equal(hy, [10.0, 0.0])

    def test_hull_below_input(self):
        rng = np.random.default_rng(0)
        qs = np.arange(20, dtype=float)
        costs = np.sort(rng.random(20))[::-1] * 100
        hx, hy = lower_convex_hull(qs, costs)
        interp = np.interp(qs, hx, hy)
        assert np.all(interp <= costs + 1e-9)

    def test_hull_is_convex(self):
        rng = np.random.default_rng(1)
        qs = np.arange(30, dtype=float)
        costs = np.sort(rng.random(30))[::-1] * 50
        hx, hy = lower_convex_hull(qs, costs)
        slopes = np.diff(hy) / np.diff(hx)
        assert np.all(np.diff(slopes) >= -1e-9)

    def test_duplicate_q_keeps_min(self):
        hx, hy = lower_convex_hull([0.0, 0.0, 1.0], [5.0, 3.0, 0.0])
        assert hy[0] == 3.0

    def test_unsorted_input(self):
        hx, hy = lower_convex_hull([2.0, 0.0, 1.0], [0.0, 10.0, 4.0])
        assert np.array_equal(hx, [0.0, 1.0, 2.0])
        assert np.array_equal(hy, [10.0, 4.0, 0.0])

    def test_collinear_middle_point_not_a_vertex(self):
        # (1, 5) lies exactly on the chord from (0, 10) to (2, 0): the hull only
        # keeps the endpoints, and interpolation recovers the middle value.
        hx, hy = lower_convex_hull([0.0, 1.0, 2.0], [10.0, 5.0, 0.0])
        assert np.array_equal(hx, [0.0, 2.0])
        assert np.interp(1.0, hx, hy) == pytest.approx(5.0)

    def test_single_point(self):
        hx, hy = lower_convex_hull([3.0], [7.0])
        assert np.array_equal(hx, [3.0])
        assert np.array_equal(hy, [7.0])

    def test_mismatched_input_rejected(self):
        with pytest.raises(ValueError):
            lower_convex_hull([1.0, 2.0], [1.0])
        with pytest.raises(ValueError):
            lower_convex_hull([], [])


class TestCostProfile:
    @pytest.fixture
    def profile(self):
        return CostProfile.from_evaluations(
            qs=[0, 1, 2, 4, 8], costs=[100.0, 60.0, 40.0, 20.0, 5.0], t_max=8
        )

    def test_evaluation_at_vertices(self, profile):
        assert profile(0) == pytest.approx(100.0)
        assert profile(8) == pytest.approx(5.0)

    def test_interpolation_between_vertices(self, profile):
        assert profile(3) == pytest.approx((40.0 + 20.0) / 2)

    def test_constant_beyond_last_vertex(self):
        prof = CostProfile.from_evaluations([0, 2], [10.0, 4.0], t_max=10)
        assert prof(7) == pytest.approx(4.0)

    def test_marginals_non_negative_non_increasing(self, profile):
        marginals = profile.marginals()
        assert marginals.shape == (8,)
        assert np.all(marginals >= 0)
        assert np.all(np.diff(marginals) <= 1e-9)

    def test_marginals_sum_telescopes(self, profile):
        marginals = profile.marginals()
        assert marginals.sum() == pytest.approx(profile(0) - profile(8))

    def test_vertex_queries(self, profile):
        assert profile.is_vertex(4)
        assert not profile.is_vertex(3)
        assert profile.snap_up_to_vertex(3) == 4
        assert profile.snap_down_to_vertex(3) == 2
        assert profile.bracketing_vertices(3) == (2, 4)

    def test_snap_beyond_range(self, profile):
        assert profile.snap_up_to_vertex(100) == 8  # falls back to the largest vertex
        assert profile.snap_down_to_vertex(-5) == 0

    def test_words(self, profile):
        assert profile.words == 2 * profile.n_vertices

    def test_constant_zero(self):
        prof = CostProfile.constant_zero(5)
        assert prof(3) == 0.0
        assert np.all(prof.marginals() == 0.0)

    def test_t_max_zero(self):
        prof = CostProfile.from_evaluations([0], [3.0], t_max=0)
        assert prof.marginals().size == 0

    def test_non_monotone_hull_qs_rejected(self):
        with pytest.raises(ValueError):
            CostProfile(hull_qs=np.asarray([0.0, 0.0]), hull_costs=np.asarray([1.0, 0.0]), t_max=2)

    def test_call_vectorised(self, profile):
        out = profile(np.asarray([0, 4, 8]))
        assert np.allclose(out, [100.0, 20.0, 5.0])
