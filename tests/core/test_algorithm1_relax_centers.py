"""Tests for the (1+eps)k-centers relaxation of Algorithm 1 (Table 2 rows)."""

import numpy as np
import pytest

from repro.analysis import evaluate_centers
from repro.baselines import centralized_reference
from repro.core import distributed_partial_median


class TestRelaxCenters:
    def test_exact_outlier_budget(self, small_instance):
        result = distributed_partial_median(small_instance, epsilon=1.0, relax="centers", rng=0)
        assert result.outlier_budget == small_instance.t
        assert result.metadata["relax"] == "centers"

    def test_may_open_more_centers(self, small_instance):
        result = distributed_partial_median(small_instance, epsilon=1.0, relax="centers", rng=0)
        # (1+eps)k = 6 centers allowed; never more than that.
        assert result.n_centers <= 2 * small_instance.k
        assert result.rounds == 2

    def test_quality_with_extra_centers(self, small_instance, small_metric):
        result = distributed_partial_median(small_instance, epsilon=1.0, relax="centers", rng=0)
        realized = evaluate_centers(
            small_metric, result.centers, small_instance.t, objective="median"
        )
        reference = centralized_reference(
            small_metric, small_instance.k, small_instance.t, objective="median", rng=1
        )
        # With twice the centers and the same outlier budget, the realized cost
        # should certainly not exceed the k-center reference by much.
        assert realized.cost <= 1.5 * reference.cost

    def test_invalid_relax_rejected(self, small_instance):
        with pytest.raises(ValueError):
            distributed_partial_median(small_instance, relax="both")

    def test_outlier_relaxation_unchanged_by_default(self, small_instance):
        default = distributed_partial_median(small_instance, epsilon=0.5, rng=0)
        explicit = distributed_partial_median(small_instance, epsilon=0.5, relax="outliers", rng=0)
        assert np.array_equal(default.centers, explicit.centers)
        assert default.metadata["relax"] == "outliers"
