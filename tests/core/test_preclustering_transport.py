"""Transport behaviour of SitePreclustering: solution strip + dense spill.

A precluster crossing a transport (process pool, cluster socket, state
fault) must not drag its re-derivable weight along: the cached
``ClusterSolution``s collapse to rebuild recipes and a dense cost matrix
above the spill threshold crosses as a memmap handle.  ``solution_for``
transparently re-solves after a strip — bit-identically, which is what every
test here ultimately asserts.
"""

import pickle

import numpy as np
import pytest

from repro.core import preclustering
from repro.core.preclustering import (
    SitePreclustering,
    _StrippedSolution,
    precluster_site,
)
from repro.metrics.cost_matrix import build_cost_matrix
from repro.metrics.euclidean import EuclideanMetric


@pytest.fixture(scope="module")
def site_costs():
    rng = np.random.default_rng(7)
    points = np.concatenate(
        [rng.normal(0, 1, (30, 2)), rng.normal(10, 1, (30, 2)), rng.normal((0, 12), 1, (10, 2))]
    )
    metric = EuclideanMetric(points)
    idx = np.arange(len(points))
    return build_cost_matrix(metric, idx, idx, "median")


@pytest.fixture()
def precluster(site_costs):
    return precluster_site(site_costs, k_local=4, t=12, objective="median", rng=42)


def _roundtrip(obj):
    return pickle.loads(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


def _assert_same_solution(a, b):
    np.testing.assert_array_equal(a.centers, b.centers)
    np.testing.assert_array_equal(a.assignment, b.assignment)
    np.testing.assert_array_equal(a.dropped_weight, b.dropped_weight)
    assert a.cost == b.cost
    assert a.outlier_weight == b.outlier_weight
    assert a.objective == b.objective


class TestSolutionStrip:
    def test_pickle_strips_every_cached_solution(self, precluster):
        restored = _roundtrip(precluster)
        assert set(restored.solutions) == set(precluster.solutions)
        assert all(
            isinstance(s, _StrippedSolution) for s in restored.solutions.values()
        )

    def test_strip_shrinks_the_payload(self, precluster):
        stripped = len(pickle.dumps(precluster, protocol=pickle.HIGHEST_PROTOCOL))
        # The same object with the strip bypassed: pickle the raw dict.
        whole = len(
            pickle.dumps(
                {k: v for k, v in precluster.__dict__.items() if k != "_spill_shard"},
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        )
        assert stripped < whole

    def test_solution_for_rebuilds_bit_identical(self, precluster):
        restored = _roundtrip(precluster)
        for q in map(int, precluster.grid):
            original = precluster.solution_for(q, 4, "median", rng=0)
            rebuilt = restored.solution_for(q, 4, "median", rng=0)
            _assert_same_solution(original, rebuilt)
        # Rebuilds are cached: the second read returns the same object.
        q0 = int(precluster.grid[0])
        assert restored.solution_for(q0, 4, "median") is restored.solution_for(
            q0, 4, "median"
        )

    def test_zero_cost_solution_rebuilds(self, site_costs):
        n = site_costs.shape[0]
        pre = precluster_site(site_costs, k_local=3, t=n, objective="median", rng=5)
        zero_qs = [q for q, s in pre.solutions.items() if s.centers.size == 0]
        assert zero_qs, "a grid point at q >= n must hit the zero-cost branch"
        restored = _roundtrip(pre)
        for q in zero_qs:
            _assert_same_solution(
                pre.solution_for(q, 3, "median"), restored.solution_for(q, 3, "median")
            )

    def test_profile_and_costs_survive_roundtrip(self, precluster):
        restored = _roundtrip(precluster)
        np.testing.assert_array_equal(restored.grid, precluster.grid)
        np.testing.assert_array_equal(restored.costs, precluster.costs)
        np.testing.assert_array_equal(
            restored.profile.hull_qs, precluster.profile.hull_qs
        )
        np.testing.assert_array_equal(
            restored.profile.hull_costs, precluster.profile.hull_costs
        )

    def test_double_roundtrip_is_stable(self, precluster):
        twice = _roundtrip(_roundtrip(precluster))
        q = int(precluster.grid[-1])
        _assert_same_solution(
            precluster.solution_for(q, 4, "median"), twice.solution_for(q, 4, "median")
        )


class TestDenseSpill:
    def test_below_threshold_ships_inline(self, precluster):
        # Default threshold (256 KiB) far exceeds this 70x70 matrix.
        restored = _roundtrip(precluster)
        assert not isinstance(restored.cost_matrix, np.memmap)
        np.testing.assert_array_equal(restored.cost_matrix, precluster.cost_matrix)

    def test_above_threshold_spills_to_memmap_handle(self, precluster, monkeypatch):
        monkeypatch.setattr(preclustering, "TRANSPORT_SPILL_THRESHOLD", 1024)
        payload = pickle.dumps(precluster, protocol=pickle.HIGHEST_PROTOCOL)
        # The n^2 floats stayed out of the pickle stream...
        assert len(payload) < precluster.cost_matrix.nbytes
        restored = pickle.loads(payload)
        # ...and the receiving side reads the same values through a memmap.
        assert isinstance(restored.cost_matrix, np.memmap)
        np.testing.assert_array_equal(
            np.asarray(restored.cost_matrix), precluster.cost_matrix
        )
        # The local object is untouched (still dense in RAM)...
        assert not isinstance(precluster.cost_matrix, np.memmap)
        # ...and repeated pickles reuse the one spill file.
        again = pickle.loads(pickle.dumps(precluster, protocol=pickle.HIGHEST_PROTOCOL))
        assert again.cost_matrix.filename == restored.cost_matrix.filename

    def test_spilled_precluster_rebuilds_bit_identical(self, precluster, monkeypatch):
        monkeypatch.setattr(preclustering, "TRANSPORT_SPILL_THRESHOLD", 1024)
        restored = _roundtrip(precluster)
        for q in map(int, precluster.grid):
            _assert_same_solution(
                precluster.solution_for(q, 4, "median"),
                restored.solution_for(q, 4, "median"),
            )
