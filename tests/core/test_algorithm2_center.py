"""Tests for Algorithm 2 (distributed (k, t)-center)."""

import numpy as np
import pytest

from repro.analysis import evaluate_centers
from repro.baselines import centralized_reference
from repro.core import distributed_partial_center
from repro.distributed import DistributedInstance, partition_outliers_concentrated


@pytest.fixture(scope="module")
def result(small_center_instance):
    return distributed_partial_center(small_center_instance, rng=0)


class TestAlgorithm2Structure:
    def test_two_rounds(self, result):
        assert result.rounds == 2

    def test_budgets(self, result, small_center_instance):
        assert result.n_centers <= small_center_instance.k
        assert result.outlier_budget == small_center_instance.t
        assert result.outliers.size <= small_center_instance.t

    def test_message_kinds(self, result):
        kinds = result.ledger.words_by_kind()
        assert {"witness_curve", "allocation", "local_solution"} <= set(kinds)

    def test_allocation_sums_to_at_most_rho_t(self, result, small_center_instance):
        assert sum(result.metadata["t_allocated"]) <= 2 * small_center_instance.t

    def test_site_time_recorded(self, result):
        assert result.site_time_max > 0


class TestAlgorithm2Quality:
    def test_constant_factor_vs_reference(self, small_center_instance, small_metric):
        result = distributed_partial_center(small_center_instance, rng=0)
        realized = evaluate_centers(
            small_metric, result.centers, result.outlier_budget, objective="center"
        )
        reference = centralized_reference(
            small_metric, small_center_instance.k, small_center_instance.t, objective="center"
        )
        assert realized.cost <= 4.0 * reference.cost + 1e-9

    def test_radius_far_below_no_outlier_radius(self, small_center_instance, small_metric):
        # Ignoring t points must shrink the radius dramatically on a workload
        # with planted far-away outliers.
        result = distributed_partial_center(small_center_instance, rng=0)
        with_outliers = evaluate_centers(
            small_metric, result.centers, small_center_instance.t, objective="center"
        ).cost
        without = evaluate_centers(small_metric, result.centers, 0, objective="center").cost
        assert with_outliers < 0.5 * without

    def test_adversarial_outlier_placement(self, small_metric, small_workload):
        # All planted outliers on one site: the allocation must send most of
        # the budget there.
        shards = partition_outliers_concentrated(small_workload.outlier_mask, 3, rng=5)
        instance = DistributedInstance.from_partition(small_metric, shards, 3, 15, "center")
        result = distributed_partial_center(instance, rng=0)
        t_alloc = result.metadata["t_allocated"]
        assert t_alloc[0] >= max(t_alloc[1:])
        realized = evaluate_centers(small_metric, result.centers, 15, objective="center")
        reference = centralized_reference(small_metric, 3, 15, objective="center")
        assert realized.cost <= 4.0 * reference.cost + 1e-9

    def test_deterministic_given_seed(self, small_center_instance):
        a = distributed_partial_center(small_center_instance, rng=3)
        b = distributed_partial_center(small_center_instance, rng=3)
        assert np.array_equal(a.centers, b.centers)


class TestAlgorithm2Validation:
    def test_median_instance_rejected(self, small_instance):
        with pytest.raises(ValueError):
            distributed_partial_center(small_instance)

    def test_bad_rho(self, small_center_instance):
        with pytest.raises(ValueError):
            distributed_partial_center(small_center_instance, rho=0.5)
