"""Tests for Algorithm 3 (distributed uncertain median/means/center-pp)."""

import numpy as np
import pytest

from repro.core import distributed_uncertain_clustering
from repro.distributed import UncertainDistributedInstance, partition_balanced
from repro.uncertain import exact_assigned_cost


@pytest.fixture(scope="module")
def uncertain_instance(small_uncertain_workload):
    inst = small_uncertain_workload.instance
    shards = partition_balanced(inst.n_nodes, 3, rng=11)
    return UncertainDistributedInstance.from_partition(inst, shards, 3, 6, "median")


@pytest.fixture(scope="module")
def result(uncertain_instance):
    return distributed_uncertain_clustering(uncertain_instance, epsilon=0.5, rng=0)


class TestAlgorithm3Structure:
    def test_two_rounds(self, result):
        assert result.rounds == 2

    def test_centers_are_ground_points(self, result, uncertain_instance):
        assert np.all(result.centers >= 0)
        assert np.all(result.centers < len(uncertain_instance.ground_metric))
        assert result.n_centers <= uncertain_instance.k

    def test_outliers_are_nodes(self, result, uncertain_instance):
        assert result.outliers.size <= result.outlier_budget
        assert np.all(result.outliers < uncertain_instance.n_nodes)

    def test_assignment_covers_non_outlier_nodes(self, result, uncertain_instance):
        assignment = result.metadata["node_assignment"]
        covered = set(assignment) | set(result.outliers.tolist())
        assert covered == set(range(uncertain_instance.n_nodes))

    def test_assigned_centers_belong_to_output(self, result):
        assignment = result.metadata["node_assignment"]
        assert set(assignment.values()) <= set(result.centers.tolist())

    def test_communication_does_not_ship_distributions(self, result, uncertain_instance):
        # Each transmitted item costs B + 1 words (anchor + scalar), never the
        # full node encoding I.
        B = uncertain_instance.words_per_point()
        per_demand = B + 1
        total_demands = result.metadata["n_coordinator_demands"]
        round2_up = sum(
            m.words for m in result.ledger.filter(kind="local_solution")
        )
        assert round2_up == pytest.approx(total_demands * per_demand)


class TestAlgorithm3Quality:
    def test_cost_beats_collapse_to_single_center(self, result, uncertain_instance):
        # Assigning every node to one arbitrary center must be far worse than
        # the returned clustering.
        inst = uncertain_instance.uncertain
        assignment = result.metadata["node_assignment"]
        cost = exact_assigned_cost(inst, assignment, "median")
        single = {j: int(result.centers[0]) for j in range(inst.n_nodes)}
        single_cost = exact_assigned_cost(inst, single, "median")
        assert cost < single_cost

    def test_outlier_nodes_preferentially_dropped(self, small_uncertain_workload, result):
        planted = set(np.flatnonzero(small_uncertain_workload.node_labels < 0).tolist())
        dropped = set(result.outliers.tolist())
        # At least half of the planted outlier nodes get excluded.
        assert len(planted & dropped) >= len(planted) // 2

    def test_means_objective(self, small_uncertain_workload):
        inst = small_uncertain_workload.instance
        shards = partition_balanced(inst.n_nodes, 3, rng=1)
        dist = UncertainDistributedInstance.from_partition(inst, shards, 3, 6, "means")
        result = distributed_uncertain_clustering(dist, epsilon=0.5, rng=0)
        assert result.objective == "means"
        assert result.cost >= 0

    def test_center_pp_objective(self, small_uncertain_workload):
        inst = small_uncertain_workload.instance
        shards = partition_balanced(inst.n_nodes, 3, rng=2)
        dist = UncertainDistributedInstance.from_partition(inst, shards, 3, 6, "center")
        result = distributed_uncertain_clustering(dist, rng=0)
        assert result.objective == "center"
        assert result.outliers.size <= dist.t

    def test_deterministic_given_seed(self, uncertain_instance):
        a = distributed_uncertain_clustering(uncertain_instance, rng=9)
        b = distributed_uncertain_clustering(uncertain_instance, rng=9)
        assert np.array_equal(a.centers, b.centers)


class TestAlgorithm3Validation:
    def test_unknown_objective_rejected(self, small_uncertain_workload):
        inst = small_uncertain_workload.instance
        shards = partition_balanced(inst.n_nodes, 2, rng=0)
        dist = UncertainDistributedInstance.from_partition(inst, shards, 2, 4, "center-g")
        with pytest.raises(ValueError):
            distributed_uncertain_clustering(dist)

    def test_bad_epsilon(self, uncertain_instance):
        with pytest.raises(ValueError):
            distributed_uncertain_clustering(uncertain_instance, epsilon=0.0)
