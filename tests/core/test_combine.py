"""Tests for combining preclustering summaries at the coordinator."""

import numpy as np
import pytest

from repro.core.combine import (
    PreclusterSummary,
    combine_preclusters,
    summarize_local_solution,
)
from repro.distributed import StarNetwork
from repro.metrics import build_cost_matrix
from repro.sequential import local_search_partial


def _summary(site_id, centers, weights, outliers=(), members=None):
    return PreclusterSummary(
        site_id=site_id,
        center_points=np.asarray(centers, dtype=int),
        center_weights=np.asarray(weights, dtype=float),
        outlier_points=np.asarray(outliers, dtype=int),
        members=members,
    )


class TestPreclusterSummary:
    def test_transmitted_words(self):
        s = _summary(0, [1, 2], [10, 5], [7, 8, 9])
        # 2 centers * B + 2 counts + 3 outliers * B with B=2.
        assert s.transmitted_words(2) == pytest.approx(2 * 2 + 2 + 3 * 2)

    def test_alignment_validated(self):
        with pytest.raises(ValueError):
            _summary(0, [1, 2], [1.0])

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            _summary(0, [1], [-1.0])


class TestSummarizeLocalSolution:
    def test_roundtrip(self, small_instance):
        network = StarNetwork(small_instance)
        site = network.sites[0]
        local = np.arange(site.n_points)
        costs = build_cost_matrix(site.local_metric, local, local, "median")
        solution = local_search_partial(costs, 3, 5, rng=0)
        summary = summarize_local_solution(site, solution)
        assert summary.site_id == 0
        # Weights count every non-outlier point exactly once.
        assert summary.center_weights.sum() + summary.outlier_points.size == site.n_points
        # All transmitted ids are points the site actually owns.
        shard = set(site.shard.tolist())
        assert set(summary.center_points.tolist()) <= shard
        assert set(summary.outlier_points.tolist()) <= shard

    def test_ship_outliers_false(self, small_instance):
        network = StarNetwork(small_instance)
        site = network.sites[1]
        local = np.arange(site.n_points)
        costs = build_cost_matrix(site.local_metric, local, local, "median")
        solution = local_search_partial(costs, 3, 5, rng=0)
        summary = summarize_local_solution(site, solution, ship_outliers=False)
        assert summary.outlier_points.size == 0

    def test_members_cover_served_points(self, small_instance):
        network = StarNetwork(small_instance)
        site = network.sites[2]
        local = np.arange(site.n_points)
        costs = build_cost_matrix(site.local_metric, local, local, "median")
        solution = local_search_partial(costs, 3, 5, rng=0)
        summary = summarize_local_solution(site, solution)
        member_union = set()
        for ids, dists in summary.members.values():
            assert len(ids) == len(dists)
            member_union |= set(np.asarray(ids).tolist())
        served_global = set(site.to_global(solution.served_indices).tolist())
        assert served_global <= member_union


class TestCombinePreclusters:
    def test_median_combination(self, small_metric):
        summaries = [
            _summary(0, [0, 10], [30, 25], [150, 151]),
            _summary(1, [60, 80], [40, 20], [152]),
        ]
        result = combine_preclusters(
            small_metric, summaries, k=3, t=3, objective="median", epsilon=1.0, rng=0,
            realize=False,
        )
        assert result.centers_global.size <= 3
        assert set(result.centers_global.tolist()) <= {0, 10, 60, 80, 150, 151, 152}
        assert result.metadata["n_demands"] == 7

    def test_center_combination_uses_exact_budget(self, small_metric):
        summaries = [
            _summary(0, [0, 10], [30, 25], []),
            _summary(1, [60, 164], [40, 1], []),  # 164 is likely an outlier point
        ]
        result = combine_preclusters(
            small_metric, summaries, k=2, t=1, objective="center", rng=0, realize=False
        )
        assert result.coordinator_solution.outlier_weight <= 1 + 1e-9

    def test_explicit_outliers_only_from_shipped_points(self, small_metric):
        summaries = [
            _summary(0, [0], [50], [160, 161, 162, 163, 164]),
        ]
        result = combine_preclusters(
            small_metric, summaries, k=1, t=4, objective="median", epsilon=0.25, rng=0,
            realize=False,
        )
        assert set(result.explicit_outliers.tolist()) <= {160, 161, 162, 163, 164}

    def test_realization_covers_all_members(self, small_metric):
        members0 = {0: (np.asarray([0, 1, 2]), np.asarray([0.0, 1.0, 2.0]))}
        members1 = {60: (np.asarray([60, 61]), np.asarray([0.0, 0.5]))}
        summaries = [
            _summary(0, [0], [3], [150], members=members0),
            _summary(1, [60], [2], [], members=members1),
        ]
        result = combine_preclusters(
            small_metric, summaries, k=2, t=1, objective="median", epsilon=1.0, rng=0
        )
        covered = set(result.realized_assignment) | set(result.realized_outliers.tolist())
        assert {0, 1, 2, 60, 61, 150} <= covered

    def test_no_summaries_rejected(self, small_metric):
        with pytest.raises(ValueError):
            combine_preclusters(small_metric, [], k=1, t=0)
