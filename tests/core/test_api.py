"""Tests for the high-level numpy-array drivers."""

import numpy as np
import pytest

from repro import (
    partial_kcenter,
    partial_kmeans,
    partial_kmedian,
    uncertain_partial_kcenter_g,
    uncertain_partial_kmedian,
)


class TestDeterministicDrivers:
    def test_kmedian(self, small_workload):
        result = partial_kmedian(small_workload.points, 3, 15, n_sites=3, seed=0)
        assert result.objective == "median"
        assert result.rounds == 2
        assert result.n_centers <= 3

    def test_kmeans(self, small_workload):
        result = partial_kmeans(small_workload.points, 3, 15, n_sites=3, seed=0)
        assert result.objective == "means"

    def test_kcenter(self, small_workload):
        result = partial_kcenter(small_workload.points, 3, 15, n_sites=3, seed=0)
        assert result.objective == "center"
        assert result.outlier_budget == 15

    def test_partition_names(self, small_workload):
        for name in ("balanced", "round_robin", "dirichlet"):
            result = partial_kmedian(small_workload.points, 3, 15, n_sites=3, partition=name, seed=0)
            assert result.rounds == 2

    def test_explicit_partition(self, small_workload):
        n = small_workload.n_points
        shards = [np.arange(0, n // 2), np.arange(n // 2, n)]
        result = partial_kmedian(small_workload.points, 3, 15, n_sites=2, partition=shards, seed=0)
        assert len(result.metadata["t_allocated"]) == 2

    def test_callable_partition(self, small_workload):
        def halves(n, s, rng=None):
            return [np.arange(0, n // 2), np.arange(n // 2, n)]

        result = partial_kmedian(
            small_workload.points, 3, 15, n_sites=2, partition=halves, seed=0
        )
        assert len(result.metadata["t_allocated"]) == 2

    def test_unknown_partition_rejected(self, small_workload):
        with pytest.raises(ValueError):
            partial_kmedian(small_workload.points, 3, 15, partition="nope", seed=0)

    def test_seed_reproducibility(self, small_workload):
        a = partial_kmedian(small_workload.points, 3, 15, n_sites=3, seed=5)
        b = partial_kmedian(small_workload.points, 3, 15, n_sites=3, seed=5)
        assert np.array_equal(a.centers, b.centers)


class TestUncertainDrivers:
    def test_uncertain_kmedian(self, small_uncertain_workload):
        result = uncertain_partial_kmedian(
            small_uncertain_workload.instance, 3, 6, n_sites=3, seed=0
        )
        assert result.objective == "median"
        assert result.rounds == 2

    def test_uncertain_center_pp(self, small_uncertain_workload):
        result = uncertain_partial_kmedian(
            small_uncertain_workload.instance, 3, 6, objective="center", n_sites=3, seed=0
        )
        assert result.objective == "center"

    def test_uncertain_center_g(self, small_uncertain_workload):
        instance = small_uncertain_workload.instance.node_subset(np.arange(0, 30))
        result = uncertain_partial_kcenter_g(instance, 2, 3, n_sites=2, seed=0)
        assert result.objective == "center-g"
        assert result.rounds == 2
