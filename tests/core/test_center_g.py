"""Tests for Algorithm 4 (distributed uncertain (k, t)-center-g)."""

import numpy as np
import pytest

from repro.core import distributed_uncertain_center_g
from repro.core.center_g import truncation_grid
from repro.distributed import UncertainDistributedInstance, partition_balanced
from repro.uncertain import estimate_center_g_cost


@pytest.fixture(scope="module")
def small_g_instance(small_uncertain_workload):
    inst = small_uncertain_workload.instance
    # Keep the instance small: the tau sweep repeats the preclustering many times.
    sub = inst.node_subset(np.arange(0, 36))
    shards = partition_balanced(sub.n_nodes, 3, rng=4)
    return UncertainDistributedInstance.from_partition(sub, shards, 3, 4, "center-g")


@pytest.fixture(scope="module")
def result(small_g_instance):
    return distributed_uncertain_center_g(small_g_instance, epsilon=0.5, rng=0)


class TestTruncationGrid:
    def test_covers_range(self):
        grid = truncation_grid(1.0, 100.0, base=2.0)
        assert grid[0] == pytest.approx(1.0 / 18.0)
        # The largest tau must zero out every truncated distance (Lemma 5.10
        # needs max(T) > d_max / 6 so that rho_{6 tau_max} = 0).
        assert grid[-1] > 100.0 / 6.0

    def test_geometric(self):
        grid = truncation_grid(1.0, 10.0, base=2.0)
        assert np.allclose(grid[1:] / grid[:-1], 2.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            truncation_grid(0.0, 1.0)
        with pytest.raises(ValueError):
            truncation_grid(2.0, 1.0)
        with pytest.raises(ValueError):
            truncation_grid(1.0, 2.0, base=1.0)


class TestAlgorithm4Structure:
    def test_two_rounds(self, result):
        assert result.rounds == 2
        assert result.objective == "center-g"

    def test_tau_hat_in_grid(self, result):
        assert result.metadata["tau_hat"] in result.metadata["tau_grid"]

    def test_centers_are_ground_points(self, result, small_g_instance):
        assert np.all(result.centers < len(small_g_instance.ground_metric))
        assert result.n_centers <= small_g_instance.k

    def test_outlier_budget(self, result, small_g_instance):
        assert result.outlier_budget == int(1.5 * small_g_instance.t)
        assert result.outliers.size <= result.outlier_budget

    def test_assignment_covers_all_nodes(self, result, small_g_instance):
        assignment = result.metadata["node_assignment"]
        covered = set(assignment) | set(result.outliers.tolist())
        assert covered == set(range(small_g_instance.n_nodes))

    def test_profiles_sent_for_every_tau(self, result):
        # One tau_profiles message per site, whose words grow with |T|.
        profile_msgs = result.ledger.filter(kind="tau_profiles")
        assert len(profile_msgs) == 3
        n_taus = len(result.metadata["tau_grid"])
        for m in profile_msgs:
            assert m.words >= 2 * n_taus  # at least one vertex pair per tau

    def test_spread_recorded(self, result):
        assert result.metadata["spread"] >= 1.0


class TestAlgorithm4Quality:
    def test_center_g_cost_reasonable(self, result, small_g_instance):
        inst = small_g_instance.uncertain
        assignment = result.metadata["node_assignment"]
        cost = estimate_center_g_cost(inst, assignment, n_samples=150, rng=1)
        # The returned E[max] should be well below the ground-set diameter
        # (which is what a trivial single-center, no-outlier solution risks).
        assert cost < 0.8 * inst.ground_metric.diameter()

    def test_stopping_rule_consistent(self, result):
        # tau_hat satisfies the sum <= 12 tau condition by construction;
        # its protocol cost should therefore stay within a constant of tau_hat.
        tau_hat = result.metadata["tau_hat"]
        assert result.cost <= 40 * tau_hat + 1e-9

    def test_deterministic_given_seed(self, small_g_instance):
        a = distributed_uncertain_center_g(small_g_instance, rng=5)
        b = distributed_uncertain_center_g(small_g_instance, rng=5)
        assert np.array_equal(a.centers, b.centers)
        assert a.metadata["tau_hat"] == b.metadata["tau_hat"]


class TestAlgorithm4Validation:
    def test_bad_epsilon(self, small_g_instance):
        with pytest.raises(ValueError):
            distributed_uncertain_center_g(small_g_instance, epsilon=0.0)

    def test_bad_rho(self, small_g_instance):
        with pytest.raises(ValueError):
            distributed_uncertain_center_g(small_g_instance, rho=1.0)
