"""Tests for the Theorem 3.10 sub-quadratic centralized simulation."""

import numpy as np
import pytest

from repro.analysis import evaluate_centers
from repro.baselines import centralized_reference
from repro.core import subquadratic_partial_clustering
from repro.core.subquadratic import default_piece_count


class TestDefaultPieceCount:
    def test_grows_sublinearly(self):
        assert default_piece_count(1000, 3, 10) < 1000
        assert default_piece_count(8000, 3, 10) > default_piece_count(1000, 3, 10)

    def test_pieces_keep_minimum_size(self):
        s = default_piece_count(100, 10, 5)
        assert 100 // s >= 5  # at least a handful of points per piece

    def test_tiny_input(self):
        assert default_piece_count(3, 1, 0) == 1


class TestSubquadratic:
    def test_output_budgets(self, small_metric):
        result = subquadratic_partial_clustering(small_metric, 3, 15, rng=0)
        assert result.centers.size >= 1
        assert result.objective == "median"
        assert result.outlier_budget == int(1.5 * 15)
        assert result.n_pieces >= 1

    def test_quality_close_to_direct_solver(self, small_metric):
        result = subquadratic_partial_clustering(small_metric, 3, 15, rng=0)
        realized = evaluate_centers(
            small_metric, result.centers, result.outlier_budget, objective="median"
        )
        reference = centralized_reference(small_metric, 3, 15, objective="median", rng=1)
        assert realized.cost <= 3.0 * reference.cost

    def test_explicit_piece_count(self, small_metric):
        result = subquadratic_partial_clustering(small_metric, 3, 15, n_pieces=5, rng=0)
        assert result.n_pieces == 5
        assert len(result.metadata["piece_sizes"]) == 5

    def test_center_objective(self, small_metric):
        result = subquadratic_partial_clustering(small_metric, 3, 15, objective="center", rng=0)
        assert result.objective == "center"
        assert result.outlier_budget == 15

    def test_timings_populated(self, small_metric):
        result = subquadratic_partial_clustering(small_metric, 3, 15, rng=0)
        assert result.wall_time > 0
        assert result.site_time_total > 0
        assert result.coordinator_time > 0

    def test_invalid_pieces(self, small_metric):
        with pytest.raises(ValueError):
            subquadratic_partial_clustering(small_metric, 3, 15, n_pieces=0)

    def test_deterministic_given_seed(self, small_metric):
        a = subquadratic_partial_clustering(small_metric, 3, 15, rng=7)
        b = subquadratic_partial_clustering(small_metric, 3, 15, rng=7)
        assert np.array_equal(a.centers, b.centers)
