"""Tests for repro.obs.sampler: resource samples and the sampler thread."""

import threading
import time

import pytest

from repro.obs.sampler import (
    RESOURCE_SAMPLE_ENV,
    SAMPLE_FIELDS,
    ResourceSampler,
    read_resource_sample,
    resource_samples_enabled,
)
from repro.obs.trace import Tracer


class TestReadResourceSample:
    def test_fields_complete_and_float(self):
        sample = read_resource_sample()
        assert set(sample) == set(SAMPLE_FIELDS)
        for field, value in sample.items():
            assert isinstance(value, float), field

    def test_live_process_values(self):
        """On this (Linux) box every field should be a real measurement."""
        sample = read_resource_sample()
        assert sample["rss_bytes"] > 0
        assert sample["cpu_s"] >= 0
        assert sample["n_threads"] >= 1
        # n_fds is -1.0 only without /proc; stdin/stdout/stderr exist here.
        assert sample["n_fds"] >= 3 or sample["n_fds"] == -1.0

    def test_picklable(self):
        import pickle

        sample = read_resource_sample()
        assert pickle.loads(pickle.dumps(sample)) == sample

    def test_cpu_seconds_monotone(self):
        first = read_resource_sample()
        # Burn a little CPU so the counter visibly cannot go backwards.
        sum(i * i for i in range(10_000))
        second = read_resource_sample()
        assert second["cpu_s"] >= first["cpu_s"]
        assert second["t"] >= first["t"]


class TestResourceSamplesEnabled:
    def test_env_values(self):
        assert not resource_samples_enabled({})
        assert not resource_samples_enabled({RESOURCE_SAMPLE_ENV: ""})
        assert not resource_samples_enabled({RESOURCE_SAMPLE_ENV: "0"})
        assert resource_samples_enabled({RESOURCE_SAMPLE_ENV: "1"})

    def test_reads_process_env(self, monkeypatch):
        monkeypatch.delenv(RESOURCE_SAMPLE_ENV, raising=False)
        assert not resource_samples_enabled()
        monkeypatch.setenv(RESOURCE_SAMPLE_ENV, "1")
        assert resource_samples_enabled()


class TestResourceSampler:
    def test_interval_validation(self):
        with pytest.raises(ValueError):
            ResourceSampler(0)
        with pytest.raises(ValueError):
            ResourceSampler(-0.1)

    def test_collects_samples(self):
        sampler = ResourceSampler(0.01)
        with sampler:
            time.sleep(0.08)
        # start() and stop() each take one sample; the loop adds more.
        assert len(sampler.samples) >= 3
        assert sampler.latest() is not None
        assert sampler.peak_rss() > 0

    def test_latest_none_before_start(self):
        sampler = ResourceSampler(0.01)
        assert sampler.latest() is None
        assert sampler.peak_rss() == 0.0

    def test_stop_idempotent_and_thread_gone(self):
        sampler = ResourceSampler(0.01)
        before = threading.active_count()
        sampler.start()
        assert threading.active_count() == before + 1
        sampler.stop()
        sampler.stop()
        assert threading.active_count() == before

    def test_start_idempotent(self):
        sampler = ResourceSampler(0.01)
        try:
            assert sampler.start() is sampler
            thread = sampler._thread
            assert sampler.start() is sampler
            assert sampler._thread is thread
        finally:
            sampler.stop()

    def test_bounded_deque(self):
        sampler = ResourceSampler(0.01, max_samples=2)
        sampler.sample_once()
        sampler.sample_once()
        sampler.sample_once()
        assert len(sampler.samples) == 2

    def test_peak_survives_rotation(self):
        sampler = ResourceSampler(0.01, max_samples=1)
        sampler.sample_once()
        peak = sampler.peak_rss()
        sampler.sample_once()
        assert sampler.peak_rss() >= peak > 0

    def test_gauges_published(self):
        tracer = Tracer()
        sampler = ResourceSampler(0.01, tracer=tracer, origin="coordinator")
        sampler.sample_once()
        gauges = tracer.metrics.gauges
        for field in ("rss_bytes", "cpu_s", "n_threads", "n_fds", "peak_rss_bytes"):
            assert f"resource.coordinator.{field}" in gauges
        assert gauges["resource.coordinator.rss_bytes"] > 0
        assert gauges["resource.coordinator.peak_rss_bytes"] == sampler.peak_rss()

    def test_disabled_tracer_ignored(self):
        from repro.obs.trace import NULL_TRACER

        sampler = ResourceSampler(0.01, tracer=NULL_TRACER)
        assert sampler.tracer is None
        sampler.sample_once()  # must not blow up publishing to nothing
