"""Tests for repro.obs.history: the persistent run-history registry + CLI."""

import json
import subprocess
import sys

import pytest

from repro.core.api import partial_kmedian
from repro.obs.history import (
    DEFAULT_HEADROOM,
    RUN_HISTORY_ENV,
    RunHistory,
    compare,
    load_baseline,
    main,
    summary_record,
)


def record(protocol, **metrics):
    base = {"protocol": protocol, "t": 1.0}
    base.update(metrics)
    return base


class TestSummaryRecord:
    def test_shapes_record(self):
        rec = summary_record(
            "kmedian",
            {"bytes_per_word": 284.0, "rounds": 2},
            wall_s=1.25,
            peak_rss_bytes=1e8,
            run_id="abc",
            git_sha="deadbeef",
        )
        assert rec["protocol"] == "kmedian"
        assert rec["bytes_per_word"] == 284.0
        assert rec["wall_s"] == 1.25
        assert rec["peak_rss_bytes"] == 1e8
        assert rec["run_id"] == "abc"
        assert rec["git_sha"] == "deadbeef"
        assert rec["t"] > 0

    def test_optional_fields_absent(self):
        rec = summary_record("kcenter", {})
        assert "wall_s" not in rec and "peak_rss_bytes" not in rec


class TestRunHistory:
    def test_append_and_records(self, tmp_path):
        history = RunHistory(str(tmp_path / "hist.jsonl"))
        assert history.records() == []
        history.append(record("kmedian", bytes_per_word=284.0))
        history.append(record("kcenter", bytes_per_word=199.0))
        records = history.records()
        assert [r["protocol"] for r in records] == ["kmedian", "kcenter"]
        # One record per line, valid JSON throughout.
        lines = open(history.path).read().splitlines()
        assert len(lines) == 2 and all(json.loads(line) for line in lines)

    def test_latest_by_protocol(self, tmp_path):
        history = RunHistory(str(tmp_path / "hist.jsonl"))
        history.append(record("kmedian", bytes_per_word=284.0))
        history.append(record("kmedian", bytes_per_word=290.0))
        latest = history.latest_by_protocol()
        assert latest["kmedian"]["bytes_per_word"] == 290.0

    def test_append_result_from_traced_run(self, tmp_path, small_workload):
        result = partial_kmedian(
            small_workload.points, 3, 15, n_sites=3, seed=42, trace=True
        )
        history = RunHistory(str(tmp_path / "hist.jsonl"))
        rec = history.append_result("kmedian", result, wall_s=0.5, peak_rss_bytes=2.0)
        assert rec["protocol"] == "kmedian"
        assert rec["wall_s"] == 0.5
        assert "origins" not in rec
        assert "rounds" in rec
        # Round-trips through the store.
        assert history.latest_by_protocol()["kmedian"]["wall_s"] == 0.5


class TestLoadBaseline:
    def test_history_jsonl_format(self, tmp_path):
        path = str(tmp_path / "hist.jsonl")
        RunHistory(path).append(record("kmedian", bytes_per_word=284.0))
        baseline = load_baseline(path)
        assert baseline["kmedian"]["bytes_per_word"] == 284.0

    def test_bench_artifact_format(self, tmp_path):
        path = tmp_path / "BENCH.json"
        path.write_text(json.dumps({
            "rows": [
                {"protocol": "kmedian", "bytes_per_word": 284.0},
                {"protocol": "kcenter", "bytes_per_word": 199.0},
            ]
        }))
        baseline = load_baseline(str(path))
        assert set(baseline) == {"kmedian", "kcenter"}
        assert baseline["kcenter"]["bytes_per_word"] == 199.0

    def test_committed_benchmark_artifact_loads(self):
        baseline = load_baseline("benchmarks/BENCH_cluster_bytes.json")
        assert "kmedian" in baseline
        assert baseline["kmedian"]["bytes_per_word"] > 0


class TestCompare:
    def test_within_headroom_passes(self):
        rows, regressions = compare(
            {"kmedian": {"bytes_per_word": 300.0}},
            {"kmedian": {"bytes_per_word": 284.0}},
        )
        assert regressions == []
        (row,) = rows
        assert row["ok"] and row["ratio"] == pytest.approx(300.0 / 284.0)

    def test_detects_2x_regression(self):
        """The acceptance case: an injected 2x bytes/word regression fails."""
        rows, regressions = compare(
            {"kmedian": {"bytes_per_word": 284.0 * 2.0 + 1.0}},
            {"kmedian": {"bytes_per_word": 284.0}},
            headroom=DEFAULT_HEADROOM,
        )
        assert len(regressions) == 1
        assert "kmedian.bytes_per_word" in regressions[0]
        assert not rows[0]["ok"]

    def test_headroom_boundary_is_inclusive(self):
        _, regressions = compare(
            {"p": {"wall_s": 2.0}}, {"p": {"wall_s": 1.0}}, headroom=2.0
        )
        assert regressions == []  # exactly 2x is not > 2x

    def test_zero_baseline_never_flags(self):
        rows, regressions = compare(
            {"p": {"bytes_per_word": 5.0}}, {"p": {"bytes_per_word": 0.0}}
        )
        assert regressions == [] and rows[0]["ok"]

    def test_disjoint_protocols_and_fields_skipped(self):
        rows, regressions = compare(
            {"new": {"bytes_per_word": 1.0}, "both": {"other": 1.0}},
            {"old": {"bytes_per_word": 1.0}, "both": {"bytes_per_word": 9.0}},
        )
        assert rows == [] and regressions == []


class TestCli:
    def test_report_empty_store(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "missing.jsonl")]) == 0
        assert "no run history" in capsys.readouterr().out

    def test_report_latest(self, tmp_path, capsys):
        path = str(tmp_path / "hist.jsonl")
        RunHistory(path).append(record("kmedian", bytes_per_word=284.0, wall_s=1.0))
        assert main(["report", path]) == 0
        out = capsys.readouterr().out
        assert "kmedian" in out and "284" in out

    def test_compare_pass_and_fail_exit_codes(self, tmp_path, capsys):
        store = str(tmp_path / "hist.jsonl")
        base = str(tmp_path / "base.jsonl")
        RunHistory(base).append(record("kmedian", bytes_per_word=284.0))
        RunHistory(store).append(record("kmedian", bytes_per_word=300.0))
        assert main(["compare", store, "--baseline", base]) == 0
        assert "within headroom" in capsys.readouterr().out
        # Inject a 2x regression: exit code 1 and a REGRESSION line.
        RunHistory(store).append(record("kmedian", bytes_per_word=284.0 * 2.5))
        assert main(["compare", store, "--baseline", base]) == 1
        assert "REGRESSION kmedian.bytes_per_word" in capsys.readouterr().err

    def test_compare_empty_store_exit_2(self, tmp_path, capsys):
        base = str(tmp_path / "base.jsonl")
        RunHistory(base).append(record("kmedian", bytes_per_word=1.0))
        assert main(["compare", str(tmp_path / "missing.jsonl"),
                     "--baseline", base]) == 2

    def test_compare_no_overlap_exit_2(self, tmp_path, capsys):
        store = str(tmp_path / "hist.jsonl")
        base = str(tmp_path / "base.jsonl")
        RunHistory(store).append(record("new_protocol", bytes_per_word=1.0))
        RunHistory(base).append(record("kmedian", bytes_per_word=1.0))
        assert main(["compare", store, "--baseline", base]) == 2

    def test_custom_headroom(self, tmp_path):
        store = str(tmp_path / "hist.jsonl")
        base = str(tmp_path / "base.jsonl")
        RunHistory(base).append(record("p", wall_s=1.0))
        RunHistory(store).append(record("p", wall_s=1.5))
        assert main(["compare", store, "--baseline", base, "--headroom", "1.2"]) == 1
        assert main(["compare", store, "--baseline", base, "--headroom", "2.0"]) == 0

    def test_store_default_from_env(self, tmp_path, monkeypatch, capsys):
        path = str(tmp_path / "env.jsonl")
        RunHistory(path).append(record("kmedian", bytes_per_word=1.0))
        monkeypatch.setenv(RUN_HISTORY_ENV, path)
        assert main(["report"]) == 0
        assert "kmedian" in capsys.readouterr().out

    def test_module_entrypoint_smoke(self, tmp_path):
        """``python -m repro.obs.history`` works end to end as a subprocess."""
        path = str(tmp_path / "hist.jsonl")
        RunHistory(path).append(record("kmedian", bytes_per_word=284.0))
        proc = subprocess.run(
            [sys.executable, "-m", "repro.obs.history", "report", path],
            capture_output=True, text=True, timeout=60,
        )
        assert proc.returncode == 0
        assert "kmedian" in proc.stdout
