"""Tests for repro.obs.logs: structured records, span correlation, absorb."""

import json
import pickle
import time

import numpy as np

from repro.obs.logs import LogBuffer, LogRecord, RunLog, active_log, log, log_scope
from repro.obs.trace import TraceBuffer, Tracer, collector_scope


class TestLogRecord:
    def test_as_dict_shape(self):
        record = LogRecord(1.5, "host-0", "info", "task_start", 3, {"site": 2})
        assert record.as_dict() == {
            "t": 1.5,
            "origin": "host-0",
            "level": "info",
            "event": "task_start",
            "span": 3,
            "fields": {"site": 2},
        }


class TestLogBuffer:
    def test_records_and_bounds(self):
        buffer = LogBuffer("host-1")
        assert not buffer and buffer.bounds() is None
        buffer.log("info", "a", x=1)
        buffer.log("debug", "b")
        assert buffer and len(buffer.records) == 2
        lo, hi = buffer.bounds()
        assert lo <= hi
        assert buffer.records[0].origin == "host-1"
        assert buffer.records[0].fields == {"x": 1}

    def test_span_from_ambient_collector(self):
        trace = TraceBuffer(origin="host-0")
        buffer = LogBuffer("host-0")
        with collector_scope(trace):
            with trace.span("site_task", site=0):
                buffer.log("debug", "inside")
            buffer.log("debug", "outside")
        inside, outside = buffer.records
        assert inside.span == trace.spans[0].sid != 0
        assert outside.span == 0
        # Explicit span id wins over the ambient one.
        buffer.log("debug", "explicit", span=42)
        assert buffer.records[-1].span == 42

    def test_picklable(self):
        buffer = LogBuffer("host-2")
        buffer.log("warning", "w", n=np.int64(3))
        clone = pickle.loads(pickle.dumps(buffer))
        assert clone.records[0].event == "w"
        assert clone.origin == "host-2"


class TestRunLog:
    def test_levels_and_find(self):
        run_log = RunLog(Tracer())
        run_log.debug("d")
        run_log.info("i", a=1)
        run_log.warning("w")
        run_log.error("e")
        assert len(run_log) == 4
        assert [r.level for r in run_log.records] == ["debug", "info", "warning", "error"]
        assert run_log.find("i")[0].fields == {"a": 1}
        assert [r.event for r in run_log.find(level="error")] == ["e"]

    def test_tracer_clock_and_span(self):
        tracer = Tracer()
        run_log = RunLog(tracer)
        with tracer.span("round", round=0):
            inside = run_log.info("inside")
        outside = run_log.info("outside")
        assert inside.span == tracer.spans[0].sid != 0
        assert outside.span == 0
        assert 0 <= inside.time <= outside.time

    def test_disabled_tracer_means_raw_clock(self):
        from repro.obs.trace import NULL_TRACER

        run_log = RunLog(NULL_TRACER)
        assert run_log.tracer is None
        record = run_log.info("still_works")
        assert record.span == 0

    def test_streaming_path(self, tmp_path):
        path = str(tmp_path / "run.log.jsonl")
        run_log = RunLog(Tracer(), path=path)
        run_log.info("first", n=np.float64(1.5))
        # Flushed per record: visible to an external tail before close().
        rows = [json.loads(line) for line in open(path)]
        assert rows[0]["event"] == "first" and rows[0]["fields"]["n"] == 1.5
        run_log.info("second")
        run_log.close()
        assert len(open(path).readlines()) == 2

    def test_to_jsonl_time_sorted(self, tmp_path):
        run_log = RunLog(Tracer())
        run_log.info("late")
        run_log.records[0].time = 10.0
        run_log.info("early")
        path = run_log.to_jsonl(str(tmp_path / "out.jsonl"))
        events = [json.loads(line)["event"] for line in open(path)]
        assert events == ["early", "late"]

    def test_absorb_rebases_and_tags(self):
        tracer = Tracer()
        run_log = RunLog(tracer)
        buffer = LogBuffer("host-1")
        buffer.log("info", "remote", site=1)
        t_send = tracer.clock()
        time.sleep(0.002)
        t_recv = tracer.clock()
        run_log.absorb(buffer, window=(t_send, t_recv), round=2, host=1)
        (record,) = run_log.records
        assert record.origin == "host-1"
        assert record.fields == {"round": 2, "host": 1, "site": 1}
        # Rebased onto the coordinator timeline: inside (or at least near)
        # the dispatch window, never at the raw perf_counter instant.
        assert t_send <= record.time <= t_recv

    def test_absorb_record_fields_win(self):
        run_log = RunLog(Tracer())
        buffer = LogBuffer("host-0")
        buffer.log("info", "x", host=99)
        run_log.absorb(buffer, window=(0.0, 1.0), host=1)
        assert run_log.records[0].fields["host"] == 99

    def test_absorb_empty_is_noop(self):
        run_log = RunLog(Tracer())
        run_log.absorb(None)
        run_log.absorb(LogBuffer("host-0"))
        assert len(run_log) == 0


class TestAmbientLog:
    def test_module_level_log_routes_to_scope(self):
        run_log = RunLog(Tracer())
        assert active_log() is None
        log("info", "dropped")  # no sink installed: silently discarded
        with log_scope(run_log):
            assert active_log() is run_log
            log("info", "kept", k=1)
            buffer = LogBuffer("host-0")
            with log_scope(buffer):
                assert active_log() is buffer
                log("debug", "nested")
            assert active_log() is run_log
        assert active_log() is None
        assert [r.event for r in run_log.records] == ["kept"]
        assert [r.event for r in buffer.records] == ["nested"]

    def test_log_scope_none_disables(self):
        run_log = RunLog(Tracer())
        with log_scope(run_log):
            with log_scope(None):
                log("info", "discarded")
        assert len(run_log) == 0
