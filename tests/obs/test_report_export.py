"""Reports and Chrome-trace export on real (in-process) traced runs."""

import json

import numpy as np
import pytest

from repro import (
    partial_kcenter,
    partial_kmedian,
    uncertain_partial_kcenter_g,
    uncertain_partial_kmedian,
)
from repro.core.algorithm1_modified import distributed_partial_median_no_shipping
from repro.obs import (
    assert_byte_parity,
    byte_parity_diff,
    protocol_summary,
    render_protocol_summary,
    render_round_report,
    round_report,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.obs.trace import NULL_TRACER, Tracer


@pytest.fixture(scope="module")
def traced_kmedian(small_workload):
    return partial_kmedian(small_workload.points, 3, 15, n_sites=3, seed=42, trace=True)


def _assert_same_result(base, other):
    np.testing.assert_array_equal(base.centers, other.centers)
    assert base.cost == other.cost
    assert base.ledger.total_words() == other.ledger.total_words()
    assert base.ledger.words_by_kind() == other.ledger.words_by_kind()
    if base.outliers is None:
        assert other.outliers is None
    else:
        np.testing.assert_array_equal(base.outliers, other.outliers)


class TestTraceKnob:
    def test_default_leaves_trace_none(self, small_workload):
        result = partial_kmedian(small_workload.points, 3, 15, n_sites=3, seed=42)
        assert result.trace is None

    def test_traced_run_attaches_tracer(self, traced_kmedian):
        tracer = traced_kmedian.trace
        assert isinstance(tracer, Tracer)
        assert tracer.find_spans("run", algorithm="algorithm1")
        rounds = tracer.find_spans("round")
        assert {s.tags["round"] for s in rounds} == {1, 2}
        assert tracer.find_spans("site_task")
        assert tracer.find_spans("final_solve")
        assert "coordinator" in tracer.origins()
        assert {"site-0", "site-1", "site-2"} <= set(tracer.origins())

    def test_traced_matches_untraced_all_protocols(
        self, small_workload, small_instance, small_uncertain_workload
    ):
        points = small_workload.points
        uncertain = small_uncertain_workload.instance
        runs = [
            lambda **kw: partial_kmedian(points, 3, 15, n_sites=3, seed=42, **kw),
            lambda **kw: partial_kcenter(points, 3, 15, n_sites=3, seed=42, **kw),
            lambda **kw: distributed_partial_median_no_shipping(
                small_instance, rng=42, **kw
            ),
            lambda **kw: uncertain_partial_kmedian(
                uncertain, 3, 6, n_sites=3, seed=42, **kw
            ),
            lambda **kw: uncertain_partial_kcenter_g(
                uncertain, 3, 6, n_sites=3, seed=42, **kw
            ),
        ]
        for run in runs:
            base = run()
            traced = run(trace=True)
            _assert_same_result(base, traced)
            assert base.trace is None
            assert traced.trace is not None and traced.trace.spans


class TestRoundReport:
    def test_rows_cover_every_round(self, traced_kmedian):
        rows = round_report(traced_kmedian)
        assert {r["round"] for r in rows} == {1, 2}
        for row in rows:
            assert row["host"] == "-"  # in-process: no runner hosts
            assert row["tasks"] == 3
            assert row["task_s"] > 0.0
            assert row["sent_bytes"] == 0 and row["recv_bytes"] == 0

    def test_render_round_report(self, traced_kmedian):
        text = render_round_report(traced_kmedian)
        assert "round" in text and "tasks" in text
        assert len(text.splitlines()) >= 4

    def test_untraced_result_is_rejected(self, small_workload):
        result = partial_kmedian(small_workload.points, 3, 15, n_sites=3, seed=42)
        with pytest.raises(ValueError, match="trace=True"):
            round_report(result)
        with pytest.raises(ValueError, match="trace=True"):
            protocol_summary(result)


class TestProtocolSummary:
    def test_summary_fields(self, traced_kmedian):
        summary = protocol_summary(traced_kmedian)
        assert summary["total_words"] == traced_kmedian.ledger.total_words()
        # In-process: no wire ran, both byte totals are zero and they match.
        assert summary["wire_bytes_ledger"] == 0
        assert summary["wire_bytes_trace"] == 0
        assert summary["bytes_match"] is True
        assert summary["rounds"] == 2
        assert summary["n_spans"] == len(traced_kmedian.trace.spans)
        # The fixed counter columns are present even when the layer never ran.
        assert summary["cluster.resident_hit"] == 0.0
        assert summary["prefetch.hit"] == 0.0

    def test_render_protocol_summary(self, traced_kmedian):
        text = render_protocol_summary({"kmedian": traced_kmedian})
        assert "kmedian" in text and "bytes_per_word" in text


class TestChromeExport:
    def test_export_shape(self, traced_kmedian):
        doc = to_chrome_trace(traced_kmedian.trace)
        events = doc["traceEvents"]
        assert events
        phases = {e["ph"] for e in events}
        assert "X" in phases and "M" in phases
        names = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert "coordinator" in names
        for event in events:
            if event["ph"] == "X":
                assert event["ts"] >= 0.0 and event["dur"] >= 0.0
        # The document is valid JSON end to end.
        json.loads(json.dumps(doc))

    def test_write_chrome_trace(self, traced_kmedian, tmp_path):
        path = write_chrome_trace(traced_kmedian.trace, tmp_path / "trace.json")
        with open(path) as fh:
            doc = json.load(fh)
        assert doc["traceEvents"]
        assert doc["displayTimeUnit"] == "ms"
        assert "counters" in doc["otherData"]

    def test_disabled_tracer_rejected(self):
        with pytest.raises(ValueError):
            to_chrome_trace(NULL_TRACER)


VALID_PHASES = {"M", "X", "b", "e", "i"}

REQUIRED_KEYS = {
    "M": {"ph", "name", "pid", "tid", "args"},
    "X": {"ph", "name", "pid", "tid", "cat", "ts", "dur", "args"},
    "b": {"ph", "name", "pid", "tid", "cat", "ts", "id", "args"},
    "e": {"ph", "name", "pid", "tid", "cat", "ts", "id"},
    "i": {"ph", "name", "pid", "tid", "cat", "ts", "s", "args"},
}


def validate_trace_events(doc):
    """Schema checks every exported (or committed) trace document must pass."""
    events = doc["traceEvents"]
    assert events, "empty traceEvents"
    declared_pids = set()
    for event in events:
        ph = event["ph"]
        assert ph in VALID_PHASES, f"unknown phase {ph!r}"
        missing = REQUIRED_KEYS[ph] - set(event)
        assert not missing, f"{ph!r} event missing keys {sorted(missing)}: {event}"
        if ph == "M":
            assert event["name"] == "process_name"
            declared_pids.add(event["pid"])
        else:
            assert event["ts"] >= 0.0
        if ph == "X":
            assert event["dur"] >= 0.0
    # Every timed event belongs to a process declared by a metadata event.
    for event in events:
        if event["ph"] != "M":
            assert event["pid"] in declared_pids
    # Async intervals pair up: one "b" and one "e" per id, begin before end.
    begins = {e["id"]: e["ts"] for e in events if e["ph"] == "b"}
    ends = {e["id"]: e["ts"] for e in events if e["ph"] == "e"}
    assert set(begins) == set(ends)
    for ident, ts_begin in begins.items():
        assert ends[ident] >= ts_begin, f"async {ident} ends before it begins"
    # Within one (pid, tid) thread lane, complete spans are emitted in
    # monotone end-time order: stack discipline seals a span only at exit.
    lanes = {}
    for event in events:
        if event["ph"] == "X":
            lanes.setdefault((event["pid"], event["tid"]), []).append(
                event["ts"] + event["dur"]
            )
    for lane, end_times in lanes.items():
        assert end_times == sorted(end_times), f"non-monotone lane {lane}"


class TestChromeTraceSchema:
    def test_exported_trace_passes_schema(self, traced_kmedian):
        validate_trace_events(to_chrome_trace(traced_kmedian.trace))

    def test_span_ids_surface_in_args(self, traced_kmedian):
        doc = to_chrome_trace(traced_kmedian.trace)
        sids = [(e["pid"], e["args"]["sid"]) for e in doc["traceEvents"]
                if e["ph"] == "X" and "sid" in e["args"]]
        assert sids and all(isinstance(s, int) and s > 0 for _, s in sids)
        # The coordinator runs one buffer for the whole run, so its sids are
        # injective (site buffers restart per round and may repeat ids).
        coordinator = [s for pid, s in sids if pid == 1]
        assert coordinator and len(coordinator) == len(set(coordinator))

    def test_committed_benchmark_trace_round_trips(self, tmp_path):
        """The committed cluster-trace artifact still parses and validates."""
        with open("benchmarks/BENCH_cluster_trace.json") as fh:
            doc = json.load(fh)
        validate_trace_events(doc)
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["counters"]
        # Round-trip: rewriting the document preserves it bit for bit.
        path = tmp_path / "rt.json"
        with open(path, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        with open(path) as fh:
            assert json.load(fh) == doc


def _fake_cluster_result(tracer, wire):
    class Ledger:
        pass

    class Result:
        pass

    result = Result()
    result.trace = tracer
    result.ledger = Ledger()
    result.ledger.wire = wire
    return result


class TestByteParity:
    def _matched_pair(self):
        from repro.cluster.wire import WireLedger

        tracer = Tracer()
        wire = WireLedger()
        wire.record(round_index=1, host=0, direction="send",
                    kind="task_dispatch", n_bytes=80, raw_bytes=100)
        tracer.inc("wire.bytes", 100)
        tracer.inc("wire.bytes_encoded", 80)
        tracer.inc("wire.bytes.send", 100)
        tracer.inc("wire.bytes_encoded.send", 80)
        tracer.inc("wire.bytes.task_dispatch", 100)
        tracer.inc("wire.bytes_encoded.task_dispatch", 80)
        return tracer, wire

    def test_healthy_run_has_empty_diff(self, traced_kmedian):
        assert byte_parity_diff(traced_kmedian) == []
        assert_byte_parity(traced_kmedian)  # does not raise

    def test_matched_ledger_has_empty_diff(self):
        tracer, wire = self._matched_pair()
        result = _fake_cluster_result(tracer, wire)
        assert byte_parity_diff(result) == []
        assert_byte_parity(result, label="cluster")

    def test_diff_names_disagreeing_counters(self):
        tracer, wire = self._matched_pair()
        tracer.inc("wire.bytes", 37)  # unledgered raw bytes
        tracer.inc("wire.bytes.recv", 37)
        diff = byte_parity_diff(_fake_cluster_result(tracer, wire))
        assert len(diff) == 2
        assert any(line.startswith("wire.bytes (raw total): trace=137 ledger=100")
                   for line in diff)
        assert any("wire.bytes.recv" in line and "delta +37" in line for line in diff)

    def test_assert_carries_per_counter_lines(self):
        tracer, wire = self._matched_pair()
        wire.record(round_index=2, host=1, direction="recv",
                    kind="hb", n_bytes=64)
        with pytest.raises(AssertionError) as err:
            assert_byte_parity(_fake_cluster_result(tracer, wire), label="bench")
        message = str(err.value)
        assert message.startswith("[bench] trace/ledger wire byte mismatch")
        assert "wire.bytes (raw total): trace=100 ledger=164" in message
        assert "wire.bytes.recv" in message and "delta -64" in message

    def test_untraced_result_rejected(self, small_workload):
        result = partial_kmedian(small_workload.points, 3, 15, n_sites=3, seed=42)
        with pytest.raises(ValueError, match="trace=True"):
            byte_parity_diff(result)
