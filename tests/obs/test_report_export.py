"""Reports and Chrome-trace export on real (in-process) traced runs."""

import json

import numpy as np
import pytest

from repro import (
    partial_kcenter,
    partial_kmedian,
    uncertain_partial_kcenter_g,
    uncertain_partial_kmedian,
)
from repro.core.algorithm1_modified import distributed_partial_median_no_shipping
from repro.obs import (
    protocol_summary,
    render_protocol_summary,
    render_round_report,
    round_report,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.obs.trace import NULL_TRACER, Tracer


@pytest.fixture(scope="module")
def traced_kmedian(small_workload):
    return partial_kmedian(small_workload.points, 3, 15, n_sites=3, seed=42, trace=True)


def _assert_same_result(base, other):
    np.testing.assert_array_equal(base.centers, other.centers)
    assert base.cost == other.cost
    assert base.ledger.total_words() == other.ledger.total_words()
    assert base.ledger.words_by_kind() == other.ledger.words_by_kind()
    if base.outliers is None:
        assert other.outliers is None
    else:
        np.testing.assert_array_equal(base.outliers, other.outliers)


class TestTraceKnob:
    def test_default_leaves_trace_none(self, small_workload):
        result = partial_kmedian(small_workload.points, 3, 15, n_sites=3, seed=42)
        assert result.trace is None

    def test_traced_run_attaches_tracer(self, traced_kmedian):
        tracer = traced_kmedian.trace
        assert isinstance(tracer, Tracer)
        assert tracer.find_spans("run", algorithm="algorithm1")
        rounds = tracer.find_spans("round")
        assert {s.tags["round"] for s in rounds} == {1, 2}
        assert tracer.find_spans("site_task")
        assert tracer.find_spans("final_solve")
        assert "coordinator" in tracer.origins()
        assert {"site-0", "site-1", "site-2"} <= set(tracer.origins())

    def test_traced_matches_untraced_all_protocols(
        self, small_workload, small_instance, small_uncertain_workload
    ):
        points = small_workload.points
        uncertain = small_uncertain_workload.instance
        runs = [
            lambda **kw: partial_kmedian(points, 3, 15, n_sites=3, seed=42, **kw),
            lambda **kw: partial_kcenter(points, 3, 15, n_sites=3, seed=42, **kw),
            lambda **kw: distributed_partial_median_no_shipping(
                small_instance, rng=42, **kw
            ),
            lambda **kw: uncertain_partial_kmedian(
                uncertain, 3, 6, n_sites=3, seed=42, **kw
            ),
            lambda **kw: uncertain_partial_kcenter_g(
                uncertain, 3, 6, n_sites=3, seed=42, **kw
            ),
        ]
        for run in runs:
            base = run()
            traced = run(trace=True)
            _assert_same_result(base, traced)
            assert base.trace is None
            assert traced.trace is not None and traced.trace.spans


class TestRoundReport:
    def test_rows_cover_every_round(self, traced_kmedian):
        rows = round_report(traced_kmedian)
        assert {r["round"] for r in rows} == {1, 2}
        for row in rows:
            assert row["host"] == "-"  # in-process: no runner hosts
            assert row["tasks"] == 3
            assert row["task_s"] > 0.0
            assert row["sent_bytes"] == 0 and row["recv_bytes"] == 0

    def test_render_round_report(self, traced_kmedian):
        text = render_round_report(traced_kmedian)
        assert "round" in text and "tasks" in text
        assert len(text.splitlines()) >= 4

    def test_untraced_result_is_rejected(self, small_workload):
        result = partial_kmedian(small_workload.points, 3, 15, n_sites=3, seed=42)
        with pytest.raises(ValueError, match="trace=True"):
            round_report(result)
        with pytest.raises(ValueError, match="trace=True"):
            protocol_summary(result)


class TestProtocolSummary:
    def test_summary_fields(self, traced_kmedian):
        summary = protocol_summary(traced_kmedian)
        assert summary["total_words"] == traced_kmedian.ledger.total_words()
        # In-process: no wire ran, both byte totals are zero and they match.
        assert summary["wire_bytes_ledger"] == 0
        assert summary["wire_bytes_trace"] == 0
        assert summary["bytes_match"] is True
        assert summary["rounds"] == 2
        assert summary["n_spans"] == len(traced_kmedian.trace.spans)
        # The fixed counter columns are present even when the layer never ran.
        assert summary["cluster.resident_hit"] == 0.0
        assert summary["prefetch.hit"] == 0.0

    def test_render_protocol_summary(self, traced_kmedian):
        text = render_protocol_summary({"kmedian": traced_kmedian})
        assert "kmedian" in text and "bytes_per_word" in text


class TestChromeExport:
    def test_export_shape(self, traced_kmedian):
        doc = to_chrome_trace(traced_kmedian.trace)
        events = doc["traceEvents"]
        assert events
        phases = {e["ph"] for e in events}
        assert "X" in phases and "M" in phases
        names = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert "coordinator" in names
        for event in events:
            if event["ph"] == "X":
                assert event["ts"] >= 0.0 and event["dur"] >= 0.0
        # The document is valid JSON end to end.
        json.loads(json.dumps(doc))

    def test_write_chrome_trace(self, traced_kmedian, tmp_path):
        path = write_chrome_trace(traced_kmedian.trace, tmp_path / "trace.json")
        with open(path) as fh:
            doc = json.load(fh)
        assert doc["traceEvents"]
        assert doc["displayTimeUnit"] == "ms"
        assert "counters" in doc["otherData"]

    def test_disabled_tracer_rejected(self):
        with pytest.raises(ValueError):
            to_chrome_trace(NULL_TRACER)
