"""Tests for repro.obs.live: snapshots, sinks, LiveMetrics, telemetry sessions."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.obs.live import (
    NULL_TELEMETRY,
    JsonlSink,
    LiveMetrics,
    NullTelemetry,
    PrometheusFileSink,
    PrometheusHttpSink,
    TelemetrySession,
    build_snapshot,
    prometheus_text,
    resolve_telemetry,
    telemetry_scope,
)
from repro.obs.logs import active_log
from repro.obs.trace import NULL_TRACER, Tracer


def make_tracer():
    tracer = Tracer()
    tracer.inc("wire.bytes", 1000)
    tracer.inc("wire.bytes_encoded", 500)
    tracer.inc("cluster.resident_hit", 3)
    tracer.inc("cluster.resident_miss", 1)
    tracer.gauge("progress.round", 2)
    return tracer


class TestBuildSnapshot:
    def test_counters_and_gauges_copied(self):
        tracer = make_tracer()
        snapshot = build_snapshot(tracer)
        assert snapshot["counters"]["wire.bytes"] == 1000
        assert snapshot["gauges"]["progress.round"] == 2
        # Copies, not views: later increments must not mutate the snapshot.
        tracer.inc("wire.bytes", 1)
        assert snapshot["counters"]["wire.bytes"] == 1000

    def test_derived_gauges(self):
        snapshot = build_snapshot(make_tracer())
        assert snapshot["gauges"]["cluster.resident_hit_rate"] == pytest.approx(0.75)
        assert snapshot["gauges"]["wire.compression"] == pytest.approx(2.0)
        # No payload counters -> no payload hit-rate gauge (absent, not NaN).
        assert "cluster.payload_hit_rate" not in snapshot["gauges"]

    def test_label_and_clock(self):
        snapshot = build_snapshot(make_tracer(), label="bench")
        assert snapshot["label"] == "bench"
        assert snapshot["clock"] > 0
        assert "label" not in build_snapshot(make_tracer())

    def test_null_tracer_snapshot_is_empty(self):
        snapshot = build_snapshot(NULL_TRACER)
        assert snapshot["counters"] == {}
        assert snapshot["clock"] == 0.0

    def test_json_serializable(self):
        json.dumps(build_snapshot(make_tracer(), label="x"))


class TestPrometheusText:
    def test_exposition_format(self):
        text = prometheus_text(build_snapshot(make_tracer()))
        assert "# TYPE repro_wire_bytes counter\n" in text
        assert "repro_wire_bytes 1000" in text
        assert "# TYPE repro_progress_round gauge\n" in text
        assert "repro_progress_round 2" in text
        assert text.endswith("\n")

    def test_run_label(self):
        text = prometheus_text(build_snapshot(make_tracer(), label="run-1"))
        assert 'repro_wire_bytes{run="run-1"} 1000' in text

    def test_name_sanitization(self):
        tracer = Tracer()
        tracer.gauge("resource.host-2.rss_bytes", 1.0)
        tracer.inc("9weird", 1.0)
        text = prometheus_text(build_snapshot(tracer))
        assert "repro_resource_host_2_rss_bytes 1" in text
        assert "repro__9weird 1" in text


class TestSinks:
    def test_jsonl_sink(self, tmp_path):
        path = str(tmp_path / "snaps.jsonl")
        sink = JsonlSink(path)
        sink.publish({"t": 1.0, "counters": {"a": 1}})
        sink.publish({"t": 2.0, "counters": {"a": 2}})
        sink.close()
        rows = [json.loads(line) for line in open(path)]
        assert [row["t"] for row in rows] == [1.0, 2.0]

    def test_prometheus_file_sink_atomic_rewrite(self, tmp_path):
        path = str(tmp_path / "metrics.prom")
        sink = PrometheusFileSink(path)
        sink.publish(build_snapshot(make_tracer()))
        first = open(path).read()
        assert "repro_wire_bytes 1000" in first
        tracer = make_tracer()
        tracer.inc("wire.bytes", 500)
        sink.publish(build_snapshot(tracer))
        assert "repro_wire_bytes 1500" in open(path).read()
        sink.close()

    def test_http_sink_serves_latest(self):
        sink = PrometheusHttpSink(port=0)
        try:
            assert sink.port > 0
            sink.publish(build_snapshot(make_tracer(), label="live"))
            body = urllib.request.urlopen(sink.url, timeout=5).read().decode()
            assert 'repro_wire_bytes{run="live"} 1000' in body
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(
                    f"http://{sink.host}:{sink.port}/nope", timeout=5
                )
        finally:
            sink.close()


class TestLiveMetrics:
    def test_interval_validation(self):
        with pytest.raises(ValueError):
            LiveMetrics(make_tracer(), [], interval=0)

    def test_start_and_stop_publish(self, tmp_path):
        sink = JsonlSink(str(tmp_path / "s.jsonl"))
        live = LiveMetrics(make_tracer(), [sink], interval=60.0)
        live.start()
        final = live.stop()
        sink.close()
        # Immediate snapshot on start + final snapshot on stop.
        assert live.snapshots_published == 2
        assert final["counters"]["wire.bytes"] == 1000
        rows = [json.loads(line) for line in open(sink.path)]
        assert len(rows) == 2

    def test_failing_sink_does_not_kill_publishing(self):
        class Boom:
            def publish(self, snapshot):
                raise RuntimeError("scrape failed")

        live = LiveMetrics(make_tracer(), [Boom()], interval=60.0)
        snapshot = live.publish_once()
        assert snapshot["counters"]["wire.bytes"] == 1000


class TestTelemetrySession:
    def test_adopt_tracer_creates_private_one(self):
        session = TelemetrySession()
        tracer = session.adopt_tracer(NULL_TRACER)
        assert tracer.enabled and tracer is session.tracer
        assert session.run_log is not None
        # Idempotent: a second adoption keeps the binding.
        assert session.adopt_tracer(NULL_TRACER) is tracer

    def test_adopt_tracer_binds_run_tracer(self):
        session = TelemetrySession()
        run_tracer = Tracer()
        assert session.adopt_tracer(run_tracer) is run_tracer
        assert session.tracer is run_tracer

    def test_scope_runs_sampler_and_snapshots(self, tmp_path):
        session = TelemetrySession(
            sample_interval=0.01,
            snapshot_interval=0.01,
            jsonl_path=str(tmp_path / "s.jsonl"),
        )
        with telemetry_scope(session) as scoped:
            assert scoped is session
            assert session.sampler is not None and session.live is not None
            assert active_log() is session.run_log
        assert session.sampler is None and session.live is None
        assert session.peak_rss > 0
        assert session.last_snapshot is not None
        gauges = session.last_snapshot["gauges"]
        assert gauges["resource.coordinator.rss_bytes"] > 0
        session.close()
        assert len(open(tmp_path / "s.jsonl").readlines()) >= 2

    def test_declarative_sinks(self, tmp_path):
        session = TelemetrySession(
            prometheus_path=str(tmp_path / "m.prom"),
            jsonl_path=str(tmp_path / "s.jsonl"),
            prometheus_port=0,
        )
        try:
            assert len(session.sinks) == 3
            assert session.http_sink is not None and session.http_sink.port > 0
        finally:
            session.close()


class TestNullTelemetry:
    """NULL_TELEMETRY holds the same null-object standard as NULL_TRACER."""

    def test_shared_and_inert(self):
        assert NULL_TELEMETRY.enabled is False
        assert NULL_TELEMETRY.tracer is None
        assert NULL_TELEMETRY.run_log is None
        assert NULL_TELEMETRY.peak_rss == 0.0
        tracer = Tracer()
        assert NULL_TELEMETRY.adopt_tracer(tracer) is tracer
        assert NULL_TELEMETRY.adopt_tracer(NULL_TRACER) is NULL_TRACER
        NULL_TELEMETRY.close()  # no-op, never raises

    def test_scope_yields_without_threads(self):
        before = threading.active_count()
        with telemetry_scope(NULL_TELEMETRY) as scoped:
            assert scoped is NULL_TELEMETRY
            assert threading.active_count() == before
            assert active_log() is None

    def test_resolve_telemetry_mapping(self):
        assert resolve_telemetry(False) is NULL_TELEMETRY
        assert resolve_telemetry(None) is NULL_TELEMETRY
        fresh = resolve_telemetry(True)
        assert isinstance(fresh, TelemetrySession) and fresh.enabled
        assert resolve_telemetry(fresh) is fresh
        null = NullTelemetry()
        assert resolve_telemetry(null) is null
        with pytest.raises(TypeError):
            resolve_telemetry("yes")
