"""Trace correctness: span nesting, clock rebasing, and the disabled path."""

import pickle
import time

import pytest

from repro.obs.trace import (
    ASYNC,
    NULL_TRACER,
    SYNC,
    EventRecord,
    MetricsRegistry,
    NullTracer,
    SpanRecord,
    TraceBuffer,
    Tracer,
    active_collector,
    collector_scope,
    resolve_tracer,
    trace_run,
)


def _assert_strictly_nested(spans, slack=1e-9):
    """Sync spans of one (origin, tid) stream either nest or are disjoint."""
    streams = {}
    for span in spans:
        if span.flow == SYNC:
            streams.setdefault((span.origin, span.tid), []).append(span)
    for stream in streams.values():
        stream.sort(key=lambda s: (s.start, -s.end))
        stack = []
        for span in stream:
            while stack and span.start >= stack[-1].end - slack:
                stack.pop()
            if stack:
                assert span.end <= stack[-1].end + slack, (
                    f"{span.name} [{span.start}, {span.end}] straddles "
                    f"{stack[-1].name} [{stack[-1].start}, {stack[-1].end}]"
                )
            stack.append(span)


class TestMetricsRegistry:
    def test_inc_and_default(self):
        reg = MetricsRegistry()
        assert reg.counter("never") == 0.0
        reg.inc("a")
        reg.inc("a", 2.5)
        assert reg.counter("a") == 3.5

    def test_merge_adds_counters_overwrites_gauges(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("n", 1)
        a.gauge("g", 10.0)
        b.inc("n", 2)
        b.gauge("g", 20.0)
        a.merge(b)
        assert a.counter("n") == 3.0
        assert a.gauges["g"] == 20.0

    def test_bool(self):
        reg = MetricsRegistry()
        assert not reg
        reg.inc("x")
        assert reg


class TestTracerSpans:
    def test_sync_spans_strictly_nest(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner_a"):
                pass
            with tracer.span("inner_b"):
                with tracer.span("leaf"):
                    pass
        assert len(tracer.spans) == 4
        assert all(s.flow == SYNC for s in tracer.spans)
        _assert_strictly_nested(tracer.spans)
        outer = tracer.find_spans("outer")[0]
        for inner in tracer.find_spans():
            assert outer.start <= inner.start and inner.end <= outer.end

    def test_add_span_is_async_flow(self):
        tracer = Tracer()
        tracer.add_span("rpc", 0.1, 0.5, host=2)
        tracer.add_span("rpc", 0.2, 0.6, host=1)  # overlapping is legal
        spans = tracer.find_spans("rpc")
        assert [s.flow for s in spans] == [ASYNC, ASYNC]
        _assert_strictly_nested(tracer.spans)  # async spans are exempt

    def test_find_spans_by_tag(self):
        tracer = Tracer()
        with tracer.span("round", round=1):
            pass
        with tracer.span("round", round=2):
            pass
        assert len(tracer.find_spans("round")) == 2
        assert len(tracer.find_spans("round", round=2)) == 1
        assert tracer.find_spans("round", round=3) == []

    def test_clock_is_monotone_from_zero(self):
        tracer = Tracer()
        a = tracer.clock()
        b = tracer.clock()
        assert 0.0 <= a <= b

    def test_events_and_origins(self):
        tracer = Tracer()
        tracer.event("absorb", site=1)
        with tracer.span("round"):
            pass
        assert tracer.origins() == ["coordinator"]
        assert tracer.events[0].tags == {"site": 1}


class TestAbsorb:
    def test_same_clock_lands_at_true_instants(self):
        # Linux perf_counter is system-wide CLOCK_MONOTONIC, so a buffer
        # recorded in-process is directly comparable: no rebase happens.
        tracer = Tracer()
        t0 = tracer.clock()
        buffer = TraceBuffer(origin="site-0")
        with buffer.span("site_task"):
            time.sleep(0.002)
        t1 = tracer.clock()
        tracer.absorb(buffer, window=(t0, t1), tags={"round": 1})
        span = tracer.find_spans("site_task")[0]
        assert t0 <= span.start <= span.end <= t1
        assert span.tags["round"] == 1
        assert span.origin == "site-0"

    def test_foreign_clock_rebased_into_window(self):
        tracer = Tracer()
        buffer = TraceBuffer(origin="host-9")
        # Raw instants near zero cannot come from this process's
        # perf_counter stream, so absorb must fall back to the window.
        buffer.spans.append(SpanRecord("task", 0.10, 0.20, "host-9", 1))
        buffer.spans.append(SpanRecord("sub", 0.12, 0.16, "host-9", 1))
        buffer.events.append(EventRecord("mark", 0.15, "host-9", 1, {}))
        window = (100.0, 101.0)
        tracer.absorb(buffer, window=window, tags={"host": 9})
        task = tracer.find_spans("task")[0]
        sub = tracer.find_spans("sub")[0]
        # Centred: buffer length 0.1 inside a 1.0 window -> starts at 100.45.
        assert task.start == pytest.approx(100.45)
        assert task.end == pytest.approx(100.55)
        # Order and durations survive, nesting is preserved.
        assert task.start <= sub.start <= sub.end <= task.end
        assert sub.duration == pytest.approx(0.04)
        event = tracer.events[0]
        assert task.start <= event.time <= task.end

    def test_buffer_longer_than_window_keeps_left_edge(self):
        tracer = Tracer()
        buffer = TraceBuffer(origin="host-0")
        buffer.spans.append(SpanRecord("task", 0.0, 2.0, "host-0", 1))
        tracer.absorb(buffer, window=(10.0, 11.0))
        span = tracer.find_spans("task")[0]
        assert span.start == pytest.approx(10.0)
        assert span.duration == pytest.approx(2.0)

    def test_absorb_merges_metrics_and_tags_do_not_override(self):
        tracer = Tracer()
        tracer.inc("hits", 1)
        buffer = TraceBuffer(origin="host-0")
        buffer.inc("hits", 2)
        buffer.spans.append(SpanRecord("task", 0.0, 1.0, "host-0", 1, {"round": 7}))
        tracer.absorb(buffer, window=(0.0, 1.0), tags={"round": 99, "host": 0})
        assert tracer.counter("hits") == 3.0
        span = tracer.find_spans("task")[0]
        assert span.tags["round"] == 7  # the record's own tag wins
        assert span.tags["host"] == 0

    def test_absorb_empty_or_none_is_a_no_op(self):
        tracer = Tracer()
        tracer.absorb(None)
        tracer.absorb(TraceBuffer(origin="x"), window=(0.0, 1.0))
        assert tracer.spans == [] and tracer.events == []

    def test_buffer_roundtrips_through_pickle(self):
        buffer = TraceBuffer(origin="site-3")
        with buffer.span("site_task", site=3):
            buffer.inc("plan.tiles", 4)
            buffer.event("mark")
        clone = pickle.loads(pickle.dumps(buffer))
        assert clone.origin == "site-3"
        assert [s.name for s in clone.spans] == ["site_task"]
        assert clone.metrics.counter("plan.tiles") == 4.0
        assert clone.bounds() == buffer.bounds()


class TestDisabledTracer:
    def test_null_tracer_records_nothing(self):
        with NULL_TRACER.span("round", round=1):
            NULL_TRACER.inc("wire.bytes", 100)
            NULL_TRACER.event("absorb")
            NULL_TRACER.add_span("rpc", 0.0, 1.0)
        assert NULL_TRACER.spans == []
        assert NULL_TRACER.events == []
        assert NULL_TRACER.counter("wire.bytes") == 0.0

    def test_span_reuses_one_context_manager(self):
        # Zero per-call allocation when tracing is off.
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b", tag=1)

    def test_resolve_tracer_mapping(self):
        assert resolve_tracer(False) is NULL_TRACER
        assert resolve_tracer(None) is NULL_TRACER
        fresh = resolve_tracer(True)
        assert isinstance(fresh, Tracer) and fresh.enabled
        assert resolve_tracer(fresh) is fresh
        null = NullTracer()
        assert resolve_tracer(null) is null
        with pytest.raises(TypeError):
            resolve_tracer("yes")

    def test_trace_run_disabled_installs_no_collector(self):
        with trace_run(NULL_TRACER, "run"):
            assert active_collector() is None
        assert NULL_TRACER.spans == []


class TestAmbientCollector:
    def test_scope_installs_and_restores(self):
        tracer = Tracer()
        assert active_collector() is None
        with collector_scope(tracer):
            assert active_collector() is tracer
            buffer = TraceBuffer(origin="task-0")
            with collector_scope(buffer):
                assert active_collector() is buffer
            assert active_collector() is tracer
        assert active_collector() is None

    def test_trace_run_enabled_records_root_span(self):
        tracer = Tracer()
        with trace_run(tracer, "run", algorithm="algorithm1"):
            assert active_collector() is tracer
        assert len(tracer.find_spans("run", algorithm="algorithm1")) == 1
        assert active_collector() is None
