"""Property-based tests for lower convex hulls and cost profiles."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CostProfile, lower_convex_hull


@st.composite
def cost_curves(draw):
    """A non-increasing, non-negative cost curve evaluated at 0..t."""
    t = draw(st.integers(min_value=1, max_value=30))
    drops = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
            min_size=t,
            max_size=t,
        )
    )
    start = draw(st.floats(min_value=0.0, max_value=500.0, allow_nan=False))
    costs = np.concatenate([[start + sum(drops)], start + sum(drops) - np.cumsum(drops)])
    qs = np.arange(t + 1, dtype=float)
    return qs, costs


class TestHullProperties:
    @given(curve=cost_curves())
    @settings(max_examples=100, deadline=None)
    def test_hull_lower_bounds_input(self, curve):
        qs, costs = curve
        hx, hy = lower_convex_hull(qs, costs)
        interp = np.interp(qs, hx, hy)
        assert np.all(interp <= costs + 1e-6)

    @given(curve=cost_curves())
    @settings(max_examples=100, deadline=None)
    def test_hull_vertices_are_input_points(self, curve):
        qs, costs = curve
        hx, hy = lower_convex_hull(qs, costs)
        for x, y in zip(hx, hy):
            pos = int(np.flatnonzero(qs == x)[0])
            assert y == costs[pos]

    @given(curve=cost_curves())
    @settings(max_examples=100, deadline=None)
    def test_hull_slopes_non_decreasing(self, curve):
        qs, costs = curve
        hx, hy = lower_convex_hull(qs, costs)
        if hx.size >= 3:
            slopes = np.diff(hy) / np.diff(hx)
            assert np.all(np.diff(slopes) >= -1e-7)

    @given(curve=cost_curves())
    @settings(max_examples=100, deadline=None)
    def test_profile_marginals_non_increasing_and_nonnegative(self, curve):
        qs, costs = curve
        t = int(qs[-1])
        profile = CostProfile.from_evaluations(qs, costs, t_max=t)
        marginals = profile.marginals()
        assert marginals.shape == (t,)
        assert np.all(marginals >= -1e-12)
        assert np.all(np.diff(marginals) <= 1e-7)

    @given(curve=cost_curves())
    @settings(max_examples=100, deadline=None)
    def test_profile_evaluation_monotone(self, curve):
        qs, costs = curve
        t = int(qs[-1])
        profile = CostProfile.from_evaluations(qs, costs, t_max=t)
        values = profile(np.arange(t + 1))
        assert np.all(np.diff(values) <= 1e-9)

    @given(curve=cost_curves(), frac=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=100, deadline=None)
    def test_snap_up_is_a_vertex_at_least_q(self, curve, frac):
        qs, costs = curve
        t = int(qs[-1])
        profile = CostProfile.from_evaluations(qs, costs, t_max=t)
        q = frac * t
        snapped = profile.snap_up_to_vertex(q)
        assert profile.is_vertex(snapped)
        assert snapped >= min(q, profile.hull_qs[-1]) - 1e-9
