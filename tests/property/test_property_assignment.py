"""Property-based tests for outlier-trimmed assignment."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.sequential import assign_with_outliers
from repro.sequential.assignment import trim_outliers


@st.composite
def cost_and_weights(draw):
    n = draw(st.integers(min_value=1, max_value=25))
    f = draw(st.integers(min_value=1, max_value=6))
    costs = draw(
        arrays(
            dtype=float,
            shape=(n, f),
            elements=st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
        )
    )
    weights = draw(
        arrays(
            dtype=float,
            shape=(n,),
            elements=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        )
    )
    budget = draw(st.floats(min_value=0.0, max_value=float(n) * 5.0, allow_nan=False))
    return costs, weights, budget


class TestTrimProperties:
    @given(data=cost_and_weights())
    @settings(max_examples=150, deadline=None)
    def test_dropped_weight_within_budget_and_bounds(self, data):
        costs, weights, budget = data
        unit = costs.min(axis=1)
        dropped, cost = trim_outliers(unit, weights, budget, "median")
        assert dropped.sum() <= budget + 1e-9
        assert np.all(dropped >= -1e-12)
        assert np.all(dropped <= weights + 1e-9)
        assert cost >= -1e-9

    @given(data=cost_and_weights())
    @settings(max_examples=150, deadline=None)
    def test_median_cost_equals_residual_weighted_sum(self, data):
        costs, weights, budget = data
        unit = costs.min(axis=1)
        dropped, cost = trim_outliers(unit, weights, budget, "median")
        assert cost == np.dot(weights - dropped, unit) or abs(
            cost - np.dot(weights - dropped, unit)
        ) <= 1e-6 * max(1.0, cost)

    @given(data=cost_and_weights())
    @settings(max_examples=100, deadline=None)
    def test_more_budget_never_costs_more(self, data):
        costs, weights, budget = data
        unit = costs.min(axis=1)
        _, cost_small = trim_outliers(unit, weights, budget, "median")
        _, cost_big = trim_outliers(unit, weights, budget * 2 + 1, "median")
        assert cost_big <= cost_small + 1e-6

    @given(data=cost_and_weights())
    @settings(max_examples=100, deadline=None)
    def test_center_cost_is_max_over_survivors(self, data):
        costs, weights, budget = data
        unit = costs.min(axis=1)
        dropped, cost = trim_outliers(unit, weights, budget, "center")
        survivors = (weights - dropped) > 0
        if np.any(survivors):
            assert cost == unit[survivors].max()
        else:
            assert cost == 0.0


class TestAssignProperties:
    @given(data=cost_and_weights(), k=st.integers(min_value=1, max_value=3))
    @settings(max_examples=100, deadline=None)
    def test_solution_invariants(self, data, k):
        costs, weights, budget = data
        centers = list(range(min(k, costs.shape[1])))
        sol = assign_with_outliers(costs, centers, budget, weights=weights, objective="median")
        # Every served demand is assigned to an open center.
        assert set(np.unique(sol.assignment[sol.assignment >= 0])) <= set(centers)
        assert sol.outlier_weight <= budget + 1e-9
        assert sol.cost >= -1e-9
        # Cost never exceeds the untrimmed cost.
        untrimmed = float(np.dot(weights, costs[:, centers].min(axis=1)))
        assert sol.cost <= untrimmed + 1e-6
