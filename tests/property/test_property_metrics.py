"""Property-based tests for metric substrates."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.metrics import CompressedGraph, EuclideanMetric, truncate_matrix


@st.composite
def point_clouds(draw):
    n = draw(st.integers(min_value=2, max_value=30))
    d = draw(st.integers(min_value=1, max_value=4))
    pts = draw(
        arrays(
            dtype=float,
            shape=(n, d),
            elements=st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
        )
    )
    return pts


class TestEuclideanProperties:
    @given(pts=point_clouds())
    @settings(max_examples=80, deadline=None)
    def test_metric_axioms(self, pts):
        metric = EuclideanMetric(pts)
        mat = metric.full_matrix()
        assert np.all(mat >= 0)
        assert np.allclose(np.diag(mat), 0.0, atol=1e-7)
        assert np.allclose(mat, mat.T, atol=1e-7)

    @given(pts=point_clouds())
    @settings(max_examples=50, deadline=None)
    def test_triangle_inequality(self, pts):
        metric = EuclideanMetric(pts)
        mat = metric.full_matrix()
        n = len(metric)
        # Check via one random intermediate point per pair (full check is cubic).
        rng = np.random.default_rng(0)
        mids = rng.integers(0, n, size=n)
        for m in np.unique(mids):
            assert np.all(mat <= mat[:, [m]] + mat[[m], :] + 1e-6)

    @given(pts=point_clouds(), tau=st.floats(min_value=0.0, max_value=50.0))
    @settings(max_examples=80, deadline=None)
    def test_truncation_bounded_by_original(self, pts, tau):
        metric = EuclideanMetric(pts)
        mat = metric.full_matrix()
        trunc = truncate_matrix(mat, tau)
        assert np.all(trunc <= mat + 1e-12)
        assert np.all(trunc >= mat - tau - 1e-9)
        assert np.all(trunc >= 0)


class TestCompressedGraphProperties:
    @given(pts=point_clouds(), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_demand_distances_dominate_ground_distances(self, pts, data):
        metric = EuclideanMetric(pts)
        n = len(metric)
        n_nodes = data.draw(st.integers(min_value=1, max_value=min(8, n)))
        anchors = data.draw(
            st.lists(st.integers(min_value=0, max_value=n - 1), min_size=n_nodes, max_size=n_nodes)
        )
        costs = data.draw(
            st.lists(
                st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
                min_size=n_nodes,
                max_size=n_nodes,
            )
        )
        graph = CompressedGraph(metric, np.asarray(anchors), np.asarray(costs))
        block = graph.demand_facility_costs(range(n_nodes), range(n_nodes))
        ground = metric.pairwise(np.asarray(anchors), np.asarray(anchors))
        # Compressed costs are the ground distance plus the demand's collapse cost.
        assert np.all(block >= ground - 1e-9)
        assert np.allclose(block - ground, np.asarray(costs)[:, None], atol=1e-9)
