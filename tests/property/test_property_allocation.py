"""Property-based tests for the outlier-budget allocation (Lemma 3.3 optimality)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import allocate_outlier_budget, optimal_allocation_dp


@st.composite
def convex_site_tables(draw):
    """A list of convex non-increasing cost tables, one per site."""
    n_sites = draw(st.integers(min_value=1, max_value=5))
    tables = []
    for _ in range(n_sites):
        length = draw(st.integers(min_value=1, max_value=12))
        marg = sorted(
            draw(
                st.lists(
                    st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
                    min_size=length,
                    max_size=length,
                )
            ),
            reverse=True,
        )
        start = float(sum(marg))
        tables.append(np.concatenate([[start], start - np.cumsum(marg)]))
    return tables


class TestAllocationProperties:
    @given(tables=convex_site_tables(), budget=st.integers(min_value=0, max_value=30))
    @settings(max_examples=120, deadline=None)
    def test_total_never_exceeds_budget(self, tables, budget):
        marginals = [np.maximum(t[:-1] - t[1:], 0.0) for t in tables]
        alloc = allocate_outlier_budget(marginals, budget)
        assert alloc.total_allocated <= budget
        for ti, m in zip(alloc.t_allocated, marginals):
            assert 0 <= ti <= m.size

    @given(tables=convex_site_tables(), budget=st.integers(min_value=0, max_value=20))
    @settings(max_examples=80, deadline=None)
    def test_matches_dp_optimum_on_convex_inputs(self, tables, budget):
        marginals = [np.maximum(t[:-1] - t[1:], 0.0) for t in tables]
        alloc = allocate_outlier_budget(marginals, budget)
        greedy_cost = sum(
            float(tables[i][min(int(alloc.t_allocated[i]), tables[i].size - 1)])
            for i in range(len(tables))
        )
        _, dp_cost = optimal_allocation_dp(tables, budget)
        assert greedy_cost <= dp_cost + 1e-6

    @given(tables=convex_site_tables(), budget=st.integers(min_value=1, max_value=20))
    @settings(max_examples=80, deadline=None)
    def test_per_site_allocation_is_prefix_of_winners(self, tables, budget):
        # Because marginals are non-increasing within a site, the winning set
        # of a site must be exactly its first t_i marginals: granting q but not
        # q-1 would contradict the ordering.
        marginals = [np.maximum(t[:-1] - t[1:], 0.0) for t in tables]
        alloc = allocate_outlier_budget(marginals, budget)
        threshold = alloc.threshold
        for i, m in enumerate(marginals):
            ti = int(alloc.t_allocated[i])
            if ti < m.size:
                # Everything beyond the prefix is no larger than the threshold.
                assert np.all(m[ti:] <= threshold + 1e-9)

    @given(tables=convex_site_tables(), budget=st.integers(min_value=0, max_value=20))
    @settings(max_examples=80, deadline=None)
    def test_deterministic(self, tables, budget):
        marginals = [np.maximum(t[:-1] - t[1:], 0.0) for t in tables]
        a = allocate_outlier_budget(marginals, budget)
        b = allocate_outlier_budget(marginals, budget)
        assert np.array_equal(a.t_allocated, b.t_allocated)
        assert a.threshold == b.threshold
