"""Property-based tests for the Gonzalez traversal and the round-1 communication size."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import geometric_grid, precluster_site
from repro.metrics import EuclideanMetric, build_cost_matrix
from repro.sequential import gonzalez


@st.composite
def clustered_points(draw):
    """Random 2-D points with at least a little spread."""
    n = draw(st.integers(min_value=3, max_value=40))
    pts = draw(
        arrays(
            dtype=float,
            shape=(n, 2),
            elements=st.floats(min_value=-50.0, max_value=50.0, allow_nan=False),
        )
    )
    return pts


class TestGonzalezProperties:
    @given(pts=clustered_points(), seed=st.integers(min_value=0, max_value=10))
    @settings(max_examples=60, deadline=None)
    def test_radii_non_increasing_and_coverage_bounded(self, pts, seed):
        metric = EuclideanMetric(pts)
        result = gonzalez(metric, rng=seed)
        assert np.all(np.diff(result.radii[1:]) <= 1e-7)
        assert np.all(np.diff(result.coverage_radius) <= 1e-7)
        # The coverage radius after r points equals the next insertion radius.
        for r in range(1, len(metric)):
            assert result.coverage_radius[r - 1] >= result.radii[r] - 1e-7

    @given(pts=clustered_points(), seed=st.integers(min_value=0, max_value=10))
    @settings(max_examples=60, deadline=None)
    def test_ordering_is_permutation(self, pts, seed):
        metric = EuclideanMetric(pts)
        result = gonzalez(metric, rng=seed)
        assert np.array_equal(np.sort(result.ordering), np.arange(len(metric)))


class TestPreclusterCommunicationProperties:
    @given(
        pts=clustered_points(),
        t=st.integers(min_value=1, max_value=30),
        k=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_profile_words_logarithmic_in_t(self, pts, t, k):
        # Round 1 of Algorithm 1 transmits the hull of O(log t) evaluations, so
        # the words are bounded by 2 * |I| regardless of the data.
        metric = EuclideanMetric(pts)
        n = len(metric)
        costs = build_cost_matrix(metric, range(n), range(n), "median")
        pre = precluster_site(costs, min(2 * k, n), t, rng=0, max_iter=5)
        grid_size = geometric_grid(t, rho=2.0, upper=n).size
        assert pre.profile.n_vertices <= grid_size
        assert pre.profile.words <= 2 * grid_size
        # And the profile is a valid convex non-increasing summary.
        marginals = pre.profile.marginals()
        assert np.all(marginals >= -1e-9)
        assert np.all(np.diff(marginals) <= 1e-7)
