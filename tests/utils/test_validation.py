"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_k_t,
    check_points_array,
    check_positive_int,
    check_probability_vector,
    require,
)


class TestRequire:
    def test_passes(self):
        require(True, "never raised")

    def test_raises(self):
        with pytest.raises(ValueError, match="boom"):
            require(False, "boom")


class TestCheckPositiveInt:
    def test_accepts_int(self):
        assert check_positive_int(3, "x") == 3

    def test_accepts_numpy_int(self):
        assert check_positive_int(np.int64(5), "x") == 5

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int(True, "x")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int(2.0, "x")

    def test_rejects_zero_by_default(self):
        with pytest.raises(ValueError):
            check_positive_int(0, "x")

    def test_allow_zero(self):
        assert check_positive_int(0, "x", allow_zero=True) == 0

    def test_rejects_negative_even_with_allow_zero(self):
        with pytest.raises(ValueError):
            check_positive_int(-1, "x", allow_zero=True)


class TestCheckKT:
    def test_valid(self):
        assert check_k_t(10, 3, 2) == (10, 3, 2)

    def test_t_zero_allowed(self):
        assert check_k_t(10, 3, 0) == (10, 3, 0)

    def test_k_too_large(self):
        with pytest.raises(ValueError):
            check_k_t(5, 6, 0)

    def test_t_too_large(self):
        with pytest.raises(ValueError):
            check_k_t(5, 1, 6)

    def test_k_zero_rejected(self):
        with pytest.raises(ValueError):
            check_k_t(5, 0, 1)


class TestCheckProbabilityVector:
    def test_normalises(self):
        p = check_probability_vector(np.asarray([2.0, 2.0]))
        assert np.allclose(p, [0.5, 0.5])

    def test_already_normalised_untouched(self):
        p = check_probability_vector(np.asarray([0.25, 0.75]))
        assert np.allclose(p, [0.25, 0.75])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            check_probability_vector(np.asarray([0.5, -0.5]))

    def test_zero_mass_rejected(self):
        with pytest.raises(ValueError):
            check_probability_vector(np.asarray([0.0, 0.0]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            check_probability_vector(np.asarray([]))

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            check_probability_vector(np.ones((2, 2)))


class TestCheckPointsArray:
    def test_1d_promoted_to_column(self):
        arr = check_points_array(np.asarray([1.0, 2.0, 3.0]))
        assert arr.shape == (3, 1)

    def test_2d_passthrough(self):
        arr = check_points_array(np.ones((4, 3)))
        assert arr.shape == (4, 3)

    def test_nan_rejected(self):
        bad = np.ones((3, 2))
        bad[1, 1] = np.nan
        with pytest.raises(ValueError):
            check_points_array(bad)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            check_points_array(np.empty((0, 2)))
