"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import derive_seed, ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1_000_000, size=5)
        b = ensure_rng(42).integers(0, 1_000_000, size=5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        ss = np.random.SeedSequence(7)
        gen = ensure_rng(ss)
        assert isinstance(gen, np.random.Generator)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).integers(0, 1_000_000, size=10)
        b = ensure_rng(2).integers(0, 1_000_000, size=10)
        assert not np.array_equal(a, b)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero_children(self):
        assert len(spawn_rngs(0, 0)) == 0

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_children_are_independent(self):
        children = spawn_rngs(123, 3)
        draws = [c.integers(0, 2**30, size=8) for c in children]
        assert not np.array_equal(draws[0], draws[1])
        assert not np.array_equal(draws[1], draws[2])

    def test_children_deterministic_from_seed(self):
        a = [c.integers(0, 2**30, size=4) for c in spawn_rngs(9, 2)]
        b = [c.integers(0, 2**30, size=4) for c in spawn_rngs(9, 2)]
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_spawning_from_generator(self):
        gen = np.random.default_rng(5)
        children = spawn_rngs(gen, 4)
        assert len(children) == 4


class TestDeriveSeed:
    def test_range(self):
        seed = derive_seed(np.random.default_rng(0))
        assert 0 <= seed < 2**63

    def test_varies(self):
        gen = np.random.default_rng(0)
        assert derive_seed(gen) != derive_seed(gen)
