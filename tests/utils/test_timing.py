"""Tests for repro.utils.timing."""

from repro.utils.timing import Timer, timed


class TestTimer:
    def test_measure_accumulates(self):
        timer = Timer()
        with timer.measure("work"):
            sum(range(100))
        with timer.measure("work"):
            sum(range(100))
        assert timer.count("work") == 2
        assert timer.total("work") >= 0.0

    def test_unknown_label_is_zero(self):
        timer = Timer()
        assert timer.total("nope") == 0.0
        assert timer.count("nope") == 0

    def test_labels_are_separate(self):
        timer = Timer()
        with timer.measure("a"):
            pass
        with timer.measure("b"):
            pass
        assert set(timer.as_dict()) == {"a", "b"}

    def test_max_total(self):
        timer = Timer()
        assert timer.max_total() == 0.0
        with timer.measure("a"):
            sum(range(1000))
        assert timer.max_total() == timer.total("a")

    def test_merge(self):
        a, b = Timer(), Timer()
        with a.measure("x"):
            pass
        with b.measure("x"):
            pass
        with b.measure("y"):
            pass
        a.merge(b)
        assert a.count("x") == 2
        assert a.count("y") == 1

    def test_exception_still_recorded(self):
        timer = Timer()
        try:
            with timer.measure("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert timer.count("boom") == 1


class TestTimed:
    def test_records_seconds(self):
        with timed() as clock:
            sum(range(10_000))
        assert clock["seconds"] > 0.0
