"""Peak-RSS smoke checks for the blocked, memory-budgeted layer.

The point of ``repro.metrics.blocked`` is that the dense ``n x n`` footprint
never has to exist.  These tests run real workloads whose dense matrices
would dwarf the budget and assert, via ``resource.getrusage``, that the
process high-water mark moves by far less than the dense footprint.

``ru_maxrss`` is a monotone high-water mark for the whole process, so the
assertions measure the *delta* across the workload: standalone they bound
the workload's true peak; inside a larger suite an already-high watermark
only makes them easier, never flaky.
"""

import resource
import sys

import numpy as np
import pytest

from repro import partial_kcenter, partial_kmedian
from repro.data import gaussian_mixture_with_outliers
from repro.metrics import EuclideanMetric


def _peak_rss_bytes() -> int:
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.
    return peak * 1024 if sys.platform != "darwin" else peak


class TestBlockedReductionRss:
    def test_spread_of_large_metric_stays_in_budget(self):
        """``spread`` over 12k points: dense needs ~1.1 GiB, blocked ~8 MiB."""
        n = 12_000
        rng = np.random.default_rng(11)
        metric = EuclideanMetric(rng.normal(size=(n, 4)) * 10.0)
        dense_bytes = n * n * 8  # ~1.15 GiB that must never be allocated

        before = _peak_rss_bytes()
        spread = metric.spread(memory_budget=8 * 2**20)
        delta = _peak_rss_bytes() - before

        assert spread > 1.0
        assert delta < dense_bytes // 4, (
            f"blocked spread moved peak RSS by {delta / 2**20:.0f} MiB; "
            f"dense footprint is {dense_bytes / 2**20:.0f} MiB"
        )


class TestProtocolRss:
    def test_kcenter_protocol_under_tiny_budget(self):
        """Algorithm 2 on 20k points with a 4 MiB budget: the dense global
        matrix would be ~3 GiB; the budgeted run must stay far below it."""
        n_inliers, n_outliers = 19_920, 80
        n = n_inliers + n_outliers
        workload = gaussian_mixture_with_outliers(
            n_inliers=n_inliers, n_outliers=n_outliers, n_clusters=4, dim=2,
            separation=20.0, rng=5,
        )
        dense_bytes = n * n * 8
        budget = 4 * 2**20
        assert dense_bytes > 100 * budget  # the instance genuinely over-runs the budget

        before = _peak_rss_bytes()
        result = partial_kcenter(
            workload.points, k=4, t=n_outliers, n_sites=4, seed=5,
            memory_budget=budget,
        )
        delta = _peak_rss_bytes() - before

        assert result.n_centers <= 4
        assert result.rounds == 2
        assert delta < dense_bytes // 8, (
            f"budgeted k-center moved peak RSS by {delta / 2**20:.0f} MiB; "
            f"dense footprint is {dense_bytes / 2**20:.0f} MiB"
        )

    def test_kmedian_spills_sites_to_disk_and_completes(self):
        """Algorithm 1 with a budget below every site matrix: all sites must
        stream their cost matrices from disk shards and still match the
        dense run bit for bit."""
        workload = gaussian_mixture_with_outliers(
            n_inliers=570, n_outliers=30, n_clusters=3, dim=2,
            separation=12.0, rng=9,
        )
        budget = 64 * 2**10  # 64 KiB; each site matrix is 200^2 * 8 = 320 KiB
        dense = partial_kmedian(workload.points, k=3, t=30, n_sites=3, seed=9)
        budgeted = partial_kmedian(
            workload.points, k=3, t=30, n_sites=3, seed=9, memory_budget=budget
        )
        assert budgeted.metadata["cost_matrix_storage"] == ["memmap"] * 3
        np.testing.assert_array_equal(dense.centers, budgeted.centers)
        assert dense.cost == budgeted.cost
        assert dense.ledger.total_words() == budgeted.ledger.total_words()

    def test_shard_scratch_directory_is_removed(self, tmp_path, monkeypatch):
        """The per-run scratch directory (and its shard files) must not leak."""
        import tempfile

        monkeypatch.setattr(tempfile, "tempdir", str(tmp_path))
        workload = gaussian_mixture_with_outliers(
            n_inliers=150, n_outliers=15, n_clusters=3, dim=2,
            separation=12.0, rng=3,
        )
        partial_kmedian(workload.points, k=3, t=15, n_sites=3, seed=3, memory_budget=2048)
        leftovers = list(tmp_path.glob("repro-shards-*"))
        assert leftovers == []
