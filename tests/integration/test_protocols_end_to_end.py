"""End-to-end comparisons of all deterministic protocols on a shared workload.

These tests tie the whole stack together: workload generation, partitioning,
the distributed protocols, the baselines and the analysis layer, checking the
*relationships* the paper claims (solution quality within constant factors of
each other, communication orderings, budget accounting) rather than any
single component in isolation.
"""

import numpy as np
import pytest

from repro.analysis import compare_results, evaluate_centers, summarize_result
from repro.baselines import centralized_reference, one_round_protocol, send_all_protocol
from repro.core import (
    distributed_partial_center,
    distributed_partial_median,
    distributed_partial_median_no_shipping,
)
from repro.data import gaussian_mixture_with_outliers
from repro.distributed import DistributedInstance, partition_balanced, partition_by_cluster


@pytest.fixture(scope="module")
def workload():
    return gaussian_mixture_with_outliers(
        n_inliers=260, n_outliers=24, n_clusters=4, separation=14.0, cluster_std=1.0, rng=99
    )


@pytest.fixture(scope="module")
def metric(workload):
    return workload.to_metric()


@pytest.fixture(scope="module")
def instance(workload, metric):
    shards = partition_balanced(workload.n_points, 4, rng=5)
    return DistributedInstance.from_partition(metric, shards, 4, 24, "median")


@pytest.fixture(scope="module")
def reference(metric):
    return centralized_reference(metric, 4, 24, objective="median", rng=17)


class TestMedianProtocolFamily:
    def test_all_protocols_within_constant_of_reference(self, instance, metric, reference):
        runs = {
            "algorithm1": distributed_partial_median(instance, epsilon=0.5, rng=0),
            "algorithm1_no_ship": distributed_partial_median_no_shipping(
                instance, epsilon=0.5, delta=0.5, rng=0
            ),
            "one_round": one_round_protocol(instance, rng=0),
            "send_all": send_all_protocol(instance, rng=0),
        }
        rows = compare_results(metric, runs, reference=reference)
        for row in rows:
            assert row["approx_ratio"] <= 3.0, row

    def test_communication_ordering(self, instance):
        alg1 = distributed_partial_median(instance, epsilon=0.5, rng=0)
        no_ship = distributed_partial_median_no_shipping(instance, epsilon=0.5, delta=0.5, rng=0)
        one_round = one_round_protocol(instance, rng=0)
        send_all = send_all_protocol(instance, rng=0)
        # no-shipping <= algorithm 1 <= one-round <= send-all on this regime.
        assert no_ship.total_words < alg1.total_words
        assert alg1.total_words < one_round.total_words
        assert one_round.total_words < send_all.total_words

    def test_round_counts(self, instance):
        assert distributed_partial_median(instance, rng=0).rounds == 2
        assert one_round_protocol(instance, rng=0).rounds == 1
        assert send_all_protocol(instance, rng=0).rounds == 1

    def test_outlier_budget_accounting(self, instance, workload):
        result = distributed_partial_median(instance, epsilon=0.5, rng=0)
        assert result.outliers.size <= result.outlier_budget
        # Every reported outlier is a real input point.
        assert np.all(result.outliers < workload.n_points)

    def test_cluster_aligned_partition_still_works(self, workload, metric, reference):
        # Hardest partition: sites see whole clusters, outliers spread around.
        shards = partition_by_cluster(workload.labels, 4, rng=3)
        instance = DistributedInstance.from_partition(metric, shards, 4, 24, "median")
        result = distributed_partial_median(instance, epsilon=0.5, rng=0)
        realized = evaluate_centers(metric, result.centers, result.outlier_budget, objective="median")
        assert realized.cost <= 3.0 * reference.cost


class TestCenterProtocolFamily:
    def test_center_within_constant_of_reference(self, workload, metric):
        shards = partition_balanced(workload.n_points, 4, rng=5)
        instance = DistributedInstance.from_partition(metric, shards, 4, 24, "center")
        result = distributed_partial_center(instance, rng=0)
        reference = centralized_reference(metric, 4, 24, objective="center")
        realized = evaluate_centers(metric, result.centers, 24, objective="center")
        assert realized.cost <= 4.0 * reference.cost

    def test_center_vs_one_round_communication(self, workload, metric):
        shards = partition_balanced(workload.n_points, 8, rng=5)
        instance = DistributedInstance.from_partition(metric, shards, 4, 24, "center")
        alg2 = distributed_partial_center(instance, rng=0)
        one_round = one_round_protocol(instance, rng=0)
        assert alg2.total_words < one_round.total_words


class TestSummaryPipeline:
    def test_summary_row_pipeline(self, instance, metric, reference, workload):
        result = distributed_partial_median(instance, epsilon=0.5, rng=0)
        row = summarize_result(
            metric,
            result,
            reference=reference,
            true_outliers=np.flatnonzero(workload.outlier_mask),
            label="alg1",
        )
        assert row["rounds"] == 2
        assert row["outlier_recall"] >= 0.5
        assert row["approx_ratio"] <= 3.0
