"""End-to-end runs on the structured (non-Gaussian) workloads.

Rings break mean-based intuition, grids produce massive distance ties, and
power-law clusters skew the per-site loads; the protocols should keep their
budgets and quality relationships on all of them.
"""

import numpy as np
import pytest

from repro.analysis import evaluate_centers
from repro.baselines import centralized_reference
from repro.core import distributed_partial_center, distributed_partial_median
from repro.data import grid_with_outliers, powerlaw_clusters_with_outliers, rings_with_outliers
from repro.distributed import DistributedInstance, partition_dirichlet


class TestRingsWorkload:
    @pytest.fixture(scope="class")
    def rings(self):
        return rings_with_outliers(70, 3, 18, ring_separation=15.0, radius=3.0, rng=1)

    def test_median_on_rings(self, rings):
        metric = rings.to_metric()
        shards = partition_dirichlet(rings.n_points, 4, alpha=0.8, rng=2)
        instance = DistributedInstance.from_partition(metric, shards, 3, 18, "median")
        result = distributed_partial_median(instance, epsilon=0.5, rng=0)
        realized = evaluate_centers(metric, result.centers, result.outlier_budget, objective="median")
        reference = centralized_reference(metric, 3, 18, objective="median", rng=3)
        assert realized.cost <= 3.0 * reference.cost
        # Centers must be ring points, not scattered outliers.
        for c in result.centers:
            assert rings.labels[c] >= 0

    def test_center_on_rings(self, rings):
        metric = rings.to_metric()
        shards = partition_dirichlet(rings.n_points, 4, alpha=0.8, rng=2)
        instance = DistributedInstance.from_partition(metric, shards, 3, 18, "center")
        result = distributed_partial_center(instance, rng=0)
        realized = evaluate_centers(metric, result.centers, 18, objective="center")
        # Each ring has radius ~3; covering a ring from one of its points costs
        # at most ~2 * radius (diameter), far below the outlier distances.
        assert realized.cost <= 3 * 2 * 3.0


class TestGridWorkload:
    def test_median_on_grid_with_ties(self):
        workload = grid_with_outliers(14, 16, jitter=0.0, rng=4)  # exact ties everywhere
        metric = workload.to_metric()
        shards = partition_dirichlet(workload.n_points, 3, alpha=1.0, rng=5)
        instance = DistributedInstance.from_partition(metric, shards, 4, 16, "median")
        result = distributed_partial_median(instance, epsilon=0.5, rng=0)
        assert result.rounds == 2
        assert sum(result.metadata["t_allocated"]) <= 2 * 16
        realized = evaluate_centers(metric, result.centers, result.outlier_budget, objective="median")
        # Grid spacing is 1; average service distance must stay at grid scale.
        served = workload.n_points - result.outlier_budget
        assert realized.cost / served < 6.0


class TestPowerlawWorkload:
    def test_means_on_powerlaw(self):
        workload = powerlaw_clusters_with_outliers(400, 5, 25, exponent=1.8, rng=6)
        metric = workload.to_metric()
        shards = partition_dirichlet(workload.n_points, 5, alpha=0.5, rng=7)
        instance = DistributedInstance.from_partition(metric, shards, 5, 25, "means")
        result = distributed_partial_median(instance, epsilon=0.5, rng=0)
        reference = centralized_reference(metric, 5, 25, objective="means", rng=8)
        realized = evaluate_centers(metric, result.centers, result.outlier_budget, objective="means")
        assert realized.cost <= 6.0 * reference.cost
        # Tiny clusters must not be starved of centers entirely: the realized
        # per-point cost should stay near the cluster scale.
        served = workload.n_points - result.outlier_budget
        assert realized.cost / served < 25.0
