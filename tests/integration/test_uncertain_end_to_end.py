"""End-to-end tests for the uncertain-data pipeline (Section 5)."""

import numpy as np
import pytest

from repro.core import distributed_uncertain_clustering
from repro.data import uncertain_nodes_from_mixture
from repro.distributed import UncertainDistributedInstance, partition_balanced
from repro.sequential import local_search_partial
from repro.uncertain import exact_assigned_cost


@pytest.fixture(scope="module")
def workload():
    return uncertain_nodes_from_mixture(
        n_nodes=66, n_outlier_nodes=9, n_clusters=3, ground_size=220, support_size=5, rng=31
    )


@pytest.fixture(scope="module")
def instance(workload):
    inst = workload.instance
    shards = partition_balanced(inst.n_nodes, 3, rng=8)
    return UncertainDistributedInstance.from_partition(inst, shards, 3, 9, "median")


def _centralized_uncertain_reference(uncertain, k, t, rng=0):
    """Centralized compressed-graph solve used as the quality reference."""
    graph = uncertain.compressed_graph("median")
    nodes = np.arange(uncertain.n_nodes)
    costs = graph.demand_facility_costs(nodes, nodes)
    solution = local_search_partial(costs, k, t, rng=rng, max_iter=60)
    assignment = {
        int(j): int(graph.anchor_indices[int(solution.assignment[j])])
        for j in solution.served_indices
    }
    return exact_assigned_cost(uncertain, assignment, "median")


class TestUncertainPipeline:
    def test_distributed_close_to_centralized_compressed_solve(self, workload, instance):
        result = distributed_uncertain_clustering(instance, epsilon=0.5, rng=0)
        assignment = result.metadata["node_assignment"]
        distributed_cost = exact_assigned_cost(workload.instance, assignment, "median")
        reference_cost = _centralized_uncertain_reference(workload.instance, 3, 9)
        assert distributed_cost <= 3.0 * reference_cost

    def test_compressed_graph_equivalence_constants(self, workload):
        # Lemmas 5.3/5.4: the compressed-graph optimum and the true uncertain
        # optimum are within constant factors.  We verify the directions we
        # can compute: solving on the compressed graph and evaluating exactly
        # never degrades the cost by more than the claimed factor relative to
        # clustering the bare anchors (which drops the collapse cost).
        uncertain = workload.instance
        graph = uncertain.compressed_graph("median")
        nodes = np.arange(uncertain.n_nodes)
        compressed_costs = graph.demand_facility_costs(nodes, nodes)
        bare_costs = uncertain.ground_metric.pairwise(
            graph.anchor_indices, graph.anchor_indices
        )
        sol_compressed = local_search_partial(compressed_costs, 3, 9, rng=0)
        sol_bare = local_search_partial(bare_costs, 3, 9, rng=0)

        def realize(sol):
            return {
                int(j): int(graph.anchor_indices[int(sol.assignment[j])])
                for j in sol.served_indices
            }

        cost_compressed = exact_assigned_cost(uncertain, realize(sol_compressed), "median")
        cost_bare = exact_assigned_cost(uncertain, realize(sol_bare), "median")
        # The compressed solve sees the collapse cost and cannot be much worse;
        # it is usually better.  Allow generous slack: 2x.
        assert cost_compressed <= 2.0 * cost_bare

    def test_outlier_nodes_recovered(self, workload, instance):
        result = distributed_uncertain_clustering(instance, epsilon=0.5, rng=0)
        planted = set(np.flatnonzero(workload.node_labels < 0).tolist())
        found = set(result.outliers.tolist())
        assert len(planted & found) >= len(planted) // 2

    def test_communication_well_below_shipping_distributions(self, workload, instance):
        result = distributed_uncertain_clustering(instance, epsilon=0.5, rng=0)
        # Shipping every node's full distribution would cost ~ n * I words.
        naive_words = workload.instance.encoding_words()
        assert result.total_words < 0.5 * naive_words
