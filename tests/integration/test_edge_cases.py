"""Edge-case and non-Euclidean end-to-end coverage.

The protocols must behave sensibly in degenerate regimes the theory allows:
tiny shards, budgets touching their bounds, duplicated points, and metrics
that are not Euclidean point clouds (the paper only assumes a distance
oracle).
"""

import networkx as nx
import numpy as np
import pytest

from repro.analysis import evaluate_centers
from repro.core import distributed_partial_center, distributed_partial_median
from repro.data import gaussian_mixture_with_outliers
from repro.distributed import DistributedInstance, partition_round_robin
from repro.metrics import GraphMetric, MatrixMetric


class TestGraphMetricEndToEnd:
    @pytest.fixture(scope="class")
    def road_network_instance(self):
        # A weighted "road network": three dense communities plus a long chain
        # of remote vertices acting as outliers.
        rng = np.random.default_rng(0)
        graph = nx.Graph()
        node = 0
        communities = []
        for _ in range(3):
            members = list(range(node, node + 18))
            communities.append(members)
            for i in members:
                for j in members:
                    if i < j and rng.random() < 0.4:
                        graph.add_edge(i, j, weight=float(rng.uniform(0.5, 1.5)))
            node += 18
        # Connect the communities with a few longer roads.
        graph.add_edge(0, 18, weight=8.0)
        graph.add_edge(18, 36, weight=8.0)
        # A chain of remote outlier vertices.
        previous = 0
        for _ in range(6):
            graph.add_edge(previous, node, weight=25.0)
            previous = node
            node += 1
        # Make sure every community is internally connected.
        for members in communities:
            nx.add_path(graph, members, weight=1.0)
        metric = GraphMetric(graph)
        shards = partition_round_robin(len(metric), 3)
        instance = DistributedInstance.from_partition(metric, shards, 3, 6, "median")
        return metric, instance

    def test_median_on_graph_metric(self, road_network_instance):
        metric, instance = road_network_instance
        result = distributed_partial_median(instance, epsilon=0.5, rng=0)
        assert result.rounds == 2
        assert result.n_centers <= 3
        realized = evaluate_centers(metric, result.centers, result.outlier_budget, objective="median")
        # Excluding the remote chain keeps the per-point cost at community scale.
        assert realized.cost / (len(metric) - result.outlier_budget) < 10.0

    def test_center_on_graph_metric(self, road_network_instance):
        metric, instance_median = road_network_instance
        instance = DistributedInstance.from_partition(
            metric, instance_median.shards, 3, 6, "center"
        )
        result = distributed_partial_center(instance, rng=0)
        realized = evaluate_centers(metric, result.centers, 6, objective="center")
        no_outliers = evaluate_centers(metric, result.centers, 0, objective="center")
        assert realized.cost < no_outliers.cost

    def test_words_per_point_one_for_graph(self, road_network_instance):
        metric, instance = road_network_instance
        assert instance.words_per_point() == 1


class TestDegenerateRegimes:
    def test_t_zero(self, small_metric, small_workload):
        shards = partition_round_robin(small_workload.n_points, 3)
        instance = DistributedInstance.from_partition(small_metric, shards, 3, 0, "median")
        result = distributed_partial_median(instance, epsilon=0.5, rng=0)
        assert result.outlier_budget == 0
        assert result.outliers.size == 0

    def test_k_equals_one(self, small_metric, small_workload):
        shards = partition_round_robin(small_workload.n_points, 3)
        instance = DistributedInstance.from_partition(small_metric, shards, 1, 10, "median")
        result = distributed_partial_median(instance, epsilon=0.5, rng=0)
        assert result.n_centers == 1

    def test_tiny_sites(self):
        # 12 points over 6 sites of 2 points each.
        workload = gaussian_mixture_with_outliers(10, 2, 2, rng=0)
        metric = workload.to_metric()
        shards = partition_round_robin(workload.n_points, 6)
        instance = DistributedInstance.from_partition(metric, shards, 2, 2, "median")
        result = distributed_partial_median(instance, epsilon=0.5, rng=0)
        assert result.n_centers <= 2
        assert result.rounds == 2

    def test_duplicate_points(self):
        # Many coincident points: distances of zero everywhere except outliers.
        points = np.vstack([np.zeros((30, 2)), np.full((5, 2), 50.0)])
        metric = MatrixMetric(
            np.sqrt(((points[:, None, :] - points[None, :, :]) ** 2).sum(-1)),
            words_per_point=2,
        )
        shards = partition_round_robin(len(metric), 3)
        instance = DistributedInstance.from_partition(metric, shards, 1, 5, "median")
        result = distributed_partial_median(instance, epsilon=0.5, rng=0)
        realized = evaluate_centers(metric, result.centers, result.outlier_budget, objective="median")
        assert realized.cost == pytest.approx(0.0, abs=1e-9)

    def test_center_t_zero(self, small_metric, small_workload):
        shards = partition_round_robin(small_workload.n_points, 3)
        instance = DistributedInstance.from_partition(small_metric, shards, 3, 0, "center")
        result = distributed_partial_center(instance, rng=0)
        assert result.outliers.size == 0
        # With no outliers allowed, the radius must cover the planted junk.
        realized = evaluate_centers(small_metric, result.centers, 0, objective="center")
        assert realized.cost > 0
