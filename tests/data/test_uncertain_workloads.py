"""Tests for the uncertain workload generators."""

import numpy as np
import pytest

from repro.data import uncertain_nodes_from_mixture, uncertain_nodes_heavy_tailed


class TestUncertainFromMixture:
    def test_counts(self):
        wl = uncertain_nodes_from_mixture(40, 5, 3, ground_size=150, rng=0)
        assert wl.instance.n_nodes == 45
        assert wl.n_outlier_nodes == 5
        assert wl.instance.n_ground_points == 150
        assert wl.node_labels.size == 45

    def test_nodes_are_valid_distributions(self):
        wl = uncertain_nodes_from_mixture(30, 3, 3, rng=1)
        for node in wl.instance.nodes:
            assert node.probabilities.sum() == pytest.approx(1.0)
            assert node.support.max() < wl.instance.n_ground_points
            assert np.unique(node.support).size == node.support.size

    def test_outlier_nodes_are_far(self):
        wl = uncertain_nodes_from_mixture(
            60, 10, 3, ground_size=250, separation=12.0, rng=2
        )
        inst = wl.instance
        anchors, costs = [], []
        from repro.uncertain import one_median

        # Outlier nodes should, on average, sit farther from the inlier anchors.
        inlier_anchor_pts = []
        outlier_anchor_pts = []
        for label, node in zip(wl.node_labels, inst.nodes):
            y, _ = one_median(node, inst.ground_metric)
            pt = inst.ground_metric.points[y]
            (inlier_anchor_pts if label >= 0 else outlier_anchor_pts).append(pt)
        inlier_anchor_pts = np.asarray(inlier_anchor_pts)
        outlier_anchor_pts = np.asarray(outlier_anchor_pts)
        inlier_center = inlier_anchor_pts.mean(axis=0)
        assert np.median(np.linalg.norm(outlier_anchor_pts - inlier_center, axis=1)) > np.median(
            np.linalg.norm(inlier_anchor_pts - inlier_center, axis=1)
        )

    def test_deterministic(self):
        a = uncertain_nodes_from_mixture(20, 2, 2, rng=5)
        b = uncertain_nodes_from_mixture(20, 2, 2, rng=5)
        assert np.array_equal(a.node_labels, b.node_labels)
        for na, nb in zip(a.instance.nodes, b.instance.nodes):
            assert np.array_equal(na.support, nb.support)
            assert np.allclose(na.probabilities, nb.probabilities)

    def test_invalid(self):
        with pytest.raises(ValueError):
            uncertain_nodes_from_mixture(2, 0, 5, rng=0)


class TestHeavyTailed:
    def test_counts(self):
        wl = uncertain_nodes_heavy_tailed(25, 3, rng=0)
        assert wl.instance.n_nodes == 25
        assert wl.n_outlier_nodes == 0

    def test_distributions_normalised(self):
        wl = uncertain_nodes_heavy_tailed(20, 3, contamination=0.2, rng=1)
        for node in wl.instance.nodes:
            assert node.probabilities.sum() == pytest.approx(1.0)

    def test_contamination_bounds(self):
        with pytest.raises(ValueError):
            uncertain_nodes_heavy_tailed(10, 2, contamination=1.0)

    def test_contamination_widens_support(self):
        base = uncertain_nodes_from_mixture(20, 0, 2, support_size=4, rng=3)
        heavy = uncertain_nodes_heavy_tailed(20, 2, support_size=6, contamination=0.2, rng=3)
        avg_base = np.mean([n.support_size for n in base.instance.nodes])
        avg_heavy = np.mean([n.support_size for n in heavy.instance.nodes])
        assert avg_heavy >= avg_base - 1
