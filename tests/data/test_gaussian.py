"""Tests for the Gaussian mixture workload generator."""

import numpy as np
import pytest

from repro.data import gaussian_mixture_with_outliers


class TestGaussianMixture:
    def test_counts(self):
        wl = gaussian_mixture_with_outliers(200, 20, 4, rng=0)
        assert wl.n_points == 220
        assert wl.n_outliers == 20
        assert wl.points.shape == (220, 2)
        assert wl.centers.shape == (4, 2)

    def test_labels_range(self):
        wl = gaussian_mixture_with_outliers(100, 10, 3, rng=0)
        assert set(np.unique(wl.labels)) <= {-1, 0, 1, 2}
        assert np.sum(wl.labels == -1) == 10

    def test_every_cluster_nonempty(self):
        wl = gaussian_mixture_with_outliers(30, 0, 10, rng=0)
        for c in range(10):
            assert np.any(wl.labels == c)

    def test_outliers_far_from_centers(self):
        wl = gaussian_mixture_with_outliers(300, 30, 3, separation=10.0, cluster_std=0.5, rng=1)
        inliers = wl.points[~wl.outlier_mask]
        outliers = wl.points[wl.outlier_mask]
        # Median distance of outliers to the nearest true center should exceed
        # the inlier 95th percentile by a comfortable margin.
        def nearest_center_dist(pts):
            d = np.linalg.norm(pts[:, None, :] - wl.centers[None, :, :], axis=-1)
            return d.min(axis=1)

        assert np.median(nearest_center_dist(outliers)) > 3 * np.quantile(
            nearest_center_dist(inliers), 0.95
        )

    def test_shuffled(self):
        wl = gaussian_mixture_with_outliers(100, 50, 2, rng=2)
        # Outliers should not all be at the end after shuffling.
        assert wl.labels[-50:].min() != -1 or wl.labels[:100].min() == -1

    def test_to_metric(self):
        wl = gaussian_mixture_with_outliers(50, 5, 2, dim=3, rng=0)
        metric = wl.to_metric()
        assert len(metric) == 55
        assert metric.dim == 3

    def test_cluster_weights(self):
        wl = gaussian_mixture_with_outliers(
            400, 0, 2, cluster_weights=[9.0, 1.0], rng=0
        )
        big = np.sum(wl.labels == 0)
        small = np.sum(wl.labels == 1)
        assert big > 2 * small

    def test_dimension(self):
        wl = gaussian_mixture_with_outliers(20, 2, 2, dim=5, rng=0)
        assert wl.points.shape[1] == 5

    def test_deterministic(self):
        a = gaussian_mixture_with_outliers(50, 5, 2, rng=42)
        b = gaussian_mixture_with_outliers(50, 5, 2, rng=42)
        assert np.allclose(a.points, b.points)
        assert np.array_equal(a.labels, b.labels)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            gaussian_mixture_with_outliers(2, 0, 5, rng=0)
        with pytest.raises(ValueError):
            gaussian_mixture_with_outliers(10, -1, 2, rng=0)
        with pytest.raises(ValueError):
            gaussian_mixture_with_outliers(10, 0, 2, cluster_weights=[1.0], rng=0)
