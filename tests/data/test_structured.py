"""Tests for the structured workload generators."""

import numpy as np
import pytest

from repro.data import (
    grid_with_outliers,
    powerlaw_clusters_with_outliers,
    rings_with_outliers,
)


class TestRings:
    def test_counts_and_labels(self):
        wl = rings_with_outliers(40, 3, 12, rng=0)
        assert wl.n_points == 40 * 3 + 12
        assert wl.n_outliers == 12
        assert set(np.unique(wl.labels)) == {-1, 0, 1, 2}

    def test_ring_radius(self):
        wl = rings_with_outliers(60, 1, 0, radius=5.0, noise=0.01, rng=0)
        center = wl.centers[0]
        radii = np.linalg.norm(wl.points - center, axis=1)
        assert np.allclose(radii, 5.0, atol=0.2)

    def test_invalid(self):
        with pytest.raises(ValueError):
            rings_with_outliers(0, 1, 0)


class TestGrid:
    def test_counts(self):
        wl = grid_with_outliers(6, 8, rng=0)
        assert wl.n_points == 36 + 8
        assert wl.n_outliers == 8

    def test_small_side_rejected(self):
        with pytest.raises(ValueError):
            grid_with_outliers(1, 0)

    def test_jitter_small(self):
        wl = grid_with_outliers(5, 0, jitter=0.0, rng=0)
        # With zero jitter, points are exactly on integer coordinates.
        assert np.allclose(wl.points, np.round(wl.points))


class TestPowerlaw:
    def test_counts(self):
        wl = powerlaw_clusters_with_outliers(300, 5, 20, rng=0)
        assert wl.n_points == 320
        assert wl.n_outliers == 20

    def test_sizes_are_skewed(self):
        wl = powerlaw_clusters_with_outliers(1000, 5, 0, exponent=2.0, rng=0)
        sizes = np.asarray([np.sum(wl.labels == c) for c in range(5)])
        assert sizes.max() > 4 * sizes.min()

    def test_every_cluster_nonempty(self):
        wl = powerlaw_clusters_with_outliers(50, 8, 0, rng=0)
        assert np.all([np.any(wl.labels == c) for c in range(8)])

    def test_invalid(self):
        with pytest.raises(ValueError):
            powerlaw_clusters_with_outliers(5, 10, 0)
        with pytest.raises(ValueError):
            powerlaw_clusters_with_outliers(50, 5, 0, exponent=0.0)
