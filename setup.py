"""Setuptools shim.

All project metadata lives in ``pyproject.toml``; this file exists only so
that legacy editable installs (``pip install -e . --no-use-pep517`` or
``python setup.py develop``) work in offline environments that lack the
``wheel`` package required by PEP 517 editable builds.
"""

from setuptools import setup

setup()
