"""Input validation helpers shared across the library."""

from __future__ import annotations

from typing import Any

import numpy as np


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with ``message`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def check_positive_int(value: Any, name: str, *, allow_zero: bool = False) -> int:
    """Validate that ``value`` is a (non-negative / positive) integer and return it."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    low = 0 if allow_zero else 1
    if value < low:
        raise ValueError(f"{name} must be >= {low}, got {value}")
    return value


def check_k_t(n: int, k: int, t: int) -> tuple:
    """Validate clustering parameters against the instance size.

    Mirrors Definition 1.1 of the paper: ``1 <= k <= n`` and ``0 <= t <= n``.
    ``k + t <= n`` is additionally required so that at least one point remains
    to be clustered by a non-center (the degenerate case ``k + t >= n`` is
    trivially solvable and callers should short-circuit it).
    """
    n = check_positive_int(n, "n")
    k = check_positive_int(k, "k")
    t = check_positive_int(t, "t", allow_zero=True)
    if k > n:
        raise ValueError(f"k ({k}) must not exceed the number of points ({n})")
    if t > n:
        raise ValueError(f"t ({t}) must not exceed the number of points ({n})")
    return n, k, t


def check_probability_vector(p: np.ndarray, name: str = "probabilities") -> np.ndarray:
    """Validate that ``p`` is a probability vector; returns it normalised as float64."""
    p = np.asarray(p, dtype=float)
    if p.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {p.shape}")
    if p.size == 0:
        raise ValueError(f"{name} must be non-empty")
    if np.any(p < 0):
        raise ValueError(f"{name} must be non-negative")
    total = float(p.sum())
    if total <= 0:
        raise ValueError(f"{name} must have positive mass")
    if not np.isclose(total, 1.0, rtol=0, atol=1e-6):
        p = p / total
    return p


def check_points_array(points: np.ndarray, name: str = "points") -> np.ndarray:
    """Validate a 2-D float array of points (rows = points, columns = coordinates)."""
    arr = np.asarray(points, dtype=float)
    if arr.ndim == 1:
        arr = arr.reshape(-1, 1)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be a 2-D array, got shape {arr.shape}")
    if arr.shape[0] == 0:
        raise ValueError(f"{name} must contain at least one point")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} must be finite")
    return arr


__all__ = [
    "require",
    "check_positive_int",
    "check_k_t",
    "check_probability_vector",
    "check_points_array",
]
