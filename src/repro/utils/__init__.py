"""Small shared utilities: RNG handling, validation, timing.

These helpers are deliberately dependency-light so every other subpackage can
import them without risk of circular imports.
"""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.timing import Timer, timed
from repro.utils.validation import (
    check_k_t,
    check_positive_int,
    check_probability_vector,
    require,
)

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "Timer",
    "timed",
    "check_k_t",
    "check_positive_int",
    "check_probability_vector",
    "require",
]
