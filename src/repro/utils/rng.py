"""Random-number-generator plumbing.

Every stochastic routine in the library accepts either an integer seed, a
:class:`numpy.random.Generator`, or ``None`` and normalises it through
:func:`ensure_rng`.  Experiments are therefore reproducible end to end by
passing a single seed at the top.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from any seed-like value.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an integer seed, a ``SeedSequence`` or an
        existing ``Generator`` (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_rngs(seed: RngLike, n: int) -> Sequence[np.random.Generator]:
    """Spawn ``n`` statistically independent generators from one seed.

    Used by the coordinator-model simulator to hand every site its own
    generator so that per-site computations are order-independent.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if isinstance(seed, np.random.Generator):
        # Derive children deterministically from the generator's own stream.
        seeds = seed.integers(0, 2**63 - 1, size=n)
        return [np.random.default_rng(int(s)) for s in seeds]
    ss = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]


def derive_seed(rng: np.random.Generator) -> int:
    """Draw a fresh 63-bit integer seed from ``rng``."""
    return int(rng.integers(0, 2**63 - 1))


__all__ = ["RngLike", "ensure_rng", "spawn_rngs", "derive_seed"]
