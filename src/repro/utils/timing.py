"""Lightweight wall-clock timing used by the analysis and benchmark layers.

The paper reports local (site) time and coordinator time separately; the
coordinator-model simulator wraps per-party computation in :class:`Timer`
blocks so both can be reported without profiling overhead.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator


@dataclass
class Timer:
    """Accumulating wall-clock timer keyed by label.

    Example
    -------
    >>> timer = Timer()
    >>> with timer.measure("site"):
    ...     _ = sum(range(1000))
    >>> timer.total("site") >= 0.0
    True
    """

    totals: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)

    @contextmanager
    def measure(self, label: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.totals[label] = self.totals.get(label, 0.0) + elapsed
            self.counts[label] = self.counts.get(label, 0) + 1

    def total(self, label: str) -> float:
        """Total seconds accumulated under ``label`` (0.0 if never used)."""
        return self.totals.get(label, 0.0)

    def count(self, label: str) -> int:
        """Number of measured blocks under ``label``."""
        return self.counts.get(label, 0)

    def max_total(self) -> float:
        """Largest accumulated total across labels (0.0 when empty)."""
        return max(self.totals.values(), default=0.0)

    def as_dict(self) -> Dict[str, float]:
        """Snapshot of all accumulated totals."""
        return dict(self.totals)

    def merge(self, other: "Timer") -> None:
        """Fold another timer's accumulations into this one."""
        for label, value in other.totals.items():
            self.totals[label] = self.totals.get(label, 0.0) + value
        for label, value in other.counts.items():
            self.counts[label] = self.counts.get(label, 0) + value


@contextmanager
def timed() -> Iterator[dict]:
    """Context manager yielding a dict whose ``"seconds"`` entry is filled on exit."""
    result = {"seconds": 0.0}
    start = time.perf_counter()
    try:
        yield result
    finally:
        result["seconds"] = time.perf_counter() - start


__all__ = ["Timer", "timed"]
