"""Distributed Partial Clustering — reproduction of Guha, Li & Zhang (SPAA 2017).

Communication-efficient distributed ``(k, t)``-median/means/center clustering
with outliers in the coordinator model, including clustering of uncertain
(distributional) data and the sub-quadratic centralized simulation.

Quick start
-----------
>>> import numpy as np
>>> from repro import partial_kmedian
>>> rng = np.random.default_rng(0)
>>> points = np.vstack([rng.normal(c, 0.5, size=(100, 2)) for c in ((0, 0), (8, 8))]
...                    + [rng.uniform(-30, 40, size=(10, 2))])
>>> result = partial_kmedian(points, k=2, t=10, n_sites=4, seed=0)
>>> result.n_centers, result.rounds
(2, 2)

The top-level namespace re-exports the high-level drivers; the full machinery
lives in the subpackages:

``repro.core``          the paper's algorithms (Algorithm 1-4, Theorem 3.8/3.10)
``repro.sequential``    single-machine partial-clustering solvers
``repro.distributed``   coordinator-model simulator and communication accounting
``repro.runtime``       pluggable execution backends for site-local computation
``repro.uncertain``     uncertain nodes, 1-median collapse, compressed graphs
``repro.baselines``     1-round / send-all / centralized-reference baselines
``repro.data``          synthetic workload generators
``repro.analysis``      evaluation, approximation ratios, report tables
"""

from repro.core.api import (
    partial_kmedian,
    partial_kmeans,
    partial_kcenter,
    uncertain_partial_kmedian,
    uncertain_partial_kcenter_g,
)
from repro.core.subquadratic import subquadratic_partial_clustering
from repro.distributed.instance import DistributedInstance, UncertainDistributedInstance
from repro.distributed.result import DistributedResult
from repro.metrics.euclidean import EuclideanMetric
from repro.metrics.matrix import MatrixMetric
from repro.uncertain.instance import UncertainInstance
from repro.uncertain.nodes import UncertainNode

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "partial_kmedian",
    "partial_kmeans",
    "partial_kcenter",
    "uncertain_partial_kmedian",
    "uncertain_partial_kcenter_g",
    "subquadratic_partial_clustering",
    "DistributedInstance",
    "UncertainDistributedInstance",
    "DistributedResult",
    "EuclideanMetric",
    "MatrixMetric",
    "UncertainInstance",
    "UncertainNode",
]
