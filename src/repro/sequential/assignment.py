"""Nearest-center assignment with weighted outlier trimming.

This is the primitive every partial-clustering routine reduces to: given a
demand-by-facility cost matrix, a set of open centers and an outlier budget
``t`` (measured in demand *weight*), assign each demand to its nearest open
center and exclude up to ``t`` weight of the most expensive demands.

Weighted demands arise at the coordinator, where each precluster center
aggregates the weight of the points attached to it.  Remark 1 of the paper
explicitly allows excluding fewer copies of an aggregated point than its
weight, so the trimming here supports *partial* drops for the sum objectives
(median/means).  For the center objective only fully dropped demands leave
the max, so partial drops are never used there.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.metrics.blocked import (
    MemoryBudgetLike,
    _source_shape,
    argmin_per_row,
    as_block_source,
)
from repro.metrics.cost_matrix import validate_objective
from repro.sequential.solution import ClusterSolution


def nearest_center_distances(
    cost_matrix: np.ndarray,
    centers: Sequence[int],
    *,
    memory_budget: MemoryBudgetLike = None,
    prefetch: Optional[bool] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-demand nearest open center.

    Returns ``(unit_costs, nearest)`` where ``unit_costs[i]`` is the cost of
    serving one unit of demand ``i`` from its nearest open center and
    ``nearest[i]`` is that center's column index in ``cost_matrix``.

    A blocked per-row argmin (:func:`repro.metrics.blocked.argmin_per_row`
    over the open-center columns): under a ``memory_budget`` the transient
    footprint stays ``O(budget)`` even when ``cost_matrix`` is a disk-backed
    memmap, and the result is bit-identical for every budget.  ``prefetch``
    double-buffers memmap tiles (``None`` = auto) without changing the
    result.
    """
    centers = np.asarray(centers, dtype=int)
    if centers.size == 0:
        raise ValueError("at least one center is required")
    unit, arg = argmin_per_row(
        as_block_source(cost_matrix), None, centers,
        memory_budget=memory_budget, prefetch=prefetch,
    )
    return unit, centers[arg]


def trim_outliers(
    unit_costs: np.ndarray,
    weights: np.ndarray,
    t: float,
    objective: str = "median",
) -> Tuple[np.ndarray, float]:
    """Greedily exclude up to ``t`` weight of the most expensive demands.

    Returns ``(dropped_weight, cost)``.  ``dropped_weight[i]`` is how much of
    demand ``i``'s weight was excluded; ``cost`` is the remaining objective
    value (weighted sum for median/means, max over not-fully-dropped demands
    for center).
    """
    obj = validate_objective(objective)
    unit_costs = np.asarray(unit_costs, dtype=float)
    weights = np.asarray(weights, dtype=float)
    if unit_costs.shape != weights.shape:
        raise ValueError("unit_costs and weights must have the same shape")
    if np.any(weights < 0):
        raise ValueError("weights must be non-negative")
    if t < 0:
        raise ValueError("outlier budget t must be non-negative")

    n = unit_costs.size
    dropped = np.zeros(n, dtype=float)
    order = np.argsort(-unit_costs, kind="stable")
    budget = float(t)

    if obj in ("median", "means"):
        for idx in order:
            if budget <= 0:
                break
            w = weights[idx]
            if w <= 0:
                continue
            take = min(w, budget)
            dropped[idx] = take
            budget -= take
        served = weights - dropped
        cost = float(np.dot(served, unit_costs))
        return dropped, cost

    # Center objective: only fully dropped demands leave the max.
    for idx in order:
        w = weights[idx]
        if w <= 0:
            continue
        if w <= budget:
            dropped[idx] = w
            budget -= w
        else:
            break
    remaining = weights - dropped
    active = remaining > 0
    cost = float(unit_costs[active].max()) if np.any(active) else 0.0
    return dropped, cost


def assign_with_outliers(
    cost_matrix: np.ndarray,
    centers: Sequence[int],
    t: float,
    weights: Optional[np.ndarray] = None,
    objective: str = "median",
    *,
    memory_budget: MemoryBudgetLike = None,
    prefetch: Optional[bool] = None,
) -> ClusterSolution:
    """Assign demands to their nearest open center, excluding up to ``t`` weight.

    Parameters
    ----------
    cost_matrix:
        ``(n_demands, n_facilities)`` assignment costs (already squared for the
        means objective).
    centers:
        Open facility column indices.
    t:
        Outlier budget, in units of demand weight.
    weights:
        Per-demand weights (default: all ones).
    objective:
        ``"median"``, ``"means"`` or ``"center"``.
    memory_budget:
        Byte cap on the transient nearest-center blocks (see
        :func:`nearest_center_distances`); bit-identical for every budget.
    prefetch:
        Background tile prefetch knob, forwarded to the nearest-center
        sweep; never changes the result.
    """
    obj = validate_objective(objective)
    source = as_block_source(cost_matrix)
    n = _source_shape(source)[0]
    w = np.ones(n, dtype=float) if weights is None else np.asarray(weights, dtype=float)
    if w.shape != (n,):
        raise ValueError(f"weights must have shape ({n},), got {w.shape}")

    unit, nearest = nearest_center_distances(
        source, centers, memory_budget=memory_budget, prefetch=prefetch
    )
    dropped, cost = trim_outliers(unit, w, t, obj)

    assignment = nearest.copy()
    fully_dropped = (w - dropped) <= 1e-12
    assignment[fully_dropped & (w > 0)] = -1
    # Zero-weight demands contribute nothing; keep their nearest center for
    # interpretability but they are never counted as outliers.
    return ClusterSolution(
        centers=np.asarray(centers, dtype=int),
        assignment=assignment,
        outlier_weight=float(dropped.sum()),
        cost=cost,
        objective=obj,
        dropped_weight=dropped,
    )


def solution_cost(
    cost_matrix: np.ndarray,
    centers: Sequence[int],
    t: float,
    weights: Optional[np.ndarray] = None,
    objective: str = "median",
    *,
    memory_budget: MemoryBudgetLike = None,
    prefetch: Optional[bool] = None,
) -> float:
    """Cost of the best assignment to ``centers`` with ``t`` outlier weight excluded."""
    return assign_with_outliers(
        cost_matrix, centers, t, weights, objective,
        memory_budget=memory_budget, prefetch=prefetch,
    ).cost


__all__ = [
    "nearest_center_distances",
    "trim_outliers",
    "assign_with_outliers",
    "solution_cost",
]
