"""Solution container shared by all clustering routines.

A solution is always expressed in the *caller's* index space: ``centers`` are
column indices of the cost matrix the solver was given (equivalently, indices
into the facility list), and ``assignment`` maps each demand row to the chosen
facility index or ``-1`` for outliers.  The distributed layer re-maps these
local indices to global point ids when it ships solutions around.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np


@dataclass
class ClusterSolution:
    """Outcome of a partial-clustering computation.

    Attributes
    ----------
    centers:
        Facility indices chosen as centers (shape ``(k',)`` with ``k' <= k``).
    assignment:
        For each demand, the facility index it is assigned to, or ``-1`` if the
        demand is (fully) excluded as an outlier.
    outlier_weight:
        Total demand weight excluded from the objective.  With unit weights
        this is simply the number of outliers.
    cost:
        Objective value over the non-excluded weight (sum for median/means,
        max for center).
    objective:
        ``"median"``, ``"means"`` or ``"center"``.
    dropped_weight:
        Per-demand weight that was excluded (0 for fully served demands).
        Sum equals ``outlier_weight``.  Needed because weighted demands may be
        only partially excluded (Remark 1 in the paper).
    """

    centers: np.ndarray
    assignment: np.ndarray
    outlier_weight: float
    cost: float
    objective: str
    dropped_weight: Optional[np.ndarray] = None
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.centers = np.asarray(self.centers, dtype=int)
        self.assignment = np.asarray(self.assignment, dtype=int)
        if self.dropped_weight is not None:
            self.dropped_weight = np.asarray(self.dropped_weight, dtype=float)
            if self.dropped_weight.shape != self.assignment.shape:
                raise ValueError("dropped_weight must align with assignment")

    @property
    def n_centers(self) -> int:
        """Number of distinct centers actually opened."""
        return int(np.unique(self.centers).size)

    @property
    def outlier_indices(self) -> np.ndarray:
        """Demand indices that are fully excluded (assignment == -1)."""
        return np.flatnonzero(self.assignment < 0)

    @property
    def served_indices(self) -> np.ndarray:
        """Demand indices that are assigned to some center."""
        return np.flatnonzero(self.assignment >= 0)

    def center_weights(self, weights: Optional[np.ndarray] = None) -> dict:
        """Total served weight attached to each center.

        Parameters
        ----------
        weights:
            Per-demand weights; defaults to unit weights.  Partially dropped
            weight is subtracted.
        """
        n = self.assignment.size
        w = np.ones(n, dtype=float) if weights is None else np.asarray(weights, dtype=float)
        if w.shape != self.assignment.shape:
            raise ValueError("weights must align with assignment")
        served = w.copy()
        if self.dropped_weight is not None:
            served = served - self.dropped_weight
        out: dict = {int(c): 0.0 for c in self.centers}
        for idx in self.served_indices:
            c = int(self.assignment[idx])
            out[c] = out.get(c, 0.0) + float(served[idx])
        return out

    def relabel(self, facility_map: np.ndarray, demand_map: Optional[np.ndarray] = None) -> "ClusterSolution":
        """Translate facility (and optionally demand) indices through lookup arrays.

        ``facility_map[f]`` gives the new id of facility ``f``.  If
        ``demand_map`` is provided the assignment array is reordered so that
        entry ``demand_map[i]`` describes original demand ``i`` — this is not
        usually needed and is omitted by default.
        """
        facility_map = np.asarray(facility_map, dtype=int)
        new_centers = facility_map[self.centers]
        new_assignment = np.where(self.assignment >= 0, facility_map[self.assignment], -1)
        return ClusterSolution(
            centers=new_centers,
            assignment=new_assignment,
            outlier_weight=self.outlier_weight,
            cost=self.cost,
            objective=self.objective,
            dropped_weight=None if self.dropped_weight is None else self.dropped_weight.copy(),
            metadata=dict(self.metadata),
        )

    def summary(self) -> str:
        """One-line human-readable description."""
        return (
            f"ClusterSolution(objective={self.objective}, centers={self.n_centers}, "
            f"outlier_weight={self.outlier_weight:g}, cost={self.cost:.6g})"
        )


__all__ = ["ClusterSolution"]
