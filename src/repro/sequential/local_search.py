"""Outlier-aware weighted local search for ``(k, t)``-median / means.

This is the practical stand-in for the Theorem 3.1 bicriteria black box (see
the Substitutions table in ``DESIGN.md``): single-swap local search over the
facility set, where every candidate configuration is evaluated with the
outlier-trimmed objective of :func:`repro.sequential.assignment.trim_outliers`.
Single-swap local search is a classical constant-factor heuristic for k-median
(Arya et al.), and trimming the ``t`` heaviest assignment costs extends it to
the partial objective; the distributed machinery built on top only relies on
the *interface* ``sol(Z, k, q)``.

The implementation keeps the per-iteration cost low enough for the paper's
``Õ(n_i^2)`` site budget:

* facilities considered for insertion are sampled each round
  (``sample_size``), so a round costs ``O(k * sample_size * n log n)``;
* removal costs are computed from the first/second-nearest open centers, so
  no candidate evaluation ever rescans the whole ``k``-column block.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.metrics.blocked import MemoryBudgetLike
from repro.metrics.cost_matrix import validate_objective
from repro.sequential.assignment import assign_with_outliers, trim_outliers
from repro.sequential.solution import ClusterSolution
from repro.utils.rng import RngLike, ensure_rng


def plus_plus_seeding(
    cost_matrix: np.ndarray,
    k: int,
    weights: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """k-median++ style seeding on an explicit cost matrix.

    The first facility is drawn proportionally to demand weight; every
    subsequent facility is drawn proportionally to ``weight * current service
    cost`` of the demand nearest to it, which spreads seeds across clusters.
    """
    n, n_fac = cost_matrix.shape
    k = min(k, n_fac)
    chosen: list = []
    # Facilities and demands may differ; pick the facility nearest to the
    # sampled demand as its representative.
    demand_probs = weights / weights.sum() if weights.sum() > 0 else np.full(n, 1.0 / n)
    first_demand = int(rng.choice(n, p=demand_probs))
    chosen.append(int(np.argmin(cost_matrix[first_demand])))
    current = cost_matrix[:, chosen[0]].copy()
    while len(chosen) < k:
        scores = weights * current
        total = scores.sum()
        if total <= 0:
            # All demands already served at zero cost; pick arbitrary unused facilities.
            unused = [f for f in range(n_fac) if f not in chosen]
            if not unused:
                break
            chosen.append(int(rng.choice(unused)))
        else:
            demand = int(rng.choice(n, p=scores / total))
            fac = int(np.argmin(cost_matrix[demand]))
            if fac in chosen:
                # Nearest facility already open; fall back to a random unused one.
                unused = [f for f in range(n_fac) if f not in chosen]
                if not unused:
                    break
                fac = int(rng.choice(unused))
            chosen.append(fac)
        np.minimum(current, cost_matrix[:, chosen[-1]], out=current)
    return np.asarray(chosen, dtype=int)


def _first_second_nearest(block: np.ndarray) -> tuple:
    """Per-row nearest and second-nearest values/columns of an ``(n, k)`` block."""
    n, k = block.shape
    if k == 1:
        first_idx = np.zeros(n, dtype=int)
        first_val = block[:, 0].copy()
        second_val = np.full(n, np.inf)
        return first_idx, first_val, second_val
    order = np.argpartition(block, 1, axis=1)
    rows = np.arange(n)
    first_idx = order[:, 0]
    second_idx = order[:, 1]
    first_val = block[rows, first_idx]
    second_val = block[rows, second_idx]
    # argpartition does not guarantee order within the partition.
    swap = first_val > second_val
    first_idx[swap], second_idx[swap] = second_idx[swap], first_idx[swap].copy()
    first_val[swap], second_val[swap] = second_val[swap], first_val[swap].copy()
    return first_idx, first_val, second_val


def local_search_partial(
    cost_matrix: np.ndarray,
    k: int,
    t: float,
    weights: Optional[np.ndarray] = None,
    *,
    objective: str = "median",
    init_centers: Optional[Sequence[int]] = None,
    max_iter: int = 40,
    sample_size: Optional[int] = None,
    min_relative_gain: float = 1e-4,
    rng: RngLike = None,
    memory_budget: MemoryBudgetLike = None,
    prefetch: Optional[bool] = None,
) -> ClusterSolution:
    """Outlier-trimmed single-swap local search for weighted ``(k, t)``-median/means.

    Parameters
    ----------
    cost_matrix:
        ``(n_demands, n_facilities)`` assignment costs (already squared for
        the means objective).
    k:
        Number of centers to open.
    t:
        Outlier budget in demand weight.
    weights:
        Per-demand weights (default all ones).
    objective:
        ``"median"`` or ``"means"`` (``"center"`` callers should use
        :func:`repro.sequential.kcenter_outliers.kcenter_with_outliers`).
    init_centers:
        Optional warm start; defaults to ++-seeding.
    max_iter:
        Maximum number of improvement rounds.
    sample_size:
        Number of candidate insertion facilities sampled per round (default:
        all facilities when there are at most 64, otherwise 32).
    min_relative_gain:
        A swap is applied only if it improves the cost by this relative
        amount; controls termination.
    rng:
        Seed or generator for seeding and candidate sampling.
    memory_budget:
        Byte cap forwarded to the final assignment pass.  The search itself
        already streams the matrix column by column — its working set is
        ``O(n k)`` vectors, never ``O(n^2)`` — so a disk-backed memmap cost
        matrix is paged, not copied.  Results are budget-independent.
    prefetch:
        Background tile prefetch knob for the final assignment pass
        (``None`` = auto for memmap matrices); never changes the result.
    """
    obj = validate_objective(objective)
    if obj == "center":
        raise ValueError("local_search_partial handles median/means; use kcenter_with_outliers for center")
    cost_matrix = np.asarray(cost_matrix, dtype=float)
    n, n_fac = cost_matrix.shape
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if t < 0:
        raise ValueError(f"t must be >= 0, got {t}")
    k = min(k, n_fac)
    w = np.ones(n, dtype=float) if weights is None else np.asarray(weights, dtype=float)
    if w.shape != (n,):
        raise ValueError(f"weights must have shape ({n},), got {w.shape}")
    generator = ensure_rng(rng)

    if init_centers is None:
        centers = plus_plus_seeding(cost_matrix, k, w, generator)
    else:
        centers = np.unique(np.asarray(init_centers, dtype=int))
        if centers.size < k:
            extra = plus_plus_seeding(cost_matrix, k, w, generator)
            centers = np.unique(np.concatenate([centers, extra]))[:k]
        centers = centers[:k]

    if sample_size is None:
        sample_size = n_fac if n_fac <= 64 else 32
    sample_size = min(sample_size, n_fac)

    def trimmed_cost(unit: np.ndarray) -> float:
        _, cost = trim_outliers(unit, w, t, obj)
        return cost

    block = cost_matrix[:, centers]
    first_idx, first_val, second_val = _first_second_nearest(block)
    current_cost = trimmed_cost(first_val)
    evaluations = 1
    iterations = 0

    for iterations in range(1, max_iter + 1):
        open_set = set(int(c) for c in centers)
        closed = np.asarray([f for f in range(n_fac) if f not in open_set], dtype=int)
        if closed.size == 0:
            break
        if closed.size > sample_size:
            candidates = generator.choice(closed, size=sample_size, replace=False)
        else:
            candidates = closed

        best_gain = 0.0
        best_swap = None
        for pos in range(centers.size):
            # Service cost of every demand if center at position ``pos`` closes.
            without = np.where(first_idx == pos, second_val, first_val)
            for f in candidates:
                new_unit = np.minimum(without, cost_matrix[:, f])
                cand_cost = trimmed_cost(new_unit)
                evaluations += 1
                gain = current_cost - cand_cost
                if gain > best_gain:
                    best_gain = gain
                    best_swap = (pos, int(f))

        if best_swap is None or best_gain < min_relative_gain * max(current_cost, 1e-12):
            break
        pos, f = best_swap
        centers = centers.copy()
        centers[pos] = f
        block = cost_matrix[:, centers]
        first_idx, first_val, second_val = _first_second_nearest(block)
        current_cost = trimmed_cost(first_val)

    solution = assign_with_outliers(
        cost_matrix, centers, t, w, objective=obj,
        memory_budget=memory_budget, prefetch=prefetch
    )
    solution.metadata.update(
        {
            "method": "local_search_partial",
            "iterations": iterations,
            "evaluations": evaluations,
        }
    )
    return solution


__all__ = ["local_search_partial", "plus_plus_seeding"]
