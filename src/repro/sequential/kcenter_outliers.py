"""Weighted ``(k, t)``-center with outliers (Charikar et al. 2001 style).

The coordinator of Algorithm 2 must solve a *weighted* k-center problem with
exactly ``t`` outliers on the union of preclustering centers.  The classic
greedy of Charikar, Khuller, Mount and Narasimhan does this with a constant
approximation factor: guess the optimal radius ``r``, then repeatedly open the
facility whose radius-``r`` disk covers the most uncovered demand weight and
discard everything within ``3 r`` of it.  If after ``k`` disks at most ``t``
weight remains uncovered, the guess was feasible.

The radius guess is performed over the (subsampled) set of distinct
demand-facility distances, which contains the optimal radius, so the returned
solution is a true 3-approximation when the full candidate set is used.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.metrics.blocked import (
    MemoryBudgetLike,
    count_within,
    iter_blocks,
    resolve_memory_budget,
)
from repro.sequential.assignment import assign_with_outliers
from repro.sequential.solution import ClusterSolution


def candidate_radii(
    cost_matrix: np.ndarray,
    max_candidates: int = 256,
    *,
    memory_budget: MemoryBudgetLike = None,
) -> np.ndarray:
    """Sorted candidate radii for the Charikar guess.

    The optimal ``(k, t)``-center radius is always one of the demand-facility
    distances.  When there are more than ``max_candidates`` distinct values we
    keep evenly spaced quantiles (always including the extremes), which costs
    at most one quantile step of accuracy in the guess.

    Under a ``memory_budget`` the distinct values are merged tile by tile
    (unique-of-uniques equals unique-of-all exactly), so a memmap-backed
    cost matrix is streamed rather than pulled into RAM whole.  Note the
    *result set* is still ``O(#distinct values)`` — exact radius collection
    cannot be sublinear for distinct-valued matrices — which is fine at the
    coordinator (the only caller on ``(sk + t)``-sized instances) but makes
    this the wrong primitive for huge distinct-valued site matrices.
    """
    cost_matrix = np.asarray(cost_matrix, dtype=float)
    if memory_budget is None:
        values = np.unique(cost_matrix.ravel())
    else:
        values = np.empty(0)
        for _, _, block in iter_blocks(cost_matrix, memory_budget=memory_budget):
            # Incremental merge: peak transient memory is one tile plus the
            # (deduplicated) running set, never a list of all tiles.
            values = np.union1d(values, block)
    if values.size <= max_candidates:
        return values
    positions = np.linspace(0, values.size - 1, max_candidates).round().astype(int)
    return values[np.unique(positions)]


def _greedy_cover(
    cost_matrix: np.ndarray,
    weights: np.ndarray,
    k: int,
    radius: float,
    expansion: float,
    memory_budget: MemoryBudgetLike = None,
) -> tuple:
    """One run of the greedy disk cover at a fixed radius guess.

    Returns ``(centers, uncovered_weight)`` where ``centers`` are the chosen
    facility columns and ``uncovered_weight`` is the demand weight not within
    ``expansion * radius`` of any chosen center.

    Under a ``memory_budget`` the per-facility gains are blocked column
    reductions (:func:`repro.metrics.blocked.count_within`), so the ``n x m``
    boolean disk matrices of the classic phrasing are never materialised:
    transient memory is one column tile, and only the chosen center's column
    is ever read in full.  The unbudgeted path hoists the disk mask once per
    radius guess (as the classic phrasing does) and accumulates gains with
    the same column-contiguous reduction, so both paths are bit-identical.
    """
    remaining = weights.astype(float).copy()
    centers = []
    outer_radius = expansion * radius
    inner = None
    if resolve_memory_budget(memory_budget) is None:
        inner = cost_matrix <= radius
    for _ in range(k):
        if not np.any(remaining > 0):
            break
        # Weight inside the radius-r disk of each facility.
        if inner is not None:
            gain = np.add.reduce(np.multiply(remaining[:, None], inner, order="F"), axis=0)
        else:
            gain = count_within(
                cost_matrix, radius, weights=remaining, memory_budget=memory_budget
            )
        best = int(np.argmax(gain))
        centers.append(best)
        remaining[cost_matrix[:, best] <= outer_radius] = 0.0
    return np.asarray(centers, dtype=int), float(remaining.sum())


def kcenter_with_outliers(
    cost_matrix: np.ndarray,
    k: int,
    t: float,
    weights: Optional[np.ndarray] = None,
    *,
    expansion: float = 3.0,
    max_candidates: int = 256,
    memory_budget: MemoryBudgetLike = None,
) -> ClusterSolution:
    """Weighted ``(k, t)``-center with outliers via the Charikar greedy.

    Parameters
    ----------
    cost_matrix:
        ``(n_demands, n_facilities)`` distances (not squared).
    k:
        Maximum number of centers.
    t:
        Outlier budget measured in demand weight.
    weights:
        Per-demand weights (default all ones).
    expansion:
        Disk expansion factor used when removing covered demands; ``3.0`` is
        the value from the original analysis.
    max_candidates:
        Cap on the number of radius guesses tried.
    memory_budget:
        Byte cap on transient blocks (the cost matrix itself may be a
        read-only memmap); results are bit-identical for every budget.

    Returns
    -------
    ClusterSolution
        Centers are facility column indices; the assignment excludes up to
        ``t`` weight of demands (the farthest ones from the chosen centers).
    """
    cost_matrix = np.asarray(cost_matrix, dtype=float)
    if cost_matrix.ndim != 2:
        raise ValueError(f"cost_matrix must be 2-D, got shape {cost_matrix.shape}")
    n, n_fac = cost_matrix.shape
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if t < 0:
        raise ValueError(f"t must be >= 0, got {t}")
    w = np.ones(n, dtype=float) if weights is None else np.asarray(weights, dtype=float)
    if w.shape != (n,):
        raise ValueError(f"weights must have shape ({n},), got {w.shape}")

    radii = candidate_radii(cost_matrix, max_candidates=max_candidates, memory_budget=memory_budget)
    total_weight = float(w.sum())

    best_centers: Optional[np.ndarray] = None
    # Binary search over the sorted radius guesses for the smallest feasible one.
    lo, hi = 0, radii.size - 1
    feasible_at: Optional[int] = None
    while lo <= hi:
        mid = (lo + hi) // 2
        centers, uncovered = _greedy_cover(
            cost_matrix, w, k, float(radii[mid]), expansion, memory_budget
        )
        if uncovered <= t + 1e-9 or total_weight - uncovered <= 1e-12:
            feasible_at = mid
            best_centers = centers
            hi = mid - 1
        else:
            lo = mid + 1

    if best_centers is None or best_centers.size == 0:
        # No radius guess was feasible (can only happen with an aggressive
        # candidate subsample); fall back to the largest radius greedy.
        best_centers, _ = _greedy_cover(
            cost_matrix, w, k, float(radii[-1]), expansion, memory_budget
        )
        if best_centers.size == 0:
            best_centers = np.asarray([0], dtype=int)
        feasible_at = radii.size - 1

    solution = assign_with_outliers(
        cost_matrix, best_centers, t, w, objective="center", memory_budget=memory_budget
    )
    solution.metadata.update(
        {
            "method": "charikar_greedy",
            "radius_guess": float(radii[feasible_at]) if feasible_at is not None else None,
            "n_radius_candidates": int(radii.size),
            "expansion": float(expansion),
        }
    )
    return solution


__all__ = ["kcenter_with_outliers", "candidate_radii"]
