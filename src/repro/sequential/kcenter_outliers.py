"""Weighted ``(k, t)``-center with outliers (Charikar et al. 2001 style).

The coordinator of Algorithm 2 must solve a *weighted* k-center problem with
exactly ``t`` outliers on the union of preclustering centers.  The classic
greedy of Charikar, Khuller, Mount and Narasimhan does this with a constant
approximation factor: guess the optimal radius ``r``, then repeatedly open the
facility whose radius-``r`` disk covers the most uncovered demand weight and
discard everything within ``3 r`` of it.  If after ``k`` disks at most ``t``
weight remains uncovered, the guess was feasible.

The radius guess is performed over the (subsampled) set of distinct
demand-facility distances, which contains the optimal radius, so the returned
solution is a true 3-approximation when the full candidate set is used.

Streaming discipline
--------------------
The radius search is the memory *and* pass-count hot spot: the classic
phrasing re-streams the whole cost matrix ``k`` times per radius guess (one
``count_within`` per greedy step) times ``O(log #radii)`` guesses.  This
module fuses and amortises those passes:

* :func:`probe_gains` evaluates the initial per-facility gain vectors of a
  whole *batch* of radius guesses in **one** streaming pass (a
  :class:`~repro.metrics.plan.ReductionPlan` with a multi-threshold
  ``count_within`` op — each tile is read exactly once for the batch);
* the greedy never re-streams the matrix: when a center is chosen, only the
  rows it newly covers are re-read to *incrementally* downdate the gains
  (``O(|newly covered| x m)`` cells instead of ``O(n x m)`` per step);
* the binary search probes ``probe_batch`` radii per round, so the number
  of full passes drops from ``O(k log #radii)`` to
  ``O(log_{probe_batch+1} #radii)``.

The gains are budget- and prefetch-invariant (they inherit ``count_within``'s
column-contiguous summation), so for a *fixed* ``probe_batch`` results are
bit-identical across memory budgets and prefetch settings.  Two caveats:
the incremental downdating is a different (exact in real arithmetic, not
bitwise) summation order than recomputing gains from scratch, so selections
may differ from the pre-fused implementation in floating-point near-ties;
and when the greedy's feasibility happens to be *non-monotone* over the
candidate radii (the analysis assumes it is monotone), different
``probe_batch`` widths probe different candidate subsets and can land on
different — equally feasible, possibly larger — radii, exactly as two
binary searches with different probe orders would.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

import numpy as np

from repro.metrics.blocked import (
    MemoryBudgetLike,
    _get_block,
    _source_shape,
    as_block_source,
    count_within,
    iter_blocks,
    resolve_memory_budget,
)
from repro.metrics.plan import DEFAULT_CACHE_TARGET, PrefetchLike, ReductionPlan
from repro.sequential.assignment import assign_with_outliers
from repro.sequential.solution import ClusterSolution


def candidate_radii(
    cost_matrix: Any,
    max_candidates: int = 256,
    *,
    memory_budget: MemoryBudgetLike = None,
) -> np.ndarray:
    """Sorted candidate radii for the Charikar guess.

    The optimal ``(k, t)``-center radius is always one of the demand-facility
    distances.  When there are more than ``max_candidates`` distinct values we
    keep evenly spaced quantiles (always including the extremes), which costs
    at most one quantile step of accuracy in the guess.

    Under a ``memory_budget`` the distinct values are collected tile by tile
    (unique-of-uniques equals unique-of-all exactly) and merged in *batches*:
    per-tile unique sets are buffered and folded into the running set only
    once they outgrow ``max(one tile, running set)``, so the merge cost is
    amortised instead of the old ``O(u)``-per-tile ``np.union1d`` while peak
    transient memory stays one tile plus ``O(result)`` — the documented
    bound.  Note the *result set* is still ``O(#distinct values)`` — exact
    radius collection cannot be sublinear for distinct-valued matrices —
    which is fine at the coordinator (the only caller on ``(sk + t)``-sized
    instances) but makes this the wrong primitive for huge distinct-valued
    site matrices.
    """
    source = as_block_source(cost_matrix)
    if memory_budget is None and isinstance(source, np.ndarray):
        values = np.unique(np.asarray(source, dtype=float).ravel())
    else:
        merged = np.empty(0)
        pending: List[np.ndarray] = []
        pending_size = 0
        flush_floor = 0
        for _, _, block in iter_blocks(source, memory_budget=memory_budget):
            flush_floor = max(flush_floor, block.size)
            pending.append(np.unique(block))
            pending_size += pending[-1].size
            if pending_size >= max(flush_floor, merged.size):
                merged = np.unique(np.concatenate([merged, *pending]))
                pending, pending_size = [], 0
        if pending:
            merged = np.unique(np.concatenate([merged, *pending]))
        values = merged
    if values.size <= max_candidates:
        return values
    positions = np.linspace(0, values.size - 1, max_candidates).round().astype(int)
    return values[np.unique(positions)]


def probe_gains(
    source: Any,
    radii: Sequence[float],
    weights: np.ndarray,
    *,
    memory_budget: MemoryBudgetLike = None,
    prefetch: PrefetchLike = None,
) -> np.ndarray:
    """Initial greedy gains for a batch of radius guesses in one fused pass.

    Returns a ``(len(radii), n_facilities)`` array whose row ``i`` is
    bitwise identical to ``count_within(source, radii[i], weights=weights)``
    — but every tile of the cost matrix is loaded exactly *once* for the
    whole batch instead of once per radius.
    """
    radii = np.atleast_1d(np.asarray(radii, dtype=float))
    budget = resolve_memory_budget(memory_budget)
    plan = ReductionPlan(
        source,
        memory_budget=budget,
        cache_target=DEFAULT_CACHE_TARGET if budget is not None else None,
        prefetch=prefetch,
    )
    handle = plan.add_count_within(radii, weights=weights)
    plan.execute()
    return np.atleast_2d(handle.value)


def _greedy_cover(
    source: Any,
    weights: np.ndarray,
    k: int,
    radius: float,
    expansion: float,
    memory_budget: MemoryBudgetLike = None,
    prefetch: PrefetchLike = None,
    gain0: Optional[np.ndarray] = None,
) -> tuple:
    """One run of the greedy disk cover at a fixed radius guess.

    Returns ``(centers, uncovered_weight)`` where ``centers`` are the chosen
    facility columns and ``uncovered_weight`` is the demand weight not within
    ``expansion * radius`` of any chosen center.

    The per-facility gains start from ``gain0`` (the fused
    :func:`probe_gains` row; computed on demand when omitted) and are then
    *downdated incrementally*: choosing a center zeroes the weight of the
    demands within ``expansion * radius`` of it, and only those newly
    zeroed rows are re-streamed (a rows-subset ``count_within``) to
    subtract their contribution from every facility's gain.  Each row is
    zeroed at most once, so the whole greedy re-reads at most one
    additional matrix's worth of cells — the classic phrasing re-streams
    all ``n x m`` cells on every one of the ``k`` steps.  The downdates
    inherit ``count_within``'s column-contiguous summation, so the result
    is bit-identical for every ``memory_budget`` and prefetch setting.
    """
    n, _ = _source_shape(source)
    remaining = weights.astype(float).copy()
    if gain0 is None:
        gain0 = count_within(
            source, radius, weights=remaining,
            memory_budget=memory_budget, prefetch=prefetch,
        )
    gain = np.array(gain0, dtype=float, copy=True)
    centers = []
    outer_radius = expansion * radius
    all_rows = np.arange(n)
    for _ in range(k):
        if not np.any(remaining > 0):
            break
        best = int(np.argmax(gain))
        centers.append(best)
        column = _get_block(source, all_rows, np.asarray([best]))[:, 0]
        newly = np.flatnonzero((remaining > 0) & (column <= outer_radius))
        if newly.size:
            gain = gain - count_within(
                source, radius, rows=newly, weights=remaining[newly],
                memory_budget=memory_budget, prefetch=prefetch,
            )
            remaining[newly] = 0.0
    return np.asarray(centers, dtype=int), float(remaining.sum())


def _probe_batch(
    source: Any,
    weights: np.ndarray,
    k: int,
    radii: np.ndarray,
    expansion: float,
    memory_budget: MemoryBudgetLike = None,
    prefetch: PrefetchLike = None,
) -> List[tuple]:
    """Run the greedy cover for every radius of one probe batch.

    One fused pass (:func:`probe_gains`) seeds all the greedies; each greedy
    then only touches chosen-center columns and newly covered rows.
    """
    gains = probe_gains(
        source, radii, weights, memory_budget=memory_budget, prefetch=prefetch
    )
    return [
        _greedy_cover(
            source, weights, k, float(radius), expansion,
            memory_budget=memory_budget, prefetch=prefetch, gain0=gains[pos],
        )
        for pos, radius in enumerate(np.atleast_1d(radii))
    ]


def kcenter_with_outliers(
    cost_matrix: Any,
    k: int,
    t: float,
    weights: Optional[np.ndarray] = None,
    *,
    expansion: float = 3.0,
    max_candidates: int = 256,
    memory_budget: MemoryBudgetLike = None,
    prefetch: PrefetchLike = None,
    probe_batch: int = 3,
) -> ClusterSolution:
    """Weighted ``(k, t)``-center with outliers via the Charikar greedy.

    Parameters
    ----------
    cost_matrix:
        ``(n_demands, n_facilities)`` distances (not squared).  May be a
        dense array, a disk-backed memmap, or any ``shape`` +
        ``get_block(rows, cols)`` block source.
    k:
        Maximum number of centers.
    t:
        Outlier budget measured in demand weight.
    weights:
        Per-demand weights (default all ones).
    expansion:
        Disk expansion factor used when removing covered demands; ``3.0`` is
        the value from the original analysis.
    max_candidates:
        Cap on the number of radius guesses tried.
    memory_budget:
        Byte cap on transient blocks (the cost matrix itself may be a
        read-only memmap); results are bit-identical for every budget.
    prefetch:
        Double-buffered background tile prefetch for memmap-backed
        matrices: ``None`` (auto), ``True`` or ``False``.  Never changes
        the result.
    probe_batch:
        Number of radius guesses evaluated per fused streaming pass during
        the feasibility search (≥ 1).  A larger batch trades a wider fused
        ``count_within`` for fewer passes; the search result is the same
        smallest feasible candidate radius either way (assuming the greedy's
        feasibility is monotone in the radius, as the analysis does).

    Returns
    -------
    ClusterSolution
        Centers are facility column indices; the assignment excludes up to
        ``t`` weight of demands (the farthest ones from the chosen centers).
    """
    source = as_block_source(cost_matrix)
    n, n_fac = _source_shape(source)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if t < 0:
        raise ValueError(f"t must be >= 0, got {t}")
    if probe_batch < 1:
        raise ValueError(f"probe_batch must be >= 1, got {probe_batch}")
    w = np.ones(n, dtype=float) if weights is None else np.asarray(weights, dtype=float)
    if w.shape != (n,):
        raise ValueError(f"weights must have shape ({n},), got {w.shape}")

    radii = candidate_radii(source, max_candidates=max_candidates, memory_budget=memory_budget)
    total_weight = float(w.sum())

    def _feasible(uncovered: float) -> bool:
        return uncovered <= t + 1e-9 or total_weight - uncovered <= 1e-12

    best_centers: Optional[np.ndarray] = None
    feasible_at: Optional[int] = None
    probe_rounds = 0
    # Batched binary search over the sorted radius guesses for the smallest
    # feasible one: every round probes ``probe_batch`` radii whose initial
    # gains come from a single fused pass, then narrows [lo, hi] using the
    # monotone feasibility pattern (infeasible below, feasible above).
    lo, hi = 0, radii.size - 1
    while lo <= hi:
        if hi - lo + 1 <= probe_batch:
            mids = list(range(lo, hi + 1))
        else:
            interior = np.linspace(lo, hi, probe_batch + 2)[1:-1]
            mids = sorted(set(int(np.clip(round(x), lo, hi)) for x in interior))
        # One fused pass seeds every probe of the round; the greedies then
        # run lazily in ascending order — everything past the first feasible
        # probe would be discarded anyway, so it is never evaluated.
        gains = probe_gains(
            source, radii[mids], w, memory_budget=memory_budget, prefetch=prefetch
        )
        probe_rounds += 1
        first_feasible = None
        for pos, mid in enumerate(mids):
            centers, uncovered = _greedy_cover(
                source, w, k, float(radii[mid]), expansion,
                memory_budget=memory_budget, prefetch=prefetch, gain0=gains[pos],
            )
            if _feasible(uncovered):
                first_feasible = pos
                break
        if first_feasible is None:
            lo = mids[-1] + 1
        else:
            feasible_at = mids[first_feasible]
            best_centers = centers
            hi = mids[first_feasible] - 1
            if first_feasible > 0:
                lo = mids[first_feasible - 1] + 1

    if best_centers is None or best_centers.size == 0:
        # No radius guess was feasible (can only happen with an aggressive
        # candidate subsample); fall back to the largest radius greedy.
        best_centers, _ = _greedy_cover(
            source, w, k, float(radii[-1]), expansion,
            memory_budget=memory_budget, prefetch=prefetch,
        )
        if best_centers.size == 0:
            best_centers = np.asarray([0], dtype=int)
        feasible_at = radii.size - 1

    solution = assign_with_outliers(
        source, best_centers, t, w, objective="center",
        memory_budget=memory_budget, prefetch=prefetch,
    )
    solution.metadata.update(
        {
            "method": "charikar_greedy",
            "radius_guess": float(radii[feasible_at]) if feasible_at is not None else None,
            "n_radius_candidates": int(radii.size),
            "expansion": float(expansion),
            "probe_batch": int(probe_batch),
            "probe_rounds": int(probe_rounds),
        }
    )
    return solution


__all__ = ["kcenter_with_outliers", "candidate_radii", "probe_gains"]
