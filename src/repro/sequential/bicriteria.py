"""The Theorem 3.1 bicriteria interface.

Theorem 3.1 of the paper provides, for any ``eps > 0``, either

* ``sol(Z, k, (1 + eps) t)`` — the outlier budget is relaxed, or
* ``sol(Z, (1 + eps) k, t)`` — the number of centers is relaxed,

with cost at most ``max{6, 6/eps}`` times the ``(k, t)`` optimum.  The
distributed algorithms only ever use this statement as a black box, both at
the sites (``sol(A_i, 2k, q)``) and at the coordinator (the final weighted
clustering).  This module exposes exactly that interface and routes to the
appropriate concrete solver:

* median / means  -> :func:`repro.sequential.local_search.local_search_partial`
* center          -> :func:`repro.sequential.kcenter_outliers.kcenter_with_outliers`

See the Substitutions table in ``DESIGN.md`` for why a local-search stand-in
preserves the paper's measured quantities (communication, rounds, shapes).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.metrics.blocked import MemoryBudgetLike
from repro.metrics.cost_matrix import validate_objective
from repro.sequential.kcenter_outliers import kcenter_with_outliers
from repro.sequential.local_search import local_search_partial
from repro.sequential.solution import ClusterSolution
from repro.utils.rng import RngLike


def relaxed_budgets(k: int, t: float, epsilon: float, relax: str) -> tuple:
    """The ``(k', t')`` pair used by the Theorem 3.1 interface.

    ``relax="outliers"`` keeps ``k`` and allows ``floor((1 + eps) t)`` outlier
    weight; ``relax="centers"`` opens ``ceil((1 + eps) k)`` centers but keeps
    the outlier budget at ``t``.
    """
    if epsilon < 0:
        raise ValueError(f"epsilon must be non-negative, got {epsilon}")
    relax = str(relax).lower()
    if relax == "outliers":
        return k, math.floor((1.0 + epsilon) * t + 1e-9)
    if relax == "centers":
        return math.ceil((1.0 + epsilon) * k - 1e-9), t
    raise ValueError(f"relax must be 'outliers' or 'centers', got {relax!r}")


def bicriteria_solve(
    cost_matrix: np.ndarray,
    k: int,
    t: float,
    *,
    epsilon: float = 1.0,
    relax: str = "outliers",
    objective: str = "median",
    weights: Optional[np.ndarray] = None,
    rng: RngLike = None,
    memory_budget: MemoryBudgetLike = None,
    prefetch: Optional[bool] = None,
    **solver_kwargs,
) -> ClusterSolution:
    """Solve the weighted partial clustering problem with one relaxed budget.

    Parameters
    ----------
    cost_matrix:
        ``(n_demands, n_facilities)`` assignment costs (squared already for
        the means objective, raw distances for median/center).
    k, t:
        The *unrelaxed* budgets of the underlying ``(k, t)`` problem.
    epsilon:
        Relaxation parameter of Theorem 3.1.
    relax:
        Which budget to relax: ``"outliers"`` (default) or ``"centers"``.
    objective:
        ``"median"``, ``"means"`` or ``"center"``.
    weights:
        Per-demand weights.
    rng:
        Seed or generator forwarded to the stochastic solvers.
    memory_budget:
        Byte cap on transient blocks, forwarded to the concrete solver (the
        cost matrix itself may be a read-only memmap shard); results are
        bit-identical for every budget.
    prefetch:
        Background tile prefetch knob, forwarded to the concrete solver;
        never changes the result.
    solver_kwargs:
        Extra keyword arguments forwarded to the concrete solver.
    """
    obj = validate_objective(objective)
    k_used, t_used = relaxed_budgets(k, t, epsilon, relax)
    k_used = max(1, int(k_used))

    if obj == "center":
        solution = kcenter_with_outliers(
            cost_matrix,
            k_used,
            t_used,
            weights=weights,
            memory_budget=memory_budget,
            prefetch=prefetch,
            **solver_kwargs,
        )
    else:
        solution = local_search_partial(
            cost_matrix,
            k_used,
            t_used,
            weights=weights,
            objective=obj,
            rng=rng,
            memory_budget=memory_budget,
            prefetch=prefetch,
            **solver_kwargs,
        )
    solution.metadata.update(
        {
            "bicriteria_relax": relax,
            "bicriteria_epsilon": float(epsilon),
            "k_requested": int(k),
            "t_requested": float(t),
            "k_used": int(k_used),
            "t_used": float(t_used),
        }
    )
    return solution


__all__ = ["bicriteria_solve", "relaxed_budgets"]
