"""Trimmed Lloyd iterations for Euclidean ``(k, t)``-means.

A Euclidean-specific solver used by the examples and as an additional
baseline: standard Lloyd iterations where, before every mean update, the ``t``
points farthest from their current centers are set aside as provisional
outliers (the "trimmed k-means" heuristic).  Because the paper restricts
centers to input points (Definition 1.1), the final continuous centers are
snapped to their nearest input point by default, which costs at most a factor
of 2 in the objective.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.metrics.blocked import MemoryBudgetLike, resolve_memory_budget
from repro.metrics.plan import effective_tile_bytes
from repro.sequential.solution import ClusterSolution
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_points_array


def _sq_distance_block(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """``(n, k)`` squared distances via a shape-stable per-dimension kernel.

    Accumulating per dimension (instead of the BLAS ``a^2 + b^2 - 2ab``
    expansion) makes every entry independent of the block's row count, so
    the row-chunked assignment step below is bit-identical to the one-shot
    evaluation for any memory budget (and needs no negative-value clipping).
    """
    sq = np.zeros((points.shape[0], centers.shape[0]), dtype=float)
    for dim in range(points.shape[1]):
        diff = points[:, dim][:, None] - centers[None, :, dim]
        diff *= diff
        sq += diff
    return sq


def _closest_sq_distances(
    points: np.ndarray,
    centers: np.ndarray,
    memory_budget: MemoryBudgetLike = None,
) -> tuple:
    """Squared distance to, and index of, the nearest center for every point.

    The assignment step is the memory hot spot of trimmed Lloyd: under a
    ``memory_budget`` the ``(n, k)`` block is produced in row chunks of at
    most that many bytes (per-row results, so bit-identical across budgets).
    """
    n, k = points.shape[0], centers.shape[0]
    budget = resolve_memory_budget(memory_budget)
    # Budgeted chunks are clamped to the planner's cache target: the (n, k)
    # block is produced per row, so any chunk size is bit-identical and a
    # cache-resident chunk is simply faster.
    chunk = n if budget is None else max(1, effective_tile_bytes(budget) // max(1, k * 8))
    best = np.empty(n, dtype=float)
    idx = np.empty(n, dtype=int)
    for r0 in range(0, n, max(1, chunk)):
        r1 = min(r0 + max(1, chunk), n)
        sq = _sq_distance_block(points[r0:r1], centers)
        local = np.argmin(sq, axis=1)
        best[r0:r1] = sq[np.arange(sq.shape[0]), local]
        idx[r0:r1] = local
    return best, idx


def trimmed_lloyd_kmeans(
    points: np.ndarray,
    k: int,
    t: int,
    *,
    weights: Optional[np.ndarray] = None,
    max_iter: int = 60,
    n_init: int = 3,
    tol: float = 1e-7,
    snap_to_points: bool = True,
    rng: RngLike = None,
    memory_budget: MemoryBudgetLike = None,
) -> ClusterSolution:
    """Trimmed k-means on a Euclidean point cloud.

    Parameters
    ----------
    points:
        ``(n, d)`` coordinates.
    k:
        Number of centers.
    t:
        Number of points excluded (integral; trimming is per point here).
    weights:
        Optional per-point weights used in the mean updates.
    max_iter, tol:
        Lloyd iteration controls.
    n_init:
        Number of random restarts; the best trimmed objective wins.
    snap_to_points:
        If True (default) the returned centers are indices of the nearest
        input points; the continuous centers are kept in
        ``metadata["center_coords"]`` either way.
    rng:
        Seed or generator.
    memory_budget:
        Byte cap on the transient ``(n, k)`` blocks of the assignment and
        snapping steps (row-chunked; bit-identical for every budget).
    """
    pts = check_points_array(points, "points")
    n, d = pts.shape
    if k < 1 or k > n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    if t < 0 or t >= n:
        raise ValueError(f"t must be in [0, {n}), got {t}")
    w = np.ones(n, dtype=float) if weights is None else np.asarray(weights, dtype=float)
    if w.shape != (n,):
        raise ValueError(f"weights must have shape ({n},), got {w.shape}")
    generator = ensure_rng(rng)

    best_cost = np.inf
    best_centers = None
    best_labels = None
    best_outliers = None

    for _ in range(max(1, n_init)):
        # k-means++ seeding.
        seeds = [int(generator.integers(0, n))]
        sq_min = np.sum((pts - pts[seeds[0]]) ** 2, axis=1)
        while len(seeds) < k:
            probs = w * sq_min
            total = probs.sum()
            if total <= 0:
                seeds.append(int(generator.integers(0, n)))
            else:
                seeds.append(int(generator.choice(n, p=probs / total)))
            sq_min = np.minimum(sq_min, np.sum((pts - pts[seeds[-1]]) ** 2, axis=1))
        centers = pts[seeds].copy()

        prev_cost = np.inf
        labels = np.zeros(n, dtype=int)
        outlier_mask = np.zeros(n, dtype=bool)
        for _ in range(max_iter):
            sq, labels = _closest_sq_distances(pts, centers, memory_budget)
            # Trim the t most expensive points before the mean update.
            outlier_mask = np.zeros(n, dtype=bool)
            if t > 0:
                outlier_mask[np.argsort(-sq, kind="stable")[:t]] = True
            cost = float(np.dot(w[~outlier_mask], sq[~outlier_mask]))
            for c in range(k):
                members = (~outlier_mask) & (labels == c)
                if np.any(members):
                    centers[c] = np.average(pts[members], axis=0, weights=w[members])
                else:
                    # Re-seed an empty cluster at the farthest non-outlier point.
                    candidates = np.flatnonzero(~outlier_mask)
                    centers[c] = pts[candidates[np.argmax(sq[candidates])]]
            if prev_cost - cost <= tol * max(prev_cost, 1.0):
                prev_cost = cost
                break
            prev_cost = cost

        sq, labels = _closest_sq_distances(pts, centers, memory_budget)
        outlier_mask = np.zeros(n, dtype=bool)
        if t > 0:
            outlier_mask[np.argsort(-sq, kind="stable")[:t]] = True
        cost = float(np.dot(w[~outlier_mask], sq[~outlier_mask]))
        if cost < best_cost:
            best_cost = cost
            best_centers = centers.copy()
            best_labels = labels.copy()
            best_outliers = outlier_mask.copy()

    assert best_centers is not None
    # Snap continuous centers to the nearest input point if requested.
    if snap_to_points:
        budget = resolve_memory_budget(memory_budget)
        chunk = n if budget is None else max(1, effective_tile_bytes(budget) // max(1, k * 8))
        best_sq = np.full(k, np.inf)
        center_indices = np.zeros(k, dtype=int)
        for r0 in range(0, n, max(1, chunk)):
            sq_block = _sq_distance_block(pts[r0 : r0 + chunk], best_centers)
            local = np.argmin(sq_block, axis=0)
            local_val = sq_block[local, np.arange(k)]
            # Strict less keeps np.argmin's first-occurrence tie-breaking.
            better = local_val < best_sq
            best_sq[better] = local_val[better]
            center_indices[better] = local[better] + r0
        sq, labels = _closest_sq_distances(pts, pts[center_indices], memory_budget)
        outlier_mask = np.zeros(n, dtype=bool)
        if t > 0:
            outlier_mask[np.argsort(-sq, kind="stable")[:t]] = True
        cost = float(np.dot(w[~outlier_mask], sq[~outlier_mask]))
        assignment = center_indices[labels]
    else:
        center_indices = np.arange(k)
        labels = best_labels
        outlier_mask = best_outliers
        cost = best_cost
        assignment = labels.copy()

    assignment = np.asarray(assignment, dtype=int)
    assignment[outlier_mask] = -1
    dropped = np.where(outlier_mask, w, 0.0)

    solution = ClusterSolution(
        centers=np.asarray(center_indices, dtype=int),
        assignment=assignment,
        outlier_weight=float(dropped.sum()),
        cost=cost,
        objective="means",
        dropped_weight=dropped,
        metadata={
            "method": "trimmed_lloyd",
            "center_coords": best_centers,
            "snapped": bool(snap_to_points),
        },
    )
    return solution


__all__ = ["trimmed_lloyd_kmeans"]
