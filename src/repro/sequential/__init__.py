"""Sequential (single-machine) clustering substrate.

These are the building blocks the distributed algorithms call at sites and at
the coordinator:

* :func:`gonzalez` — farthest-first traversal (Gonzalez 1985), whose prefix of
  length ``r`` is a 2-approximation for ``r``-center; Algorithm 2 uses the
  traversal radii as its global witnesses.
* :func:`kcenter_with_outliers` — Charikar-et-al-style greedy disk cover for
  the weighted ``(k, t)``-center problem.
* :func:`local_search_partial` — outlier-aware weighted local-search solver
  for ``(k, t)``-median/means (the practical stand-in for the Theorem 3.1
  bicriteria black box; see DESIGN.md "Substitutions").
* :func:`bicriteria_solve` — the Theorem 3.1 interface: relax either the
  outlier budget to ``(1+eps) t`` or the center budget to ``(1+eps) k``.
* :mod:`repro.sequential.assignment` — nearest-center assignment with
  weighted outlier trimming, shared by everything above.
"""

from repro.sequential.solution import ClusterSolution
from repro.sequential.assignment import (
    assign_with_outliers,
    solution_cost,
    nearest_center_distances,
)
from repro.sequential.gonzalez import GonzalezResult, gonzalez
from repro.sequential.kcenter_outliers import kcenter_with_outliers
from repro.sequential.local_search import local_search_partial
from repro.sequential.bicriteria import bicriteria_solve
from repro.sequential.lloyd import trimmed_lloyd_kmeans

__all__ = [
    "ClusterSolution",
    "assign_with_outliers",
    "solution_cost",
    "nearest_center_distances",
    "GonzalezResult",
    "gonzalez",
    "kcenter_with_outliers",
    "local_search_partial",
    "bicriteria_solve",
    "trimmed_lloyd_kmeans",
]
