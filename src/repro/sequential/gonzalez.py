"""Gonzalez's farthest-first traversal (Gonzalez 1985).

For the k-center problem the traversal produces a re-ordering
``p_1, ..., p_n`` of the input such that, for every ``r``, the prefix
``{p_1, ..., p_r}`` is a 2-approximate set of ``r`` centers.  Algorithm 2 of
the paper exploits a second property: the distance of the ``(k+q)``-th point
to the prefix before it, ``l(i, q) = min_{j < k+q} d(a_j, a_{k+q})``, is a
monotone non-increasing witness of the local ``(k, q)``-center cost, which
can be compared *globally* across sites to split the outlier budget.

The traversal runs lazily against a metric: each step needs one vectorised
"distances to the newly chosen point" call, so choosing ``m`` prefix points
costs ``O(m * n)`` distance evaluations — the paper's ``Õ((k + t) n_i)`` site
time when ``m = k + t``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.metrics.base import MetricSpace
from repro.metrics.blocked import MemoryBudgetLike, resolve_memory_budget
from repro.metrics.plan import effective_tile_bytes
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class GonzalezResult:
    """Output of the farthest-first traversal.

    Attributes
    ----------
    ordering:
        Indices of the traversed points, in traversal order (length ``m``).
    radii:
        ``radii[r]`` is the distance from ``ordering[r]`` to the set
        ``{ordering[0], ..., ordering[r-1]}``; ``radii[0]`` is defined as
        ``+inf`` (the first point has no predecessor).  ``radii`` is
        non-increasing from index 1 on.
    coverage_radius:
        For each prefix length ``r`` (1-based), ``coverage_radius[r-1]`` is the
        maximum distance from any input point to the prefix — i.e. the
        k-center cost of using that prefix, which is at most twice optimal.
    """

    ordering: np.ndarray
    radii: np.ndarray
    coverage_radius: np.ndarray

    def prefix(self, r: int) -> np.ndarray:
        """The first ``r`` traversed points."""
        if r < 0 or r > self.ordering.size:
            raise ValueError(f"prefix length must be in [0, {self.ordering.size}], got {r}")
        return self.ordering[:r]


def _distances_from_chunked(
    metric: MetricSpace, i: int, cols: np.ndarray, budget: Optional[int]
) -> np.ndarray:
    """One traversal sweep, evaluated in column chunks of at most ``budget`` bytes.

    ``distances_from`` is computed independently per target point, so
    chunking is bit-identical to the one-shot call; only the transient
    gather inside the metric shrinks.  Budgeted chunks are additionally
    clamped to the planner's cache target, so a generous budget still
    sweeps in cache-resident pieces.
    """
    if budget is None:
        return metric.distances_from(i, cols)
    chunk = max(1, effective_tile_bytes(budget) // 8)
    out = np.empty(cols.size, dtype=float)
    for c0 in range(0, cols.size, chunk):
        c1 = min(c0 + chunk, cols.size)
        out[c0:c1] = metric.distances_from(i, cols[c0:c1])
    return out


def gonzalez(
    metric: MetricSpace,
    indices: Optional[Sequence[int]] = None,
    m: Optional[int] = None,
    *,
    start: Optional[int] = None,
    rng: RngLike = None,
    memory_budget: MemoryBudgetLike = None,
) -> GonzalezResult:
    """Farthest-first traversal of ``indices`` (default: all points of ``metric``).

    Parameters
    ----------
    metric:
        The metric space.
    indices:
        The subset of points to traverse (global indices).  Defaults to all.
    m:
        Number of points to traverse; defaults to all of ``indices``.
    start:
        Index (into ``indices``) of the first point; random if omitted.
    rng:
        Seed or generator used only to choose the starting point.
    memory_budget:
        Byte cap on each sweep's transient blocks.  The traversal already
        streams — its state is three ``O(n)`` vectors, never a matrix — so
        the budget only chunks the per-step distance sweeps; results are
        bit-identical for every budget.
    """
    idx = np.arange(len(metric)) if indices is None else np.asarray(indices, dtype=int)
    metric.validate_indices(idx)
    n = idx.size
    if n == 0:
        raise ValueError("cannot run Gonzalez traversal on an empty point set")
    m = n if m is None else int(m)
    if m < 1 or m > n:
        raise ValueError(f"m must be in [1, {n}], got {m}")

    if start is None:
        start = int(ensure_rng(rng).integers(0, n))
    elif start < 0 or start >= n:
        raise ValueError(f"start must be in [0, {n}), got {start}")

    ordering = np.empty(m, dtype=int)
    radii = np.empty(m, dtype=float)
    coverage = np.empty(m, dtype=float)

    budget = resolve_memory_budget(memory_budget)
    ordering[0] = idx[start]
    radii[0] = np.inf
    # ``dist_to_chosen`` holds the true distance of every point to the prefix;
    # ``selection`` is the same array with already-chosen points masked out so
    # that ties at distance zero (duplicate points) never re-select a point.
    dist_to_chosen = _distances_from_chunked(metric, int(idx[start]), idx, budget)
    selection = dist_to_chosen.copy()
    selection[start] = -np.inf
    coverage[0] = float(dist_to_chosen.max()) if n > 1 else 0.0

    for r in range(1, m):
        nxt = int(np.argmax(selection))
        ordering[r] = idx[nxt]
        radii[r] = float(dist_to_chosen[nxt])
        new_dist = _distances_from_chunked(metric, int(idx[nxt]), idx, budget)
        np.minimum(dist_to_chosen, new_dist, out=dist_to_chosen)
        np.minimum(selection, new_dist, out=selection)
        selection[nxt] = -np.inf
        coverage[r] = float(dist_to_chosen.max())

    return GonzalezResult(ordering=ordering, radii=radii, coverage_radius=coverage)


def center_witnesses(result: GonzalezResult, k: int, t: int) -> np.ndarray:
    """The Algorithm 2 witnesses ``l(i, q) = radii[k + q - 1]`` for ``q = 1..t``.

    ``l(i, q)`` is the distance of the ``(k+q)``-th traversed point to the
    points before it (0-indexed: ``radii[k + q - 1]``).  When the site holds
    fewer than ``k + q`` points the witness is 0 (its local instance can be
    covered exactly with that many centers).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if t < 0:
        raise ValueError(f"t must be >= 0, got {t}")
    out = np.zeros(t, dtype=float)
    m = result.radii.size
    for q in range(1, t + 1):
        pos = k + q - 1
        if pos < m:
            out[q - 1] = result.radii[pos]
    return out


__all__ = ["GonzalezResult", "gonzalez", "center_witnesses"]
