"""Truncated distances (Definition 5.7 of the paper).

``L_tau(u, v) = max{d(u, v) - tau, 0}`` is used by the uncertain
``(k, t)``-center-g algorithm (Algorithm 4).  ``L_tau`` is *not* a metric for
``tau > 0`` — it only satisfies the relaxed inequality
``L_tau(u1, u2) + L_tau(u2, u3) >= L_{2 tau}(u1, u3)`` — so it is exposed as a
distance *function*, not a :class:`MetricSpace`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.metrics.base import MetricSpace


def truncate_matrix(distances: np.ndarray, tau: float) -> np.ndarray:
    """Apply ``L_tau`` elementwise to a matrix of ordinary distances."""
    if tau < 0:
        raise ValueError(f"tau must be non-negative, got {tau}")
    return np.maximum(np.asarray(distances, dtype=float) - tau, 0.0)


class TruncatedDistance:
    """The truncated distance ``L_tau`` derived from a base metric.

    Provides the same ``distance`` / ``pairwise`` call shapes as a
    :class:`MetricSpace` so cost-matrix builders can use it interchangeably,
    but deliberately does not subclass it (the triangle inequality fails).
    """

    def __init__(self, base: MetricSpace, tau: float):
        if tau < 0:
            raise ValueError(f"tau must be non-negative, got {tau}")
        self._base = base
        self._tau = float(tau)

    def __len__(self) -> int:
        return len(self._base)

    @property
    def tau(self) -> float:
        """The truncation threshold."""
        return self._tau

    @property
    def base(self) -> MetricSpace:
        """The untruncated metric."""
        return self._base

    def distance(self, i: int, j: int) -> float:
        return max(self._base.distance(i, j) - self._tau, 0.0)

    def pairwise(self, rows: Sequence[int], cols: Sequence[int]) -> np.ndarray:
        return truncate_matrix(self._base.pairwise(rows, cols), self._tau)

    def rescaled(self, factor: float) -> "TruncatedDistance":
        """``L_{factor * tau}`` over the same base metric (e.g. ``rho_{6 tau}``)."""
        return TruncatedDistance(self._base, self._tau * factor)


__all__ = ["TruncatedDistance", "truncate_matrix"]
