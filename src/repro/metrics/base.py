"""Abstract metric-space interface.

A *point* is an integer index ``0 <= i < len(metric)``.  The interface is
deliberately tiny — ``distance`` for a single pair and ``pairwise`` for a
vectorised block — because every clustering routine in the library is written
against these two calls.  ``words_per_point`` models the paper's ``B``
parameter (the number of machine words needed to transmit one point), which
the coordinator-model simulator uses for communication accounting.
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence

import numpy as np

from repro.metrics.blocked import (
    DEFAULT_REDUCTION_BUDGET,
    MemoryBudgetLike,
    reduce_max,
    reduce_min_positive,
)


class MetricSpace(abc.ABC):
    """A finite metric space whose points are addressed by integer index."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of points in the space."""

    @abc.abstractmethod
    def distance(self, i: int, j: int) -> float:
        """Distance between points ``i`` and ``j``."""

    @abc.abstractmethod
    def pairwise(self, rows: Sequence[int], cols: Sequence[int]) -> np.ndarray:
        """Block of distances, shape ``(len(rows), len(cols))``."""

    # ------------------------------------------------------------------
    # Derived helpers with sensible default implementations.
    # ------------------------------------------------------------------

    @property
    def words_per_point(self) -> int:
        """Number of machine words needed to transmit one point (the paper's ``B``)."""
        return 1

    def distances_from(self, i: int, cols: Sequence[int]) -> np.ndarray:
        """Distances from a single point ``i`` to every index in ``cols``."""
        return self.pairwise([i], cols)[0]

    def full_matrix(self) -> np.ndarray:
        """Dense ``n x n`` distance matrix.  Only appropriate for small spaces."""
        idx = np.arange(len(self))
        return self.pairwise(idx, idx)

    def diameter(
        self,
        indices: Optional[Sequence[int]] = None,
        *,
        memory_budget: MemoryBudgetLike = None,
    ) -> float:
        """Maximum pairwise distance over ``indices`` (default: all points).

        Evaluated as a blocked reduction — never more than ``memory_budget``
        bytes (default :data:`~repro.metrics.blocked.DEFAULT_REDUCTION_BUDGET`)
        of the distance matrix exist at a time, and the value is bit-identical
        for every budget.
        """
        idx = np.arange(len(self)) if indices is None else np.asarray(indices, dtype=int)
        if idx.size <= 1:
            return 0.0
        budget = DEFAULT_REDUCTION_BUDGET if memory_budget is None else memory_budget
        return reduce_max(self, idx, idx, memory_budget=budget)

    def min_positive_distance(
        self,
        indices: Optional[Sequence[int]] = None,
        *,
        memory_budget: MemoryBudgetLike = None,
    ) -> float:
        """Minimum non-zero pairwise distance over ``indices`` (default: all points).

        Returns 0.0 when all points coincide.  Used for the ``Delta``
        (spread) parameter of Algorithm 4.  Blocked like :meth:`diameter`:
        ``O(budget)`` transient memory, budget-independent value.
        """
        idx = np.arange(len(self)) if indices is None else np.asarray(indices, dtype=int)
        if idx.size <= 1:
            return 0.0
        budget = DEFAULT_REDUCTION_BUDGET if memory_budget is None else memory_budget
        return reduce_min_positive(self, idx, idx, memory_budget=budget)

    def spread(
        self,
        indices: Optional[Sequence[int]] = None,
        *,
        memory_budget: MemoryBudgetLike = None,
    ) -> float:
        """The aspect ratio ``Delta = d_max / d_min`` of the (sub-)space."""
        dmin = self.min_positive_distance(indices, memory_budget=memory_budget)
        if dmin == 0.0:
            return 1.0
        return self.diameter(indices, memory_budget=memory_budget) / dmin

    def subset(self, indices: Sequence[int]) -> "SubsetMetric":
        """A view of this metric restricted to ``indices`` (re-indexed from 0)."""
        return SubsetMetric(self, indices)

    def validate_indices(self, indices: Sequence[int]) -> np.ndarray:
        """Check that ``indices`` are valid point indices and return them as an array."""
        idx = np.asarray(indices, dtype=int)
        n = len(self)
        if idx.size and (idx.min() < 0 or idx.max() >= n):
            raise IndexError(
                f"point indices must lie in [0, {n}), got range "
                f"[{idx.min()}, {idx.max()}]"
            )
        return idx


class SubsetMetric(MetricSpace):
    """A re-indexed view of a parent metric restricted to a subset of points.

    Point ``i`` of the subset corresponds to ``indices[i]`` of the parent.
    Useful for treating a site's shard as a standalone metric space while the
    data itself stays in the global space.
    """

    def __init__(self, parent: MetricSpace, indices: Sequence[int]):
        self._parent = parent
        self._indices = parent.validate_indices(indices)

    def __len__(self) -> int:
        return int(self._indices.size)

    @property
    def parent(self) -> MetricSpace:
        """The underlying global metric."""
        return self._parent

    @property
    def indices(self) -> np.ndarray:
        """Parent indices of the subset, in subset order."""
        return self._indices

    @property
    def words_per_point(self) -> int:
        return self._parent.words_per_point

    def to_parent(self, local_indices: Sequence[int]) -> np.ndarray:
        """Map subset-local indices back to parent indices."""
        return self._indices[np.asarray(local_indices, dtype=int)]

    def distance(self, i: int, j: int) -> float:
        return self._parent.distance(int(self._indices[i]), int(self._indices[j]))

    def pairwise(self, rows: Sequence[int], cols: Sequence[int]) -> np.ndarray:
        rows = self._indices[np.asarray(rows, dtype=int)]
        cols = self._indices[np.asarray(cols, dtype=int)]
        return self._parent.pairwise(rows, cols)


__all__ = ["MetricSpace", "SubsetMetric"]
