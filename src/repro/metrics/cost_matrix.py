"""Cost-matrix construction shared by the sequential solvers.

All sequential clustering routines in :mod:`repro.sequential` accept an
explicit demand-by-facility cost matrix.  This module centralises the logic
that turns a metric + objective into such a matrix, in particular the
squaring used for the means objective, and — through the
:mod:`repro.metrics.blocked` layer — the memory discipline: under a
``memory_budget`` the matrix is produced in row blocks and, when the result
itself would not fit the budget, streamed into a disk-backed
:class:`~repro.metrics.blocked.MemmapCostShard` whose read-only memmap is
returned in its place.  Either way the entries are bit-identical to the
dense path.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.metrics.base import MetricSpace
from repro.metrics.blocked import MemoryBudgetLike, materialize

VALID_OBJECTIVES = ("median", "means", "center")


def validate_objective(objective: str) -> str:
    """Normalise and validate an objective name."""
    obj = str(objective).lower()
    if obj not in VALID_OBJECTIVES:
        raise ValueError(f"objective must be one of {VALID_OBJECTIVES}, got {objective!r}")
    return obj


def pairwise_distances(metric: MetricSpace, rows: Sequence[int], cols: Sequence[int]) -> np.ndarray:
    """Plain distance block (no squaring) between two index sets."""
    return metric.pairwise(rows, cols)


def build_cost_matrix(
    metric: MetricSpace,
    demands: Sequence[int],
    facilities: Sequence[int],
    objective: str = "median",
    *,
    memory_budget: MemoryBudgetLike = None,
    workdir: Optional[str] = None,
) -> np.ndarray:
    """Assignment-cost matrix for the given objective.

    For ``median`` and ``center`` the cost is the distance itself; for
    ``means`` it is the squared distance (Definition 1.1).

    Parameters
    ----------
    memory_budget:
        ``None`` (default) materialises the matrix densely in one call.
        Otherwise the matrix is built in row blocks of at most this many
        bytes and, when larger than the budget, lives in an ``np.memmap``
        under ``workdir`` instead of RAM (see :mod:`repro.metrics.blocked`).
        Entries are bit-identical either way.
    workdir:
        Directory owning any spilled shard files; the caller controls their
        lifetime (protocol drivers use a scratch directory per run).
    """
    obj = validate_objective(objective)
    if memory_budget is None:
        d = metric.pairwise(demands, facilities)
        if obj == "means":
            return d * d
        return d
    transform = (lambda block, rs: block * block) if obj == "means" else None
    return materialize(
        metric,
        np.asarray(demands, dtype=int),
        np.asarray(facilities, dtype=int),
        transform=transform,
        memory_budget=memory_budget,
        workdir=workdir,
    )


def costs_from_distances(distances: np.ndarray, objective: str = "median") -> np.ndarray:
    """Convert raw distances into assignment costs for the given objective."""
    obj = validate_objective(objective)
    distances = np.asarray(distances, dtype=float)
    if obj == "means":
        return distances * distances
    return distances


__all__ = [
    "VALID_OBJECTIVES",
    "validate_objective",
    "pairwise_distances",
    "build_cost_matrix",
    "costs_from_distances",
]
