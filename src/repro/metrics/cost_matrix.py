"""Cost-matrix construction shared by the sequential solvers.

All sequential clustering routines in :mod:`repro.sequential` accept an
explicit demand-by-facility cost matrix.  This module centralises the logic
that turns a metric + objective into such a matrix, in particular the
squaring used for the means objective.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.metrics.base import MetricSpace

VALID_OBJECTIVES = ("median", "means", "center")


def validate_objective(objective: str) -> str:
    """Normalise and validate an objective name."""
    obj = str(objective).lower()
    if obj not in VALID_OBJECTIVES:
        raise ValueError(f"objective must be one of {VALID_OBJECTIVES}, got {objective!r}")
    return obj


def pairwise_distances(metric: MetricSpace, rows: Sequence[int], cols: Sequence[int]) -> np.ndarray:
    """Plain distance block (no squaring) between two index sets."""
    return metric.pairwise(rows, cols)


def build_cost_matrix(
    metric: MetricSpace,
    demands: Sequence[int],
    facilities: Sequence[int],
    objective: str = "median",
) -> np.ndarray:
    """Assignment-cost matrix for the given objective.

    For ``median`` and ``center`` the cost is the distance itself; for
    ``means`` it is the squared distance (Definition 1.1).
    """
    obj = validate_objective(objective)
    d = metric.pairwise(demands, facilities)
    if obj == "means":
        return d * d
    return d


def costs_from_distances(distances: np.ndarray, objective: str = "median") -> np.ndarray:
    """Convert raw distances into assignment costs for the given objective."""
    obj = validate_objective(objective)
    distances = np.asarray(distances, dtype=float)
    if obj == "means":
        return distances * distances
    return distances


__all__ = [
    "VALID_OBJECTIVES",
    "validate_objective",
    "pairwise_distances",
    "build_cost_matrix",
    "costs_from_distances",
]
