"""Shortest-path metric on a weighted undirected graph.

The paper's framework only requires an oracle distance function; a graph
metric exercises the non-Euclidean code path (e.g. road networks or
similarity graphs over documents).
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx
import numpy as np

from repro.metrics.base import MetricSpace
from repro.metrics.matrix import MatrixMetric


class GraphMetric(MetricSpace):
    """All-pairs shortest path distances on a connected weighted graph.

    Distances are materialised eagerly into a dense matrix (the library
    targets instances of at most a few thousand points, matching the paper's
    ``Õ(n_i^2)`` local running times).
    """

    def __init__(self, graph: nx.Graph, *, weight: str = "weight", words_per_point: int = 1):
        if graph.number_of_nodes() == 0:
            raise ValueError("graph must have at least one node")
        if not nx.is_connected(graph):
            raise ValueError("graph must be connected to induce a finite metric")
        self._nodes = list(graph.nodes())
        self._index = {node: i for i, node in enumerate(self._nodes)}
        n = len(self._nodes)
        matrix = np.zeros((n, n), dtype=float)
        for source, lengths in nx.all_pairs_dijkstra_path_length(graph, weight=weight):
            si = self._index[source]
            for target, dist in lengths.items():
                matrix[si, self._index[target]] = dist
        self._backend = MatrixMetric(matrix, words_per_point=words_per_point, validate=False)

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def nodes(self) -> list:
        """Graph nodes in index order."""
        return list(self._nodes)

    @property
    def words_per_point(self) -> int:
        return self._backend.words_per_point

    def node_index(self, node) -> int:
        """Index of a graph node in the metric."""
        return self._index[node]

    def distance(self, i: int, j: int) -> float:
        return self._backend.distance(i, j)

    def pairwise(self, rows: Sequence[int], cols: Sequence[int]) -> np.ndarray:
        return self._backend.pairwise(rows, cols)

    def full_matrix(self) -> np.ndarray:
        return self._backend.full_matrix()


__all__ = ["GraphMetric"]
