"""Euclidean metric over a point cloud in R^d."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.metrics.base import MetricSpace
from repro.utils.validation import check_points_array


class EuclideanMetric(MetricSpace):
    """Points in R^d under the Euclidean (L2) distance.

    This is the paper's canonical metric: each point costs ``d`` machine
    words to transmit (``words_per_point``), and distance blocks are computed
    with a vectorised ``(a - b)^2 = a^2 + b^2 - 2ab`` expansion.
    """

    def __init__(self, points: np.ndarray):
        self._points = check_points_array(points, "points")
        self._sqnorms = np.einsum("ij,ij->i", self._points, self._points)

    @classmethod
    def from_random(cls, n: int, dim: int, rng: np.random.Generator, scale: float = 1.0) -> "EuclideanMetric":
        """Uniform random points in ``[0, scale]^dim`` — handy for tests."""
        return cls(rng.uniform(0.0, scale, size=(n, dim)))

    def __len__(self) -> int:
        return self._points.shape[0]

    @property
    def points(self) -> np.ndarray:
        """The underlying ``(n, d)`` coordinate array (read-only view)."""
        return self._points

    @property
    def dim(self) -> int:
        """Ambient dimension ``d``."""
        return self._points.shape[1]

    @property
    def words_per_point(self) -> int:
        return self._points.shape[1]

    def distance(self, i: int, j: int) -> float:
        diff = self._points[i] - self._points[j]
        return float(np.sqrt(np.dot(diff, diff)))

    def pairwise(self, rows: Sequence[int], cols: Sequence[int]) -> np.ndarray:
        rows = np.asarray(rows, dtype=int)
        cols = np.asarray(cols, dtype=int)
        a = self._points[rows]
        b = self._points[cols]
        # ||a - b||^2 = ||a||^2 + ||b||^2 - 2 a.b, clipped to guard against
        # tiny negative values from floating-point cancellation.
        sq = (
            self._sqnorms[rows][:, None]
            + self._sqnorms[cols][None, :]
            - 2.0 * (a @ b.T)
        )
        np.maximum(sq, 0.0, out=sq)
        # The expansion suffers cancellation for identical points; force the
        # distance of a point to itself to be exactly zero.
        sq[rows[:, None] == cols[None, :]] = 0.0
        return np.sqrt(sq)

    def distances_from(self, i: int, cols: Sequence[int]) -> np.ndarray:
        cols = np.asarray(cols, dtype=int)
        diff = self._points[cols] - self._points[i]
        return np.sqrt(np.einsum("ij,ij->i", diff, diff))


__all__ = ["EuclideanMetric"]
