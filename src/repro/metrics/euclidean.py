"""Euclidean metric over a point cloud in R^d."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.metrics.base import MetricSpace
from repro.metrics.blocked import contiguous_slice
from repro.utils.validation import check_points_array


def _take_rows(points: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """Rows of ``points`` — a *view* when ``indices`` is a contiguous run.

    Blocked evaluation walks contiguous index ranges, so the common tile
    avoids the gather copy entirely.  Callers must treat the result as
    read-only (it may alias the metric's own coordinate buffer).
    """
    rng = contiguous_slice(indices)
    if rng is not None:
        return points[rng]
    return points[indices]


class EuclideanMetric(MetricSpace):
    """Points in R^d under the Euclidean (L2) distance.

    This is the paper's canonical metric: each point costs ``d`` machine
    words to transmit (``words_per_point``).

    Distance blocks are computed with a per-dimension accumulation,
    ``sum_dim (a_dim - b_dim)^2``, instead of the classic
    ``a^2 + b^2 - 2ab`` BLAS expansion.  The per-dimension kernel is
    *tiling-invariant*: every entry of a block is produced by the same
    sequence of scalar operations regardless of the block's shape, so a
    sub-block equals the corresponding slice of the full matrix bit for bit.
    (BLAS matmul is not shape-stable — its reduction blocking changes with
    the panel size — which would break the blocked layer's bit-identical
    guarantee.)  The difference form is also immune to the cancellation the
    expansion suffers for near-duplicate points, and identical points get an
    exact zero without post-hoc masking.
    """

    def __init__(self, points: np.ndarray):
        self._points = check_points_array(points, "points")

    @classmethod
    def from_random(cls, n: int, dim: int, rng: np.random.Generator, scale: float = 1.0) -> "EuclideanMetric":
        """Uniform random points in ``[0, scale]^dim`` — handy for tests."""
        return cls(rng.uniform(0.0, scale, size=(n, dim)))

    def __len__(self) -> int:
        return self._points.shape[0]

    @property
    def points(self) -> np.ndarray:
        """The underlying ``(n, d)`` coordinate array (read-only view)."""
        return self._points

    @property
    def dim(self) -> int:
        """Ambient dimension ``d``."""
        return self._points.shape[1]

    @property
    def words_per_point(self) -> int:
        return self._points.shape[1]

    def distance(self, i: int, j: int) -> float:
        diff = self._points[i] - self._points[j]
        return float(np.sqrt(np.dot(diff, diff)))

    def pairwise(self, rows: Sequence[int], cols: Sequence[int]) -> np.ndarray:
        rows = np.asarray(rows, dtype=int)
        cols = np.asarray(cols, dtype=int)
        a = _take_rows(self._points, rows)
        b = _take_rows(self._points, cols)
        sq = np.zeros((a.shape[0], b.shape[0]), dtype=float)
        for dim in range(self._points.shape[1]):
            diff = a[:, dim][:, None] - b[None, :, dim]
            diff *= diff
            sq += diff
        return np.sqrt(sq, out=sq)

    def distances_from(self, i: int, cols: Sequence[int]) -> np.ndarray:
        cols = np.asarray(cols, dtype=int)
        diff = _take_rows(self._points, cols) - self._points[i]
        return np.sqrt(np.einsum("ij,ij->i", diff, diff))


__all__ = ["EuclideanMetric"]
