"""Compressed graph of Definition 5.2 — the "clique with tentacles".

Clustering uncertain nodes directly would require shipping whole
distributions between sites.  The paper instead collapses each uncertain node
``j`` to its 1-median ``y_j`` (or 1-mean for the means objective) and keeps
the collapse cost ``l_j = E_sigma[d(sigma(j), y_j)]`` on a *tentacle* edge
``(p_j, y_j)``.  The resulting graph ``G`` has

* a clique over the ground point set ``P`` with edge weights ``d(u, v)``, and
* one pendant demand vertex ``p_j`` per node, attached to ``y_j`` with
  weight ``l_j``.

Lemmas 5.3/5.4 show that the (k, t)-median problem on ``G`` (demands ``{p_j}``,
facilities restricted to ``{y_j}``) is equivalent, up to constant factors, to
the original uncertain clustering problem.  This module provides both the
asymmetric demand-to-facility cost matrix the algorithms use and a symmetric
demand-vertex metric for generic consumers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.metrics.base import MetricSpace


@dataclass
class CompressedGraph:
    """The compressed graph for a collection of uncertain nodes.

    Parameters
    ----------
    ground_metric:
        Metric over the ground point set ``P``.
    anchor_indices:
        For each node ``j``, the index in ``P`` of its 1-median (median /
        center objectives) or 1-mean (means objective), i.e. ``y_j``.
    collapse_costs:
        For each node ``j``, the collapse cost ``l_j`` — ``E[d(sigma(j), y_j)]``
        for median/center, ``E[d^2(sigma(j), y'_j)]`` for means.
    """

    ground_metric: MetricSpace
    anchor_indices: np.ndarray
    collapse_costs: np.ndarray

    def __post_init__(self) -> None:
        self.anchor_indices = np.asarray(self.anchor_indices, dtype=int)
        self.collapse_costs = np.asarray(self.collapse_costs, dtype=float)
        if self.anchor_indices.shape != self.collapse_costs.shape:
            raise ValueError(
                "anchor_indices and collapse_costs must have the same length, got "
                f"{self.anchor_indices.shape} vs {self.collapse_costs.shape}"
            )
        if np.any(self.collapse_costs < 0):
            raise ValueError("collapse costs must be non-negative")
        self.ground_metric.validate_indices(self.anchor_indices)

    @property
    def n_nodes(self) -> int:
        """Number of uncertain nodes (demand vertices ``p_j``)."""
        return int(self.anchor_indices.size)

    # ------------------------------------------------------------------
    # Distances in G
    # ------------------------------------------------------------------

    def demand_to_point(self, node: int, point: int) -> float:
        """``d_G(p_j, u)`` for a ground point ``u in P``: ``l_j + d(y_j, u)``."""
        return float(
            self.collapse_costs[node]
            + self.ground_metric.distance(int(self.anchor_indices[node]), int(point))
        )

    def demand_facility_costs(
        self, demand_nodes: Sequence[int], facility_nodes: Sequence[int]
    ) -> np.ndarray:
        """Cost matrix of assigning demand ``p_j`` to facility ``y_{j'}``.

        This is the (asymmetric) quantity the paper's reduction actually
        clusters: rows are demand nodes ``j``, columns are *nodes* ``j'`` whose
        1-medians ``y_{j'}`` serve as candidate facilities, and the entry is
        ``d_G(p_j, y_{j'}) = l_j + d(y_j, y_{j'})``.
        """
        demand_nodes = np.asarray(demand_nodes, dtype=int)
        facility_nodes = np.asarray(facility_nodes, dtype=int)
        base = self.ground_metric.pairwise(
            self.anchor_indices[demand_nodes], self.anchor_indices[facility_nodes]
        )
        return base + self.collapse_costs[demand_nodes][:, None]

    def demand_pairwise(self, rows: Sequence[int], cols: Sequence[int]) -> np.ndarray:
        """Symmetric shortest-path distance between demand vertices.

        ``d_G(p_j, p_{j'}) = l_j + d(y_j, y_{j'}) + l_{j'}`` for ``j != j'``.
        """
        rows = np.asarray(rows, dtype=int)
        cols = np.asarray(cols, dtype=int)
        base = self.ground_metric.pairwise(self.anchor_indices[rows], self.anchor_indices[cols])
        out = base + self.collapse_costs[rows][:, None] + self.collapse_costs[cols][None, :]
        # Identical demand vertices are at distance zero.
        same = rows[:, None] == cols[None, :]
        out[same] = 0.0
        return out

    def facility_point_index(self, node: int) -> int:
        """Ground-point index of the facility ``y_j`` associated with node ``j``."""
        return int(self.anchor_indices[node])

    def as_metric(self, words_per_point: int = 1) -> "CompressedGraphMetric":
        """Symmetric metric over the demand vertices ``{p_j}``."""
        return CompressedGraphMetric(self, words_per_point=words_per_point)


class CompressedGraphMetric(MetricSpace):
    """Metric-space view of the compressed graph restricted to demand vertices."""

    def __init__(self, graph: CompressedGraph, *, words_per_point: int = 1):
        self._graph = graph
        self._words = int(words_per_point)

    def __len__(self) -> int:
        return self._graph.n_nodes

    @property
    def graph(self) -> CompressedGraph:
        """The underlying compressed graph."""
        return self._graph

    @property
    def words_per_point(self) -> int:
        return self._words

    def distance(self, i: int, j: int) -> float:
        if i == j:
            return 0.0
        return float(self._graph.demand_pairwise([i], [j])[0, 0])

    def pairwise(self, rows: Sequence[int], cols: Sequence[int]) -> np.ndarray:
        return self._graph.demand_pairwise(rows, cols)


__all__ = ["CompressedGraph", "CompressedGraphMetric"]
