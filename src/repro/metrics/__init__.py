"""Metric-space substrate.

Everything in the library works against the small :class:`MetricSpace`
interface: points are integer indices, and distances are produced either one
pair at a time or as vectorised blocks.  Concrete implementations cover

* :class:`EuclideanMetric` — points in R^d (the paper's canonical example),
* :class:`MatrixMetric` — an explicit pairwise distance matrix,
* :class:`GraphMetric` — shortest-path distances on a weighted graph,
* :class:`CompressedGraphMetric` — the clique-with-tentacles graph of
  Definition 5.2 used to cluster uncertain data,
* :class:`TruncatedDistance` — the ``L_tau`` distance of Definition 5.7.

:mod:`repro.metrics.blocked` adds the memory discipline: blocked iteration
and reductions over any metric (or explicit cost matrix) under a byte
budget, plus disk-backed :class:`MemmapCostShard` spill for matrices that
must outlive the budget.  :mod:`repro.metrics.plan` adds the scheduling on
top: :class:`ReductionPlan` fuses several reductions into one streaming
pass over cache-aware tiles, double-buffering memmap-backed tiles with a
background prefetch thread.  All blocked and fused results are
bit-identical to the dense path.
"""

from repro.metrics.base import MetricSpace, SubsetMetric
from repro.metrics.blocked import (
    DEFAULT_REDUCTION_BUDGET,
    MemmapCostShard,
    argmin_per_row,
    count_within,
    iter_blocks,
    materialize,
    materialize_rows,
    read_block,
    reduce_max,
    reduce_min_per_row,
    reduce_min_positive,
    resolve_memory_budget,
)
from repro.metrics.plan import (
    DEFAULT_CACHE_TARGET,
    PlanStats,
    ReductionPlan,
    effective_tile_bytes,
    is_memmap_backed,
)
from repro.metrics.euclidean import EuclideanMetric
from repro.metrics.matrix import MatrixMetric
from repro.metrics.graph import GraphMetric
from repro.metrics.truncated import TruncatedDistance, truncate_matrix
from repro.metrics.compressed_graph import CompressedGraph, CompressedGraphMetric
from repro.metrics.cost_matrix import build_cost_matrix, pairwise_distances

__all__ = [
    "MetricSpace",
    "SubsetMetric",
    "DEFAULT_REDUCTION_BUDGET",
    "MemmapCostShard",
    "argmin_per_row",
    "count_within",
    "iter_blocks",
    "materialize",
    "materialize_rows",
    "read_block",
    "reduce_max",
    "reduce_min_per_row",
    "reduce_min_positive",
    "resolve_memory_budget",
    "DEFAULT_CACHE_TARGET",
    "PlanStats",
    "ReductionPlan",
    "effective_tile_bytes",
    "is_memmap_backed",
    "EuclideanMetric",
    "MatrixMetric",
    "GraphMetric",
    "TruncatedDistance",
    "truncate_matrix",
    "CompressedGraph",
    "CompressedGraphMetric",
    "build_cost_matrix",
    "pairwise_distances",
]
