"""Metric-space substrate.

Everything in the library works against the small :class:`MetricSpace`
interface: points are integer indices, and distances are produced either one
pair at a time or as vectorised blocks.  Concrete implementations cover

* :class:`EuclideanMetric` — points in R^d (the paper's canonical example),
* :class:`MatrixMetric` — an explicit pairwise distance matrix,
* :class:`GraphMetric` — shortest-path distances on a weighted graph,
* :class:`CompressedGraphMetric` — the clique-with-tentacles graph of
  Definition 5.2 used to cluster uncertain data,
* :class:`TruncatedDistance` — the ``L_tau`` distance of Definition 5.7.
"""

from repro.metrics.base import MetricSpace, SubsetMetric
from repro.metrics.euclidean import EuclideanMetric
from repro.metrics.matrix import MatrixMetric
from repro.metrics.graph import GraphMetric
from repro.metrics.truncated import TruncatedDistance, truncate_matrix
from repro.metrics.compressed_graph import CompressedGraph, CompressedGraphMetric
from repro.metrics.cost_matrix import build_cost_matrix, pairwise_distances

__all__ = [
    "MetricSpace",
    "SubsetMetric",
    "EuclideanMetric",
    "MatrixMetric",
    "GraphMetric",
    "TruncatedDistance",
    "truncate_matrix",
    "CompressedGraph",
    "CompressedGraphMetric",
    "build_cost_matrix",
    "pairwise_distances",
]
