"""Fused reduction plans with cache-aware tiles and double-buffered prefetch.

:mod:`repro.metrics.blocked` made every reduction run in ``O(budget)``
memory, but it pays for that in *streaming passes*: each call re-reads the
cost matrix, so a hot loop issuing a max, a handful of ``count_within``
thresholds and a per-row argmin streams the same tiles three-plus times.
This module is the scheduling layer on top:

* :class:`ReductionPlan` — register several reductions against one
  ``rows x cols`` slab and execute them in a **single streaming pass**;
  every tile is loaded exactly once and handed to every registered op.
* **Cache-aware tile shapes** — tiles are sized to the smaller of the
  memory budget and a cache target (default
  :data:`DEFAULT_CACHE_TARGET`), so a generous budget no longer produces
  one enormous cache-hostile tile.
* **Double-buffered prefetch** — for memmap-backed sources a background
  thread loads tile ``i+1`` while the ops consume tile ``i``
  (:class:`_TilePrefetcher`); the knob is ``prefetch=None`` (auto: on for
  memmap sources), ``True`` or ``False``.  The memory budget covers the
  *whole* buffer chain (queued copies + in-flight + consumer tile): when
  prefetch engages, tiles shrink by ``PREFETCH_DEPTH + 2`` so the pass
  still peaks within the budget.

Bitwise parity
--------------
A fused plan must return *bitwise* the same results as the equivalent
sequence of standalone :mod:`repro.metrics.blocked` calls, for every
budget, tile shape and prefetch setting.  The ops inherit the blocked
layer's structural guarantees: ``min``/``max``/``argmin`` commute with
tiling exactly, and a :meth:`ReductionPlan.add_count_within` op forces the
plan into **column-strip orientation** (full-height, column-contiguous
tiles) so each column is summed over all rows in a single Fortran-order
``np.add.reduce`` — the same accumulation discipline the standalone
``count_within`` uses, and the reason its result does not depend on the
strip width.  Prefetching only moves *where* a tile is materialised, never
what it contains.

Block sources
-------------
A plan accepts the same sources as :func:`repro.metrics.blocked.iter_blocks`
(2-D arrays, memmaps, ``pairwise``-style metrics) plus any object exposing
``shape`` and ``get_block(rows, cols)``; the test-suite's counting wrappers
use the latter to prove pass counts deterministically.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.metrics.blocked import (
    MemoryBudgetLike,
    _get_block,
    _resolve_axis,
    _source_shape,
    _tile_shape,
    resolve_memory_budget,
)
from repro.obs.trace import active_collector

#: Cache target for tile sizing: tiles larger than this thrash caches long
#: before they hit the memory budget, so the planner clamps tile bytes to
#: ``min(memory_budget, cache_target)``.  4 MiB sits comfortably inside the
#: L2/L3 of anything the suite runs on while keeping tile-loop overhead low.
DEFAULT_CACHE_TARGET = 4 * 2**20

#: Tiles the background prefetcher may hold at once (the consumer's tile
#: plus one in flight is classic double buffering; one extra slot keeps the
#: producer busy across the hand-off).
PREFETCH_DEPTH = 2

PrefetchLike = Optional[bool]


def effective_tile_bytes(
    memory_budget: MemoryBudgetLike,
    cache_target: Optional[int] = DEFAULT_CACHE_TARGET,
) -> Optional[int]:
    """Byte cap for one tile: the smaller of the budget and the cache target.

    ``None`` for both means no tiling (one dense tile — the legacy
    behaviour of the blocked layer when no budget is set).
    """
    budget = resolve_memory_budget(memory_budget)
    if budget is None:
        return None if cache_target is None else int(cache_target)
    if cache_target is None:
        return budget
    return min(budget, int(cache_target))


def is_memmap_backed(array: Any) -> bool:
    """Whether ``array`` (or any ancestor in its view chain) is an ``np.memmap``."""
    candidate = array
    while candidate is not None:
        if isinstance(candidate, np.memmap):
            return True
        candidate = getattr(candidate, "base", None)
    return False


# ----------------------------------------------------------------------
# Reduction ops.  Each op sees every tile exactly once (``update``) and
# produces its result in ``finalize``; the per-op semantics are copied
# verbatim from the standalone blocked reductions so fused results are
# bitwise identical to the sequential calls.
# ----------------------------------------------------------------------


class _MaxOp:
    tile_overhead = 0
    needs_full_rows = False

    def __init__(self, plan: "ReductionPlan"):
        self._best = -np.inf

    def update(self, rs: slice, cs: slice, block: np.ndarray) -> None:
        if block.size:
            self._best = max(self._best, float(block.max()))

    def finalize(self) -> float:
        return self._best if np.isfinite(self._best) else 0.0


class _MinPositiveOp:
    tile_overhead = 1  # the boolean mask + gathered positives
    needs_full_rows = False

    def __init__(self, plan: "ReductionPlan"):
        self._best = np.inf

    def update(self, rs: slice, cs: slice, block: np.ndarray) -> None:
        positive = block[block > 0]
        if positive.size:
            self._best = min(self._best, float(positive.min()))

    def finalize(self) -> float:
        return self._best if np.isfinite(self._best) else 0.0


class _MinPerRowOp:
    tile_overhead = 0
    needs_full_rows = False

    def __init__(self, plan: "ReductionPlan"):
        self._out = np.full(plan.n_rows, np.inf)

    def update(self, rs: slice, cs: slice, block: np.ndarray) -> None:
        np.minimum(self._out[rs], block.min(axis=1), out=self._out[rs])

    def finalize(self) -> np.ndarray:
        return self._out


class _ArgminPerRowOp:
    tile_overhead = 0
    needs_full_rows = False

    def __init__(self, plan: "ReductionPlan"):
        self._values = np.full(plan.n_rows, np.inf)
        self._positions = np.zeros(plan.n_rows, dtype=int)

    def update(self, rs: slice, cs: slice, block: np.ndarray) -> None:
        # Column tiles are scanned left to right and only a *strictly*
        # smaller value displaces the incumbent — np.argmin's
        # first-occurrence tie-breaking, independent of tile shape.
        local_arg = np.argmin(block, axis=1)
        local_val = block[np.arange(block.shape[0]), local_arg]
        better = local_val < self._values[rs]
        rows_in = np.flatnonzero(better) + rs.start
        self._values[rows_in] = local_val[better]
        self._positions[rows_in] = local_arg[better] + cs.start

    def finalize(self) -> Tuple[np.ndarray, np.ndarray]:
        return self._values, self._positions


class _CountWithinOp:
    tile_overhead = 2  # per-threshold boolean mask + Fortran-order product
    needs_full_rows = True

    def __init__(
        self,
        plan: "ReductionPlan",
        thresholds: Union[float, Sequence[float]],
        weights: Optional[np.ndarray],
    ):
        self._scalar = np.ndim(thresholds) == 0
        self._thresholds = np.atleast_1d(np.asarray(thresholds, dtype=float))
        if weights is None:
            self._w = None
        else:
            w = np.asarray(weights, dtype=float)
            if w.shape != (plan.n_rows,):
                raise ValueError(
                    f"weights must have shape ({plan.n_rows},), got {w.shape}"
                )
            self._w = w[:, None]
        self._out = np.zeros((self._thresholds.size, plan.n_cols), dtype=float)

    def update(self, rs: slice, cs: slice, block: np.ndarray) -> None:
        # The plan guarantees full-height column strips (needs_full_rows):
        # every column is summed over a contiguous run of all rows exactly
        # as the standalone count_within does, so the result is bitwise
        # independent of the strip width, the budget and the prefetcher.
        for pos, threshold in enumerate(self._thresholds):
            mask = block <= threshold
            if self._w is None:
                prod = np.asfortranarray(mask, dtype=float)
            else:
                prod = np.multiply(self._w, mask, order="F")
            self._out[pos, cs] = np.add.reduce(prod, axis=0)

    def finalize(self) -> np.ndarray:
        return self._out[0] if self._scalar else self._out


class PlanHandle:
    """Result slot of one reduction registered on a :class:`ReductionPlan`."""

    def __init__(self, plan: "ReductionPlan", op: Any):
        self._plan = plan
        self._op = op
        self._result: Any = None
        self._ready = False

    def _finalize(self) -> None:
        self._result = self._op.finalize()
        self._ready = True

    @property
    def value(self) -> Any:
        """The reduction's result (available after :meth:`ReductionPlan.execute`)."""
        if not self._ready:
            raise RuntimeError("ReductionPlan has not been executed yet")
        return self._result


@dataclass
class PlanStats:
    """What one executed plan actually streamed (for benchmarks and tests)."""

    n_tiles: int = 0
    tile_rows: int = 0
    tile_cols: int = 0
    orientation: str = "rows"
    cells: int = 0
    bytes_streamed: int = 0
    passes: float = 0.0  # cells / slab cells: 1.0 == each tile read exactly once
    n_ops: int = 0
    prefetch: bool = False

    def as_dict(self) -> dict:
        return {
            "n_tiles": int(self.n_tiles),
            "tile_rows": int(self.tile_rows),
            "tile_cols": int(self.tile_cols),
            "orientation": self.orientation,
            "cells": int(self.cells),
            "bytes_streamed": int(self.bytes_streamed),
            "passes": float(self.passes),
            "n_ops": int(self.n_ops),
            "prefetch": bool(self.prefetch),
        }


class CountingSource:
    """Instrumented block source: counts every tile load of a wrapped matrix.

    Implements the explicit block-source protocol (``shape`` +
    ``get_block``), so it slots anywhere a cost matrix does — reductions,
    plans, the k-center solver — and records deterministically how many
    cells were read and how often each cell was touched.  The benchmark
    suite and the pass-count tests use it to *prove* (not time) that fused
    plans stream each tile exactly once.
    """

    def __init__(self, matrix: np.ndarray):
        self.matrix = np.asarray(matrix, dtype=float)
        if self.matrix.ndim != 2:
            raise ValueError(f"CountingSource wraps 2-D matrices, got {self.matrix.shape}")
        self.shape = self.matrix.shape
        self.loads: List[Tuple[int, int]] = []
        self.cell_counts = np.zeros(self.shape, dtype=np.int64)

    def get_block(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        rows = np.asarray(rows, dtype=int)
        cols = np.asarray(cols, dtype=int)
        self.loads.append((rows.size, cols.size))
        self.cell_counts[np.ix_(rows, cols)] += 1
        return self.matrix[np.ix_(rows, cols)]

    @property
    def cells_read(self) -> int:
        """Total cells served across all loads (one full pass == matrix.size)."""
        return int(sum(r * c for r, c in self.loads))

    @property
    def passes(self) -> float:
        """Cells read divided by the slab size — fractional full passes."""
        return self.cells_read / self.matrix.size

    def reset(self) -> None:
        self.loads = []
        self.cell_counts[:] = 0


_DONE = object()
_ERROR = "__tile_prefetch_error__"


class _TilePrefetcher:
    """Double-buffered background tile loader.

    A single daemon thread loads tiles in plan order and parks them in a
    bounded queue (:data:`PREFETCH_DEPTH` slots), so the consumer works on
    tile ``i`` while tile ``i+1`` pages in.  Order is preserved (one
    producer, FIFO queue), so results cannot depend on the prefetcher.
    Exceptions raised by the loader surface in the consumer; if the
    consumer abandons iteration, the producer observes the cancellation
    event and exits instead of blocking forever on a full queue.
    """

    def __init__(
        self,
        loader,
        tiles: List[Tuple[slice, slice]],
        depth: int = PREFETCH_DEPTH,
        collector=None,
    ):
        self._loader = loader
        self._tiles = tiles
        self._queue: "queue.Queue" = queue.Queue(maxsize=max(1, depth))
        self._cancelled = threading.Event()
        #: Optional metrics sink (a tracer or trace buffer): the consumer
        #: loop counts hits (tile already queued), misses (consumer had to
        #: block on the producer) and the blocked wait time.
        self._collector = collector
        self._thread = threading.Thread(
            target=self._produce, name="repro-tile-prefetch", daemon=True
        )

    def _offer(self, item) -> bool:
        while not self._cancelled.is_set():
            try:
                self._queue.put(item, timeout=0.05)
                return True
            except queue.Full:
                continue
        return False

    def _produce(self) -> None:
        try:
            for rs, cs in self._tiles:
                block = self._loader(rs, cs)
                if not self._offer((rs, cs, block)):
                    return
            self._offer(_DONE)
        except BaseException as exc:  # re-raised in the consumer
            self._offer((_ERROR, exc))

    def __iter__(self):
        self._thread.start()
        collector = self._collector
        try:
            while True:
                if collector is None:
                    item = self._queue.get()
                else:
                    try:
                        item = self._queue.get_nowait()
                        collector.inc("prefetch.hit")
                    except queue.Empty:
                        waited = time.perf_counter()
                        item = self._queue.get()
                        collector.inc("prefetch.miss")
                        collector.inc("prefetch.wait_s", time.perf_counter() - waited)
                if item is _DONE:
                    return
                if isinstance(item, tuple) and len(item) == 2 and item[0] is _ERROR:
                    raise item[1]
                yield item
        finally:
            self._cancelled.set()
            try:
                while True:
                    self._queue.get_nowait()
            except queue.Empty:
                pass
            self._thread.join(timeout=5.0)


class ReductionPlan:
    """Fuse several reductions over one slab into a single streaming pass.

    Register reductions with the ``add_*`` methods (each returns a
    :class:`PlanHandle`), then call :meth:`execute` once; every tile of the
    ``rows x cols`` slab is loaded exactly once and fed to every op.

    Parameters
    ----------
    source:
        2-D array / memmap, ``pairwise``-style metric, or any object with
        ``shape`` and ``get_block(rows, cols)``.
    rows, cols:
        Index subsets of the slab (default: everything).
    memory_budget:
        Byte cap on the transient tile (``None``: unbudgeted).
    cache_target:
        Cache-locality cap on the tile; the effective tile size is
        ``min(memory_budget, cache_target)`` (see
        :func:`effective_tile_bytes`).  ``None`` disables the clamp.
    prefetch:
        ``None`` (auto: background prefetch iff the source is
        memmap-backed and the plan has more than one tile), ``True`` or
        ``False``.  Results are bitwise identical either way.
    """

    def __init__(
        self,
        source: Any,
        rows: Optional[Sequence[int]] = None,
        cols: Optional[Sequence[int]] = None,
        *,
        memory_budget: MemoryBudgetLike = None,
        cache_target: Optional[int] = DEFAULT_CACHE_TARGET,
        prefetch: PrefetchLike = None,
        itemsize: int = 8,
    ):
        self._source = source
        n_rows_total, n_cols_total = _source_shape(source)
        self._row_idx = _resolve_axis(source, rows, n_rows_total)
        self._col_idx = _resolve_axis(source, cols, n_cols_total)
        self._tile_bytes = effective_tile_bytes(memory_budget, cache_target)
        self._prefetch = prefetch
        self._itemsize = int(itemsize)
        self._ops: List[Any] = []
        self._handles: List[PlanHandle] = []
        self._executed = False
        self.stats = PlanStats()

    # -- geometry ------------------------------------------------------

    @property
    def n_rows(self) -> int:
        return int(self._row_idx.size)

    @property
    def n_cols(self) -> int:
        return int(self._col_idx.size)

    @property
    def orientation(self) -> str:
        """``"cols"`` (full-height column strips) when any op needs whole
        columns in one piece (``count_within``); ``"rows"`` otherwise."""
        if any(op.needs_full_rows for op in self._ops):
            return "cols"
        return "rows"

    def _prefetch_intent(self) -> bool:
        """Whether prefetch would engage if the plan has multiple tiles."""
        if self._prefetch is None:
            return is_memmap_backed(self._source)
        return bool(self._prefetch)

    def _op_tile_bytes(self) -> Optional[int]:
        """Tile byte cap shrunk by the worst per-op transient multiplier.

        Ops run sequentially per tile, so the peak transient is the tile
        plus the hungriest op's scratch (masks, Fortran products) — not the
        sum over ops.  When prefetch will engage, the budget must also
        cover the whole double buffer — up to :data:`PREFETCH_DEPTH`
        queued copies plus the producer's in-flight tile plus the
        consumer's — so the tile shrinks by that factor too.  Shrinking
        keeps the whole pass inside the budget; results never depend on
        the tile size.
        """
        if self._tile_bytes is None:
            return None
        overhead = max((op.tile_overhead for op in self._ops), default=0)
        buffered = (PREFETCH_DEPTH + 2) if self._prefetch_intent() else 1
        return max(1, self._tile_bytes // ((1 + overhead) * buffered))

    def _tile_plan(self) -> Tuple[List[Tuple[slice, slice]], Tuple[int, int]]:
        """The ordered tile list and the (nominal) tile shape."""
        n_rows, n_cols = self.n_rows, self.n_cols
        if n_rows == 0 or n_cols == 0:
            return [], (0, 0)
        tile_bytes = self._op_tile_bytes()
        if self.orientation == "cols":
            if tile_bytes is None:
                col_chunk = n_cols
            else:
                col_chunk = max(1, tile_bytes // (self._itemsize * max(1, n_rows)))
            tiles = [
                (slice(0, n_rows), slice(c0, min(c0 + col_chunk, n_cols)))
                for c0 in range(0, n_cols, col_chunk)
            ]
            return tiles, (n_rows, col_chunk)
        row_chunk, col_chunk = _tile_shape(n_rows, n_cols, tile_bytes, self._itemsize)
        tiles = []
        for r0 in range(0, n_rows, row_chunk):
            r1 = min(r0 + row_chunk, n_rows)
            for c0 in range(0, n_cols, col_chunk):
                c1 = min(c0 + col_chunk, n_cols)
                tiles.append((slice(r0, r1), slice(c0, c1)))
        return tiles, (row_chunk, col_chunk)

    # -- op registration ----------------------------------------------

    def _register(self, op: Any) -> PlanHandle:
        if self._executed:
            raise RuntimeError("cannot add reductions to an executed plan")
        handle = PlanHandle(self, op)
        self._ops.append(op)
        self._handles.append(handle)
        return handle

    def add_max(self) -> PlanHandle:
        """Fused :func:`repro.metrics.blocked.reduce_max`."""
        return self._register(_MaxOp(self))

    def add_min_positive(self) -> PlanHandle:
        """Fused :func:`repro.metrics.blocked.reduce_min_positive`."""
        return self._register(_MinPositiveOp(self))

    def add_min_per_row(self) -> PlanHandle:
        """Fused :func:`repro.metrics.blocked.reduce_min_per_row`."""
        return self._register(_MinPerRowOp(self))

    def add_argmin_per_row(self) -> PlanHandle:
        """Fused :func:`repro.metrics.blocked.argmin_per_row`."""
        return self._register(_ArgminPerRowOp(self))

    def add_count_within(
        self,
        thresholds: Union[float, Sequence[float]],
        *,
        weights: Optional[np.ndarray] = None,
    ) -> PlanHandle:
        """Fused :func:`repro.metrics.blocked.count_within`, one or many thresholds.

        A scalar threshold yields a ``(n_cols,)`` result; a sequence of
        ``m`` thresholds yields ``(m, n_cols)`` — all ``m`` evaluated
        against each tile while it is hot, one matrix pass total.
        """
        return self._register(_CountWithinOp(self, thresholds, weights))

    # -- execution -----------------------------------------------------

    def _use_prefetch(self, n_tiles: int) -> bool:
        return n_tiles > 1 and self._prefetch_intent()

    def _load(self, rs: slice, cs: slice, force_copy: bool) -> np.ndarray:
        block = _get_block(self._source, self._row_idx[rs], self._col_idx[cs])
        if force_copy and is_memmap_backed(block):
            # Slicing a memmap yields a *lazy* view; an unconditional copy
            # in the producer thread makes the page-in happen there, not in
            # the consumer.  (np.ascontiguousarray would be a no-op for the
            # already-C-contiguous row tiles — it shares their memory.)
            block = np.array(block, order="C", copy=True)
        return block

    def execute(self) -> "ReductionPlan":
        """Stream the slab once, feeding every tile to every registered op."""
        if self._executed:
            raise RuntimeError("ReductionPlan.execute() may only be called once")
        self._executed = True
        collector = active_collector()
        tiles, (tile_rows, tile_cols) = self._tile_plan()
        use_prefetch = self._use_prefetch(len(tiles))
        if use_prefetch:
            iterator = iter(
                _TilePrefetcher(
                    lambda rs, cs: self._load(rs, cs, True), tiles,
                    collector=collector,
                )
            )
        else:
            iterator = ((rs, cs, self._load(rs, cs, False)) for rs, cs in tiles)

        cells = 0
        for rs, cs, block in iterator:
            cells += block.size
            for op in self._ops:
                op.update(rs, cs, block)

        slab_cells = self.n_rows * self.n_cols
        self.stats = PlanStats(
            n_tiles=len(tiles),
            tile_rows=tile_rows,
            tile_cols=tile_cols,
            orientation=self.orientation,
            cells=cells,
            bytes_streamed=cells * self._itemsize,
            passes=(cells / slab_cells) if slab_cells else 0.0,
            n_ops=len(self._ops),
            prefetch=use_prefetch,
        )
        if collector is not None:
            # First-class counters replacing the test suite's ad hoc
            # counting-source probes: any traced run can report pass counts
            # and streamed volume without wrapping its sources.
            collector.inc("plan.executions")
            collector.inc("plan.tiles", len(tiles))
            collector.inc("plan.cells", cells)
            collector.inc("plan.bytes_streamed", cells * self._itemsize)
            if use_prefetch:
                collector.inc("plan.prefetched_executions")
        for handle in self._handles:
            handle._finalize()
        return self


__all__ = [
    "CountingSource",
    "DEFAULT_CACHE_TARGET",
    "PREFETCH_DEPTH",
    "PlanHandle",
    "PlanStats",
    "PrefetchLike",
    "ReductionPlan",
    "effective_tile_bytes",
    "is_memmap_backed",
]
