"""Metric backed by an explicit pairwise distance matrix."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.metrics.base import MetricSpace


class MatrixMetric(MetricSpace):
    """A finite metric given by a dense, symmetric distance matrix.

    The constructor validates symmetry and zero diagonal; the (optional)
    triangle-inequality check is quadratic per point and therefore off by
    default, but exposed for tests.
    """

    def __init__(self, matrix: np.ndarray, *, words_per_point: int = 1, validate: bool = True):
        mat = np.asarray(matrix, dtype=float)
        if mat.ndim != 2 or mat.shape[0] != mat.shape[1]:
            raise ValueError(f"distance matrix must be square, got shape {mat.shape}")
        if validate:
            if not np.allclose(np.diag(mat), 0.0, atol=1e-9):
                raise ValueError("distance matrix must have zero diagonal")
            if not np.allclose(mat, mat.T, atol=1e-9):
                raise ValueError("distance matrix must be symmetric")
            if np.any(mat < -1e-12):
                raise ValueError("distances must be non-negative")
        self._matrix = np.maximum(mat, 0.0)
        self._words = int(words_per_point)

    def __len__(self) -> int:
        return self._matrix.shape[0]

    @property
    def matrix(self) -> np.ndarray:
        """The full distance matrix."""
        return self._matrix

    @property
    def words_per_point(self) -> int:
        return self._words

    def distance(self, i: int, j: int) -> float:
        return float(self._matrix[i, j])

    def pairwise(self, rows: Sequence[int], cols: Sequence[int]) -> np.ndarray:
        rows = np.asarray(rows, dtype=int)
        cols = np.asarray(cols, dtype=int)
        return self._matrix[np.ix_(rows, cols)]

    def full_matrix(self) -> np.ndarray:
        return self._matrix

    def check_triangle_inequality(self, atol: float = 1e-8) -> bool:
        """Exhaustively verify the triangle inequality (O(n^3); tests only)."""
        m = self._matrix
        n = m.shape[0]
        for mid in range(n):
            # d(i, j) <= d(i, mid) + d(mid, j) for all i, j
            if np.any(m > m[:, [mid]] + m[[mid], :] + atol):
                return False
        return True


__all__ = ["MatrixMetric"]
