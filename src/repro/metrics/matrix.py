"""Metric backed by an explicit pairwise distance matrix."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.metrics.base import MetricSpace
from repro.metrics.blocked import contiguous_slice


class MatrixMetric(MetricSpace):
    """A finite metric given by a dense, symmetric distance matrix.

    The constructor validates symmetry and zero diagonal; the (optional)
    triangle-inequality check is quadratic per point and therefore off by
    default, but exposed for tests.

    Aliasing contract: :meth:`full_matrix`, the :attr:`matrix` property and
    :meth:`pairwise` (for contiguous index ranges) return **read-only views**
    of the metric's own buffer — no ``n x n`` copy is ever made for them.
    The buffer is marked non-writable at construction, so accidental
    mutation through a view raises instead of silently corrupting the
    metric.  Callers that need a private writable copy must ``.copy()``.
    """

    def __init__(self, matrix: np.ndarray, *, words_per_point: int = 1, validate: bool = True):
        mat = np.asarray(matrix, dtype=float)
        if mat.ndim != 2 or mat.shape[0] != mat.shape[1]:
            raise ValueError(f"distance matrix must be square, got shape {mat.shape}")
        if validate:
            if not np.allclose(np.diag(mat), 0.0, atol=1e-9):
                raise ValueError("distance matrix must have zero diagonal")
            if not np.allclose(mat, mat.T, atol=1e-9):
                raise ValueError("distance matrix must be symmetric")
            if np.any(mat < -1e-12):
                raise ValueError("distances must be non-negative")
        self._matrix = np.maximum(mat, 0.0)
        self._matrix.setflags(write=False)
        self._words = int(words_per_point)

    def __len__(self) -> int:
        return self._matrix.shape[0]

    @property
    def matrix(self) -> np.ndarray:
        """The full distance matrix (read-only; aliases the metric's buffer)."""
        return self._matrix

    @property
    def words_per_point(self) -> int:
        return self._words

    def distance(self, i: int, j: int) -> float:
        return float(self._matrix[i, j])

    def pairwise(self, rows: Sequence[int], cols: Sequence[int]) -> np.ndarray:
        rows = np.asarray(rows, dtype=int)
        cols = np.asarray(cols, dtype=int)
        # Contiguous ranges — the shape blocked tiles take — are served as
        # zero-copy (read-only) views of the stored matrix.
        row_rng, col_rng = contiguous_slice(rows), contiguous_slice(cols)
        if row_rng is not None and col_rng is not None:
            return self._matrix[row_rng, col_rng]
        if row_rng is not None:
            return self._matrix[row_rng][:, cols]
        return self._matrix[np.ix_(rows, cols)]

    def full_matrix(self) -> np.ndarray:
        """The whole matrix as a read-only view (no copy; see the class docstring)."""
        return self._matrix

    def check_triangle_inequality(self, atol: float = 1e-8) -> bool:
        """Exhaustively verify the triangle inequality (O(n^3); tests only)."""
        m = self._matrix
        n = m.shape[0]
        for mid in range(n):
            # d(i, j) <= d(i, mid) + d(mid, j) for all i, j
            if np.any(m > m[:, [mid]] + m[[mid], :] + atol):
                return False
        return True


__all__ = ["MatrixMetric"]
