"""Blocked, memory-budgeted evaluation over metric spaces and cost matrices.

The coordinator-model algorithms only ever need *blocks* of the distance
function — a max here, a per-row argmin there — yet the natural numpy
phrasing materialises full ``n x n`` arrays, which OOMs large shards long
before the algorithms' communication bounds matter.  This module is the
streaming layer that fixes that:

* :func:`iter_blocks` — tile a ``rows x cols`` slab of any *block source*
  (a :class:`~repro.metrics.base.MetricSpace`-like object with ``pairwise``,
  or an explicit 2-D array) into tiles of at most ``memory_budget`` bytes;
* blocked reductions — :func:`reduce_max`, :func:`reduce_min_positive`,
  :func:`reduce_min_per_row`, :func:`argmin_per_row`, :func:`count_within` —
  which never hold more than one tile;
* :func:`materialize_rows` / :func:`materialize` — build a cost matrix in
  row blocks, spilling to a disk-backed :class:`MemmapCostShard` when the
  result itself would not fit the budget.

Bit-identical semantics
-----------------------
Every function here is required to return *bitwise* the same result for any
``memory_budget`` (including ``None`` — one tile covering everything).  The
reductions achieve this structurally: ``min``/``max``/``argmin`` commute with
tiling exactly, :func:`count_within` sums each column over all rows in a
single ``np.add.reduce`` (columns are tiled, the reduction axis never is),
and the materialisers tile rows only, so every row is produced by the same
call shape.  The remaining obligation falls on block sources: ``pairwise``
must be *tiling-invariant* (a sub-block equals the corresponding slice of the
full block, bit for bit).  Index-backed metrics are invariant for free;
:class:`~repro.metrics.euclidean.EuclideanMetric` uses a shape-independent
per-dimension kernel for exactly this reason.

Memory budgets
--------------
A budget is ``None`` (no tiling — the legacy dense behaviour), a number of
bytes, or a string like ``"64MB"`` (binary units: KB = 2**10, MB = 2**20,
GB = 2**30).  Budgets bound the *transient* tile, not O(1) per-row/column
state; a budget smaller than one row still works (the tile degenerates to a
single row, or to a column sliver for the 2-D tilers) and still returns
bit-identical results.

Shard handles
-------------
:class:`MemmapCostShard` streams a site's cost matrix from an ``np.memmap``
instead of RAM.  It pickles as a *handle* (path + shape + dtype, never the
data), so a shard created by a worker process crosses the
:mod:`repro.runtime` boundary for the price of a filename.  File lifetime
belongs to whoever owns the directory the shard lives in: the protocol
drivers create a scratch directory per run and remove it when the run
completes; direct callers should pass ``workdir=`` and clean up themselves.
"""

from __future__ import annotations

import atexit
import os
import shutil
import tempfile
import uuid
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Optional, Sequence, Tuple, Union

import numpy as np

from repro.obs.trace import active_collector

#: Budget used by always-blocked pure reductions (e.g. ``MetricSpace.diameter``)
#: when the caller does not specify one.  64 MiB keeps tiles comfortably in
#: cache-friendly territory while staying far below any dense ``n x n``.
DEFAULT_REDUCTION_BUDGET = 64 * 2**20

_UNIT_SUFFIXES = {
    "B": 1,
    "KB": 2**10,
    "KIB": 2**10,
    "MB": 2**20,
    "MIB": 2**20,
    "GB": 2**30,
    "GIB": 2**30,
}

MemoryBudgetLike = Union[None, int, float, str]


def resolve_memory_budget(budget: MemoryBudgetLike) -> Optional[int]:
    """Normalise a memory budget to bytes (``None`` means unbudgeted/dense).

    Accepts ``None``, a number of bytes, or a string with a binary unit
    suffix: ``"4096"``, ``"256KB"``, ``"64MB"``, ``"2GB"``.
    """
    if budget is None:
        return None
    if isinstance(budget, str):
        text = budget.strip().upper().replace(" ", "")
        for suffix in sorted(_UNIT_SUFFIXES, key=len, reverse=True):
            if text.endswith(suffix):
                number = text[: -len(suffix)]
                break
        else:
            suffix, number = "B", text
        try:
            value = float(number)
        except ValueError as exc:
            raise ValueError(f"cannot parse memory budget {budget!r}") from exc
        value *= _UNIT_SUFFIXES[suffix]
    else:
        value = float(budget)
    if value < 1:
        raise ValueError(f"memory budget must be at least 1 byte, got {budget!r}")
    return int(value)


def contiguous_slice(indices: np.ndarray) -> Optional[slice]:
    """The equivalent ``slice`` when ``indices`` is a contiguous ascending run.

    Lets index-backed sources hand out *views* instead of gather copies (see
    the aliasing contracts of :class:`~repro.metrics.matrix.MatrixMetric`).
    Returns ``None`` when the indices are not of the form ``a, a+1, ..., b``.
    """
    indices = np.asarray(indices)
    if indices.ndim != 1 or indices.size == 0:
        return None
    start = int(indices[0])
    stop = int(indices[-1]) + 1
    if start < 0 or stop - start != indices.size:
        # Python-style negative indices cannot be served as a plain slice
        # (slice(-1, 0) is empty); let callers fall back to fancy indexing.
        return None
    if indices.size > 1 and not np.array_equal(
        indices, np.arange(start, stop, dtype=indices.dtype)
    ):
        return None
    return slice(start, stop)


def _source_shape(source: Any) -> Tuple[int, int]:
    if isinstance(source, np.ndarray):
        if source.ndim != 2:
            raise ValueError(f"array block source must be 2-D, got shape {source.shape}")
        return source.shape
    if hasattr(source, "get_block"):
        shape = tuple(source.shape)
        if len(shape) != 2:
            raise ValueError(f"block source must be 2-D, got shape {shape}")
        return int(shape[0]), int(shape[1])
    n = len(source)
    return n, n


def _resolve_axis(source: Any, indices, axis_len: int) -> np.ndarray:
    if indices is None:
        return np.arange(axis_len)
    return np.asarray(indices, dtype=int)


def _get_block(source: Any, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """One tile of the source: ``pairwise`` for metrics, slicing for arrays.

    Besides arrays and metrics, any object exposing ``shape`` and
    ``get_block(rows, cols)`` works as an *explicit block source* — the
    test-suite's counting wrappers use this to assert tile-load counts.
    """
    if isinstance(source, np.ndarray):
        rs, cs = contiguous_slice(rows), contiguous_slice(cols)
        if rs is not None and cs is not None:
            return source[rs, cs]
        if rs is not None:
            return source[rs][:, cols]
        # Scattered rows: gather exactly the requested cells.  (A chained
        # ``source[rows][:, cols]`` would copy ALL columns of the rows once
        # per tile — quadratic traffic for the row-subset gain downdates.)
        return source[np.ix_(rows, cols)]
    if hasattr(source, "get_block"):
        return np.asarray(source.get_block(rows, cols))
    return np.asarray(source.pairwise(rows, cols))


def read_block(source: Any, rows: Sequence[int], cols: Sequence[int]) -> np.ndarray:
    """Public one-shot block read through the block-source dispatch."""
    return _get_block(
        source, np.asarray(rows, dtype=int), np.asarray(cols, dtype=int)
    )


def as_block_source(source: Any, *, dtype: Optional[str] = "float64") -> Any:
    """Normalise a cost-matrix argument into a 2-D block source.

    Objects exposing ``shape`` + ``get_block`` (explicit block sources, e.g.
    counting wrappers) pass through untouched.  Arrays — including memmaps —
    pass through when already 2-D of ``dtype`` (so a disk-backed matrix
    stays lazy) and are coerced otherwise; ``dtype=None`` skips the dtype
    coercion entirely.
    """
    if not isinstance(source, np.ndarray) and hasattr(source, "get_block"):
        shape = tuple(source.shape)
        if len(shape) != 2:
            raise ValueError(f"block source must be 2-D, got shape {shape}")
        return source
    if isinstance(source, np.ndarray) and (
        dtype is None or source.dtype == np.dtype(dtype)
    ):
        arr = source
    else:
        arr = np.asarray(source, dtype=dtype)
    if arr.ndim != 2:
        raise ValueError(f"block source must be 2-D, got shape {arr.shape}")
    return arr


def _tile_shape(n_rows: int, n_cols: int, budget: Optional[int], itemsize: int) -> Tuple[int, int]:
    """Largest ``(row_chunk, col_chunk)`` whose tile fits the budget.

    Prefers whole rows (row blocks); only when the budget cannot hold a single
    row does the tile degenerate to one row of a column sliver.
    """
    if budget is None:
        return n_rows, n_cols
    max_cells = max(1, budget // itemsize)
    if n_cols <= max_cells:
        return max(1, min(n_rows, max_cells // n_cols)), n_cols
    return 1, int(max_cells)


def iter_blocks(
    source: Any,
    rows: Optional[Sequence[int]] = None,
    cols: Optional[Sequence[int]] = None,
    *,
    memory_budget: MemoryBudgetLike = None,
    itemsize: int = 8,
) -> Iterator[Tuple[slice, slice, np.ndarray]]:
    """Tile ``rows x cols`` of a block source under a memory budget.

    Yields ``(row_slice, col_slice, block)`` where the slices index into the
    *given* ``rows`` / ``cols`` sequences (or ``range(len(source))`` when
    omitted) and ``block`` is the corresponding tile of distances/costs, at
    most ``memory_budget`` bytes large.  ``memory_budget=None`` yields a
    single tile — the legacy dense evaluation.
    """
    n_rows_total, n_cols_total = _source_shape(source)
    row_idx = _resolve_axis(source, rows, n_rows_total)
    col_idx = _resolve_axis(source, cols, n_cols_total)
    if row_idx.size == 0 or col_idx.size == 0:
        return  # an empty slab has no tiles (reductions fall back to their defaults)
    budget = resolve_memory_budget(memory_budget)
    row_chunk, col_chunk = _tile_shape(row_idx.size, col_idx.size, budget, itemsize)
    for r0 in range(0, row_idx.size, row_chunk):
        r1 = min(r0 + row_chunk, row_idx.size)
        for c0 in range(0, col_idx.size, col_chunk):
            c1 = min(c0 + col_chunk, col_idx.size)
            block = _get_block(source, row_idx[r0:r1], col_idx[c0:c1])
            yield slice(r0, r1), slice(c0, c1), block


# ----------------------------------------------------------------------
# Blocked reductions — thin wrappers over single-op ReductionPlans.
#
# The plan executor (repro.metrics.plan) owns the tiling: under a budget
# the tile is additionally clamped to a cache target, and memmap-backed
# sources are double-buffered by a background prefetch thread
# (``prefetch=None`` means auto).  All of that is invisible in the
# results: every reduction is bitwise identical for every budget, tile
# shape and prefetch setting, exactly as before.
# ----------------------------------------------------------------------


def _single_op_plan(
    source: Any,
    rows,
    cols,
    memory_budget: MemoryBudgetLike,
    prefetch,
):
    # Imported lazily: plan.py imports this module's tiling helpers at load
    # time, so the reverse import must wait until both are initialised.
    from repro.metrics.plan import DEFAULT_CACHE_TARGET, ReductionPlan

    budget = resolve_memory_budget(memory_budget)
    # ``None`` keeps the documented legacy behaviour (one dense tile);
    # budgeted calls get cache-aware tiles.
    cache_target = DEFAULT_CACHE_TARGET if budget is not None else None
    return ReductionPlan(
        source, rows, cols,
        memory_budget=budget, cache_target=cache_target, prefetch=prefetch,
    )


def reduce_max(
    source: Any,
    rows: Optional[Sequence[int]] = None,
    cols: Optional[Sequence[int]] = None,
    *,
    memory_budget: MemoryBudgetLike = None,
    prefetch: Optional[bool] = None,
) -> float:
    """Maximum over the ``rows x cols`` slab (0.0 when the slab is empty)."""
    plan = _single_op_plan(source, rows, cols, memory_budget, prefetch)
    handle = plan.add_max()
    plan.execute()
    return handle.value


def reduce_min_positive(
    source: Any,
    rows: Optional[Sequence[int]] = None,
    cols: Optional[Sequence[int]] = None,
    *,
    memory_budget: MemoryBudgetLike = None,
    prefetch: Optional[bool] = None,
) -> float:
    """Minimum strictly positive entry of the slab (0.0 when there is none)."""
    plan = _single_op_plan(source, rows, cols, memory_budget, prefetch)
    handle = plan.add_min_positive()
    plan.execute()
    return handle.value


def reduce_min_per_row(
    source: Any,
    rows: Optional[Sequence[int]] = None,
    cols: Optional[Sequence[int]] = None,
    *,
    memory_budget: MemoryBudgetLike = None,
    prefetch: Optional[bool] = None,
) -> np.ndarray:
    """Per-row minimum over the columns, as a ``(n_rows,)`` array."""
    plan = _single_op_plan(source, rows, cols, memory_budget, prefetch)
    handle = plan.add_min_per_row()
    plan.execute()
    return handle.value


def argmin_per_row(
    source: Any,
    rows: Optional[Sequence[int]] = None,
    cols: Optional[Sequence[int]] = None,
    *,
    memory_budget: MemoryBudgetLike = None,
    prefetch: Optional[bool] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-row ``(min value, argmin column position)`` over the columns.

    Positions index into ``cols`` (or ``range(n)``), and ties resolve to the
    first occurrence — exactly ``np.argmin`` semantics — because column tiles
    are scanned left to right and only a *strictly* smaller value displaces
    the incumbent.
    """
    plan = _single_op_plan(source, rows, cols, memory_budget, prefetch)
    handle = plan.add_argmin_per_row()
    plan.execute()
    return handle.value


def count_within(
    source: Any,
    threshold: float,
    rows: Optional[Sequence[int]] = None,
    cols: Optional[Sequence[int]] = None,
    *,
    weights: Optional[np.ndarray] = None,
    memory_budget: MemoryBudgetLike = None,
    prefetch: Optional[bool] = None,
) -> np.ndarray:
    """Per-column (weighted) count of entries ``<= threshold``.

    Tiles *columns only* (the plan's column-strip orientation), and reduces
    a Fortran-ordered product so every column is summed over a contiguous
    run of all rows: the accumulation order per column never depends on the
    budget and the result is bit-identical across budgets (BLAS
    ``weights @ mask`` is not — its reduction blocking varies with the
    panel shape, and even numpy's pairwise summation takes a different path
    for strided columns).  Transient memory is ``O(n_rows * col_chunk)``.
    """
    plan = _single_op_plan(source, rows, cols, memory_budget, prefetch)
    handle = plan.add_count_within(threshold, weights=weights)
    plan.execute()
    return handle.value


# ----------------------------------------------------------------------
# Materialisation (with disk spill)
# ----------------------------------------------------------------------


class MemmapCostShard:
    """A cost matrix streamed from a disk-backed ``np.memmap``.

    The shard object is a cheap *handle*: it pickles as ``(path, shape,
    dtype)`` — never the data — so it can cross the
    :mod:`repro.runtime` process boundary as part of a site's state for the
    price of a filename (both sides of a :class:`ProcessPoolBackend` see the
    same local filesystem).  :attr:`matrix` opens the file read-only; writers
    go through :meth:`create` / :meth:`write_rows` / :meth:`finalize`.

    The shard never deletes its file: lifetime belongs to the owner of the
    directory it lives in (the protocol drivers use a scratch directory per
    run, removed when the run completes).
    """

    def __init__(self, path: str, shape: Tuple[int, int], dtype: str = "float64"):
        self.path = str(path)
        self.shape = (int(shape[0]), int(shape[1]))
        self.dtype = str(np.dtype(dtype))
        self._readonly: Optional[np.memmap] = None
        self._writable: Optional[np.memmap] = None

    @classmethod
    def create(
        cls,
        shape: Tuple[int, int],
        *,
        workdir: Optional[str] = None,
        dtype: str = "float64",
    ) -> "MemmapCostShard":
        """Allocate a writable shard file in ``workdir`` (or the system tempdir)."""
        directory = workdir or tempfile.gettempdir()
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"cost-shard-{uuid.uuid4().hex}.npy")
        shard = cls(path, shape, dtype)
        shard._writable = np.memmap(path, dtype=shard.dtype, mode="w+", shape=shard.shape)
        return shard

    def write_rows(self, row_slice: slice, values: np.ndarray) -> None:
        """Fill a row block of a shard opened with :meth:`create`."""
        if self._writable is None:
            raise RuntimeError("shard is not open for writing (use MemmapCostShard.create)")
        self._writable[row_slice] = values

    def finalize(self) -> np.memmap:
        """Flush writes and reopen the shard read-only; returns :attr:`matrix`."""
        if self._writable is not None:
            self._writable.flush()
            self._writable = None
        return self.matrix

    @property
    def matrix(self) -> np.memmap:
        """The cost matrix as a read-only, lazily-paged ``np.memmap``."""
        if self._readonly is None:
            self._readonly = np.memmap(self.path, dtype=self.dtype, mode="r", shape=self.shape)
        return self._readonly

    @property
    def nbytes(self) -> int:
        """Size of the full matrix on disk."""
        return self.shape[0] * self.shape[1] * np.dtype(self.dtype).itemsize

    def unlink(self) -> None:
        """Delete the backing file (only the directory owner should call this)."""
        self._readonly = None
        self._writable = None
        try:
            os.unlink(self.path)
        except OSError:
            pass

    def __reduce__(self):
        # Handle-only pickling: a shard crossing a transport/process boundary
        # costs a filename, not an n x n payload.
        return (MemmapCostShard, (self.path, self.shape, self.dtype))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MemmapCostShard(path={self.path!r}, shape={self.shape})"


_TRANSPORT_SPILL_DIR: Optional[str] = None


def transport_spill_dir() -> str:
    """Process-lifetime scratch directory for transport-time shard spills.

    Objects that convert a dense matrix into a :class:`MemmapCostShard`
    handle while being *pickled* (e.g. ``SitePreclustering.__getstate__``)
    have no protocol-run scratch directory in scope — pickling can happen
    anywhere.  They spill here instead: one lazily created directory per
    process, removed at interpreter exit.  Both sides of every runtime
    backend share the local filesystem, and memmaps opened before the
    removal stay readable on POSIX (the inode lives until unmapped).
    """
    global _TRANSPORT_SPILL_DIR
    if _TRANSPORT_SPILL_DIR is None:
        _TRANSPORT_SPILL_DIR = tempfile.mkdtemp(prefix="repro-transport-spill-")
        atexit.register(shutil.rmtree, _TRANSPORT_SPILL_DIR, ignore_errors=True)
    return _TRANSPORT_SPILL_DIR


@contextmanager
def shard_scratch(memory_budget: Optional[int]) -> Iterator[Optional[str]]:
    """Per-run scratch directory for spilled cost shards.

    Yields ``None`` when no budget is set (nothing will spill), otherwise a
    fresh temporary directory that is removed — shards and all — when the
    block exits.  Memmaps opened from the directory stay readable after the
    removal on POSIX (the inode lives until unmapped), so cleanup is safe
    even while results are still being assembled.
    """
    workdir = tempfile.mkdtemp(prefix="repro-shards-") if memory_budget is not None else None
    try:
        yield workdir
    finally:
        if workdir is not None:
            shutil.rmtree(workdir, ignore_errors=True)


def memmap_handle(array: np.ndarray) -> Optional[Tuple[str, Tuple[int, int], str]]:
    """The ``(path, shape, dtype)`` handle behind a memmap-backed array, if any.

    Only *whole-file* mappings are representable as a handle: for a sliced or
    otherwise offset view of a memmap the function returns ``None`` (instead
    of a handle that would silently reopen the wrong rows), so callers fall
    back to pickling the data itself.
    """
    candidate = array
    while candidate is not None:
        if isinstance(candidate, np.memmap) and isinstance(candidate.filename, str):
            # Reopening by (path, shape, dtype) reproduces the array iff it
            # is a contiguous map of the entire file from byte 0: a sliced
            # view has fewer bytes than the file and is rejected.
            try:
                file_size = os.path.getsize(candidate.filename)
            except OSError:
                return None
            if not array.flags["C_CONTIGUOUS"] or array.nbytes != file_size:
                return None
            return candidate.filename, tuple(array.shape), str(array.dtype)
        candidate = getattr(candidate, "base", None)
    return None


def open_memmap(path: str, shape: Tuple[int, int], dtype: str = "float64") -> np.memmap:
    """Reopen a shard file read-only (the inverse of :func:`memmap_handle`)."""
    return MemmapCostShard(path, shape, dtype).matrix


def materialize_rows(
    block_fn: Callable[[slice], np.ndarray],
    n_rows: int,
    n_cols: int,
    *,
    memory_budget: MemoryBudgetLike = None,
    workdir: Optional[str] = None,
    dtype: str = "float64",
) -> np.ndarray:
    """Build an ``(n_rows, n_cols)`` matrix from row blocks under a budget.

    ``block_fn(row_slice)`` must return the rows ``row_slice`` of the result;
    it is the caller's tiling-invariant kernel (every row is produced with
    the same column width regardless of budget, so results are bit-identical
    across budgets).  With ``memory_budget=None`` the matrix is built in one
    call and returned as a plain array.  With a budget, rows are produced in
    blocks of at most ``memory_budget`` bytes (never less than one row) and —
    when the *result itself* exceeds the budget — streamed into a
    :class:`MemmapCostShard`, whose read-only memmap is returned.
    """
    budget = resolve_memory_budget(memory_budget)
    if budget is None:
        out = np.asarray(block_fn(slice(0, n_rows)), dtype=dtype)
        if out.shape != (n_rows, n_cols):
            raise ValueError(f"block_fn returned shape {out.shape}, expected {(n_rows, n_cols)}")
        return out
    itemsize = np.dtype(dtype).itemsize
    row_bytes = max(1, n_cols * itemsize)
    row_chunk = max(1, budget // row_bytes)
    total_bytes = n_rows * n_cols * itemsize
    shard = None
    if total_bytes > budget:
        shard = MemmapCostShard.create((n_rows, n_cols), workdir=workdir, dtype=dtype)
        collector = active_collector()
        if collector is not None:
            collector.inc("blocked.spills")
            collector.inc("blocked.spill_bytes", total_bytes)
    else:
        out = np.empty((n_rows, n_cols), dtype=dtype)
    for r0 in range(0, n_rows, row_chunk):
        rs = slice(r0, min(r0 + row_chunk, n_rows))
        block = block_fn(rs)
        if shard is not None:
            shard.write_rows(rs, block)
        else:
            out[rs] = block
    if shard is not None:
        return shard.finalize()
    return out


def materialize(
    source: Any,
    rows: Optional[Sequence[int]] = None,
    cols: Optional[Sequence[int]] = None,
    *,
    transform: Optional[Callable[[np.ndarray, slice], np.ndarray]] = None,
    memory_budget: MemoryBudgetLike = None,
    workdir: Optional[str] = None,
) -> np.ndarray:
    """Materialise ``rows x cols`` of a block source, spilling to disk on demand.

    ``transform(block, row_slice)`` — applied to each row block before it is
    stored — must be elementwise/row-local (e.g. squaring for the means
    objective, adding per-row collapse offsets) so the result stays
    bit-identical across budgets.
    """
    n_rows_total, n_cols_total = _source_shape(source)
    row_idx = _resolve_axis(source, rows, n_rows_total)
    col_idx = _resolve_axis(source, cols, n_cols_total)

    def block_fn(rs: slice) -> np.ndarray:
        block = _get_block(source, row_idx[rs], col_idx)
        if transform is not None:
            block = transform(block, rs)
        return block

    return materialize_rows(
        block_fn,
        row_idx.size,
        col_idx.size,
        memory_budget=memory_budget,
        workdir=workdir,
    )


__all__ = [
    "DEFAULT_REDUCTION_BUDGET",
    "MemoryBudgetLike",
    "MemmapCostShard",
    "argmin_per_row",
    "as_block_source",
    "contiguous_slice",
    "count_within",
    "iter_blocks",
    "materialize",
    "materialize_rows",
    "memmap_handle",
    "open_memmap",
    "read_block",
    "reduce_max",
    "reduce_min_per_row",
    "reduce_min_positive",
    "resolve_memory_budget",
    "shard_scratch",
    "transport_spill_dir",
]
