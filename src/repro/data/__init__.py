"""Synthetic workload generators.

The paper's algorithms are evaluated on point sets with planted cluster
structure and planted outliers (the regime the partial objectives are
designed for), plus uncertain-node workloads for Section 5.  All generators
return both the data and the ground-truth labels so the analysis layer can
report outlier-recovery statistics in addition to objective values.
"""

from repro.data.gaussian import (
    GaussianWorkload,
    gaussian_mixture_with_outliers,
)
from repro.data.structured import (
    rings_with_outliers,
    grid_with_outliers,
    powerlaw_clusters_with_outliers,
)
from repro.data.uncertain_workloads import (
    UncertainWorkload,
    uncertain_nodes_from_mixture,
    uncertain_nodes_heavy_tailed,
)

__all__ = [
    "GaussianWorkload",
    "gaussian_mixture_with_outliers",
    "rings_with_outliers",
    "grid_with_outliers",
    "powerlaw_clusters_with_outliers",
    "UncertainWorkload",
    "uncertain_nodes_from_mixture",
    "uncertain_nodes_heavy_tailed",
]
