"""Synthetic uncertain-node workloads (Section 5 experiments).

Each workload consists of a ground point set ``P`` (a Euclidean point cloud)
and a collection of uncertain nodes.  Regular nodes are distributions
concentrated around a true cluster location (e.g. a sensor with measurement
noise); outlier nodes are either centred far away or are high-entropy
distributions spread over distant regions — the kind of node the partial
objective should discard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.data.gaussian import gaussian_mixture_with_outliers
from repro.metrics.euclidean import EuclideanMetric
from repro.uncertain.instance import UncertainInstance
from repro.uncertain.nodes import UncertainNode
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class UncertainWorkload:
    """A generated uncertain instance with ground truth.

    Attributes
    ----------
    instance:
        The :class:`UncertainInstance` (ground metric + nodes).
    node_labels:
        Cluster id per node, ``-1`` for planted outlier nodes.
    """

    instance: UncertainInstance
    node_labels: np.ndarray

    @property
    def n_outlier_nodes(self) -> int:
        """Number of planted outlier nodes."""
        return int(np.sum(self.node_labels < 0))


def _support_near(
    generator: np.random.Generator,
    ground_points: np.ndarray,
    location: np.ndarray,
    support_size: int,
    spread: float,
) -> np.ndarray:
    """Indices of the ground points nearest to random perturbations of ``location``."""
    targets = location + generator.normal(0.0, spread, size=(support_size, ground_points.shape[1]))
    d = (
        np.einsum("ij,ij->i", targets, targets)[:, None]
        + np.einsum("ij,ij->i", ground_points, ground_points)[None, :]
        - 2.0 * targets @ ground_points.T
    )
    idx = np.argmin(d, axis=1)
    return np.unique(idx)


def uncertain_nodes_from_mixture(
    n_nodes: int,
    n_outlier_nodes: int,
    n_clusters: int,
    *,
    ground_size: int = 300,
    support_size: int = 6,
    dim: int = 2,
    separation: float = 10.0,
    cluster_std: float = 1.0,
    node_noise: float = 0.5,
    outlier_noise: float = 6.0,
    rng: RngLike = None,
) -> UncertainWorkload:
    """Uncertain nodes centred on a Gaussian mixture.

    The ground set ``P`` is itself a mixture sample (plus scattered points so
    outlier nodes have support), and each node's distribution is supported on
    the ground points nearest to noisy copies of its true location.
    """
    if n_nodes < n_clusters:
        raise ValueError(f"need at least {n_clusters} nodes, got {n_nodes}")
    generator = ensure_rng(rng)
    ground = gaussian_mixture_with_outliers(
        n_inliers=int(ground_size * 0.8),
        n_outliers=ground_size - int(ground_size * 0.8),
        n_clusters=n_clusters,
        dim=dim,
        separation=separation,
        cluster_std=cluster_std,
        rng=generator,
    )
    metric = EuclideanMetric(ground.points)
    ground_points = ground.points
    centers = ground.centers

    nodes: List[UncertainNode] = []
    labels: List[int] = []

    box = separation * n_clusters
    for j in range(n_nodes):
        cluster = int(generator.integers(0, n_clusters))
        location = centers[cluster] + generator.normal(0.0, cluster_std, size=dim)
        support = _support_near(generator, ground_points, location, support_size, node_noise)
        probs = generator.dirichlet(np.full(support.size, 2.0))
        nodes.append(UncertainNode(support=support, probabilities=probs, name=f"node-{j}"))
        labels.append(cluster)

    for j in range(n_outlier_nodes):
        location = generator.uniform(-0.5 * box, 1.5 * box, size=dim)
        support = _support_near(
            generator, ground_points, location, support_size, outlier_noise
        )
        probs = generator.dirichlet(np.full(support.size, 1.0))
        nodes.append(
            UncertainNode(support=support, probabilities=probs, name=f"outlier-node-{j}")
        )
        labels.append(-1)

    perm = generator.permutation(len(nodes))
    instance = UncertainInstance(
        ground_metric=metric,
        nodes=[nodes[i] for i in perm],
        metadata={"generator": "uncertain_nodes_from_mixture"},
    )
    return UncertainWorkload(instance=instance, node_labels=np.asarray(labels)[perm])


def uncertain_nodes_heavy_tailed(
    n_nodes: int,
    n_clusters: int,
    *,
    ground_size: int = 300,
    support_size: int = 8,
    contamination: float = 0.1,
    dim: int = 2,
    separation: float = 10.0,
    rng: RngLike = None,
) -> UncertainWorkload:
    """Nodes whose distributions mix a concentrated component with a far-away one.

    Every node places probability ``1 - contamination`` near its true cluster
    and ``contamination`` on uniformly random ground points, modelling heavy-
    tailed measurement error rather than wholly outlying nodes.
    """
    if not (0.0 <= contamination < 1.0):
        raise ValueError(f"contamination must be in [0, 1), got {contamination}")
    generator = ensure_rng(rng)
    base = uncertain_nodes_from_mixture(
        n_nodes,
        0,
        n_clusters,
        ground_size=ground_size,
        support_size=max(2, support_size - 2),
        dim=dim,
        separation=separation,
        rng=generator,
    )
    metric = base.instance.ground_metric
    n_ground = len(metric)
    nodes: List[UncertainNode] = []
    for node in base.instance.nodes:
        extra = generator.choice(n_ground, size=2, replace=False)
        support = np.unique(np.concatenate([node.support, extra]))
        probs = np.zeros(support.size, dtype=float)
        base_pos = np.searchsorted(support, node.support)
        probs[base_pos] = (1.0 - contamination) * node.probabilities
        extra_pos = np.searchsorted(support, np.setdiff1d(support, node.support))
        if extra_pos.size:
            probs[extra_pos] += contamination / extra_pos.size
        else:
            probs = probs / probs.sum()
        nodes.append(UncertainNode(support=support, probabilities=probs, name=node.name))
    instance = UncertainInstance(
        ground_metric=metric,
        nodes=nodes,
        metadata={"generator": "uncertain_nodes_heavy_tailed", "contamination": contamination},
    )
    return UncertainWorkload(instance=instance, node_labels=base.node_labels)


__all__ = [
    "UncertainWorkload",
    "uncertain_nodes_from_mixture",
    "uncertain_nodes_heavy_tailed",
]
