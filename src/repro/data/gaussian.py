"""Gaussian mixture workloads with planted outliers.

This is the canonical workload for every Table 1 / Table 2 benchmark: ``k``
well-separated Gaussian clusters plus a small fraction of far-away outliers.
Partial clustering exists precisely because those outliers would otherwise
dominate the median/means objective or blow up the center radius.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.metrics.euclidean import EuclideanMetric
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class GaussianWorkload:
    """A generated point cloud with ground truth.

    Attributes
    ----------
    points:
        ``(n, d)`` coordinates; inliers first is *not* guaranteed — points are
        shuffled so that partitioners see no ordering artefacts.
    labels:
        Cluster id per point, ``-1`` for planted outliers.
    centers:
        ``(k, d)`` true mixture centers.
    """

    points: np.ndarray
    labels: np.ndarray
    centers: np.ndarray

    @property
    def n_points(self) -> int:
        """Total number of points."""
        return int(self.points.shape[0])

    @property
    def n_outliers(self) -> int:
        """Number of planted outliers."""
        return int(np.sum(self.labels < 0))

    @property
    def outlier_mask(self) -> np.ndarray:
        """Boolean mask marking the planted outliers."""
        return self.labels < 0

    def to_metric(self) -> EuclideanMetric:
        """Euclidean metric over the generated points."""
        return EuclideanMetric(self.points)


def gaussian_mixture_with_outliers(
    n_inliers: int,
    n_outliers: int,
    n_clusters: int,
    dim: int = 2,
    *,
    separation: float = 10.0,
    cluster_std: float = 1.0,
    outlier_spread: float = 8.0,
    cluster_weights: Optional[Sequence[float]] = None,
    rng: RngLike = None,
) -> GaussianWorkload:
    """Sample a Gaussian mixture with uniformly scattered far-away outliers.

    Parameters
    ----------
    n_inliers:
        Number of points drawn from the mixture.
    n_outliers:
        Number of planted outliers scattered uniformly in a box
        ``outlier_spread`` times larger than the cluster bounding box.
    n_clusters:
        Number of mixture components ``k``.
    dim:
        Ambient dimension.
    separation:
        Component centers are drawn uniformly in ``[0, separation * k]^dim``,
        so larger values give better-separated clusters.
    cluster_std:
        Isotropic standard deviation of each component.
    outlier_spread:
        How far outside the cluster region the outliers may fall (multiplier
        on the cluster bounding box).
    cluster_weights:
        Relative component sizes (default: balanced).
    rng:
        Seed or generator.
    """
    if n_inliers < n_clusters:
        raise ValueError(f"need at least {n_clusters} inliers, got {n_inliers}")
    if n_outliers < 0:
        raise ValueError(f"n_outliers must be non-negative, got {n_outliers}")
    if n_clusters < 1:
        raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
    generator = ensure_rng(rng)

    box = separation * n_clusters
    centers = generator.uniform(0.0, box, size=(n_clusters, dim))

    if cluster_weights is None:
        weights = np.full(n_clusters, 1.0 / n_clusters)
    else:
        weights = np.asarray(cluster_weights, dtype=float)
        if weights.shape != (n_clusters,) or np.any(weights <= 0):
            raise ValueError("cluster_weights must be positive and one per cluster")
        weights = weights / weights.sum()

    assignments = generator.choice(n_clusters, size=n_inliers, p=weights)
    # Guarantee every cluster receives at least one point.
    for c in range(n_clusters):
        if not np.any(assignments == c):
            assignments[generator.integers(0, n_inliers)] = c
    inliers = centers[assignments] + generator.normal(0.0, cluster_std, size=(n_inliers, dim))

    low = -outlier_spread * 0.5 * box
    high = box + outlier_spread * 0.5 * box
    outliers = generator.uniform(low, high, size=(n_outliers, dim))

    points = np.vstack([inliers, outliers]) if n_outliers else inliers
    labels = np.concatenate([assignments, np.full(n_outliers, -1, dtype=int)])

    perm = generator.permutation(points.shape[0])
    return GaussianWorkload(points=points[perm], labels=labels[perm], centers=centers)


__all__ = ["GaussianWorkload", "gaussian_mixture_with_outliers"]
