"""Structured (non-Gaussian) workloads.

These stress the algorithms on shapes where the mean is a poor summary
(rings), where many near-ties exist (grids), and where cluster sizes are
heavily skewed (power-law), all with planted outliers.  They reuse the
:class:`repro.data.gaussian.GaussianWorkload` container since the ground
truth has the same shape (labels with ``-1`` for outliers).
"""

from __future__ import annotations

import numpy as np

from repro.data.gaussian import GaussianWorkload
from repro.utils.rng import RngLike, ensure_rng


def _scatter_outliers(
    generator: np.random.Generator, points: np.ndarray, n_outliers: int, spread: float
) -> np.ndarray:
    """Uniform outliers in a box ``spread`` times the data bounding box."""
    if n_outliers == 0:
        return np.empty((0, points.shape[1]))
    lo = points.min(axis=0)
    hi = points.max(axis=0)
    extent = np.maximum(hi - lo, 1e-9)
    return generator.uniform(
        lo - spread * extent, hi + spread * extent, size=(n_outliers, points.shape[1])
    )


def _package(
    generator: np.random.Generator,
    inliers: np.ndarray,
    labels: np.ndarray,
    n_outliers: int,
    spread: float,
    centers: np.ndarray,
) -> GaussianWorkload:
    outliers = _scatter_outliers(generator, inliers, n_outliers, spread)
    points = np.vstack([inliers, outliers]) if n_outliers else inliers
    all_labels = np.concatenate([labels, np.full(n_outliers, -1, dtype=int)])
    perm = generator.permutation(points.shape[0])
    return GaussianWorkload(points=points[perm], labels=all_labels[perm], centers=centers)


def rings_with_outliers(
    n_per_ring: int,
    n_rings: int,
    n_outliers: int,
    *,
    ring_separation: float = 12.0,
    radius: float = 3.0,
    noise: float = 0.15,
    outlier_spread: float = 2.0,
    rng: RngLike = None,
) -> GaussianWorkload:
    """Concentric-free rings laid out on a line, plus scattered outliers."""
    if n_per_ring < 1 or n_rings < 1:
        raise ValueError("n_per_ring and n_rings must be >= 1")
    generator = ensure_rng(rng)
    blocks = []
    labels = []
    centers = []
    for r in range(n_rings):
        center = np.array([r * ring_separation, 0.0])
        centers.append(center)
        angles = generator.uniform(0.0, 2.0 * np.pi, size=n_per_ring)
        radii = radius + generator.normal(0.0, noise, size=n_per_ring)
        ring = center + np.stack([radii * np.cos(angles), radii * np.sin(angles)], axis=1)
        blocks.append(ring)
        labels.append(np.full(n_per_ring, r, dtype=int))
    inliers = np.vstack(blocks)
    return _package(
        generator, inliers, np.concatenate(labels), n_outliers, outlier_spread, np.asarray(centers)
    )


def grid_with_outliers(
    side: int,
    n_outliers: int,
    *,
    jitter: float = 0.05,
    outlier_spread: float = 1.5,
    rng: RngLike = None,
) -> GaussianWorkload:
    """A jittered ``side x side`` grid (single cluster label) plus outliers.

    Grids produce many near-tied distances, which exercises the stable
    tie-breaking in the outlier-budget allocation (Algorithm 1, footnote 3).
    """
    if side < 2:
        raise ValueError(f"side must be >= 2, got {side}")
    generator = ensure_rng(rng)
    xs, ys = np.meshgrid(np.arange(side, dtype=float), np.arange(side, dtype=float))
    inliers = np.stack([xs.ravel(), ys.ravel()], axis=1)
    inliers = inliers + generator.normal(0.0, jitter, size=inliers.shape)
    labels = np.zeros(inliers.shape[0], dtype=int)
    centers = np.asarray([[side / 2.0, side / 2.0]])
    return _package(generator, inliers, labels, n_outliers, outlier_spread, centers)


def powerlaw_clusters_with_outliers(
    n_inliers: int,
    n_clusters: int,
    n_outliers: int,
    *,
    exponent: float = 1.5,
    separation: float = 15.0,
    cluster_std: float = 1.0,
    dim: int = 2,
    outlier_spread: float = 1.5,
    rng: RngLike = None,
) -> GaussianWorkload:
    """Gaussian clusters whose sizes follow a power law (skewed cluster masses)."""
    if n_clusters < 1 or n_inliers < n_clusters:
        raise ValueError("need n_inliers >= n_clusters >= 1")
    if exponent <= 0:
        raise ValueError(f"exponent must be positive, got {exponent}")
    generator = ensure_rng(rng)
    raw = np.arange(1, n_clusters + 1, dtype=float) ** (-exponent)
    weights = raw / raw.sum()
    centers = generator.uniform(0.0, separation * n_clusters, size=(n_clusters, dim))
    assignments = generator.choice(n_clusters, size=n_inliers, p=weights)
    for c in range(n_clusters):
        if not np.any(assignments == c):
            assignments[generator.integers(0, n_inliers)] = c
    inliers = centers[assignments] + generator.normal(0.0, cluster_std, size=(n_inliers, dim))
    return _package(generator, inliers, assignments, n_outliers, outlier_spread, centers)


__all__ = [
    "rings_with_outliers",
    "grid_with_outliers",
    "powerlaw_clusters_with_outliers",
]
