"""Evaluation, comparison and reporting utilities.

The protocols return centers, budgets and communication ledgers; this package
turns them into the numbers the paper's tables talk about — realized
objective values on the full data, approximation ratios against the
centralized reference, communication totals and their scaling in ``s``, ``k``
and ``t`` — and formats them as plain-text / markdown tables for the
benchmark harness and ``EXPERIMENTS.md``.
"""

from repro.analysis.evaluation import (
    EvaluatedSolution,
    evaluate_centers,
    evaluate_assignment,
    outlier_recovery,
)
from repro.analysis.comparison import (
    approximation_ratio,
    communication_ratio,
    summarize_result,
    compare_results,
    scaling_exponent,
)
from repro.analysis.tables import format_table, format_markdown_table

__all__ = [
    "EvaluatedSolution",
    "evaluate_centers",
    "evaluate_assignment",
    "outlier_recovery",
    "approximation_ratio",
    "communication_ratio",
    "summarize_result",
    "compare_results",
    "scaling_exponent",
    "format_table",
    "format_markdown_table",
]
