"""Approximation-ratio and communication comparisons between protocol runs."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.analysis.evaluation import evaluate_centers
from repro.distributed.result import DistributedResult
from repro.metrics.base import MetricSpace
from repro.sequential.solution import ClusterSolution


def approximation_ratio(cost: float, reference_cost: float) -> float:
    """``cost / reference_cost`` with graceful handling of a zero reference."""
    if reference_cost < 0 or cost < 0:
        raise ValueError("costs must be non-negative")
    if reference_cost == 0.0:
        return 1.0 if cost == 0.0 else float("inf")
    return float(cost / reference_cost)


def communication_ratio(result: DistributedResult, baseline: DistributedResult) -> float:
    """How much less (or more) the result communicates relative to a baseline."""
    base = baseline.total_words
    if base == 0:
        return float("inf") if result.total_words > 0 else 1.0
    return float(result.total_words / base)


def summarize_result(
    metric: MetricSpace,
    result: DistributedResult,
    *,
    reference: Optional[ClusterSolution] = None,
    true_outliers: Optional[Sequence[int]] = None,
    label: Optional[str] = None,
) -> Dict[str, float]:
    """One comparison row: realized cost, ratio, communication, rounds, times.

    Parameters
    ----------
    metric:
        The global metric the result's centers live in.
    result:
        A protocol run.
    reference:
        Optional centralized reference solution; when given, the row includes
        the measured approximation ratio against it.
    true_outliers:
        Optional planted outlier indices for recovery statistics.
    label:
        Row label (defaults to the protocol's own name).
    """
    evaluated = evaluate_centers(
        metric, result.centers, result.outlier_budget, objective=result.objective
    )
    row: Dict[str, float] = {
        "label": label or result.metadata.get("algorithm", "protocol"),
        "objective": result.objective,
        "realized_cost": evaluated.cost,
        "protocol_cost": float(result.cost),
        "n_centers": float(result.n_centers),
        "outlier_budget": float(result.outlier_budget),
        "rounds": float(result.rounds),
        "total_words": result.total_words,
        "site_time_max": result.site_time_max,
        "site_time_total": result.site_time_total,
        "coordinator_time": float(result.coordinator_time),
    }
    if reference is not None:
        row["reference_cost"] = float(reference.cost)
        row["approx_ratio"] = approximation_ratio(evaluated.cost, float(reference.cost))
    if true_outliers is not None and result.outliers is not None:
        from repro.analysis.evaluation import outlier_recovery

        recovery = outlier_recovery(result.outliers, true_outliers)
        row["outlier_recall"] = recovery["recall"]
        row["outlier_precision"] = recovery["precision"]
    return row


def compare_results(
    metric: MetricSpace,
    results: Dict[str, DistributedResult],
    *,
    reference: Optional[ClusterSolution] = None,
    true_outliers: Optional[Sequence[int]] = None,
) -> list:
    """Comparison rows for several protocol runs on the same instance."""
    return [
        summarize_result(
            metric, result, reference=reference, true_outliers=true_outliers, label=name
        )
        for name, result in results.items()
    ]


def scaling_exponent(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of ``log y`` against ``log x``.

    Used by the Theorem 3.10 benchmark to certify sub-quadratic runtime
    scaling (the fitted exponent of the direct solver should be close to 2 and
    that of the simulated distributed solver well below it).
    """
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if xs.size != ys.size or xs.size < 2:
        raise ValueError("need at least two (x, y) pairs")
    if np.any(xs <= 0) or np.any(ys <= 0):
        raise ValueError("scaling fits need positive values")
    slope, _ = np.polyfit(np.log(xs), np.log(ys), 1)
    return float(slope)


__all__ = [
    "approximation_ratio",
    "communication_ratio",
    "summarize_result",
    "compare_results",
    "scaling_exponent",
]
