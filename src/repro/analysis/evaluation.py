"""Realized objective values on the full data.

A protocol's headline output is a set of centers plus an outlier budget; the
*realized* cost of that output is obtained by assigning every input point to
its nearest returned center and excluding the budgeted number of most
expensive points.  This is the quantity all approximation ratios in
``EXPERIMENTS.md`` are computed from (it is exactly the objective of
Definition 1.1 for the returned center set).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from repro.metrics.base import MetricSpace
from repro.metrics.cost_matrix import build_cost_matrix, validate_objective
from repro.sequential.assignment import assign_with_outliers
from repro.sequential.solution import ClusterSolution


@dataclass
class EvaluatedSolution:
    """A realized clustering of the full data for a fixed center set.

    Attributes
    ----------
    cost:
        Objective value with ``outlier_budget`` points excluded.
    centers:
        The (global) centers that were evaluated.
    solution:
        The underlying :class:`ClusterSolution` over all evaluated points.
    outlier_budget:
        Number of points that were allowed to be excluded.
    """

    cost: float
    centers: np.ndarray
    solution: ClusterSolution
    outlier_budget: float
    metadata: dict = field(default_factory=dict)

    @property
    def outlier_indices(self) -> np.ndarray:
        """Indices of the points the evaluation excluded."""
        return self.solution.outlier_indices


def evaluate_centers(
    metric: MetricSpace,
    centers: Sequence[int],
    outlier_budget: float,
    *,
    objective: str = "median",
    indices: Optional[Sequence[int]] = None,
    weights: Optional[np.ndarray] = None,
) -> EvaluatedSolution:
    """Realized ``(k, t)`` objective of a fixed center set on the full data.

    Parameters
    ----------
    metric:
        The global metric.
    centers:
        Global indices of the centers to evaluate.
    outlier_budget:
        How many points (or how much weight) may be excluded.
    objective:
        ``"median"``, ``"means"`` or ``"center"``.
    indices:
        Points to evaluate over (default: every point of the metric).
    weights:
        Optional per-point weights.
    """
    obj = validate_objective(objective)
    centers = np.asarray(centers, dtype=int)
    if centers.size == 0:
        raise ValueError("cannot evaluate an empty center set")
    idx = np.arange(len(metric)) if indices is None else np.asarray(indices, dtype=int)
    cost_matrix = build_cost_matrix(metric, idx, centers, obj)
    solution = assign_with_outliers(
        cost_matrix, np.arange(centers.size), outlier_budget, weights=weights, objective=obj
    )
    # Express the assignment in global indices for readability.
    global_solution = solution.relabel(centers)
    return EvaluatedSolution(
        cost=float(solution.cost),
        centers=centers,
        solution=global_solution,
        outlier_budget=float(outlier_budget),
        metadata={"n_points": int(idx.size), "objective": obj},
    )


def evaluate_assignment(
    metric: MetricSpace,
    assignment: Dict[int, int],
    *,
    objective: str = "median",
) -> float:
    """Cost of an explicit point-to-center assignment (no further trimming).

    ``assignment`` maps point index to center index; points absent from the
    mapping are treated as outliers and contribute nothing.
    """
    obj = validate_objective(objective)
    if not assignment:
        return 0.0
    points = np.asarray(sorted(assignment.keys()), dtype=int)
    centers = np.asarray([assignment[int(p)] for p in points], dtype=int)
    costs = np.empty(points.size, dtype=float)
    # Batch by center to keep the pairwise calls vectorised.
    for c in np.unique(centers):
        mask = centers == c
        costs[mask] = metric.pairwise(points[mask], [int(c)])[:, 0]
    if obj == "means":
        costs = costs * costs
    if obj == "center":
        return float(costs.max())
    return float(costs.sum())


def outlier_recovery(
    reported_outliers: Sequence[int],
    true_outlier_indices: Sequence[int],
) -> Dict[str, float]:
    """Precision / recall of the reported outliers against planted ground truth.

    The paper makes no recovery claim — the objectives only require that
    *some* ``t`` points be droppable — but recovery is a useful sanity signal
    on workloads with planted outliers, so the benchmark tables report it.
    """
    reported = set(int(i) for i in np.asarray(reported_outliers, dtype=int))
    truth = set(int(i) for i in np.asarray(true_outlier_indices, dtype=int))
    if not reported and not truth:
        return {"precision": 1.0, "recall": 1.0, "f1": 1.0}
    hit = len(reported & truth)
    precision = hit / len(reported) if reported else 0.0
    recall = hit / len(truth) if truth else 0.0
    f1 = 2 * precision * recall / (precision + recall) if precision + recall > 0 else 0.0
    return {"precision": precision, "recall": recall, "f1": f1}


__all__ = ["EvaluatedSolution", "evaluate_centers", "evaluate_assignment", "outlier_recovery"]
