"""Plain-text and markdown table formatting for benchmark output."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def _stringify(value, float_format: str = "{:.4g}") -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return float_format.format(value)
    return str(value)


def format_table(
    rows: Sequence[Dict],
    columns: Optional[Sequence[str]] = None,
    *,
    float_format: str = "{:.4g}",
    title: Optional[str] = None,
) -> str:
    """Fixed-width text table from a list of row dictionaries.

    Parameters
    ----------
    rows:
        One dictionary per row; missing keys render as empty cells.
    columns:
        Column order (default: keys of the first row, in insertion order).
    float_format:
        Format spec applied to float cells.
    title:
        Optional heading printed above the table.
    """
    if not rows:
        return title or ""
    cols = list(columns) if columns is not None else list(rows[0].keys())
    table: List[List[str]] = [[str(c) for c in cols]]
    for row in rows:
        table.append([_stringify(row.get(c, ""), float_format) for c in cols])
    widths = [max(len(r[i]) for r in table) for i in range(len(cols))]
    lines = []
    if title:
        lines.append(title)
    header, *body = table
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in body:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def format_markdown_table(
    rows: Sequence[Dict],
    columns: Optional[Sequence[str]] = None,
    *,
    float_format: str = "{:.4g}",
) -> str:
    """GitHub-flavoured markdown table from a list of row dictionaries."""
    if not rows:
        return ""
    cols = list(columns) if columns is not None else list(rows[0].keys())
    lines = ["| " + " | ".join(str(c) for c in cols) + " |"]
    lines.append("|" + "|".join("---" for _ in cols) + "|")
    for row in rows:
        lines.append(
            "| " + " | ".join(_stringify(row.get(c, ""), float_format) for c in cols) + " |"
        )
    return "\n".join(lines)


__all__ = ["format_table", "format_markdown_table"]
