"""Combining preclustering solutions at the coordinator (Theorem 2.1 / Corollary 2.2).

Every distributed protocol in this library ends the same way: the coordinator
receives, from each site, a set of weighted *representative points* (the local
centers, weighted by how many points they absorbed) plus a set of unit-weight
points (the local outliers that were shipped explicitly), and solves a
weighted partial clustering problem over their union.  Theorem 2.1 and
Corollary 2.2 of the paper guarantee that a good solution of this induced
weighted problem is a good solution of the original problem.

This module holds the shared machinery:

* :class:`PreclusterSummary` — what one site contributes to the induced problem;
* :func:`combine_preclusters` — build the weighted instance, solve it with the
  requested objective/relaxation, and map the result back to global point ids;
* optional *realization* of a full per-point assignment (used for evaluation
  and for the "output all outliers" claim) from the sites' member lists.  The
  realization models the final output step and is not charged communication.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.metrics.base import MetricSpace
from repro.metrics.blocked import MemoryBudgetLike
from repro.metrics.cost_matrix import build_cost_matrix, validate_objective
from repro.sequential.bicriteria import bicriteria_solve
from repro.sequential.kcenter_outliers import kcenter_with_outliers
from repro.sequential.solution import ClusterSolution
from repro.utils.rng import RngLike


@dataclass
class PreclusterSummary:
    """What one site sends to the coordinator in round 2.

    Attributes
    ----------
    site_id:
        The contributing site.
    center_points:
        Global indices of the local centers.
    center_weights:
        Number of local points attached to each center (including the center
        itself).
    outlier_points:
        Global indices of the local points shipped individually (the ``t_i``
        unassigned points).  May be empty for protocol variants that do not
        ship outliers (Theorem 3.8).
    members:
        Optional mapping ``center global id -> (member global ids, member
        distances)`` used only to realize a per-point assignment at output
        time; never charged as communication.
    """

    site_id: int
    center_points: np.ndarray
    center_weights: np.ndarray
    outlier_points: np.ndarray
    members: Optional[Dict[int, tuple]] = None

    def __post_init__(self) -> None:
        self.center_points = np.asarray(self.center_points, dtype=int)
        self.center_weights = np.asarray(self.center_weights, dtype=float)
        self.outlier_points = np.asarray(self.outlier_points, dtype=int)
        if self.center_points.shape != self.center_weights.shape:
            raise ValueError("center_points and center_weights must align")
        if np.any(self.center_weights < 0):
            raise ValueError("center weights must be non-negative")

    def transmitted_words(self, words_per_point: int) -> float:
        """Words this summary costs on the wire: centers (B each), one weight
        per center, and each shipped outlier point (B each)."""
        n_centers = self.center_points.size
        return float(
            n_centers * words_per_point + n_centers + self.outlier_points.size * words_per_point
        )


@dataclass
class CombineResult:
    """Outcome of the coordinator's weighted clustering step."""

    coordinator_solution: ClusterSolution
    demand_points: np.ndarray
    demand_weights: np.ndarray
    facility_points: np.ndarray
    centers_global: np.ndarray
    explicit_outliers: np.ndarray
    realized_assignment: Optional[Dict[int, int]] = None
    realized_outliers: Optional[np.ndarray] = None
    metadata: dict = field(default_factory=dict)


def summarize_local_solution(site, solution, *, ship_outliers: bool = True) -> PreclusterSummary:
    """Package a site-local :class:`ClusterSolution` into a :class:`PreclusterSummary`.

    The summary carries exactly what Algorithm 1 (line 15) transmits: the
    local centers as global point ids, the weight attached to each, and — when
    ``ship_outliers`` is true — the locally unassigned points.  Member lists
    (which points sit behind each center, with their local distances) are
    attached for the output-realization step only and are never charged.
    """
    center_weights_map = solution.center_weights()
    centers_local = np.asarray(sorted(center_weights_map.keys()), dtype=int)
    centers_global = site.to_global(centers_local)
    weights = np.asarray([center_weights_map[int(c)] for c in centers_local], dtype=float)
    if ship_outliers and solution.outlier_indices.size:
        outliers_global = site.to_global(solution.outlier_indices)
    else:
        outliers_global = np.empty(0, dtype=int)

    members = {}
    for c_local, c_global in zip(centers_local, centers_global):
        member_local = np.flatnonzero(solution.assignment == c_local)
        if member_local.size == 0:
            members[int(c_global)] = (np.asarray([int(c_global)]), np.asarray([0.0]))
            continue
        dists = site.local_metric.pairwise(member_local, [int(c_local)])[:, 0]
        members[int(c_global)] = (site.to_global(member_local), dists)
    return PreclusterSummary(
        site_id=site.site_id,
        center_points=centers_global,
        center_weights=weights,
        outlier_points=outliers_global,
        members=members,
    )


def _assemble_demands(summaries: Sequence[PreclusterSummary]) -> tuple:
    """Stack all summaries into demand arrays, remembering provenance."""
    points: List[int] = []
    weights: List[float] = []
    provenance: List[tuple] = []  # (site_id, kind, center_global or point_global)
    for summary in summaries:
        for c, w in zip(summary.center_points, summary.center_weights):
            points.append(int(c))
            weights.append(float(w))
            provenance.append((summary.site_id, "center", int(c)))
        for p in summary.outlier_points:
            points.append(int(p))
            weights.append(1.0)
            provenance.append((summary.site_id, "outlier", int(p)))
    return (
        np.asarray(points, dtype=int),
        np.asarray(weights, dtype=float),
        provenance,
    )


def combine_preclusters(
    metric: MetricSpace,
    summaries: Sequence[PreclusterSummary],
    k: int,
    t: float,
    *,
    objective: str = "median",
    epsilon: float = 0.5,
    relax: str = "outliers",
    rng: RngLike = None,
    realize: bool = True,
    coordinator_solver_kwargs: Optional[dict] = None,
    memory_budget: MemoryBudgetLike = None,
    prefetch: Optional[bool] = None,
    workdir: Optional[str] = None,
) -> CombineResult:
    """Solve the induced weighted problem at the coordinator and map back.

    Parameters
    ----------
    metric:
        The global metric (the coordinator may evaluate distances between
        points it has received).
    summaries:
        One :class:`PreclusterSummary` per site.
    k, t:
        Global center and outlier budgets of the *unrelaxed* problem.
    objective:
        ``"median"``, ``"means"`` or ``"center"``.
    epsilon, relax:
        Bicriteria relaxation used for median/means (Theorem 3.1); the center
        objective always uses exactly ``t`` outliers (Algorithm 2).
    realize:
        Whether to also construct a per-point assignment from the member
        lists of the summaries (output step; free of communication).
    memory_budget, workdir:
        Memory discipline for the coordinator's cost matrix (see
        :func:`repro.metrics.cost_matrix.build_cost_matrix`); results are
        bit-identical for every budget.
    prefetch:
        Background tile prefetch knob for the coordinator solve over a
        memmap-backed cost matrix (``None`` = auto); never changes the
        result.
    """
    obj = validate_objective(objective)
    solver_kwargs = dict(coordinator_solver_kwargs or {})

    demand_points, demand_weights, provenance = _assemble_demands(summaries)
    if demand_points.size == 0:
        raise ValueError("no preclustering information received from any site")
    facility_points = np.unique(demand_points)
    cost_matrix = build_cost_matrix(
        metric, demand_points, facility_points, obj,
        memory_budget=memory_budget, workdir=workdir,
    )

    if obj == "center":
        coordinator_solution = kcenter_with_outliers(
            cost_matrix, k, t, weights=demand_weights,
            memory_budget=memory_budget, prefetch=prefetch, **solver_kwargs
        )
    else:
        coordinator_solution = bicriteria_solve(
            cost_matrix,
            k,
            t,
            epsilon=epsilon,
            relax=relax,
            objective=obj,
            weights=demand_weights,
            rng=rng,
            memory_budget=memory_budget,
            prefetch=prefetch,
            **solver_kwargs,
        )

    centers_global = facility_points[coordinator_solution.centers]

    # Explicit outliers: unit-weight shipped points fully dropped by the coordinator.
    dropped = (
        coordinator_solution.dropped_weight
        if coordinator_solution.dropped_weight is not None
        else np.zeros(demand_points.size)
    )
    explicit = [
        demand_points[idx]
        for idx in range(demand_points.size)
        if provenance[idx][1] == "outlier" and dropped[idx] >= demand_weights[idx] - 1e-9
    ]
    explicit_outliers = np.asarray(sorted(set(int(p) for p in explicit)), dtype=int)

    realized_assignment = None
    realized_outliers = None
    if realize:
        realized_assignment, realized_outliers = _realize_assignment(
            summaries,
            provenance,
            demand_points,
            dropped,
            coordinator_solution,
            facility_points,
        )

    return CombineResult(
        coordinator_solution=coordinator_solution,
        demand_points=demand_points,
        demand_weights=demand_weights,
        facility_points=facility_points,
        centers_global=centers_global,
        explicit_outliers=explicit_outliers,
        realized_assignment=realized_assignment,
        realized_outliers=realized_outliers,
        metadata={
            "n_demands": int(demand_points.size),
            "n_facilities": int(facility_points.size),
            "coordinator_dropped_weight": float(dropped.sum()),
        },
    )


def _realize_assignment(
    summaries: Sequence[PreclusterSummary],
    provenance: List[tuple],
    demand_points: np.ndarray,
    dropped: np.ndarray,
    coordinator_solution: ClusterSolution,
    facility_points: np.ndarray,
) -> tuple:
    """Expand the coordinator's weighted solution into a per-point assignment.

    Every original point attached to a precluster center inherits that
    center's assignment; when the coordinator dropped ``d`` units of a
    center's weight, the ``d`` attached points farthest from the center are
    designated outliers (Remark 1 allows dropping fewer copies; dropping the
    farthest ones is the natural realization).  Shipped outlier points follow
    their own demand's fate.
    """
    members_by_site: Dict[tuple, tuple] = {}
    for summary in summaries:
        if summary.members:
            for center, info in summary.members.items():
                members_by_site[(summary.site_id, int(center))] = info

    assignment: Dict[int, int] = {}
    outliers: List[int] = []
    assign_arr = coordinator_solution.assignment

    for idx in range(demand_points.size):
        site_id, kind, origin = provenance[idx]
        target = int(facility_points[assign_arr[idx]]) if assign_arr[idx] >= 0 else -1
        if kind == "outlier":
            if target < 0:
                outliers.append(int(origin))
            else:
                assignment[int(origin)] = target
            continue
        # Weighted precluster center: distribute its members.
        info = members_by_site.get((site_id, int(origin)))
        if info is None:
            # No member list available (e.g. no-shipping variant); only the
            # center itself can be realized.
            if target >= 0:
                assignment[int(origin)] = target
            else:
                outliers.append(int(origin))
            continue
        member_ids, member_dists = info
        member_ids = np.asarray(member_ids, dtype=int)
        member_dists = np.asarray(member_dists, dtype=float)
        n_drop = int(round(float(dropped[idx]))) if target >= 0 else member_ids.size
        n_drop = min(n_drop, member_ids.size)
        if n_drop > 0:
            drop_order = np.argsort(-member_dists, kind="stable")[:n_drop]
        else:
            drop_order = np.empty(0, dtype=int)
        drop_set = set(member_ids[drop_order].tolist())
        for pid in member_ids:
            pid = int(pid)
            if pid in drop_set:
                outliers.append(pid)
            else:
                assignment[pid] = target
    return assignment, np.asarray(sorted(set(outliers)), dtype=int)


__all__ = [
    "PreclusterSummary",
    "CombineResult",
    "combine_preclusters",
    "summarize_local_solution",
]
