"""High-level drivers over raw numpy arrays.

These are the functions a downstream user calls first: hand them a point
cloud (or an :class:`repro.uncertain.UncertainInstance`), the budgets
``(k, t)`` and a site count, and they take care of building the metric,
partitioning the data and running the appropriate distributed protocol.
Everything they do can also be done explicitly through the lower-level
modules (see ``examples/``).
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.core.algorithm1 import distributed_partial_median
from repro.core.algorithm2_center import distributed_partial_center
from repro.core.algorithm3_uncertain import distributed_uncertain_clustering
from repro.core.center_g import distributed_uncertain_center_g
from repro.distributed.instance import DistributedInstance, UncertainDistributedInstance
from repro.distributed.partition import (
    partition_balanced,
    partition_dirichlet,
    partition_round_robin,
)
from repro.distributed.result import DistributedResult
from repro.metrics.blocked import MemoryBudgetLike
from repro.metrics.euclidean import EuclideanMetric
from repro.obs.live import TelemetryLike
from repro.obs.trace import TraceLike
from repro.runtime.backends import BackendLike
from repro.uncertain.instance import UncertainInstance
from repro.utils.rng import RngLike, ensure_rng

_PARTITIONERS = {
    "balanced": partition_balanced,
    "round_robin": partition_round_robin,
    "dirichlet": partition_dirichlet,
}


def _make_partition(n: int, n_sites: int, partition, rng) -> list:
    """Resolve a partition spec (name, explicit shards, or callable) into shards."""
    if callable(partition):
        return partition(n, n_sites, rng)
    if isinstance(partition, str):
        try:
            maker = _PARTITIONERS[partition]
        except KeyError as exc:
            raise ValueError(
                f"unknown partition {partition!r}; choose from {sorted(_PARTITIONERS)}"
            ) from exc
        return maker(n, n_sites, rng=rng)
    # Explicit shards were supplied.
    return [np.asarray(p, dtype=int) for p in partition]


def _deterministic_instance(
    points: np.ndarray,
    k: int,
    t: int,
    n_sites: int,
    objective: str,
    partition,
    rng,
) -> DistributedInstance:
    metric = EuclideanMetric(np.asarray(points, dtype=float))
    shards = _make_partition(len(metric), n_sites, partition, rng)
    return DistributedInstance.from_partition(metric, shards, k, t, objective)


def partial_kmedian(
    points: np.ndarray,
    k: int,
    t: int,
    *,
    n_sites: int = 4,
    epsilon: float = 0.5,
    rho: float = 2.0,
    partition: Union[str, Sequence, callable] = "balanced",
    seed: RngLike = None,
    backend: BackendLike = "serial",
    memory_budget: MemoryBudgetLike = None,
    prefetch: Union[None, bool] = None,
    async_rounds: bool = False,
    trace: TraceLike = False,
    retry: Optional["RetryPolicy"] = None,
    telemetry: TelemetryLike = False,
    **kwargs,
) -> DistributedResult:
    """Distributed ``(k, (1+eps)t)``-median over a Euclidean point cloud.

    Parameters
    ----------
    points:
        ``(n, d)`` coordinates.
    k, t:
        Number of centers and outlier budget.
    n_sites:
        Number of simulated sites ``s``.
    epsilon:
        Outlier-budget relaxation (approximation is ``O(1 + 1/epsilon)``).
    partition:
        ``"balanced"`` (default), ``"round_robin"``, ``"dirichlet"``, an
        explicit list of index arrays, or a callable ``(n, s, rng) -> shards``.
    seed:
        Seed or generator for reproducibility.
    backend:
        Execution backend for site-local computation: ``"serial"``
        (default), ``"thread"``, ``"process"``, ``"cluster"`` — one
        long-lived runner process per host, payloads shipped over real
        sockets, the ledger reporting wire bytes next to the semantic words
        — any of those with a worker count (``"thread:4"``,
        ``"cluster:3"``), or an
        :class:`~repro.runtime.backends.ExecutionBackend` instance.  On
        the cluster backend everything that lives at a site stays on its
        runner between rounds — the shard, the metric, *and* the mutable
        round state (only digests and epoch tokens cross the wire; see
        :mod:`repro.runtime.state`).  The result is bit-identical across
        backends for a fixed seed.
    memory_budget:
        Byte cap (int or ``"64MB"``-style string) on any single distance or
        cost block a party materialises.  Site-local ``n_i x n_i`` cost
        matrices larger than the budget stream from disk-backed shards
        instead of RAM, so instances whose dense matrices would blow the
        budget still run — with bit-identical centers, cost and ledger word
        counts for every setting.  ``None`` (default) keeps the dense path.
    prefetch:
        Double-buffered background tile prefetch for disk-backed cost
        matrices: ``None`` (default — auto: on exactly when a matrix
        streams from a memmap shard), ``True`` or ``False``.  Purely a
        wall-clock knob; results are bit-identical either way.
    async_rounds:
        Stream the round joins: the coordinator consumes each completed
        site (allocation marginals, ledger charges) while the remaining
        sites still compute, overlapping site compute with coordinator
        allocation.  Purely a wall-clock knob; never changes any result.
    trace:
        ``True`` records the run end to end — spans for rounds, site tasks
        and wire round-trips, plus cache/prefetch/byte counters — on a
        :class:`~repro.obs.trace.Tracer` attached to the result as
        ``result.trace`` (render it with
        :func:`repro.obs.render_round_report` or export with
        :func:`repro.obs.write_chrome_trace`).  ``False`` (default) adds
        no per-task work and leaves every result bit-identical.
    retry:
        A :class:`~repro.cluster.recovery.RetryPolicy` making the cluster
        backend fault tolerant: when a runner process dies mid-round (crash
        or heartbeat timeout), its sites are re-pinned deterministically to
        surviving hosts, their dispatch logs are replayed (state epochs and
        RNG streams carried over, replay verified against the state
        digests) and the run completes bit-identically to a failure-free
        run — only the wire ledger shows the extra ``replay_*`` bytes and a
        recovery event.  ``None`` (default) keeps fail-fast behaviour: the
        first runner death raises
        :class:`~repro.cluster.recovery.DeadHostError`.  In-process
        backends have no hosts to lose and ignore the policy.
    telemetry:
        ``True`` or a :class:`~repro.obs.live.TelemetrySession` runs the
        live-telemetry plane next to the run: coordinator and runner
        resource sampling (runner samples ride heartbeat frames, accounted
        under the ``hb`` wire kind), mid-run Prometheus/JSONL metric
        snapshots, structured span-correlated logs, and an optional
        run-history store (see :mod:`repro.obs.history`).  ``False``
        (default) is the zero-allocation null object; results are
        bit-identical either way.
    kwargs:
        Forwarded to :func:`repro.core.algorithm1.distributed_partial_median`
        (e.g. ``transport=`` for a runtime transport policy).
    """
    generator = ensure_rng(seed)
    instance = _deterministic_instance(points, k, t, n_sites, "median", partition, generator)
    return distributed_partial_median(
        instance, epsilon=epsilon, rho=rho, rng=generator, backend=backend,
        memory_budget=memory_budget, prefetch=prefetch, async_rounds=async_rounds,
        trace=trace, retry=retry, telemetry=telemetry, **kwargs
    )


def partial_kmeans(
    points: np.ndarray,
    k: int,
    t: int,
    *,
    n_sites: int = 4,
    epsilon: float = 0.5,
    rho: float = 2.0,
    partition: Union[str, Sequence, callable] = "balanced",
    seed: RngLike = None,
    backend: BackendLike = "serial",
    memory_budget: MemoryBudgetLike = None,
    prefetch: Union[None, bool] = None,
    async_rounds: bool = False,
    trace: TraceLike = False,
    retry: Optional["RetryPolicy"] = None,
    telemetry: TelemetryLike = False,
    **kwargs,
) -> DistributedResult:
    """Distributed ``(k, (1+eps)t)``-means over a Euclidean point cloud.

    Same interface as :func:`partial_kmedian`; assignment costs are squared
    distances (Definition 1.1).
    """
    generator = ensure_rng(seed)
    instance = _deterministic_instance(points, k, t, n_sites, "means", partition, generator)
    return distributed_partial_median(
        instance, epsilon=epsilon, rho=rho, rng=generator, backend=backend,
        memory_budget=memory_budget, prefetch=prefetch, async_rounds=async_rounds,
        trace=trace, retry=retry, telemetry=telemetry, **kwargs
    )


def partial_kcenter(
    points: np.ndarray,
    k: int,
    t: int,
    *,
    n_sites: int = 4,
    rho: float = 2.0,
    partition: Union[str, Sequence, callable] = "balanced",
    seed: RngLike = None,
    backend: BackendLike = "serial",
    memory_budget: MemoryBudgetLike = None,
    prefetch: Union[None, bool] = None,
    async_rounds: bool = False,
    trace: TraceLike = False,
    retry: Optional["RetryPolicy"] = None,
    telemetry: TelemetryLike = False,
    **kwargs,
) -> DistributedResult:
    """Distributed ``(k, t)``-center over a Euclidean point cloud (Algorithm 2).

    ``memory_budget`` bounds any single distance block a party materialises
    and ``async_rounds`` streams the round joins (see
    :func:`partial_kmedian`); results are bit-identical for every setting.
    """
    generator = ensure_rng(seed)
    instance = _deterministic_instance(points, k, t, n_sites, "center", partition, generator)
    return distributed_partial_center(
        instance, rho=rho, rng=generator, backend=backend,
        memory_budget=memory_budget, prefetch=prefetch, async_rounds=async_rounds,
        trace=trace, retry=retry, telemetry=telemetry, **kwargs
    )


def _node_partition(n_nodes: int, n_sites: int, partition, rng) -> list:
    return _make_partition(n_nodes, n_sites, partition, rng)


def uncertain_partial_kmedian(
    instance: UncertainInstance,
    k: int,
    t: int,
    *,
    objective: str = "median",
    n_sites: int = 4,
    epsilon: float = 0.5,
    rho: float = 2.0,
    partition: Union[str, Sequence, callable] = "balanced",
    seed: RngLike = None,
    backend: BackendLike = "serial",
    memory_budget: MemoryBudgetLike = None,
    prefetch: Union[None, bool] = None,
    async_rounds: bool = False,
    trace: TraceLike = False,
    retry: Optional["RetryPolicy"] = None,
    telemetry: TelemetryLike = False,
    **kwargs,
) -> DistributedResult:
    """Distributed uncertain ``(k, (1+eps)t)``-median/means/center-pp (Algorithm 3).

    Parameters
    ----------
    instance:
        The uncertain input (ground metric + node distributions).
    objective:
        ``"median"`` (default), ``"means"`` or ``"center"`` (center-pp).
    backend:
        Execution backend for site-local computation (see :func:`partial_kmedian`).
    memory_budget:
        Byte cap on any single compressed-cost block (see
        :func:`partial_kmedian`); bit-identical results for every setting.
    async_rounds:
        Stream the round joins (see :func:`partial_kmedian`); never changes
        the result.
    """
    generator = ensure_rng(seed)
    shards = _node_partition(instance.n_nodes, n_sites, partition, generator)
    dist_instance = UncertainDistributedInstance.from_partition(instance, shards, k, t, objective)
    return distributed_uncertain_clustering(
        dist_instance, epsilon=epsilon, rho=rho, rng=generator, backend=backend,
        memory_budget=memory_budget, prefetch=prefetch, async_rounds=async_rounds,
        trace=trace, retry=retry, telemetry=telemetry, **kwargs
    )


def uncertain_partial_kcenter_g(
    instance: UncertainInstance,
    k: int,
    t: int,
    *,
    n_sites: int = 4,
    epsilon: float = 0.5,
    rho: float = 2.0,
    partition: Union[str, Sequence, callable] = "balanced",
    seed: RngLike = None,
    backend: BackendLike = "serial",
    memory_budget: MemoryBudgetLike = None,
    prefetch: Union[None, bool] = None,
    async_rounds: bool = False,
    trace: TraceLike = False,
    retry: Optional["RetryPolicy"] = None,
    telemetry: TelemetryLike = False,
    **kwargs,
) -> DistributedResult:
    """Distributed uncertain ``(k, (1+eps)t)``-center-g (Algorithm 4).

    ``memory_budget`` bounds any single distance/cost block a party
    materialises and ``async_rounds`` streams the round joins (see
    :func:`partial_kmedian`); bit-identical results for every setting.
    """
    generator = ensure_rng(seed)
    shards = _node_partition(instance.n_nodes, n_sites, partition, generator)
    dist_instance = UncertainDistributedInstance.from_partition(instance, shards, k, t, "center-g")
    return distributed_uncertain_center_g(
        dist_instance, epsilon=epsilon, rho=rho, rng=generator, backend=backend,
        memory_budget=memory_budget, prefetch=prefetch, async_rounds=async_rounds,
        trace=trace, retry=retry, telemetry=telemetry, **kwargs
    )


__all__ = [
    "partial_kmedian",
    "partial_kmeans",
    "partial_kcenter",
    "uncertain_partial_kmedian",
    "uncertain_partial_kcenter_g",
]
