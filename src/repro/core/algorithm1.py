"""Algorithm 1: distributed ``(k, (1+eps)t)``-median / means clustering.

Two rounds, ``Õ((sk + t) B)`` words of communication (Theorem 3.6):

Round 1 (sites -> coordinator)
    Every site solves its local problem with ``2k`` centers at the
    ``O(log t)`` grid points ``q in I`` and transmits the lower convex hull of
    the resulting cost curve (:class:`repro.core.convex_hull.CostProfile`).

Allocation (coordinator)
    The coordinator splits a budget of ``rho * t`` ignored points across the
    sites by stable rank selection on the marginal gains ``l(i, q)``
    (:func:`repro.core.allocation.allocate_outlier_budget`).

Round 2 (coordinator -> sites -> coordinator)
    Each site learns its allocation ``t_i`` (snapping up to a hull vertex when
    it is the exceptional site), and ships its ``2k`` local centers, the
    number of points attached to each, and its ``t_i`` unassigned points.
    The coordinator solves the induced weighted ``(k, (1+eps)t)`` problem
    (Theorem 3.1 interface) over everything it received and outputs the
    centers, which are original input points.

Both per-site phases are expressed as :class:`repro.runtime.SiteTask`s, so
the whole protocol runs unchanged — and bit-identically — on any
:mod:`repro.runtime` execution backend.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.core.allocation import allocate_outlier_budget
from repro.core.combine import combine_preclusters, summarize_local_solution
from repro.core.preclustering import precluster_site
from repro.distributed.instance import DistributedInstance
from repro.distributed.network import StarNetwork
from repro.distributed.result import DistributedResult
from repro.metrics.blocked import (
    MemoryBudgetLike,
    memmap_handle,
    resolve_memory_budget,
    shard_scratch,
)
from repro.metrics.cost_matrix import build_cost_matrix, validate_objective
from repro.obs.live import TelemetryLike, resolve_telemetry, telemetry_scope
from repro.obs.trace import TraceLike, resolve_tracer, trace_run
from repro.runtime.backends import (
    BackendLike,
    apply_retry_policy,
    apply_telemetry,
    backend_scope,
)
from repro.runtime.state import snapshot_site_state
from repro.runtime.tasks import SiteTask, run_site_tasks
from repro.runtime.transport import TransportLike, resolve_transport
from repro.utils.rng import RngLike, ensure_rng, spawn_rngs


def _round1_task(
    ctx, k, t, objective, rho, local_center_factor, local_kwargs,
    memory_budget=None, workdir=None,
):
    """Site phase of round 1: solve the local grid and ship the cost profile.

    Under a ``memory_budget`` the site's ``n_i x n_i`` cost matrix is built in
    row blocks and — when larger than the budget — streamed from a disk shard
    under ``workdir`` instead of RAM (bit-identical costs either way).
    """
    with ctx.timer.measure("precluster"):
        local_indices = np.arange(ctx.n_points)
        local_costs = build_cost_matrix(
            ctx.local_metric, local_indices, local_indices, objective,
            memory_budget=memory_budget, workdir=workdir,
        )
        local_k = min(local_center_factor * k, ctx.n_points)
        precluster = precluster_site(
            local_costs,
            local_k,
            t,
            objective=objective,
            rho=rho,
            rng=ctx.rng,
            **local_kwargs,
        )
    ctx.state["precluster"] = precluster
    ctx.state["local_k"] = local_k
    ctx.state["cost_storage"] = "memmap" if memmap_handle(local_costs) else "dense"
    ctx.send_to_coordinator("cost_profile", precluster.profile, words=precluster.profile.words)


def _round2_task(ctx, objective, words_per_point, local_kwargs):
    """Site phase of round 2: snap the allocation and ship the local solution."""
    t_i = int(ctx.messages("allocation")[0].payload["t_i"])
    with ctx.timer.measure("round2"):
        precluster = ctx.state["precluster"]
        profile = precluster.profile
        # The exceptional site's allocation may fall inside a hull segment
        # (an interpolated value); snap up to the next actually solved grid
        # point (Algorithm 1, line 13).  Other sites' allocations are hull
        # vertices by Lemma 3.4, but snapping is a no-op there and guards
        # against floating-point ties.
        t_used = int(round(profile.snap_up_to_vertex(t_i)))
        t_used = min(t_used, ctx.n_points)
        solution = precluster.solution_for(
            t_used, ctx.state["local_k"], objective, rng=ctx.rng, **local_kwargs
        )
        summary = summarize_local_solution(ctx, solution)
    ctx.state["t_i"] = t_used
    ctx.state["local_solution"] = solution
    ctx.send_to_coordinator(
        "local_solution", summary, words=summary.transmitted_words(words_per_point)
    )
    return summary


def distributed_partial_median(
    instance: DistributedInstance,
    *,
    epsilon: float = 0.5,
    rho: float = 2.0,
    relax: str = "outliers",
    local_center_factor: int = 2,
    rng: RngLike = None,
    local_solver_kwargs: Optional[dict] = None,
    coordinator_solver_kwargs: Optional[dict] = None,
    realize: bool = True,
    backend: BackendLike = None,
    transport: TransportLike = None,
    memory_budget: MemoryBudgetLike = None,
    prefetch: Optional[bool] = None,
    async_rounds: bool = False,
    trace: TraceLike = False,
    retry: Optional["RetryPolicy"] = None,
    telemetry: TelemetryLike = False,
) -> DistributedResult:
    """Run Algorithm 1 on a distributed instance.

    Parameters
    ----------
    instance:
        The partitioned input; ``instance.objective`` must be ``"median"`` or
        ``"means"``.
    epsilon:
        Bicriteria relaxation of the final coordinator solve (Theorem 3.1);
        the cost guarantee is ``O(1 + 1/epsilon)`` times the ``(k, t)``
        optimum either way.
    rho:
        Geometric grid ratio and allocation budget multiplier (``2`` in
        Theorem 3.6).
    relax:
        Which budget the coordinator relaxes: ``"outliers"`` (default —
        ``k`` centers, ``(1 + epsilon) t`` ignored points, the Table 1 rows)
        or ``"centers"`` (``(1 + epsilon) k`` centers, exactly ``t`` ignored
        points — the ``(1+eps)k`` rows of Table 2).
    local_center_factor:
        How many centers the sites open locally relative to ``k`` (the paper
        uses ``2k``).
    rng:
        Seed or generator; split deterministically across sites.
    local_solver_kwargs, coordinator_solver_kwargs:
        Extra keyword arguments for the site-local and coordinator solvers.
    realize:
        Also produce a full per-point assignment (output step, uncharged).
    backend:
        Execution backend for the per-site phases: ``None``/``"serial"``
        (default), ``"thread"``, ``"process"``, ``"cluster"`` (one runner
        process per host, payloads over real sockets with byte-accounted
        frames — optionally with a host count, e.g. ``"cluster:3"``) or an
        :class:`~repro.runtime.backends.ExecutionBackend` instance.  On the
        cluster backend each site's shard, metric *and* mutable round state
        (the precluster with its cached ``n_i x n_i`` cost matrix) stay
        resident on the site's runner between rounds — only state digests
        and epoch tokens cross the wire (see :mod:`repro.runtime.state`).
        Results are bit-identical across backends for a fixed seed.
    transport:
        :class:`~repro.runtime.transport.TransportPolicy` (or name) applied
        to payloads crossing the site/coordinator boundary.
    memory_budget:
        Byte cap (int or ``"64MB"``-style string) on any single distance/cost
        block a party materialises.  Site cost matrices larger than the
        budget are streamed from disk shards in a per-run scratch directory
        (removed when the run completes).  ``None`` (default) keeps the
        legacy dense behaviour; results are bit-identical for every setting.
    prefetch:
        Double-buffered background tile prefetch for memmap-backed cost
        matrices (``None`` = auto: on exactly when a matrix streams from
        disk); forwarded to the site solvers and the coordinator solve.
        Never changes the result.
    async_rounds:
        Stream the round joins: the coordinator absorbs each completed
        site's profile (and computes its allocation marginals) while the
        remaining sites are still computing, instead of waiting at a
        barrier.  Pure latency hiding — never changes any result.
    trace:
        ``True`` records spans, events and counters for the whole run on a
        :class:`~repro.obs.trace.Tracer` attached to the result as
        ``result.trace`` (coordinator and runner activity on one rebased
        timeline; see :mod:`repro.obs`).  An existing tracer may be passed
        to share one timeline across runs.  ``False`` (default) adds no
        per-task work and leaves every result bit-identical.
    retry:
        A :class:`~repro.cluster.recovery.RetryPolicy` enabling
        fault-tolerant rounds on the cluster backend: a runner death is
        detected (socket error or heartbeat timeout), the dead host's sites
        are re-pinned deterministically to survivors and their dispatch
        logs replayed, and the run continues bit-identically — replay
        traffic is accounted under ``replay_*`` wire kinds.  ``None``
        (default) keeps fail-fast behaviour; in-process backends ignore the
        policy (they have no hosts to lose).
    telemetry:
        ``True`` or a :class:`~repro.obs.live.TelemetrySession` turns on the
        live-telemetry plane for this run: background resource sampling on
        the coordinator and (on the cluster backend, over heartbeat frames)
        every runner, mid-run metric snapshots to the session's
        Prometheus/JSONL sinks, and structured span-correlated logs in the
        session's run log.  Telemetry implies tracing — an untraced run
        gets a session-private tracer.  ``False`` (default) resolves to the
        shared inert :data:`~repro.obs.live.NULL_TELEMETRY` — zero per-task
        allocation, results bit-identical either way.
    """
    objective = validate_objective(instance.objective)
    if objective == "center":
        raise ValueError("Algorithm 1 handles median/means; use distributed_partial_center")
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    if rho <= 1:
        raise ValueError(f"rho must be > 1, got {rho}")
    relax = str(relax).lower()
    if relax not in ("outliers", "centers"):
        raise ValueError(f"relax must be 'outliers' or 'centers', got {relax!r}")

    k, t = instance.k, instance.t
    metric = instance.metric
    words_per_point = instance.words_per_point()
    network = StarNetwork(instance)
    generator = ensure_rng(rng)
    site_rngs = spawn_rngs(generator, network.n_sites)
    coord_rng = ensure_rng(generator)
    local_kwargs = dict(local_solver_kwargs or {})
    policy = resolve_transport(transport)
    mem_budget = resolve_memory_budget(memory_budget)
    if mem_budget is not None:
        local_kwargs.setdefault("memory_budget", mem_budget)
    if prefetch is not None:
        local_kwargs.setdefault("prefetch", prefetch)
    tracer = resolve_tracer(trace)
    telemetry_session = resolve_telemetry(telemetry)
    if telemetry_session.enabled:
        # Telemetry implies tracing: gauges and samples live on a tracer.
        tracer = telemetry_session.adopt_tracer(tracer)
    network.tracer = tracer if tracer.enabled else None

    with shard_scratch(mem_budget) as workdir, telemetry_scope(
        telemetry_session
    ), trace_run(
        tracer, "run", algorithm="algorithm1", objective=objective
    ):
        with backend_scope(backend) as exec_backend:
            apply_retry_policy(exec_backend, retry)
            apply_telemetry(exec_backend, telemetry_session)
            # --------------------------------------------------------------
            # Round 1: local cost profiles.
            # --------------------------------------------------------------
            network.next_round()
            marginals: list = [None] * network.n_sites

            def _absorb_profile(result):
                # Per-site allocation prep; under async_rounds this runs
                # while later sites are still computing their profiles.
                with network.coordinator.timer.measure("allocation"), tracer.span(
                    "allocation", site=result.site_id
                ):
                    profile = network.coordinator.messages_from(
                        result.site_id, "cost_profile"
                    )[0].payload
                    marginals[result.site_id] = profile.marginals()

            round1 = run_site_tasks(
                network,
                [
                    SiteTask(
                        i,
                        _round1_task,
                        args=(
                            k, t, objective, rho, local_center_factor, local_kwargs,
                            mem_budget, workdir,
                        ),
                        rng=site_rngs[i],
                    )
                    for i in range(network.n_sites)
                ],
                backend=exec_backend,
                transport=policy,
                async_rounds=async_rounds,
                consume=_absorb_profile,
            )
            site_rngs = [r.rng for r in round1]

            # Coordinator: allocate the outlier budget.
            with network.coordinator.timer.measure("allocation"), tracer.span("allocation"):
                budget = int(math.floor(rho * t))
                allocation = allocate_outlier_budget(marginals, budget)

            # --------------------------------------------------------------
            # Round 2: allocations out, local solutions back, final solve.
            # --------------------------------------------------------------
            network.next_round()
            for site in network.sites:
                t_i = int(allocation.t_allocated[site.site_id])
                is_exceptional = allocation.exceptional_site == site.site_id
                network.send_to_site(
                    site.site_id,
                    "allocation",
                    {"t_i": t_i, "threshold": allocation.threshold, "exceptional": is_exceptional},
                    words=3,
                )
            run_site_tasks(
                network,
                [
                    SiteTask(
                        i,
                        _round2_task,
                        args=(objective, words_per_point, local_kwargs),
                        rng=site_rngs[i],
                    )
                    for i in range(network.n_sites)
                ],
                backend=exec_backend,
                transport=policy,
                async_rounds=async_rounds,
            )
            # Combine from the coordinator's inbox (not the task return values) so
            # the transport policy's materialisation is what actually gets solved.
            summaries = [
                network.coordinator.messages_from(i, "local_solution")[0].payload
                for i in range(network.n_sites)
            ]
            # On a cluster backend site state lives on the runners and reads
            # fault over the wire — snapshot the scalars the result metadata
            # needs while the backend is still open.
            site_meta = snapshot_site_state(
                network.sites, ("t_i", "local_k", "cost_storage")
            )

        with network.coordinator.timer.measure("final_solve"), tracer.span("final_solve"):
            combine = combine_preclusters(
                metric,
                summaries,
                k,
                t,
                objective=objective,
                epsilon=epsilon,
                relax=relax,
                rng=coord_rng,
                realize=realize,
                coordinator_solver_kwargs=coordinator_solver_kwargs,
                memory_budget=mem_budget,
                prefetch=prefetch,
                workdir=workdir,
            )

        if relax == "outliers":
            outlier_budget = math.floor((1.0 + epsilon) * t + 1e-9)
        else:
            outlier_budget = float(t)
        result = DistributedResult(
            centers=combine.centers_global,
            outlier_budget=float(outlier_budget),
            objective=objective,
            cost=float(combine.coordinator_solution.cost),
            ledger=network.ledger,
            rounds=network.current_round,
            outliers=combine.realized_outliers if realize else combine.explicit_outliers,
            site_time=network.site_times(),
            coordinator_time=network.coordinator_time(),
            coordinator_solution=combine.coordinator_solution,
            trace=tracer if tracer.enabled else None,
            metadata={
                "algorithm": "algorithm1",
                "epsilon": float(epsilon),
                "rho": float(rho),
                "relax": relax,
                "t_allocated": allocation.t_allocated.tolist(),
                "t_used": [int(s["t_i"]) for s in site_meta],
                "threshold": float(allocation.threshold),
                "exceptional_site": allocation.exceptional_site,
                "n_coordinator_demands": int(combine.demand_points.size),
                "realized_assignment": combine.realized_assignment,
                "explicit_outliers": combine.explicit_outliers,
                "local_k": [int(s["local_k"]) for s in site_meta],
                "memory_budget": mem_budget,
                "cost_matrix_storage": [s["cost_storage"] for s in site_meta],
                "async_rounds": bool(async_rounds),
            },
        )
        return result



__all__ = ["distributed_partial_median"]
