"""Theorem 3.8: the no-outlier-shipping variant of Algorithm 1.

When only the clustering (and the *number* of ignored points) is needed —
not the identity of every outlier — the ``Õ(t)`` term in the communication
can be removed entirely:

* the geometric grid uses ratio ``rho = 1 + delta`` (so ``|I| = Õ(1/delta)``),
* in round 2 a site sends only its ``2k`` centers, the attached counts and
  the *number* ``t_i`` of locally ignored points — never the points themselves,
* the exceptional site ``i_0``, whose allocation ``t_{i_0}`` may fall strictly
  between two hull vertices ``t_{i,1} < t_{i,2}``, combines the two cached
  solutions into a single ``4k``-center solution whose cost is at most the
  interpolated hull value (Lemma 3.7), and ships that.

Total communication ``Õ(s/delta + s k B)`` over 2 rounds; the output excludes
at most ``(2 + epsilon + delta) t`` points (the ignored points of the
preclustering are gone for good, hence the extra ``+1``).

Per-site phases run as :class:`repro.runtime.SiteTask`s on any execution
backend; round 1 is shared with Algorithm 1 (the grid ratio is the only
difference).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.core.algorithm1 import _round1_task
from repro.core.allocation import allocate_outlier_budget
from repro.core.combine import combine_preclusters, summarize_local_solution
from repro.distributed.instance import DistributedInstance
from repro.distributed.network import StarNetwork
from repro.distributed.result import DistributedResult
from repro.metrics.blocked import MemoryBudgetLike, resolve_memory_budget, shard_scratch
from repro.metrics.cost_matrix import validate_objective
from repro.obs.live import TelemetryLike, resolve_telemetry, telemetry_scope
from repro.obs.trace import TraceLike, resolve_tracer, trace_run
from repro.runtime.backends import (
    BackendLike,
    apply_retry_policy,
    apply_telemetry,
    backend_scope,
)
from repro.runtime.state import snapshot_site_state
from repro.runtime.tasks import SiteTask, run_site_tasks
from repro.runtime.transport import TransportLike, resolve_transport
from repro.sequential.assignment import assign_with_outliers
from repro.sequential.solution import ClusterSolution
from repro.utils.rng import RngLike, ensure_rng, spawn_rngs


def combine_two_solutions(
    cost_matrix: np.ndarray,
    solution_low: ClusterSolution,
    solution_high: ClusterSolution,
    t_i: int,
    objective: str,
) -> ClusterSolution:
    """Lemma 3.7: merge the solutions at the two bracketing hull vertices.

    The union of their centers (at most ``4k``) is used, every demand is
    attached to its nearest center in the union, and the ``t_i`` most
    expensive demands are ignored.  Lemma 3.7 shows the resulting cost is at
    most the convex interpolation of the two endpoint costs.
    """
    centers = np.unique(
        np.concatenate([solution_low.centers, solution_high.centers])
    )
    if centers.size == 0:
        centers = np.asarray([0], dtype=int)
    return assign_with_outliers(cost_matrix, centers, t_i, objective=objective)


def _round2_no_shipping_task(ctx, objective, words_per_point, local_kwargs):
    """Site phase of round 2: centers and counts only, never the outliers."""
    message = ctx.messages("allocation")[0].payload
    t_i = int(message["t_i"])
    is_exceptional = bool(message["exceptional"])
    with ctx.timer.measure("round2"):
        precluster = ctx.state["precluster"]
        profile = precluster.profile
        local_k = ctx.state["local_k"]
        if is_exceptional and not profile.is_vertex(t_i):
            # Lemma 3.7 combination of the bracketing hull-vertex solutions.
            t_low, t_high = profile.bracketing_vertices(t_i)
            sol_low = precluster.solution_for(int(t_low), local_k, objective, rng=ctx.rng, **local_kwargs)
            sol_high = precluster.solution_for(int(t_high), local_k, objective, rng=ctx.rng, **local_kwargs)
            solution = combine_two_solutions(
                precluster.cost_matrix, sol_low, sol_high, t_i, objective
            )
            ctx.state["combined_4k"] = True
        else:
            t_vertex = int(round(profile.snap_down_to_vertex(t_i)))
            solution = precluster.solution_for(t_vertex, local_k, objective, rng=ctx.rng, **local_kwargs)
            ctx.state["combined_4k"] = False
        summary = summarize_local_solution(ctx, solution, ship_outliers=False)
    ctx.state["t_i"] = t_i
    ctx.state["local_solution"] = solution
    # Centers (B words each), counts (1 word each) and the scalar t_i.
    ctx.send_to_coordinator(
        "local_solution", summary, words=summary.transmitted_words(words_per_point) + 1
    )
    return summary


def distributed_partial_median_no_shipping(
    instance: DistributedInstance,
    *,
    epsilon: float = 0.5,
    delta: float = 0.5,
    local_center_factor: int = 2,
    rng: RngLike = None,
    local_solver_kwargs: Optional[dict] = None,
    coordinator_solver_kwargs: Optional[dict] = None,
    backend: BackendLike = None,
    transport: TransportLike = None,
    memory_budget: MemoryBudgetLike = None,
    prefetch: Optional[bool] = None,
    async_rounds: bool = False,
    trace: TraceLike = False,
    retry: Optional["RetryPolicy"] = None,
    telemetry: TelemetryLike = False,
) -> DistributedResult:
    """Run the Theorem 3.8 variant (no outlier points are ever transmitted).

    Parameters
    ----------
    instance:
        The partitioned input (median or means objective).
    epsilon:
        Relaxation of the coordinator's final bicriteria solve.
    delta:
        Grid ratio parameter (``rho = 1 + delta``); smaller ``delta`` means a
        finer grid (more local solves, more profile words) but a smaller
        excess outlier budget.
    backend, transport:
        Execution backend and transport policy for the per-site phases (see
        :mod:`repro.runtime`); the result is backend-invariant.  On the
        cluster backend the precluster state stays runner-resident between
        rounds (digest/epoch-token wire protocol, see
        :mod:`repro.runtime.state`) — this variant's whole point is small
        communication, and the wire ledger now reflects it.
    memory_budget:
        Byte cap on any single distance/cost block (site cost matrices spill
        to disk shards beyond it); ``None`` keeps the dense behaviour and the
        result is bit-identical for every setting (see
        :func:`repro.core.algorithm1.distributed_partial_median`).
    prefetch:
        Background tile prefetch knob for memmap-backed cost matrices
        (``None`` = auto); never changes the result.
    async_rounds:
        Stream the round joins (the coordinator absorbs each completed
        site's profile while others still compute); never changes the
        result.
    trace:
        ``True`` attaches a :class:`~repro.obs.trace.Tracer` to the result
        (``result.trace``) recording the run's spans, events and counters;
        ``False`` (default) is the zero-overhead no-op (see :mod:`repro.obs`).
    retry:
        A :class:`~repro.cluster.recovery.RetryPolicy` enabling
        fault-tolerant rounds on the cluster backend (runner deaths are
        recovered by deterministic re-pin and dispatch-log replay, results
        stay bit-identical); ``None`` (default) keeps fail-fast behaviour
        and in-process backends ignore the policy.
    telemetry:
        ``True`` or a :class:`~repro.obs.live.TelemetrySession` turns on the
        live-telemetry plane for this run: background resource sampling on
        the coordinator and (on the cluster backend, over heartbeat frames)
        every runner, mid-run metric snapshots to the session's
        Prometheus/JSONL sinks, and structured span-correlated logs in the
        session's run log.  Telemetry implies tracing — an untraced run
        gets a session-private tracer.  ``False`` (default) resolves to the
        shared inert :data:`~repro.obs.live.NULL_TELEMETRY` — zero per-task
        allocation, results bit-identical either way.
    """
    objective = validate_objective(instance.objective)
    if objective == "center":
        raise ValueError("the no-shipping variant targets median/means")
    if epsilon <= 0 or delta <= 0:
        raise ValueError("epsilon and delta must be positive")

    k, t = instance.k, instance.t
    metric = instance.metric
    words_per_point = instance.words_per_point()
    rho = 1.0 + delta
    network = StarNetwork(instance)
    generator = ensure_rng(rng)
    site_rngs = spawn_rngs(generator, network.n_sites)
    local_kwargs = dict(local_solver_kwargs or {})
    policy = resolve_transport(transport)
    mem_budget = resolve_memory_budget(memory_budget)
    if mem_budget is not None:
        local_kwargs.setdefault("memory_budget", mem_budget)
    if prefetch is not None:
        local_kwargs.setdefault("prefetch", prefetch)
    tracer = resolve_tracer(trace)
    telemetry_session = resolve_telemetry(telemetry)
    if telemetry_session.enabled:
        # Telemetry implies tracing: gauges and samples live on a tracer.
        tracer = telemetry_session.adopt_tracer(tracer)
    network.tracer = tracer if tracer.enabled else None

    with shard_scratch(mem_budget) as workdir, telemetry_scope(
        telemetry_session
    ), trace_run(
        tracer, "run", algorithm="algorithm1_no_shipping", objective=objective
    ):
        with backend_scope(backend) as exec_backend:
            apply_retry_policy(exec_backend, retry)
            apply_telemetry(exec_backend, telemetry_session)
            # Round 1: profiles on the finer grid.
            network.next_round()
            marginals: list = [None] * network.n_sites

            def _absorb_profile(result):
                with network.coordinator.timer.measure("allocation"), tracer.span(
                    "allocation", site=result.site_id
                ):
                    profile = network.coordinator.messages_from(
                        result.site_id, "cost_profile"
                    )[0].payload
                    marginals[result.site_id] = profile.marginals()

            round1 = run_site_tasks(
                network,
                [
                    SiteTask(
                        i,
                        _round1_task,
                        args=(
                            k, t, objective, rho, local_center_factor, local_kwargs,
                            mem_budget, workdir,
                        ),
                        rng=site_rngs[i],
                    )
                    for i in range(network.n_sites)
                ],
                backend=exec_backend,
                transport=policy,
                async_rounds=async_rounds,
                consume=_absorb_profile,
            )
            site_rngs = [r.rng for r in round1]

            with network.coordinator.timer.measure("allocation"), tracer.span("allocation"):
                budget = int(math.floor(rho * t))
                allocation = allocate_outlier_budget(marginals, budget)

            # Round 2: centers and counts only.
            network.next_round()
            for site in network.sites:
                t_i = int(allocation.t_allocated[site.site_id])
                is_exceptional = allocation.exceptional_site == site.site_id
                network.send_to_site(
                    site.site_id,
                    "allocation",
                    {"t_i": t_i, "threshold": allocation.threshold, "exceptional": is_exceptional},
                    words=3,
                )
            run_site_tasks(
                network,
                [
                    SiteTask(
                        i,
                        _round2_no_shipping_task,
                        args=(objective, words_per_point, local_kwargs),
                        rng=site_rngs[i],
                    )
                    for i in range(network.n_sites)
                ],
                backend=exec_backend,
                transport=policy,
                async_rounds=async_rounds,
            )
            summaries = [
                network.coordinator.messages_from(i, "local_solution")[0].payload
                for i in range(network.n_sites)
            ]
            # Snapshot the metadata scalars while the backend is open: on a
            # cluster backend these reads fault runner-resident state.
            site_meta = snapshot_site_state(
                network.sites, ("t_i", "combined_4k", "cost_storage")
            )

        with network.coordinator.timer.measure("final_solve"), tracer.span("final_solve"):
            combine = combine_preclusters(
                metric,
                summaries,
                k,
                t,
                objective=objective,
                epsilon=epsilon,
                relax="outliers",
                rng=generator,
                realize=True,
                coordinator_solver_kwargs=coordinator_solver_kwargs,
                memory_budget=mem_budget,
                prefetch=prefetch,
                workdir=workdir,
            )

        total_preclustering_ignored = int(sum(s["t_i"] for s in site_meta))
        outlier_budget = math.floor((2.0 + epsilon + delta) * t + 1e-9)
        return DistributedResult(
            centers=combine.centers_global,
            outlier_budget=float(outlier_budget),
            objective=objective,
            cost=float(combine.coordinator_solution.cost),
            ledger=network.ledger,
            rounds=network.current_round,
            outliers=None,  # the defining property of this variant: outliers are not named
            site_time=network.site_times(),
            coordinator_time=network.coordinator_time(),
            coordinator_solution=combine.coordinator_solution,
            trace=tracer if tracer.enabled else None,
            metadata={
                "algorithm": "algorithm1_no_shipping",
                "epsilon": float(epsilon),
                "delta": float(delta),
                "rho": float(rho),
                "t_allocated": allocation.t_allocated.tolist(),
                "preclustering_ignored": total_preclustering_ignored,
                "coordinator_dropped_weight": combine.metadata["coordinator_dropped_weight"],
                "exceptional_site": allocation.exceptional_site,
                "exceptional_combined_4k": [bool(s["combined_4k"]) for s in site_meta],
                "n_coordinator_demands": int(combine.demand_points.size),
                "memory_budget": mem_budget,
                "cost_matrix_storage": [s["cost_storage"] for s in site_meta],
                "async_rounds": bool(async_rounds),
            },
        )



__all__ = ["distributed_partial_median_no_shipping", "combine_two_solutions"]
