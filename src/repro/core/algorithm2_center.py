"""Algorithm 2: distributed ``(k, t)``-center clustering.

The center objective admits a simpler preclustering (Gonzalez's farthest-first
traversal): the insertion radius of the ``(k+q)``-th traversed point is a
non-increasing witness ``l(i, q)`` of the local ``(k, q)``-center cost, so it
can play the role of Algorithm 1's marginal gains directly.  The rest of the
protocol is the same budget-allocation machinery:

Round 1
    Each site runs Gonzalez on its shard (``Õ((k + t) n_i)`` time) and sends
    its witness curve sampled on the geometric grid (``O(log t)`` words).

Round 2
    The coordinator allocates the outlier budget by rank selection over the
    witnesses, tells every site its ``t_i``, and each site ships its first
    ``k + t_i`` traversal points together with the number of points attached
    to each (total ``Õ((sk + t) B)`` words).  The coordinator finishes with a
    weighted ``(k, t)``-center-with-outliers solve (Charikar et al.) over the
    union, excluding exactly ``t`` units of weight (Theorem 4.3).

Both per-site phases are :class:`repro.runtime.SiteTask`s and run
bit-identically on any :mod:`repro.runtime` execution backend.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.core.allocation import allocate_outlier_budget
from repro.core.combine import PreclusterSummary, combine_preclusters
from repro.core.preclustering import precluster_site_center
from repro.distributed.instance import DistributedInstance
from repro.distributed.network import StarNetwork
from repro.distributed.result import DistributedResult
from repro.metrics.blocked import (
    MemoryBudgetLike,
    argmin_per_row,
    resolve_memory_budget,
    shard_scratch,
)
from repro.obs.live import TelemetryLike, resolve_telemetry, telemetry_scope
from repro.obs.trace import TraceLike, resolve_tracer, trace_run
from repro.runtime.backends import (
    BackendLike,
    apply_retry_policy,
    apply_telemetry,
    backend_scope,
)
from repro.runtime.tasks import SiteTask, run_site_tasks
from repro.runtime.transport import TransportLike, resolve_transport
from repro.utils.rng import RngLike, ensure_rng, spawn_rngs


def _center_summary(
    site, traversal, k: int, t_i: int, memory_budget=None, prefetch=None
) -> PreclusterSummary:
    """Precluster of one site: the first ``k + t_i`` traversal points, weighted.

    Every local point is attached to its nearest candidate (none is ignored —
    Remark 3(i)); the candidates beyond the first ``k`` are the locally most
    isolated points, i.e. the site's outlier suspects, but they travel as
    weighted candidates exactly like the others.

    The nearest-candidate sweep is a blocked per-row argmin
    (:func:`repro.metrics.blocked.argmin_per_row`): the ``n_i x (k + t_i)``
    distance block is never materialised whole under a ``memory_budget``,
    and the attachment is bit-identical for every budget.
    """
    n_local = site.n_points
    m = min(n_local, k + t_i)
    candidates_local = traversal.ordering[:m]
    all_local = np.arange(n_local)
    nearest_dist, nearest = argmin_per_row(
        site.local_metric, all_local, candidates_local,
        memory_budget=memory_budget, prefetch=prefetch,
    )

    centers_global = site.to_global(candidates_local)
    weights = np.zeros(m, dtype=float)
    np.add.at(weights, nearest, 1.0)

    members = {}
    for pos, c_global in enumerate(centers_global):
        member_local = np.flatnonzero(nearest == pos)
        members[int(c_global)] = (site.to_global(member_local), nearest_dist[member_local])

    return PreclusterSummary(
        site_id=site.site_id,
        center_points=centers_global,
        center_weights=weights,
        outlier_points=np.empty(0, dtype=int),
        members=members,
    )


def _round1_center_task(ctx, k, t, rho, memory_budget=None):
    """Site phase of round 1: Gonzalez traversal and witness curve."""
    with ctx.timer.measure("precluster"):
        precluster = precluster_site_center(
            ctx.local_metric, k, t, rho=rho, rng=ctx.rng, memory_budget=memory_budget
        )
    ctx.state["precluster"] = precluster
    ctx.send_to_coordinator("witness_curve", precluster, words=precluster.transmitted_words())


def _round2_center_task(ctx, k, words_per_point, memory_budget=None, prefetch=None):
    """Site phase of round 2: ship the first ``k + t_i`` traversal points."""
    t_i = int(ctx.messages("allocation")[0].payload["t_i"])
    with ctx.timer.measure("round2"):
        precluster = ctx.state["precluster"]
        summary = _center_summary(ctx, precluster.traversal, k, t_i, memory_budget, prefetch)
    ctx.state["t_i"] = t_i
    ctx.send_to_coordinator(
        "local_solution", summary, words=summary.transmitted_words(words_per_point)
    )
    return summary


def distributed_partial_center(
    instance: DistributedInstance,
    *,
    rho: float = 2.0,
    rng: RngLike = None,
    coordinator_solver_kwargs: Optional[dict] = None,
    realize: bool = True,
    backend: BackendLike = None,
    transport: TransportLike = None,
    memory_budget: MemoryBudgetLike = None,
    prefetch: Optional[bool] = None,
    async_rounds: bool = False,
    trace: TraceLike = False,
    retry: Optional["RetryPolicy"] = None,
    telemetry: TelemetryLike = False,
) -> DistributedResult:
    """Run Algorithm 2 on a distributed instance with the center objective.

    Parameters
    ----------
    instance:
        The partitioned input; ``instance.objective`` must be ``"center"``.
    rho:
        Budget multiplier for the allocation (the coordinator still excludes
        exactly ``t`` units of weight in its final solve, per Theorem 4.3).
    rng:
        Seed or generator (only the Gonzalez starting points are random).
    coordinator_solver_kwargs:
        Extra keyword arguments for the coordinator's
        :func:`repro.sequential.kcenter_outliers.kcenter_with_outliers`.
    realize:
        Also produce a full per-point assignment (output step, uncharged).
    backend, transport:
        Execution backend and transport policy for the per-site phases (see
        :mod:`repro.runtime`); the result is backend-invariant.  On the
        cluster backend the Gonzalez traversal stays runner-resident
        between rounds as mutable site state (digest/epoch-token wire
        protocol, see :mod:`repro.runtime.state`).
    memory_budget:
        Byte cap on any single distance block a party materialises (the
        traversal sweeps, the nearest-candidate attachment and the
        coordinator's weighted solve all run blocked); ``None`` keeps the
        dense behaviour and the result is bit-identical for every setting.
    prefetch:
        Double-buffered background tile prefetch for memmap-backed blocks
        (``None`` = auto: on exactly when a matrix streams from disk);
        never changes the result.
    async_rounds:
        Stream the round joins (the coordinator absorbs each completed
        site's witness curve while others still compute); never changes
        the result.
    trace:
        ``True`` attaches a :class:`~repro.obs.trace.Tracer` to the result
        (``result.trace``) recording the run's spans, events and counters;
        ``False`` (default) is the zero-overhead no-op (see :mod:`repro.obs`).
    retry:
        A :class:`~repro.cluster.recovery.RetryPolicy` enabling
        fault-tolerant rounds on the cluster backend (runner deaths are
        recovered by deterministic re-pin and dispatch-log replay, results
        stay bit-identical); ``None`` (default) keeps fail-fast behaviour
        and in-process backends ignore the policy.
    telemetry:
        ``True`` or a :class:`~repro.obs.live.TelemetrySession` turns on the
        live-telemetry plane for this run: background resource sampling on
        the coordinator and (on the cluster backend, over heartbeat frames)
        every runner, mid-run metric snapshots to the session's
        Prometheus/JSONL sinks, and structured span-correlated logs in the
        session's run log.  Telemetry implies tracing — an untraced run
        gets a session-private tracer.  ``False`` (default) resolves to the
        shared inert :data:`~repro.obs.live.NULL_TELEMETRY` — zero per-task
        allocation, results bit-identical either way.
    """
    if instance.objective != "center":
        raise ValueError("distributed_partial_center requires a center-objective instance")
    if rho < 1:
        raise ValueError(f"rho must be >= 1, got {rho}")

    k, t = instance.k, instance.t
    metric = instance.metric
    words_per_point = instance.words_per_point()
    network = StarNetwork(instance)
    generator = ensure_rng(rng)
    site_rngs = spawn_rngs(generator, network.n_sites)
    policy = resolve_transport(transport)
    mem_budget = resolve_memory_budget(memory_budget)
    tracer = resolve_tracer(trace)
    telemetry_session = resolve_telemetry(telemetry)
    if telemetry_session.enabled:
        # Telemetry implies tracing: gauges and samples live on a tracer.
        tracer = telemetry_session.adopt_tracer(tracer)
    network.tracer = tracer if tracer.enabled else None

    with shard_scratch(mem_budget) as workdir, telemetry_scope(
        telemetry_session
    ), trace_run(
        tracer, "run", algorithm="algorithm2_center", objective="center"
    ):
        with backend_scope(backend) as exec_backend:
            apply_retry_policy(exec_backend, retry)
            apply_telemetry(exec_backend, telemetry_session)
            # --------------------------------------------------------------
            # Round 1: Gonzalez traversals and witness curves.
            # --------------------------------------------------------------
            network.next_round()
            marginals: list = [None] * network.n_sites

            def _absorb_curve(result):
                with network.coordinator.timer.measure("allocation"), tracer.span(
                    "allocation", site=result.site_id
                ):
                    curve = network.coordinator.messages_from(
                        result.site_id, "witness_curve"
                    )[0].payload
                    marginals[result.site_id] = curve.marginals_from_grid(t)

            round1 = run_site_tasks(
                network,
                [
                    SiteTask(i, _round1_center_task, args=(k, t, rho, mem_budget), rng=site_rngs[i])
                    for i in range(network.n_sites)
                ],
                backend=exec_backend,
                transport=policy,
                async_rounds=async_rounds,
                consume=_absorb_curve,
            )
            site_rngs = [r.rng for r in round1]

            with network.coordinator.timer.measure("allocation"), tracer.span("allocation"):
                budget = int(math.floor(rho * t))
                allocation = allocate_outlier_budget(marginals, budget)

            # --------------------------------------------------------------
            # Round 2: allocations out, weighted candidate sets back, final solve.
            # --------------------------------------------------------------
            network.next_round()
            for site in network.sites:
                t_i = int(allocation.t_allocated[site.site_id])
                network.send_to_site(
                    site.site_id,
                    "allocation",
                    {"t_i": t_i, "threshold": allocation.threshold},
                    words=2,
                )
            run_site_tasks(
                network,
                [
                    SiteTask(
                        i, _round2_center_task,
                        args=(k, words_per_point, mem_budget, prefetch),
                        rng=site_rngs[i],
                    )
                    for i in range(network.n_sites)
                ],
                backend=exec_backend,
                transport=policy,
                async_rounds=async_rounds,
            )
            summaries = [
                network.coordinator.messages_from(i, "local_solution")[0].payload
                for i in range(network.n_sites)
            ]

        with network.coordinator.timer.measure("final_solve"), tracer.span("final_solve"):
            combine = combine_preclusters(
                metric,
                summaries,
                k,
                t,
                objective="center",
                rng=generator,
                realize=realize,
                coordinator_solver_kwargs=coordinator_solver_kwargs,
                memory_budget=mem_budget,
                prefetch=prefetch,
                workdir=workdir,
            )

        result = DistributedResult(
            centers=combine.centers_global,
            outlier_budget=float(t),
            objective="center",
            cost=float(combine.coordinator_solution.cost),
            ledger=network.ledger,
            rounds=network.current_round,
            outliers=combine.realized_outliers if realize else combine.explicit_outliers,
            site_time=network.site_times(),
            coordinator_time=network.coordinator_time(),
            coordinator_solution=combine.coordinator_solution,
            trace=tracer if tracer.enabled else None,
            metadata={
                "algorithm": "algorithm2_center",
                "rho": float(rho),
                "t_allocated": allocation.t_allocated.tolist(),
                "threshold": float(allocation.threshold),
                "exceptional_site": allocation.exceptional_site,
                "n_coordinator_demands": int(combine.demand_points.size),
                "realized_assignment": combine.realized_assignment,
                "memory_budget": mem_budget,
                "async_rounds": bool(async_rounds),
            },
        )
        return result



__all__ = ["distributed_partial_center"]
