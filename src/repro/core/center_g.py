"""Algorithm 4: distributed uncertain ``(k, t)``-center-g.

The *global* center objective ``E[max_j d(sigma(j), pi(j))]`` does not
decompose per node, so the compressed-graph reduction of Algorithm 3 does not
apply.  Following Guha-Munagala, the algorithm works with the truncated
distance ``L_tau(x, y) = max{d(x, y) - tau, 0}`` and its expectation
``rho_tau(j, u)``: if the optimum of the *median-type* problem under
``rho_tau`` is small compared to ``tau``, then ``tau`` is (up to constants)
an upper bound on the center-g optimum.

The algorithm sweeps a geometric grid of truncation radii
``T = {2^i d_min / 18}``.  For every ``tau`` the sites precluster their nodes
under ``rho_{6 tau}`` (exactly the Algorithm 1 machinery), and the
coordinator picks the smallest ``tau_hat`` whose allocated local costs sum to
at most ``12 tau_hat`` (Lemma 5.10).  The sites then ship their
``tau_hat``-preclusters — local outlier *nodes* travel with their full
distribution (``I`` words each) — and the coordinator finishes with a
weighted ``(k, (1+eps)t)``-center solve.  Total communication
``Õ(s k B + t I + s log Delta)`` over 2 rounds (Theorem 5.14).

The three site-local phases (distance extremes, per-``tau`` preclustering
sweep, ``tau_hat`` summary build) run through
:func:`repro.runtime.run_tasks` and fan out to any execution backend; the
per-``tau`` sweep dominates local time, so it is also where parallel
backends pay off most.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

import numpy as np

from repro.core.allocation import allocate_outlier_budget
from repro.core.preclustering import precluster_site
from repro.distributed.instance import UncertainDistributedInstance
from repro.distributed.messages import COORDINATOR, CommunicationLedger, Message
from repro.distributed.result import DistributedResult
from repro.metrics.blocked import (
    DEFAULT_REDUCTION_BUDGET,
    MemoryBudgetLike,
    materialize_rows,
    resolve_memory_budget,
    shard_scratch,
)
from repro.metrics.plan import ReductionPlan
from repro.obs.live import TelemetryLike, resolve_telemetry, telemetry_scope
from repro.obs.trace import TraceLike, resolve_tracer, trace_run
from repro.runtime.backends import (
    BackendLike,
    apply_retry_policy,
    apply_telemetry,
    backend_scope,
)
from repro.runtime.tasks import run_tasks
from repro.sequential.kcenter_outliers import kcenter_with_outliers
from repro.utils.rng import RngLike, ensure_rng, spawn_rngs
from repro.utils.timing import Timer


def truncation_grid(d_min: float, d_max: float, base: float = 2.0, extra_steps: int = 2) -> np.ndarray:
    """The grid ``T = {base^i * d_min / 18 : 0 <= i <= ceil(log_base Delta) + extra}``.

    The largest value exceeds ``d_max / 6``, so ``rho_{6 tau_max}`` vanishes and
    the parametric search of Lemma 5.10 always terminates.
    """
    if d_min <= 0 or d_max < d_min:
        raise ValueError("need 0 < d_min <= d_max")
    if base <= 1:
        raise ValueError(f"base must be > 1, got {base}")
    n_steps = int(math.ceil(math.log(d_max / d_min, base))) + 1 + int(extra_steps)
    return (d_min / 18.0) * base ** np.arange(n_steps + 1)


def _extremes_task(payload: dict) -> dict:
    """Site phase of round 1a: local distance extremes (O(1) words per site).

    One *fused* blocked pass: the ``|support|^2`` distance matrix the old
    phrasing materialised never exists — transient memory is one tile of at
    most the memory budget — and both extremes consume every tile of the
    single streaming pass (values are budget-independent either way).
    """
    uncertain = payload["uncertain"]
    shard = payload["shard"]
    budget = payload.get("memory_budget") or DEFAULT_REDUCTION_BUDGET
    timer = Timer()
    support = uncertain.support_union(shard)
    with timer.measure("extremes"):
        plan = ReductionPlan(
            uncertain.ground_metric, support, support,
            memory_budget=budget, prefetch=payload.get("prefetch"),
        )
        h_min = plan.add_min_positive()
        h_max = plan.add_max()
        plan.execute()
        d_min_i, d_max_i = h_min.value, h_max.value
    return {"timer": timer, "extremes": (d_min_i, d_max_i)}


def _tau_sweep_task(payload: dict) -> dict:
    """Site phase of round 1b: precluster the shard under every truncation radius."""
    uncertain = payload["uncertain"]
    shard = payload["shard"]
    taus = payload["taus"]
    rng = payload["rng"]
    timer = Timer()
    support = uncertain.support_union(shard)
    preclusters: Dict[float, object] = {}
    mem_budget = payload.get("memory_budget")
    workdir = payload.get("workdir")
    with timer.measure("precluster"):
        for tau in taus:
            # Row-blocked build: each node's expected-cost row is computed in
            # one call regardless of budget (bit-identical), spilling to a
            # disk shard when the matrix exceeds the budget.
            tau_scaled = 6.0 * float(tau)
            costs = materialize_rows(
                lambda rs: uncertain.expected_cost_matrix(
                    shard[rs], support, tau=tau_scaled
                ),
                shard.size,
                support.size,
                memory_budget=mem_budget,
                workdir=workdir,
            )
            local_k = min(payload["local_center_factor"] * payload["k"], shard.size)
            preclusters[float(tau)] = precluster_site(
                costs, local_k, payload["t"], objective="median", rho=payload["rho"],
                rng=rng, **payload["local_kwargs"],
            )
    # The per-tau collapse matrices re-derive bit-identically from
    # (uncertain, shard, tau): round 2 rebuilds the one it actually uses,
    # so none of them crosses a transport (SitePreclustering.__getstate__).
    # In-process backends never pickle the state and keep the matrices.
    for pre in preclusters.values():
        pre.rebuild_matrix = True
    words = float(sum(p.profile.words for p in preclusters.values()))
    return {
        "state": {"shard": shard, "support": support, "preclusters": preclusters, "local_k": local_k},
        "timer": timer,
        "rng": rng,
        "words": words,
        "profiles": {float(tau): p.profile for tau, p in preclusters.items()},
    }


def _center_g_round2(payload: dict) -> dict:
    """Site phase of round 2: ship the ``tau_hat`` precluster (outlier nodes in full)."""
    uncertain = payload["uncertain"]
    state = payload["state"]
    tau_hat = payload["tau_hat"]
    t_i = payload["t_i"]
    B = payload["B"]
    node_words = payload["node_words"]
    rng = payload["rng"]
    site_id = payload["site_id"]
    timer = Timer()
    demand_anchor: List[int] = []
    demand_node: List[Optional[int]] = []
    demand_weight: List[float] = []
    demand_origin: List[tuple] = []
    facility_candidates: List[np.ndarray] = []
    with timer.measure("round2"):
        precluster = state["preclusters"][tau_hat]
        if precluster.cost_matrix is None:
            # The sweep dropped the matrix in transit (rebuild_matrix):
            # re-derive the tau_hat collapse matrix from the resident
            # inputs, bit-identically to the round-1b build.
            shard = state["shard"]
            support = state["support"]
            costs = materialize_rows(
                lambda rs: uncertain.expected_cost_matrix(
                    shard[rs], support, tau=6.0 * float(tau_hat)
                ),
                shard.size,
                support.size,
                memory_budget=payload.get("memory_budget"),
                workdir=payload.get("workdir"),
            )
            if not isinstance(costs, np.memmap):
                costs = np.asarray(costs, dtype=float)
            precluster.cost_matrix = costs
        t_used = int(round(precluster.profile.snap_up_to_vertex(t_i)))
        t_used = min(t_used, state["shard"].size)
        solution = precluster.solution_for(
            t_used, state["local_k"], "median", rng=rng, **payload["local_kwargs"]
        )
        state["t_i"] = t_used
        state["solution"] = solution
        words = 0.0
        center_weights = solution.center_weights()
        support = state["support"]
        for c_local, weight in sorted(center_weights.items()):
            point = int(support[int(c_local)])
            demand_anchor.append(point)
            demand_node.append(None)
            demand_weight.append(float(weight))
            demand_origin.append((site_id, "center", int(c_local)))
            facility_candidates.append(np.asarray([point]))
            words += B + 1
        for j_local in solution.outlier_indices:
            node_global = int(state["shard"][int(j_local)])
            node = uncertain.nodes[node_global]
            demand_anchor.append(-1)
            demand_node.append(node_global)
            demand_weight.append(1.0)
            demand_origin.append((site_id, "outlier", int(j_local)))
            facility_candidates.append(node.support)
            words += node_words
    return {
        "state": state,
        "timer": timer,
        "rng": rng,
        "words": words,
        "demand_anchor": demand_anchor,
        "demand_node": demand_node,
        "demand_weight": demand_weight,
        "demand_origin": demand_origin,
        "facility_candidates": facility_candidates,
    }


def distributed_uncertain_center_g(
    instance: UncertainDistributedInstance,
    *,
    epsilon: float = 0.5,
    rho: float = 2.0,
    tau_base: float = 2.0,
    cost_budget_factor: float = 12.0,
    local_center_factor: int = 2,
    rng: RngLike = None,
    local_solver_kwargs: Optional[dict] = None,
    coordinator_solver_kwargs: Optional[dict] = None,
    backend: BackendLike = None,
    memory_budget: MemoryBudgetLike = None,
    prefetch: Optional[bool] = None,
    async_rounds: bool = False,
    trace: TraceLike = False,
    retry: Optional["RetryPolicy"] = None,
    telemetry: TelemetryLike = False,
) -> DistributedResult:
    """Distributed uncertain ``(k, (1+eps)t)``-center-g (Theorem 5.14).

    Parameters
    ----------
    instance:
        Uncertain input partitioned by node; any declared objective is
        accepted but the result is always a center-g clustering.
    epsilon:
        Outlier relaxation of the coordinator's final center solve.
    rho:
        Budget multiplier / grid ratio of the per-``tau`` preclusterings.
    tau_base:
        Ratio of the geometric truncation grid (``2`` in the paper).
    cost_budget_factor:
        The constant in the stopping rule ``sum_i Csol <= factor * tau``
        (``12`` in Lemma 5.10).
    backend:
        Execution backend for the per-site phases (see
        :mod:`repro.runtime`); the result is backend-invariant.  The
        per-``tau`` sweeps go through structure-free
        :func:`~repro.runtime.run_tasks` payloads; on the cluster backend
        the repeated components (shards, collapse matrices, round-1 state)
        ship once as content-addressed digests
        (:mod:`repro.cluster.payloads`) and the frames travel compressed
        under the wire codec policy, so the wire ledger now prices this
        protocol within the same bytes-per-word band as the others.
    memory_budget:
        Byte cap on any single distance/cost block (distance extremes, the
        per-``tau`` sweep matrices and the coordinator solve all run
        blocked, spilling to disk shards beyond the budget); results are
        bit-identical for every setting.
    prefetch:
        Background tile prefetch knob for memmap-backed cost blocks
        (``None`` = auto); never changes the result.
    async_rounds:
        Stream the round joins — the coordinator absorbs each completed
        site's extremes / per-``tau`` profiles / summaries while later
        sites still compute; never changes the result.
    trace:
        ``True`` attaches a :class:`~repro.obs.trace.Tracer` to the result
        (``result.trace``) recording the run's spans, events and counters;
        ``False`` (default) is the zero-overhead no-op (see :mod:`repro.obs`).
    retry:
        A :class:`~repro.cluster.recovery.RetryPolicy` enabling
        fault-tolerant rounds on the cluster backend (runner deaths are
        recovered by deterministic re-pin and dispatch-log replay, results
        stay bit-identical); ``None`` (default) keeps fail-fast behaviour
        and in-process backends ignore the policy.
    telemetry:
        ``True`` or a :class:`~repro.obs.live.TelemetrySession` turns on the
        live-telemetry plane for this run: background resource sampling on
        the coordinator and (on the cluster backend, over heartbeat frames)
        every runner, mid-run metric snapshots to the session's
        Prometheus/JSONL sinks, and structured span-correlated logs in the
        session's run log.  Telemetry implies tracing — an untraced run
        gets a session-private tracer.  ``False`` (default) resolves to the
        shared inert :data:`~repro.obs.live.NULL_TELEMETRY` — zero per-task
        allocation, results bit-identical either way.
    """
    if epsilon <= 0 or rho <= 1:
        raise ValueError("epsilon must be positive and rho > 1")
    uncertain = instance.uncertain
    ground = uncertain.ground_metric
    k, t = instance.k, instance.t
    B = instance.words_per_point()
    s = instance.n_sites
    generator = ensure_rng(rng)
    site_rngs = spawn_rngs(generator, s)
    local_kwargs = dict(local_solver_kwargs or {})
    mem_budget = resolve_memory_budget(memory_budget)
    if mem_budget is not None:
        local_kwargs.setdefault("memory_budget", mem_budget)
    if prefetch is not None:
        local_kwargs.setdefault("prefetch", prefetch)

    ledger = CommunicationLedger()
    site_timers = [Timer() for _ in range(s)]
    coord_timer = Timer()
    tracer = resolve_tracer(trace)
    telemetry_session = resolve_telemetry(telemetry)
    if telemetry_session.enabled:
        # Telemetry implies tracing: gauges and samples live on a tracer.
        tracer = telemetry_session.adopt_tracer(tracer)

    with shard_scratch(mem_budget) as workdir, telemetry_scope(
        telemetry_session
    ), trace_run(
        tracer, "run", algorithm="algorithm4_center_g", objective="center-g"
    ):
        with backend_scope(backend) as exec_backend:
            apply_retry_policy(exec_backend, retry)
            apply_telemetry(exec_backend, telemetry_session)
            # --------------------------------------------------------------
            # Round 1a: every party reports its local distance extremes (O(s) words).
            # --------------------------------------------------------------
            local_extremes: List[tuple] = [None] * s

            def _absorb_extremes(i, out):
                site_timers[i].merge(out["timer"])
                local_extremes[i] = out["extremes"]
                ledger.record(Message(i, COORDINATOR, 1, "extremes", 2, out["extremes"]))

            run_tasks(
                _extremes_task,
                [
                    {
                        "uncertain": uncertain,
                        "shard": instance.shard(i),
                        "memory_budget": mem_budget,
                        "prefetch": prefetch,
                    }
                    for i in range(s)
                ],
                backend=exec_backend,
                ledger=ledger,
                round_index=1,
                async_rounds=async_rounds,
                consume=_absorb_extremes,
                tracer=tracer,
            )
            d_min = min(e[0] for e in local_extremes if e[0] > 0)
            d_max = max(e[1] for e in local_extremes)
            taus = truncation_grid(d_min, d_max, base=tau_base)

            # --------------------------------------------------------------
            # Round 1b: per-tau compressed preclustering profiles.
            # --------------------------------------------------------------
            site_state: List[dict] = [None] * s

            def _absorb_sweep(i, out):
                site_state[i] = out["state"]
                site_timers[i].merge(out["timer"])
                site_rngs[i] = out["rng"]
                ledger.record(Message(i, COORDINATOR, 1, "tau_profiles", out["words"], out["profiles"]))

            run_tasks(
                _tau_sweep_task,
                [
                    {
                        "uncertain": uncertain,
                        "shard": instance.shard(i),
                        "taus": taus,
                        "k": k,
                        "t": t,
                        "rho": rho,
                        "local_center_factor": local_center_factor,
                        "local_kwargs": local_kwargs,
                        "rng": site_rngs[i],
                        "memory_budget": mem_budget,
                        "workdir": workdir,
                    }
                    for i in range(s)
                ],
                backend=exec_backend,
                ledger=ledger,
                round_index=1,
                async_rounds=async_rounds,
                consume=_absorb_sweep,
                tracer=tracer,
            )

            # Coordinator: parametric search for tau_hat (Algorithm 4, line 6).
            with coord_timer.measure("tau_search"), tracer.span("tau_search"):
                budget = int(math.floor(rho * t))
                tau_hat = float(taus[-1])
                allocation_hat = None
                for tau in taus:
                    profiles = [site_state[i]["preclusters"][float(tau)].profile for i in range(s)]
                    allocation = allocate_outlier_budget([p.marginals() for p in profiles], budget)
                    total_cost = float(
                        sum(profiles[i](int(allocation.t_allocated[i])) for i in range(s))
                    )
                    if total_cost <= cost_budget_factor * float(tau):
                        tau_hat = float(tau)
                        allocation_hat = allocation
                        break
                if allocation_hat is None:
                    profiles = [site_state[i]["preclusters"][float(taus[-1])].profile for i in range(s)]
                    allocation_hat = allocate_outlier_budget([p.marginals() for p in profiles], budget)

            # --------------------------------------------------------------
            # Round 2: tau_hat + allocations out; preclusters (with full outlier
            # node distributions) back.
            # --------------------------------------------------------------
            for i in range(s):
                ledger.record(
                    Message(COORDINATOR, i, 2, "allocation", 2,
                            {"tau": tau_hat, "t_i": int(allocation_hat.t_allocated[i])})
                )
            demand_anchor: List[int] = []
            demand_node: List[Optional[int]] = []   # global node id when the demand is a shipped node
            demand_weight: List[float] = []
            demand_origin: List[tuple] = []
            facility_candidates: List[np.ndarray] = []

            def _absorb_round2(i, out):
                site_state[i] = out["state"]
                site_timers[i].merge(out["timer"])
                site_rngs[i] = out["rng"]
                demand_anchor.extend(out["demand_anchor"])
                demand_node.extend(out["demand_node"])
                demand_weight.extend(out["demand_weight"])
                demand_origin.extend(out["demand_origin"])
                facility_candidates.extend(out["facility_candidates"])
                ledger.record(Message(i, COORDINATOR, 2, "local_solution", out["words"], None))

            run_tasks(
                _center_g_round2,
                [
                    {
                        "uncertain": uncertain,
                        "site_id": i,
                        "state": site_state[i],
                        "tau_hat": tau_hat,
                        "t_i": int(allocation_hat.t_allocated[i]),
                        "B": B,
                        "node_words": instance.node_words(),
                        "local_kwargs": local_kwargs,
                        "rng": site_rngs[i],
                        "memory_budget": mem_budget,
                        "workdir": workdir,
                    }
                    for i in range(s)
                ],
                backend=exec_backend,
                ledger=ledger,
                round_index=2,
                async_rounds=async_rounds,
                consume=_absorb_round2,
                tracer=tracer,
            )

        # ------------------------------------------------------------------
        # Coordinator: weighted (k, (1+eps)t)-center over what it received.
        # ------------------------------------------------------------------
        with coord_timer.measure("final_solve"), tracer.span("final_solve"):
            facility_points = np.unique(np.concatenate(facility_candidates))
            n_demands = len(demand_anchor)

            def _demand_rows(row_slice: slice) -> np.ndarray:
                block = np.empty((row_slice.stop - row_slice.start, facility_points.size))
                for pos, row in enumerate(range(row_slice.start, row_slice.stop)):
                    if demand_node[row] is None:
                        block[pos] = ground.pairwise([demand_anchor[row]], facility_points)[0]
                    else:
                        node = uncertain.nodes[int(demand_node[row])]
                        block[pos] = node.expected_distances(ground, facility_points)
                return block

            # Row-blocked (each demand row is computed in one call regardless of
            # budget, so entries are bit-identical), spilling to a disk shard
            # when the matrix exceeds the budget.
            cost_matrix = materialize_rows(
                _demand_rows, n_demands, facility_points.size,
                memory_budget=mem_budget, workdir=workdir,
            )
            weights_arr = np.asarray(demand_weight, dtype=float)
            outlier_budget = float(math.floor((1.0 + epsilon) * t + 1e-9))
            coordinator_solution = kcenter_with_outliers(
                cost_matrix, k, outlier_budget, weights=weights_arr,
                memory_budget=mem_budget, prefetch=prefetch,
                **dict(coordinator_solver_kwargs or {}),
            )
            centers_global = facility_points[coordinator_solution.centers]

        # Output: per-node assignment (uncharged output step).
        node_assignment: Dict[int, int] = {}
        node_outliers: List[int] = []
        assignment_arr = coordinator_solution.assignment
        dropped = (
            coordinator_solution.dropped_weight
            if coordinator_solution.dropped_weight is not None
            else np.zeros(n_demands)
        )
        for idx, (site_id, kind, payload) in enumerate(demand_origin):
            target = int(facility_points[assignment_arr[idx]]) if assignment_arr[idx] >= 0 else -1
            state = site_state[site_id]
            if kind == "outlier":
                node_global = int(state["shard"][int(payload)])
                if target < 0:
                    node_outliers.append(node_global)
                else:
                    node_assignment[node_global] = target
                continue
            c_local = int(payload)
            members_local = np.flatnonzero(state["solution"].assignment == c_local)
            # The center objective never partially drops aggregated weight, so a
            # center demand is either fully served or fully dropped.
            fully_dropped = target < 0 or dropped[idx] >= weights_arr[idx] - 1e-9
            for j_local in members_local:
                node_global = int(state["shard"][int(j_local)])
                if fully_dropped:
                    node_outliers.append(node_global)
                else:
                    node_assignment[node_global] = target

        return DistributedResult(
            centers=centers_global,
            outlier_budget=outlier_budget,
            objective="center-g",
            cost=float(coordinator_solution.cost),
            ledger=ledger,
            rounds=2,
            outliers=np.asarray(sorted(set(node_outliers)), dtype=int),
            site_time={i: float(sum(site_timers[i].totals.values())) for i in range(s)},
            coordinator_time=float(sum(coord_timer.totals.values())),
            coordinator_solution=coordinator_solution,
            trace=tracer if tracer.enabled else None,
            metadata={
                "algorithm": "algorithm4_center_g",
                "epsilon": float(epsilon),
                "rho": float(rho),
                "tau_grid": taus.tolist(),
                "tau_hat": tau_hat,
                "d_min": d_min,
                "d_max": d_max,
                "spread": d_max / d_min if d_min > 0 else float("inf"),
                "t_allocated": allocation_hat.t_allocated.tolist(),
                "node_assignment": node_assignment,
                "n_coordinator_demands": int(n_demands),
                "memory_budget": mem_budget,
                "async_rounds": bool(async_rounds),
            },
        )



__all__ = ["distributed_uncertain_center_g", "truncation_grid"]
