"""Lower convex hulls of local cost curves (Algorithm 1, lines 2-5).

Each site evaluates its local cost ``Csol(A_i, 2k, q)`` only at the ``O(log t)``
grid points ``q in I`` and sends the *lower convex hull* of those evaluations.
The hull induces a convex, non-increasing, piecewise-linear function
``f_i : {0, ..., t} -> R`` whose marginal decreases

    l(i, q) = f_i(q - 1) - f_i(q),   q = 1..t

are non-increasing in ``q`` — exactly the property the budget allocation
(Lemma 3.3) needs.  Taking the hull instead of the raw costs has only a mild
effect on the solution cost (Section 3) and is what makes the ``Õ(t)``
communication possible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np


def lower_convex_hull(qs: Sequence[float], costs: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Lower convex hull of the points ``{(q, cost)}``.

    Returns the hull vertices ``(hull_qs, hull_costs)`` in increasing ``q``
    order.  The input need not be sorted; duplicate ``q`` values keep their
    minimum cost.  The hull of a non-increasing cost curve is itself
    non-increasing and convex.
    """
    qs = np.asarray(qs, dtype=float)
    costs = np.asarray(costs, dtype=float)
    if qs.shape != costs.shape or qs.ndim != 1:
        raise ValueError("qs and costs must be one-dimensional arrays of equal length")
    if qs.size == 0:
        raise ValueError("need at least one point to build a hull")

    order = np.argsort(qs, kind="stable")
    qs, costs = qs[order], costs[order]
    # Deduplicate q values keeping the cheapest cost.
    uq, inverse = np.unique(qs, return_inverse=True)
    ucost = np.full(uq.size, np.inf)
    np.minimum.at(ucost, inverse, costs)

    # Andrew's monotone chain, lower hull only.
    hull: list = []
    for x, y in zip(uq, ucost):
        while len(hull) >= 2:
            (x1, y1), (x2, y2) = hull[-2], hull[-1]
            # Keep the hull turning counter-clockwise (convex from below):
            # drop the middle point if it lies on or above the chord.
            cross = (x2 - x1) * (y - y1) - (y2 - y1) * (x - x1)
            if cross <= 1e-15 * max(1.0, abs(y1), abs(y)):
                hull.pop()
            else:
                break
        hull.append((float(x), float(y)))
    hx = np.asarray([p[0] for p in hull])
    hy = np.asarray([p[1] for p in hull])
    return hx, hy


@dataclass
class CostProfile:
    """A convex, non-increasing local cost function ``f_i`` on ``{0, ..., t}``.

    Built from hull vertices (``hull_qs``, ``hull_costs``); evaluation between
    vertices is linear interpolation and evaluation beyond the last vertex is
    constant (the local cost cannot increase when more outliers are allowed).

    The profile is also the unit of *communication*: a site transmits its
    vertices, costing ``2 * n_vertices`` words (Algorithm 1, line 5).
    """

    hull_qs: np.ndarray
    hull_costs: np.ndarray
    t_max: int

    def __post_init__(self) -> None:
        self.hull_qs = np.asarray(self.hull_qs, dtype=float)
        self.hull_costs = np.asarray(self.hull_costs, dtype=float)
        if self.hull_qs.ndim != 1 or self.hull_qs.shape != self.hull_costs.shape:
            raise ValueError("hull arrays must be one-dimensional and of equal length")
        if self.hull_qs.size == 0:
            raise ValueError("profile needs at least one hull vertex")
        if np.any(np.diff(self.hull_qs) <= 0):
            raise ValueError("hull q values must be strictly increasing")
        if self.t_max < 0:
            raise ValueError(f"t_max must be non-negative, got {self.t_max}")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_evaluations(
        cls, qs: Sequence[float], costs: Sequence[float], t_max: int
    ) -> "CostProfile":
        """Build the profile from raw ``(q, Csol(A_i, 2k, q))`` evaluations."""
        hx, hy = lower_convex_hull(qs, costs)
        return cls(hull_qs=hx, hull_costs=hy, t_max=int(t_max))

    @classmethod
    def constant_zero(cls, t_max: int) -> "CostProfile":
        """Profile of a site whose local cost is already zero for every ``q``."""
        return cls(hull_qs=np.asarray([0.0]), hull_costs=np.asarray([0.0]), t_max=int(t_max))

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    @property
    def n_vertices(self) -> int:
        """Number of hull vertices."""
        return int(self.hull_qs.size)

    @property
    def words(self) -> float:
        """Words needed to transmit the profile (one ``(q, cost)`` pair per vertex)."""
        return float(2 * self.n_vertices)

    def evaluate(self, q) -> np.ndarray:
        """``f_i(q)`` by linear interpolation (constant beyond the last vertex)."""
        q = np.asarray(q, dtype=float)
        return np.interp(q, self.hull_qs, self.hull_costs)

    def __call__(self, q):
        scalar = np.isscalar(q)
        out = self.evaluate(q)
        return float(out) if scalar else out

    def marginals(self) -> np.ndarray:
        """The marginal gains ``l(i, q) = f_i(q-1) - f_i(q)`` for ``q = 1..t_max``.

        Non-negative and non-increasing by convexity; clipped at zero against
        floating-point noise.
        """
        if self.t_max == 0:
            return np.empty(0, dtype=float)
        values = self.evaluate(np.arange(self.t_max + 1))
        return np.maximum(values[:-1] - values[1:], 0.0)

    # ------------------------------------------------------------------
    # Vertex queries (Lemma 3.4 / Algorithm 1 line 13)
    # ------------------------------------------------------------------

    def is_vertex(self, q: float, atol: float = 1e-9) -> bool:
        """True if ``q`` coincides with a hull vertex (so ``f_i(q)`` equals a real local solve)."""
        return bool(np.any(np.abs(self.hull_qs - q) <= atol))

    def snap_up_to_vertex(self, q: float) -> float:
        """Smallest hull vertex ``>= q`` (or the largest vertex if none is bigger).

        This is the Algorithm 1, line 13 adjustment for the exceptional site:
        its allocated ``t_i`` may fall strictly inside a hull segment, where
        ``f_i`` is an interpolation rather than an actually computed solution,
        so it rounds up to the next computed grid point.
        """
        candidates = self.hull_qs[self.hull_qs >= q - 1e-9]
        if candidates.size == 0:
            return float(self.hull_qs[-1])
        return float(candidates[0])

    def snap_down_to_vertex(self, q: float) -> float:
        """Largest hull vertex ``<= q`` (or the smallest vertex if none is smaller)."""
        candidates = self.hull_qs[self.hull_qs <= q + 1e-9]
        if candidates.size == 0:
            return float(self.hull_qs[0])
        return float(candidates[-1])

    def bracketing_vertices(self, q: float) -> Tuple[float, float]:
        """The hull vertices immediately below and above ``q`` (Theorem 3.8's ``t_{i,1}, t_{i,2}``)."""
        return self.snap_down_to_vertex(q), self.snap_up_to_vertex(q)


__all__ = ["CostProfile", "lower_convex_hull"]
