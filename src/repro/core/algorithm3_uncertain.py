"""Algorithm 3: distributed partial clustering of uncertain data.

Uncertain median / means / center-pp reduce to deterministic clustering on
the *compressed graph* (Definition 5.2): each node ``j`` collapses to its
1-median ``y_j`` (1-mean ``y'_j`` for means), and the collapse cost
``l_j = E[d(sigma(j), y_j)]`` rides along as an additive offset.  Lemmas
5.3-5.5 show this loses only a constant factor.  Crucially, a site can
evaluate all compressed-graph distances *locally* — ``d_G(p_j, u) = l_j +
d(y_j, u)`` needs only the node's own collapse data — so Algorithm 1 (or 2)
runs unchanged on the compressed instance.  Whenever a node would be shipped
(a local outlier), the site sends its anchor ``y_j`` and collapse cost
instead of the full distribution, keeping the communication at
``Õ((sk + t) B)`` rather than ``Õ((sk + t) I)`` (Theorem 5.6).

Site-local phases (collapse + preclustering, and the round-2 summary build)
run through :func:`repro.runtime.run_tasks`, so they fan out to any
execution backend; the coordinator merges per-site contributions in site-id
order, keeping results and ledger word counts backend-invariant.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

import numpy as np

from repro.core.allocation import allocate_outlier_budget
from repro.core.preclustering import precluster_site
from repro.distributed.instance import UncertainDistributedInstance
from repro.distributed.messages import CommunicationLedger, Message, COORDINATOR
from repro.distributed.result import DistributedResult
from repro.metrics.blocked import (
    MemoryBudgetLike,
    materialize,
    memmap_handle,
    resolve_memory_budget,
    shard_scratch,
)
from repro.obs.live import TelemetryLike, resolve_telemetry, telemetry_scope
from repro.obs.trace import TraceLike, resolve_tracer, trace_run
from repro.runtime.backends import (
    BackendLike,
    apply_retry_policy,
    apply_telemetry,
    backend_scope,
)
from repro.runtime.tasks import run_tasks
from repro.sequential.bicriteria import bicriteria_solve
from repro.sequential.kcenter_outliers import kcenter_with_outliers
from repro.uncertain.collapse import collapse_nodes
from repro.utils.rng import RngLike, ensure_rng, spawn_rngs
from repro.utils.timing import Timer


def _local_compressed_costs(
    anchors: np.ndarray,
    collapse: np.ndarray,
    ground_metric,
    objective: str,
    memory_budget=None,
    workdir=None,
) -> np.ndarray:
    """Node-by-node compressed-graph assignment costs within one site.

    Demand ``j`` (a node) served by facility ``j'`` (the anchor of another
    local node) costs ``l_j + d(y_j, y_{j'})`` for median/center-pp, and
    ``l'_j + d^2(y'_j, y'_{j'})`` for means (Lemma 5.5(b)).

    Under a ``memory_budget`` the matrix is produced in row blocks (squaring
    and collapse offsets are per-row, so entries are bit-identical) and
    spills to a disk shard under ``workdir`` when larger than the budget.
    """
    def transform(block, row_slice):
        if objective == "means":
            block = block * block
        return block + collapse[row_slice][:, None]

    return materialize(
        ground_metric,
        anchors,
        anchors,
        transform=transform,
        memory_budget=memory_budget,
        workdir=workdir,
    )


def _uncertain_round1(payload: dict) -> dict:
    """Site phase of round 1: collapse the shard and precluster its compressed graph."""
    uncertain = payload["uncertain"]
    shard = payload["shard"]
    objective = payload["objective"]
    rng = payload["rng"]
    ground = uncertain.ground_metric
    timer = Timer()
    with timer.measure("collapse"):
        nodes = [uncertain.nodes[int(j)] for j in shard]
        anchors, collapse = collapse_nodes(nodes, ground, objective)
    with timer.measure("precluster"):
        costs = _local_compressed_costs(
            anchors, collapse, ground, objective,
            payload.get("memory_budget"), payload.get("workdir"),
        )
        local_k = min(payload["local_center_factor"] * payload["k"], shard.size)
        precluster = precluster_site(
            costs, local_k, payload["t"],
            objective="means" if objective == "means" else "median",
            rho=payload["rho"], rng=rng, **payload["local_kwargs"],
        )
    return {
        "state": {
            "shard": shard,
            "anchors": anchors,
            "collapse": collapse,
            "precluster": precluster,
            "local_k": local_k,
            "cost_storage": "memmap" if memmap_handle(costs) else "dense",
        },
        "timer": timer,
        "rng": rng,
    }


def _uncertain_round2(payload: dict) -> dict:
    """Site phase of round 2: local solve at the allocation, summary demands out."""
    state = payload["state"]
    objective = payload["objective"]
    t_i = payload["t_i"]
    B = payload["B"]
    rng = payload["rng"]
    site_id = payload["site_id"]
    timer = Timer()
    demand_anchor: List[int] = []
    demand_offset: List[float] = []
    demand_weight: List[float] = []
    demand_origin: List[tuple] = []
    with timer.measure("round2"):
        precluster = state["precluster"]
        t_used = int(round(precluster.profile.snap_up_to_vertex(t_i)))
        t_used = min(t_used, state["shard"].size)
        solution = precluster.solution_for(
            t_used, state["local_k"], "means" if objective == "means" else "median",
            rng=rng, **payload["local_kwargs"],
        )
        state["t_i"] = t_used
        state["solution"] = solution

        # Local centers: facility index -> the anchor ground point; weight
        # = number of nodes attached.
        center_weights = solution.center_weights()
        words = 0.0
        for c_local, weight in sorted(center_weights.items()):
            anchor_point = int(state["anchors"][int(c_local)])
            demand_anchor.append(anchor_point)
            demand_offset.append(0.0)
            demand_weight.append(float(weight))
            demand_origin.append((site_id, "center", int(c_local)))
            words += B + 1  # the point plus its count
        # Local outliers: ship (y_j, l_j) per node (Algorithm 3, line 4).
        for j_local in solution.outlier_indices:
            demand_anchor.append(int(state["anchors"][int(j_local)]))
            demand_offset.append(float(state["collapse"][int(j_local)]))
            demand_weight.append(1.0)
            demand_origin.append((site_id, "outlier", int(j_local)))
            words += B + 1
    return {
        "state": state,
        "timer": timer,
        "rng": rng,
        "words": words,
        "demand_anchor": demand_anchor,
        "demand_offset": demand_offset,
        "demand_weight": demand_weight,
        "demand_origin": demand_origin,
    }


def distributed_uncertain_clustering(
    instance: UncertainDistributedInstance,
    *,
    epsilon: float = 0.5,
    rho: float = 2.0,
    local_center_factor: int = 2,
    rng: RngLike = None,
    local_solver_kwargs: Optional[dict] = None,
    coordinator_solver_kwargs: Optional[dict] = None,
    backend: BackendLike = None,
    memory_budget: MemoryBudgetLike = None,
    prefetch: Optional[bool] = None,
    async_rounds: bool = False,
    trace: TraceLike = False,
    retry: Optional["RetryPolicy"] = None,
    telemetry: TelemetryLike = False,
) -> DistributedResult:
    """Distributed uncertain ``(k, (1+eps)t)``-median/means/center-pp (Theorem 5.6).

    Parameters
    ----------
    instance:
        The uncertain input with nodes partitioned across sites; the
        objective must be ``"median"``, ``"means"`` or ``"center"``
        (interpreted as center-pp).
    epsilon, rho, local_center_factor:
        As in :func:`repro.core.algorithm1.distributed_partial_median`.
    backend:
        Execution backend for the per-site phases (see
        :mod:`repro.runtime`); the result is backend-invariant.  This
        protocol manages its own coordinator-held per-site dicts through
        structure-free :func:`~repro.runtime.run_tasks` payloads, so the
        cluster backend's runner-resident *site* state
        (:mod:`repro.runtime.state`) does not apply — its round payloads
        are re-shipped per task, which the wire ledger reports honestly.
    memory_budget:
        Byte cap on any single compressed-cost block; site matrices larger
        than the budget stream from disk shards (bit-identical results for
        every setting).
    prefetch:
        Background tile prefetch knob for memmap-backed cost blocks
        (``None`` = auto); never changes the result.
    async_rounds:
        Stream the round joins — the coordinator absorbs each completed
        site's profile/summary (and its allocation marginals) while later
        sites still compute; never changes the result.
    trace:
        ``True`` attaches a :class:`~repro.obs.trace.Tracer` to the result
        (``result.trace``) recording the run's spans, events and counters;
        ``False`` (default) is the zero-overhead no-op (see :mod:`repro.obs`).
    retry:
        A :class:`~repro.cluster.recovery.RetryPolicy` enabling
        fault-tolerant rounds on the cluster backend (runner deaths are
        recovered by deterministic re-pin and dispatch-log replay, results
        stay bit-identical); ``None`` (default) keeps fail-fast behaviour
        and in-process backends ignore the policy.
    telemetry:
        ``True`` or a :class:`~repro.obs.live.TelemetrySession` turns on the
        live-telemetry plane for this run: background resource sampling on
        the coordinator and (on the cluster backend, over heartbeat frames)
        every runner, mid-run metric snapshots to the session's
        Prometheus/JSONL sinks, and structured span-correlated logs in the
        session's run log.  Telemetry implies tracing — an untraced run
        gets a session-private tracer.  ``False`` (default) resolves to the
        shared inert :data:`~repro.obs.live.NULL_TELEMETRY` — zero per-task
        allocation, results bit-identical either way.

    Returns
    -------
    DistributedResult
        ``centers`` are *ground point* indices (points of ``P``); ``outliers``
        are *node* indices; ``metadata["node_assignment"]`` maps every served
        node to its center for exact objective evaluation.
    """
    objective = str(instance.objective).lower()
    if objective not in ("median", "means", "center"):
        raise ValueError(f"unsupported uncertain objective {objective!r}")
    if epsilon <= 0 or rho <= 1:
        raise ValueError("epsilon must be positive and rho > 1")

    uncertain = instance.uncertain
    ground = uncertain.ground_metric
    k, t = instance.k, instance.t
    B = instance.words_per_point()
    s = instance.n_sites
    generator = ensure_rng(rng)
    site_rngs = spawn_rngs(generator, s)
    local_kwargs = dict(local_solver_kwargs or {})
    mem_budget = resolve_memory_budget(memory_budget)
    if mem_budget is not None:
        local_kwargs.setdefault("memory_budget", mem_budget)
    if prefetch is not None:
        local_kwargs.setdefault("prefetch", prefetch)

    ledger = CommunicationLedger()
    site_timers = [Timer() for _ in range(s)]
    coord_timer = Timer()
    tracer = resolve_tracer(trace)
    telemetry_session = resolve_telemetry(telemetry)
    if telemetry_session.enabled:
        # Telemetry implies tracing: gauges and samples live on a tracer.
        tracer = telemetry_session.adopt_tracer(tracer)

    with shard_scratch(mem_budget) as workdir, telemetry_scope(
        telemetry_session
    ), trace_run(
        tracer, "run", algorithm="algorithm3_uncertain", objective=objective
    ):
        with backend_scope(backend) as exec_backend:
            apply_retry_policy(exec_backend, retry)
            apply_telemetry(exec_backend, telemetry_session)
            # --------------------------------------------------------------
            # Round 1: collapse + compressed-graph preclustering profiles.
            # --------------------------------------------------------------
            site_state: List[dict] = [None] * s
            marginals: List = [None] * s

            def _absorb_round1(i, out):
                # Merged in site order; under async_rounds this runs while
                # later sites still collapse/precluster.
                site_state[i] = out["state"]
                site_timers[i].merge(out["timer"])
                site_rngs[i] = out["rng"]
                profile = out["state"]["precluster"].profile
                ledger.record(Message(i, COORDINATOR, 1, "cost_profile", profile.words, profile))
                with coord_timer.measure("allocation"), tracer.span("allocation", site=i):
                    marginals[i] = profile.marginals()

            run_tasks(
                _uncertain_round1,
                [
                    {
                        "uncertain": uncertain,
                        "shard": instance.shard(i),
                        "objective": objective,
                        "k": k,
                        "t": t,
                        "rho": rho,
                        "local_center_factor": local_center_factor,
                        "local_kwargs": local_kwargs,
                        "rng": site_rngs[i],
                        "memory_budget": mem_budget,
                        "workdir": workdir,
                    }
                    for i in range(s)
                ],
                backend=exec_backend,
                ledger=ledger,
                round_index=1,
                async_rounds=async_rounds,
                consume=_absorb_round1,
                tracer=tracer,
            )

            with coord_timer.measure("allocation"), tracer.span("allocation"):
                budget = int(math.floor(rho * t))
                allocation = allocate_outlier_budget(marginals, budget)

            # --------------------------------------------------------------
            # Round 2: allocations out; centers, counts and collapsed outliers back.
            # --------------------------------------------------------------
            for i in range(s):
                ledger.record(
                    Message(COORDINATOR, i, 2, "allocation", 3, {"t_i": int(allocation.t_allocated[i])})
                )
            demand_anchor: List[int] = []      # ground point each coordinator demand sits at
            demand_offset: List[float] = []    # additive collapse offset of the demand
            demand_weight: List[float] = []
            demand_origin: List[tuple] = []    # (site, kind, payload) for mapping back

            def _absorb_round2(i, out):
                site_state[i] = out["state"]
                site_timers[i].merge(out["timer"])
                site_rngs[i] = out["rng"]
                demand_anchor.extend(out["demand_anchor"])
                demand_offset.extend(out["demand_offset"])
                demand_weight.extend(out["demand_weight"])
                demand_origin.extend(out["demand_origin"])
                ledger.record(Message(i, COORDINATOR, 2, "local_solution", out["words"], None))

            run_tasks(
                _uncertain_round2,
                [
                    {
                        "site_id": i,
                        "state": site_state[i],
                        "objective": objective,
                        "t_i": int(allocation.t_allocated[i]),
                        "B": B,
                        "local_kwargs": local_kwargs,
                        "rng": site_rngs[i],
                    }
                    for i in range(s)
                ],
                backend=exec_backend,
                ledger=ledger,
                round_index=2,
                async_rounds=async_rounds,
                consume=_absorb_round2,
                tracer=tracer,
            )

        # ------------------------------------------------------------------
        # Coordinator: weighted clustering on the received compressed summary.
        # ------------------------------------------------------------------
        with coord_timer.measure("final_solve"), tracer.span("final_solve"):
            demand_anchor_arr = np.asarray(demand_anchor, dtype=int)
            demand_offset_arr = np.asarray(demand_offset, dtype=float)
            demand_weight_arr = np.asarray(demand_weight, dtype=float)
            facility_points = np.unique(demand_anchor_arr)
            cost_matrix = materialize(
                ground,
                demand_anchor_arr,
                facility_points,
                transform=lambda block, rs: (
                    (block * block if objective == "means" else block)
                    + demand_offset_arr[rs][:, None]
                ),
                memory_budget=mem_budget,
                workdir=workdir,
            )

            coordinator_kwargs = dict(coordinator_solver_kwargs or {})
            if objective == "center":
                coordinator_solution = kcenter_with_outliers(
                    cost_matrix, k, t, weights=demand_weight_arr,
                    memory_budget=mem_budget, prefetch=prefetch, **coordinator_kwargs
                )
                outlier_budget = float(t)
            else:
                coordinator_solution = bicriteria_solve(
                    cost_matrix,
                    k,
                    t,
                    epsilon=epsilon,
                    relax="outliers",
                    objective="means" if objective == "means" else "median",
                    weights=demand_weight_arr,
                    rng=generator,
                    memory_budget=mem_budget,
                    prefetch=prefetch,
                    **coordinator_kwargs,
                )
                outlier_budget = float(math.floor((1.0 + epsilon) * t + 1e-9))

            centers_global = facility_points[coordinator_solution.centers]

        # ------------------------------------------------------------------
        # Output: expand to a per-node assignment (uncharged output step).
        # ------------------------------------------------------------------
        node_assignment: Dict[int, int] = {}
        node_outliers: List[int] = []
        dropped = (
            coordinator_solution.dropped_weight
            if coordinator_solution.dropped_weight is not None
            else np.zeros(demand_anchor_arr.size)
        )
        assignment_arr = coordinator_solution.assignment
        for idx, (site_id, kind, payload) in enumerate(demand_origin):
            target = int(facility_points[assignment_arr[idx]]) if assignment_arr[idx] >= 0 else -1
            state = site_state[site_id]
            if kind == "outlier":
                node_global = int(state["shard"][int(payload)])
                if target < 0:
                    node_outliers.append(node_global)
                else:
                    node_assignment[node_global] = target
                continue
            # A precluster center demand: distribute the attached nodes.
            c_local = int(payload)
            members_local = np.flatnonzero(state["solution"].assignment == c_local)
            member_costs = state["precluster"].cost_matrix[members_local, c_local]
            n_drop = int(round(float(dropped[idx]))) if target >= 0 else members_local.size
            n_drop = min(n_drop, members_local.size)
            drop_positions = set(np.argsort(-member_costs, kind="stable")[:n_drop].tolist())
            for pos, j_local in enumerate(members_local):
                node_global = int(state["shard"][int(j_local)])
                if pos in drop_positions or target < 0:
                    node_outliers.append(node_global)
                else:
                    node_assignment[node_global] = target

        return DistributedResult(
            centers=centers_global,
            outlier_budget=outlier_budget,
            objective=objective,
            cost=float(coordinator_solution.cost),
            ledger=ledger,
            rounds=2,
            outliers=np.asarray(sorted(set(node_outliers)), dtype=int),
            site_time={i: float(sum(site_timers[i].totals.values())) for i in range(s)},
            coordinator_time=float(sum(coord_timer.totals.values())),
            coordinator_solution=coordinator_solution,
            trace=tracer if tracer.enabled else None,
            metadata={
                "algorithm": "algorithm3_uncertain",
                "epsilon": float(epsilon),
                "rho": float(rho),
                "t_allocated": allocation.t_allocated.tolist(),
                "t_used": [int(state["t_i"]) for state in site_state],
                "node_assignment": node_assignment,
                "n_coordinator_demands": int(demand_anchor_arr.size),
                "collapse_cost_total": float(sum(float(st["collapse"].sum()) for st in site_state)),
                "memory_budget": mem_budget,
                "cost_matrix_storage": [st.get("cost_storage") for st in site_state],
                "async_rounds": bool(async_rounds),
            },
        )



__all__ = ["distributed_uncertain_clustering"]
