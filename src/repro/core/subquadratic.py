"""Theorem 3.10: sub-quadratic centralized partial clustering by sequential simulation.

The distributed algorithm is an unusual tool for a *centralized* speed-up:
split the data into ``s`` pieces, run Algorithm 1's site computation on each
piece one after another (each costs ``Õ((n/s)^2)``), then run the coordinator
step on the ``O(sk + t)`` surviving representatives.  Balancing the two terms
(``s = n^{2/3}`` when the local solver is quadratic) gives total work
``Õ(t^2 + n^{4/3} k^2)`` instead of ``Õ(n^2)``; repeating the construction
drives the exponent towards ``1 + alpha`` (Theorem 3.10).

This module exposes the one-level simulation (the measurable claim — the
benchmarks verify the sub-quadratic scaling of wall-clock time against the
direct quadratic solver) and reports the piece count and per-phase timings.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.algorithm1 import distributed_partial_median
from repro.core.algorithm2_center import distributed_partial_center
from repro.distributed.instance import DistributedInstance
from repro.distributed.partition import partition_balanced
from repro.distributed.result import DistributedResult
from repro.metrics.base import MetricSpace
from repro.metrics.blocked import MemoryBudgetLike
from repro.metrics.cost_matrix import validate_objective
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.timing import timed


def default_piece_count(n: int, k: int, t: int) -> int:
    """The balancing choice of Lemma 3.9 for a quadratic local solver.

    ``s = n^{2/3}`` balances ``s (n/s)^2`` against ``s^2``; the count is
    clamped so every piece keeps at least ``max(2k, 8)`` points (tiny pieces
    make the local ``2k``-center solves degenerate).
    """
    if n < 4:
        return 1
    s = int(round(n ** (2.0 / 3.0)))
    min_piece = max(2 * k, 8)
    s = min(s, max(1, n // min_piece))
    _ = t
    return max(1, s)


@dataclass
class SubquadraticResult:
    """Outcome of the sequentially simulated distributed algorithm.

    Attributes
    ----------
    centers:
        Global indices of the chosen centers.
    outlier_budget:
        Number of points the solution may exclude (``(1 + eps) t`` for
        median/means, ``t`` for center).
    n_pieces:
        Number of pieces the data was split into (the simulated ``s``).
    distributed:
        The full :class:`DistributedResult` of the simulated protocol
        (communication is meaningless here but the per-phase timings are the
        quantity Theorem 3.10 is about).
    wall_time:
        Total wall-clock seconds of the simulation.
    """

    centers: np.ndarray
    outlier_budget: float
    objective: str
    n_pieces: int
    distributed: DistributedResult
    wall_time: float
    metadata: dict = field(default_factory=dict)

    @property
    def site_time_total(self) -> float:
        """Sequentially summed piece-local time (the ``s * (n/s)^2`` term)."""
        return self.distributed.site_time_total

    @property
    def coordinator_time(self) -> float:
        """Final combine time (the ``(sk + t)^2`` term)."""
        return self.distributed.coordinator_time


def subquadratic_partial_clustering(
    metric: MetricSpace,
    k: int,
    t: int,
    *,
    objective: str = "median",
    n_pieces: Optional[int] = None,
    epsilon: float = 0.5,
    rho: float = 2.0,
    rng: RngLike = None,
    local_solver_kwargs: Optional[dict] = None,
    coordinator_solver_kwargs: Optional[dict] = None,
    memory_budget: MemoryBudgetLike = None,
    prefetch: Optional[bool] = None,
) -> SubquadraticResult:
    """Centralized ``(k, (1+eps)t)``-median/means (or ``(k, t)``-center) in sub-quadratic time.

    Parameters
    ----------
    metric:
        The full input as a metric space.
    k, t:
        Center and outlier budgets.
    objective:
        ``"median"``, ``"means"`` or ``"center"``.
    n_pieces:
        Number of pieces ``s``; defaults to the Lemma 3.9 balancing choice.
    epsilon, rho:
        Forwarded to the simulated distributed algorithm.
    rng:
        Seed or generator (controls both the split and the local solvers).
    memory_budget:
        Byte cap on any single distance/cost block of the simulation (piece
        matrices larger than the budget stream from disk shards); results
        are bit-identical for every setting.
    prefetch:
        Background tile prefetch knob for memmap-backed blocks (``None`` =
        auto); never changes the result — it trades nothing but wall-clock,
        which is exactly the quantity Theorem 3.10 is about.
    """
    obj = validate_objective(objective)
    n = len(metric)
    generator = ensure_rng(rng)
    pieces = default_piece_count(n, k, t) if n_pieces is None else int(n_pieces)
    if pieces < 1:
        raise ValueError(f"n_pieces must be >= 1, got {pieces}")
    pieces = min(pieces, max(1, n // max(1, min(n, 2 * k))))
    pieces = max(pieces, 1)

    partition = partition_balanced(n, pieces, rng=generator)
    instance = DistributedInstance.from_partition(metric, partition, k, t, obj)

    with timed() as clock:
        if obj == "center":
            result = distributed_partial_center(
                instance,
                rho=rho,
                rng=generator,
                coordinator_solver_kwargs=coordinator_solver_kwargs,
                memory_budget=memory_budget,
                prefetch=prefetch,
            )
        else:
            result = distributed_partial_median(
                instance,
                epsilon=epsilon,
                rho=rho,
                rng=generator,
                local_solver_kwargs=local_solver_kwargs,
                coordinator_solver_kwargs=coordinator_solver_kwargs,
                memory_budget=memory_budget,
                prefetch=prefetch,
            )

    return SubquadraticResult(
        centers=result.centers,
        outlier_budget=result.outlier_budget,
        objective=obj,
        n_pieces=pieces,
        distributed=result,
        wall_time=clock["seconds"],
        metadata={
            "n": int(n),
            "k": int(k),
            "t": int(t),
            "epsilon": float(epsilon),
            "rho": float(rho),
            "piece_sizes": instance.site_sizes.tolist(),
        },
    )


__all__ = ["SubquadraticResult", "subquadratic_partial_clustering", "default_piece_count"]
