"""Site-local preclustering (round 1 of Algorithms 1 and 2).

For the median/means objectives each site evaluates its local cost
``Csol(A_i, 2k, q)`` on a geometric grid of outlier counts ``q`` and
summarises the curve by its lower convex hull (a :class:`CostProfile`).  For
the center objective the site runs a single Gonzalez traversal, whose
insertion radii directly provide the non-increasing witnesses ``l(i, q)``
used for the budget allocation.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Union

import numpy as np

from repro.core.convex_hull import CostProfile
from repro.metrics.base import MetricSpace
from repro.metrics.blocked import (
    MemmapCostShard,
    memmap_handle,
    open_memmap,
    transport_spill_dir,
)
from repro.sequential.assignment import assign_with_outliers
from repro.sequential.gonzalez import GonzalezResult, center_witnesses, gonzalez
from repro.sequential.local_search import local_search_partial
from repro.sequential.solution import ClusterSolution
from repro.utils.rng import RngLike, ensure_rng

#: A dense cost matrix whose pickled size would exceed this many bytes is
#: spilled to a :class:`~repro.metrics.blocked.MemmapCostShard` when a
#: :class:`SitePreclustering` crosses a transport, so the transport carries a
#: filename instead of ``n_i^2`` floats.  Override with the
#: ``REPRO_TRANSPORT_SPILL_BYTES`` environment variable.
TRANSPORT_SPILL_THRESHOLD = int(os.environ.get("REPRO_TRANSPORT_SPILL_BYTES", 256 * 1024))


@dataclass
class _StrippedSolution:
    """Rebuild recipe that replaces a cached :class:`ClusterSolution` in transit.

    Every solution in a precluster's cache came from one of two deterministic
    constructions — the zero-cost branch (the whole site may be ignored) or a
    final :func:`~repro.sequential.assignment.assign_with_outliers` pass over
    the solver's chosen centers at a recorded outlier budget.  Both rebuild
    bit-identically from the cost matrix the precluster already carries, so
    only the recipe (a few integers) needs to cross a transport; the
    assignment arrays and the solutions' own ``n x k`` sweeps are re-derived
    on first access (:meth:`SitePreclustering.solution_for`).
    """

    centers: np.ndarray
    solve_t: float
    objective: str
    n_demands: int
    zero_cost: bool = False

    def rebuild(
        self,
        cost_matrix: np.ndarray,
        weights: Optional[np.ndarray],
        *,
        memory_budget=None,
        prefetch: Optional[bool] = None,
    ) -> ClusterSolution:
        """Re-derive the cached solution (bit-identical to the original)."""
        if self.zero_cost:
            return ClusterSolution(
                centers=np.empty(0, dtype=int),
                assignment=np.full(self.n_demands, -1, dtype=int),
                outlier_weight=self.solve_t,
                cost=0.0,
                objective=self.objective,
                dropped_weight=np.full(self.n_demands, np.nan),
                metadata={"method": "zero_cost", "solve_t": float(self.solve_t)},
            )
        solution = assign_with_outliers(
            cost_matrix,
            self.centers,
            self.solve_t,
            weights,
            objective=self.objective,
            memory_budget=memory_budget,
            prefetch=prefetch,
        )
        solution.metadata.update(
            {"method": "rebuilt_from_strip", "solve_t": float(self.solve_t)}
        )
        return solution


def _strip_solution(
    solution: Union[ClusterSolution, _StrippedSolution],
) -> Union[ClusterSolution, _StrippedSolution]:
    """The transport form of one cached solution (a no-op if already stripped).

    Solutions without a recorded solve budget cannot be re-derived, so they
    travel whole — correctness never depends on the strip.
    """
    if isinstance(solution, _StrippedSolution):
        return solution
    if solution.centers.size == 0:
        return _StrippedSolution(
            centers=np.empty(0, dtype=int),
            solve_t=float(solution.outlier_weight),
            objective=solution.objective,
            n_demands=int(solution.assignment.size),
            zero_cost=True,
        )
    solve_t = solution.metadata.get("solve_t")
    if solve_t is None:
        return solution
    return _StrippedSolution(
        centers=solution.centers,
        solve_t=float(solve_t),
        objective=solution.objective,
        n_demands=int(solution.assignment.size),
    )


def geometric_grid(t: int, rho: float = 2.0, upper: Optional[int] = None) -> np.ndarray:
    """The grid ``I = {floor(rho^r) : 1 <= r <= floor(log_rho t)} U {0, t}``.

    Parameters
    ----------
    t:
        Global outlier budget.
    rho:
        Geometric ratio (``2`` for Theorem 3.6, ``1 + delta`` for Theorem 3.8).
    upper:
        Optional cap (e.g. a site's ``n_i``): grid values above it are clipped
        to it.

    Returns
    -------
    Sorted unique integer grid values.  ``|I| = O(log_rho t)``.
    """
    if t < 0:
        raise ValueError(f"t must be non-negative, got {t}")
    if rho <= 1.0:
        raise ValueError(f"rho must be > 1, got {rho}")
    values = {0, int(t)}
    r = 1
    while True:
        q = int(np.floor(rho**r))
        if q > t:
            break
        values.add(q)
        r += 1
        if r > 10_000:  # safety net for rho barely above 1
            break
    grid = np.asarray(sorted(values), dtype=int)
    if upper is not None:
        grid = np.unique(np.minimum(grid, int(upper)))
    return grid


@dataclass
class SitePreclustering:
    """Round-1 output of one site for the median/means objectives.

    Attributes
    ----------
    grid:
        Outlier counts ``q`` at which the local problem was actually solved.
    costs:
        ``Csol(A_i, 2k, q)`` for each grid value.
    solutions:
        Cache of the corresponding local solutions, keyed by ``q`` (site-local
        demand/facility indices).
    profile:
        The lower convex hull of ``(grid, costs)`` — what the site transmits.
    cost_matrix:
        The site-local assignment cost matrix, kept so that round 2 can build
        or refine solutions without recomputing distances.
    """

    grid: np.ndarray
    costs: np.ndarray
    solutions: Dict[int, Union[ClusterSolution, _StrippedSolution]]
    profile: CostProfile
    cost_matrix: np.ndarray
    weights: Optional[np.ndarray] = None
    metadata: dict = field(default_factory=dict)
    #: When True the cost matrix does not cross a transport *at all*: the
    #: protocol that built this precluster has promised the matrix
    #: re-derives bit-identically on the far side (center_g rebuilds its
    #: per-tau collapse matrix from the resident ``(uncertain, shard,
    #: tau)``).  Unpickled copies then carry ``cost_matrix=None`` until the
    #: protocol reattaches one; :meth:`solution_for` refuses to solve
    #: without it.
    rebuild_matrix: bool = False
    _spill_shard: Optional[MemmapCostShard] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __getstate__(self) -> dict:
        # Nothing re-derivable crosses a transport:
        #
        # * every cached solution collapses to its rebuild recipe
        #   (:class:`_StrippedSolution`) — re-solved transparently and
        #   bit-identically by :meth:`solution_for` on the other side;
        # * a memmap-backed cost matrix crosses as a shard *handle*
        #   (path + shape + dtype), never as n^2 bytes, and a *dense* matrix
        #   above :data:`TRANSPORT_SPILL_THRESHOLD` is spilled to a shard
        #   first (once — the spill is cached for repeated pickles).
        #
        # Both sides of a runtime backend share the local filesystem; spill
        # files live in the process-lifetime transport scratch directory.
        state = dict(self.__dict__)
        state.pop("_spill_shard", None)
        state["solutions"] = {
            q: _strip_solution(solution) for q, solution in self.solutions.items()
        }
        if self.rebuild_matrix or self.cost_matrix is None:
            # The owner re-derives the matrix bit-identically on the far
            # side; not even a shard handle needs to cross.
            state["cost_matrix"] = None
            return state
        handle = memmap_handle(self.cost_matrix)
        if handle is None and self.cost_matrix.nbytes > TRANSPORT_SPILL_THRESHOLD:
            shard = self._spill_shard
            if shard is None:
                matrix = np.ascontiguousarray(self.cost_matrix, dtype=float)
                shard = MemmapCostShard.create(
                    matrix.shape, workdir=transport_spill_dir(), dtype=str(matrix.dtype)
                )
                shard.write_rows(slice(0, matrix.shape[0]), matrix)
                shard.finalize()
                self._spill_shard = shard
            handle = (shard.path, shard.shape, shard.dtype)
        if handle is not None:
            state["cost_matrix"] = ("__memmap_handle__",) + handle
        return state

    def __setstate__(self, state: dict) -> None:
        cost_matrix = state.get("cost_matrix")
        if isinstance(cost_matrix, tuple) and cost_matrix[0] == "__memmap_handle__":
            _, path, shape, dtype = cost_matrix
            state = dict(state)
            state["cost_matrix"] = open_memmap(path, shape, dtype)
        state.setdefault("_spill_shard", None)
        state.setdefault("rebuild_matrix", False)
        self.__dict__.update(state)

    def solution_for(
        self,
        q: int,
        k: int,
        objective: str,
        rng: RngLike = None,
        **solver_kwargs,
    ) -> ClusterSolution:
        """The cached local solution with ``q`` outliers, solving it if missing.

        A cache entry that was stripped for transport (see
        :meth:`__getstate__`) is rebuilt here, bit-identically, from its
        recipe and the cost matrix — the caller cannot tell whether the
        precluster crossed a wire in between.
        """
        q = int(q)
        cached = self.solutions.get(q)
        if self.cost_matrix is None and not isinstance(cached, ClusterSolution):
            raise RuntimeError(
                "this precluster's cost matrix was dropped in transit "
                "(rebuild_matrix=True); reattach the re-derived matrix before solving"
            )
        if isinstance(cached, _StrippedSolution):
            cached = cached.rebuild(
                self.cost_matrix,
                self.weights,
                memory_budget=solver_kwargs.get("memory_budget"),
                prefetch=solver_kwargs.get("prefetch"),
            )
            self.solutions[q] = cached
        if cached is not None:
            return cached
        solution = local_search_partial(
            self.cost_matrix,
            k,
            q,
            weights=self.weights,
            objective=objective,
            rng=rng,
            **solver_kwargs,
        )
        solution.metadata.setdefault("solve_t", float(q))
        self.solutions[q] = solution
        return solution


def precluster_site(
    cost_matrix: np.ndarray,
    k_local: int,
    t: int,
    *,
    objective: str = "median",
    rho: float = 2.0,
    grid: Optional[Sequence[int]] = None,
    weights: Optional[np.ndarray] = None,
    rng: RngLike = None,
    **solver_kwargs,
) -> SitePreclustering:
    """Evaluate the local cost curve of one site on the geometric grid.

    Parameters
    ----------
    cost_matrix:
        Site-local demand-by-facility assignment costs (squared already for
        the means objective).
    k_local:
        Number of local centers (the paper uses ``2k``).
    t:
        Global outlier budget (upper end of the grid).
    objective:
        ``"median"`` or ``"means"``.
    rho:
        Geometric grid ratio.
    grid:
        Explicit grid override (used by tests and by Theorem 3.8's
        ``rho = 1 + delta`` variant).
    weights:
        Optional per-demand weights.
    rng:
        Seed or generator (split across grid points deterministically).
    solver_kwargs:
        Forwarded to :func:`local_search_partial`.
    """
    # Memmap-backed matrices are kept as memmaps (an asarray view would lose
    # the filename the shard-handle pickling in __getstate__ relies on).
    if not isinstance(cost_matrix, np.memmap):
        cost_matrix = np.asarray(cost_matrix, dtype=float)
    n_local = cost_matrix.shape[0]
    generator = ensure_rng(rng)
    if grid is None:
        grid_arr = geometric_grid(t, rho=rho, upper=n_local)
    else:
        grid_arr = np.unique(np.minimum(np.asarray(grid, dtype=int), n_local))

    costs = np.empty(grid_arr.size, dtype=float)
    solutions: Dict[int, ClusterSolution] = {}
    total_weight = float(np.sum(weights)) if weights is not None else float(n_local)
    previous_centers: Optional[np.ndarray] = None

    for pos, q in enumerate(grid_arr):
        q = int(q)
        if q >= total_weight:
            # Everything may be ignored: the local cost is zero.
            solution = ClusterSolution(
                centers=np.empty(0, dtype=int),
                assignment=np.full(n_local, -1, dtype=int),
                outlier_weight=total_weight,
                cost=0.0,
                objective=objective,
                dropped_weight=np.full(n_local, np.nan),
            )
        else:
            solution = local_search_partial(
                cost_matrix,
                k_local,
                q,
                weights=weights,
                objective=objective,
                init_centers=previous_centers,
                rng=generator,
                **solver_kwargs,
            )
            previous_centers = solution.centers
        # The budget this solution was actually solved at: the rebuild recipe
        # of the transport strip (a solution may be cached under a larger q
        # by the monotonicity repair below, so q itself is not enough).
        solution.metadata.setdefault("solve_t", float(q))
        solutions[q] = solution
        costs[pos] = solution.cost

    # The local cost curve must be non-increasing in q; a heuristic solver may
    # occasionally return a worse solution at a larger q, in which case the
    # solution found at a smaller q (fewer outliers used) is still feasible
    # and cheaper, so reuse it.
    prefix_min = np.minimum.accumulate(costs)
    best_pos = 0
    for pos, q in enumerate(grid_arr):
        if costs[pos] <= prefix_min[pos] + 1e-15:
            best_pos = pos
        else:
            solutions[int(q)] = solutions[int(grid_arr[best_pos])]
    costs = prefix_min

    profile = CostProfile.from_evaluations(grid_arr, costs, t_max=t)
    return SitePreclustering(
        grid=grid_arr,
        costs=costs,
        solutions=solutions,
        profile=profile,
        cost_matrix=cost_matrix,
        weights=None if weights is None else np.asarray(weights, dtype=float),
        metadata={"k_local": int(k_local), "objective": objective},
    )


@dataclass
class CenterPreclustering:
    """Round-1 output of one site for the center objective (Algorithm 2).

    Attributes
    ----------
    traversal:
        The Gonzalez traversal of the site's points (local indices).
    witnesses:
        ``l(i, q)`` for ``q = 1..t`` — the insertion radius of the
        ``(k+q)``-th traversed point (0 beyond the site's size).
    grid:
        Grid of ``q`` values at which the witnesses are transmitted.
    """

    traversal: GonzalezResult
    witnesses: np.ndarray
    grid: np.ndarray
    k: int
    metadata: dict = field(default_factory=dict)

    def witnesses_on_grid(self) -> np.ndarray:
        """Witness values at the grid points (``q = 0`` maps to the ``q = 1`` witness)."""
        if self.witnesses.size == 0:
            return np.zeros(self.grid.size, dtype=float)
        idx = np.clip(self.grid - 1, 0, self.witnesses.size - 1)
        out = self.witnesses[idx]
        out = np.where(self.grid == 0, self.witnesses[0] if self.witnesses.size else 0.0, out)
        return out

    def transmitted_words(self) -> float:
        """Words needed to transmit the gridded witness curve."""
        return float(2 * self.grid.size)

    def marginals_from_grid(self, t: int) -> np.ndarray:
        """Reconstruct a conservative full-length witness vector from the grid values.

        For ``q`` strictly between two grid points the witness of the *lower*
        grid point is used (an overestimate, since witnesses are
        non-increasing), which can only allocate more budget to the site —
        never less.  The result is non-increasing, as the allocation requires.
        """
        if t == 0:
            return np.empty(0, dtype=float)
        grid_vals = self.witnesses_on_grid()
        out = np.empty(t, dtype=float)
        for q in range(1, t + 1):
            pos = int(np.searchsorted(self.grid, q, side="right") - 1)
            pos = max(pos, 0)
            out[q - 1] = grid_vals[pos]
        return np.minimum.accumulate(out)


def precluster_site_center(
    local_metric: MetricSpace,
    k: int,
    t: int,
    *,
    rho: float = 2.0,
    grid: Optional[Sequence[int]] = None,
    rng: RngLike = None,
    memory_budget=None,
) -> CenterPreclustering:
    """Gonzalez traversal + witness extraction for one site (Algorithm 2, lines 1-5).

    ``memory_budget`` chunks the traversal's distance sweeps (see
    :func:`repro.sequential.gonzalez.gonzalez`); witnesses are bit-identical
    for every budget.
    """
    n_local = len(local_metric)
    m = min(n_local, k + t + 1)
    traversal = gonzalez(local_metric, m=m, rng=rng, memory_budget=memory_budget)
    witnesses = center_witnesses(traversal, k, t)
    if grid is None:
        grid_arr = geometric_grid(t, rho=rho)
    else:
        grid_arr = np.unique(np.asarray(grid, dtype=int))
    return CenterPreclustering(
        traversal=traversal,
        witnesses=witnesses,
        grid=grid_arr,
        k=int(k),
        metadata={"n_local": int(n_local)},
    )


__all__ = [
    "geometric_grid",
    "SitePreclustering",
    "precluster_site",
    "CenterPreclustering",
    "precluster_site_center",
]
