"""The paper's primary contribution: communication-efficient distributed partial clustering.

* :mod:`repro.core.convex_hull` — lower convex hulls of local cost curves
  (the ``f_i`` functions of Algorithm 1).
* :mod:`repro.core.allocation` — the outlier-budget split across sites via
  stable rank selection on marginal gains (Lemmas 3.3/3.4).
* :mod:`repro.core.preclustering` — site-local preclustering (geometric grid
  of local solves, Gonzalez witnesses).
* :mod:`repro.core.algorithm1` — Algorithm 1: distributed ``(k, (1+eps)t)``-
  median/means, ``Õ((sk + t) B)`` communication, 2 rounds.
* :mod:`repro.core.algorithm1_modified` — Theorem 3.8: the no-outlier-shipping
  variant with ``Õ(s/delta + s k B)`` communication.
* :mod:`repro.core.algorithm2_center` — Algorithm 2: distributed ``(k, t)``-center.
* :mod:`repro.core.algorithm3_uncertain` — Algorithm 3: the compressed-graph
  scheme for uncertain median/means/center-pp.
* :mod:`repro.core.center_g` — Algorithm 4: uncertain ``(k, t)``-center-g via
  truncated distances and the parametric search on ``tau``.
* :mod:`repro.core.subquadratic` — Theorem 3.10: sub-quadratic centralized
  ``(k, t)``-median/means by sequential simulation.
* :mod:`repro.core.api` — convenience drivers over raw numpy point arrays.
"""

from repro.core.convex_hull import CostProfile, lower_convex_hull
from repro.core.allocation import (
    AllocationResult,
    allocate_outlier_budget,
    optimal_allocation_dp,
)
from repro.core.preclustering import geometric_grid, SitePreclustering, precluster_site
from repro.core.algorithm1 import distributed_partial_median
from repro.core.algorithm1_modified import distributed_partial_median_no_shipping
from repro.core.algorithm2_center import distributed_partial_center
from repro.core.algorithm3_uncertain import distributed_uncertain_clustering
from repro.core.center_g import distributed_uncertain_center_g
from repro.core.subquadratic import subquadratic_partial_clustering
from repro.core.api import (
    partial_kmedian,
    partial_kmeans,
    partial_kcenter,
    uncertain_partial_kmedian,
    uncertain_partial_kcenter_g,
)

__all__ = [
    "CostProfile",
    "lower_convex_hull",
    "AllocationResult",
    "allocate_outlier_budget",
    "optimal_allocation_dp",
    "geometric_grid",
    "SitePreclustering",
    "precluster_site",
    "distributed_partial_median",
    "distributed_partial_median_no_shipping",
    "distributed_partial_center",
    "distributed_uncertain_clustering",
    "distributed_uncertain_center_g",
    "subquadratic_partial_clustering",
    "partial_kmedian",
    "partial_kmeans",
    "partial_kcenter",
    "uncertain_partial_kmedian",
    "uncertain_partial_kcenter_g",
]
