"""Outlier-budget allocation across sites (Algorithm 1 lines 7-14, Lemmas 3.3/3.4).

The coordinator receives one convex, non-increasing cost profile per site and
must split a budget of ``rho * t`` ignored points so that the *sum of local
costs* is minimised:

    minimise  sum_i f_i(t_i)   subject to  sum_i t_i <= rho * t.

Because every ``f_i`` is convex, the greedy that repeatedly grants one more
ignored point to the site with the largest marginal gain ``l(i, q)`` is
optimal (Lemma 3.3).  The paper implements the greedy as a single rank
selection: stably sort all marginals ``{l(i, q)}`` in decreasing order
(ties broken by the lexicographic order of ``(i, q)``) and grant exactly the
top ``rho * t`` of them.  Site ``i`` then receives ``t_i`` equal to the number
of its own marginals among the winners — which, by monotonicity of
``l(i, .)`` in ``q``, are exactly ``q = 1..t_i``.

The site owning the marginal of rank exactly ``rho * t`` is the *exceptional*
site ``i_0``: its ``t_{i_0}`` may fall strictly inside a hull segment and is
snapped up to the next hull vertex by the caller (Algorithm 1, line 13).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.convex_hull import CostProfile


@dataclass
class AllocationResult:
    """Outcome of the budget allocation.

    Attributes
    ----------
    t_allocated:
        Per-site number of ignored points ``t_i`` (before any vertex snapping).
    threshold:
        The marginal value ``l(i_0, q_0)`` of rank ``budget``.
    exceptional_site:
        The site ``i_0`` owning the rank-``budget`` marginal, or ``None`` when
        the budget exceeds the number of positive marginals (every site simply
        takes everything useful).
    exceptional_q:
        The within-site index ``q_0`` of that marginal.
    budget:
        The requested total budget (``rho * t``).
    """

    t_allocated: np.ndarray
    threshold: float
    exceptional_site: Optional[int]
    exceptional_q: Optional[int]
    budget: int
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.t_allocated = np.asarray(self.t_allocated, dtype=int)

    @property
    def total_allocated(self) -> int:
        """Sum of the per-site allocations."""
        return int(self.t_allocated.sum())


def allocate_outlier_budget(
    marginals: Sequence[np.ndarray],
    budget: int,
) -> AllocationResult:
    """Split ``budget`` ignored points across sites by stable rank selection.

    Parameters
    ----------
    marginals:
        One array per site; entry ``q-1`` holds ``l(i, q) = f_i(q-1) - f_i(q)``.
        Each array must be non-negative and non-increasing (convexity of
        ``f_i``); arrays may have different lengths (a site cannot ignore more
        points than it holds).
    budget:
        Total number of ignored points to grant (the paper's ``rho * t``).

    Returns
    -------
    AllocationResult
        ``t_allocated[i]`` counts how many of site ``i``'s marginals rank in
        the top ``budget`` under the stable decreasing order.
    """
    if budget < 0:
        raise ValueError(f"budget must be non-negative, got {budget}")
    s = len(marginals)
    if s == 0:
        raise ValueError("need at least one site")
    cleaned: List[np.ndarray] = []
    for i, m in enumerate(marginals):
        arr = np.asarray(m, dtype=float)
        if arr.ndim != 1:
            raise ValueError(f"marginals of site {i} must be one-dimensional")
        if np.any(arr < -1e-12):
            raise ValueError(f"marginals of site {i} must be non-negative")
        if arr.size > 1 and np.any(np.diff(arr) > 1e-9 * np.maximum(1.0, arr[:-1])):
            raise ValueError(
                f"marginals of site {i} must be non-increasing (convexity of f_i)"
            )
        cleaned.append(np.maximum(arr, 0.0))

    t_allocated = np.zeros(s, dtype=int)
    if budget == 0:
        return AllocationResult(
            t_allocated=t_allocated,
            threshold=np.inf,
            exceptional_site=None,
            exceptional_q=None,
            budget=0,
        )

    site_ids = np.concatenate(
        [np.full(arr.size, i, dtype=int) for i, arr in enumerate(cleaned)]
    ) if any(arr.size for arr in cleaned) else np.empty(0, dtype=int)
    q_ids = np.concatenate(
        [np.arange(1, arr.size + 1, dtype=int) for arr in cleaned]
    ) if site_ids.size else np.empty(0, dtype=int)
    values = np.concatenate(cleaned) if site_ids.size else np.empty(0, dtype=float)

    if values.size == 0:
        return AllocationResult(
            t_allocated=t_allocated,
            threshold=0.0,
            exceptional_site=None,
            exceptional_q=None,
            budget=int(budget),
        )

    # Stable sort: decreasing value, ties broken by increasing (site, q) —
    # footnote 3 of the paper.  lexsort's last key is the primary one.
    order = np.lexsort((q_ids, site_ids, -values))
    take = min(int(budget), order.size)
    winners = order[:take]
    np.add.at(t_allocated, site_ids[winners], 1)

    rank_entry = order[take - 1]
    threshold = float(values[rank_entry])
    exceptional_site = int(site_ids[rank_entry])
    exceptional_q = int(q_ids[rank_entry])

    return AllocationResult(
        t_allocated=t_allocated,
        threshold=threshold,
        exceptional_site=exceptional_site,
        exceptional_q=exceptional_q,
        budget=int(budget),
        metadata={"n_marginals": int(values.size), "taken": int(take)},
    )


def allocate_from_profiles(profiles: Sequence[CostProfile], budget: int) -> AllocationResult:
    """Convenience wrapper: allocation directly from :class:`CostProfile` objects."""
    return allocate_outlier_budget([p.marginals() for p in profiles], budget)


def optimal_allocation_dp(
    cost_tables: Sequence[np.ndarray],
    budget: int,
) -> tuple:
    """Exact minimiser of ``sum_i f_i(t_i)`` s.t. ``sum_i t_i <= budget`` by dynamic programming.

    ``cost_tables[i][q]`` is ``f_i(q)`` for ``q = 0..len-1`` (arbitrary, not
    necessarily convex).  Used in tests to certify that the rank-selection
    allocation is optimal whenever the inputs really are convex, and to
    measure the gap when they are not.

    The min-plus inner product per site is fully vectorised: the candidate
    matrix ``C[b, q] = dp[b - q] + f_i(q)`` is assembled from a sliding
    window over the padded previous row and reduced with one ``argmin``.
    *Exactly* equal candidates resolve to the smallest ``q`` (argmin's
    first occurrence, as the old ascending scan did); candidates within
    the old scan's ``1e-15`` hysteresis band now select the true minimum
    instead of keeping the incumbent, so sub-epsilon near-ties may pick a
    different ``q`` than the pre-vectorised loop (the cost can only be
    equal or smaller).

    Returns ``(t_allocated, optimal_cost)``.
    """
    if budget < 0:
        raise ValueError(f"budget must be non-negative, got {budget}")
    tables = [np.asarray(tbl, dtype=float) for tbl in cost_tables]
    for i, tbl in enumerate(tables):
        if tbl.ndim != 1 or tbl.size == 0:
            raise ValueError(f"cost table of site {i} must be a non-empty 1-D array")
    s = len(tables)

    # dp[b] = best total cost using budget exactly <= b over sites processed so far.
    dp = np.zeros(budget + 1)
    choice = np.zeros((s, budget + 1), dtype=int)
    for i, tbl in enumerate(tables):
        max_q = min(tbl.size - 1, budget)
        # padded[b + max_q - q] = dp[b - q] for q <= b, +inf otherwise, so a
        # reversed length-(max_q + 1) window ending at b enumerates dp[b - q]
        # for q = 0..max_q.
        padded = np.concatenate([np.full(max_q, np.inf), dp])
        windows = np.lib.stride_tricks.sliding_window_view(padded, max_q + 1)[:, ::-1]
        cand = windows + tbl[: max_q + 1]
        best_q = np.argmin(cand, axis=1)
        dp = cand[np.arange(budget + 1), best_q]
        choice[i] = best_q

    # Trace back the allocation from the full budget.
    t_allocated = np.zeros(s, dtype=int)
    b = int(budget)
    for i in range(s - 1, -1, -1):
        q = int(choice[i, b])
        t_allocated[i] = q
        b -= q
    return t_allocated, float(dp[budget])


__all__ = [
    "AllocationResult",
    "allocate_outlier_budget",
    "allocate_from_profiles",
    "optimal_allocation_dp",
]
