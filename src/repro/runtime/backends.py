"""Execution backends: where site-local computation actually runs.

A backend is a strategy for evaluating a batch of independent callables —
one per site — and returning their results in submission order.  Three
are provided:

``SerialBackend``
    The reference implementation: a plain Python loop in the calling
    process, in submission (site-id) order.  Zero overhead, always
    available, and the behaviour every other backend must reproduce
    bit-for-bit.

``ThreadPoolBackend``
    A :class:`concurrent.futures.ThreadPoolExecutor`.  Site tasks share the
    interpreter, so speedup comes from numpy/BLAS kernels releasing the GIL
    during distance and linear-algebra work; task payloads are shared by
    reference (no serialisation).

``ProcessPoolBackend``
    A :class:`concurrent.futures.ProcessPoolExecutor`.  Every task and its
    context crosses a process boundary through pickle, which makes the
    backend honest about message materialisation: nothing reaches a worker
    that could not have been transmitted.  True parallelism, at the price
    of serialisation overhead — the right trade at large ``n_i``.

Backends evaluate eagerly and join deterministically: results come back in
the order tasks were submitted regardless of completion order, and the
first failing task re-raises its original exception in the caller.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from concurrent.futures import Executor, Future, ProcessPoolExecutor, ThreadPoolExecutor
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Union

BackendLike = Union[None, str, "ExecutionBackend"]

#: A registered backend constructor: receives the optional worker count from a
#: ``"name:workers"`` spec (``None`` when the spec carried no count).
BackendFactory = Callable[[Optional[int]], "ExecutionBackend"]


def effective_cpu_count() -> int:
    """CPUs actually available to this process (at least 1).

    ``os.cpu_count()`` reports the *host's* cores and ignores cgroup / CPU
    affinity limits, so inside a constrained container it wildly overstates
    the useful pool size (and makes speedup assertions unsound).  The
    scheduler affinity mask, where the platform exposes it, is the honest
    number.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return max(1, len(getaffinity(0)))
        except OSError:  # pragma: no cover - platform quirk
            pass
    return max(1, os.cpu_count() or 1)


def default_worker_count() -> int:
    """Default pool size: the CPUs available to this process (at least 1)."""
    return effective_cpu_count()


class ExecutionBackend(ABC):
    """Strategy for running a batch of independent site-local callables."""

    name: str = "abstract"

    @abstractmethod
    def map_ordered(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        """Evaluate ``fn`` over ``items``, returning results in input order.

        Implementations must propagate the first raised exception to the
        caller (in input order, so failures are deterministic too).
        """

    def submit_ordered(
        self, fn: Callable[[Any], Any], items: Sequence[Any]
    ) -> List["Future"]:
        """Submit every item, returning one future per item in input order.

        The futures interface is what the async-round scheduler builds on: a
        caller may consume completed results (in submission order) while
        later items are still computing.  The base implementation delegates
        to :meth:`map_ordered` — a subclass that only implements the
        abstract batch contract (e.g. a third-party MPI pool) keeps its
        parallelism and its failure semantics; truly incremental futures
        come from the subclasses that override this (pools, cluster).  On a
        batch failure every future carries the raised exception, so the
        join sees it at the earliest index — before any result is consumed,
        matching ``map_ordered``'s all-or-nothing contract.
        """
        items = list(items)
        futures: List[Future] = [Future() for _ in items]
        try:
            results = self.map_ordered(fn, items)
        except BaseException as exc:  # noqa: BLE001 - relayed via the futures
            for future in futures:
                future.set_exception(exc)
        else:
            for future, result in zip(futures, results):
                future.set_result(result)
        return futures

    def close(self) -> None:
        """Release pooled workers, if any.  Safe to call more than once."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class SerialBackend(ExecutionBackend):
    """Run every task inline, one after the other (the reference semantics)."""

    name = "serial"

    def map_ordered(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        return [fn(item) for item in items]


class _PooledBackend(ExecutionBackend):
    """Shared plumbing for executor-based backends (lazy pool creation)."""

    def __init__(self, max_workers: Optional[int] = None):
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers or default_worker_count()
        self._executor: Optional[Executor] = None

    def _make_executor(self) -> Executor:  # pragma: no cover - overridden
        raise NotImplementedError

    def submit_ordered(
        self, fn: Callable[[Any], Any], items: Sequence[Any]
    ) -> List[Future]:
        items = list(items)
        # Even a single task goes through the pool: the process backend's
        # isolation/pickling guarantee must not silently vary with batch size.
        if items and self._executor is None:
            self._executor = self._make_executor()
        return [self._executor.submit(fn, item) for item in items]

    def map_ordered(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        # Joining in submission order keeps both results and failures
        # deterministic: the earliest-submitted failing task wins.
        return [future.result() for future in self.submit_ordered(fn, items)]

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(max_workers={self.max_workers})"


class ThreadPoolBackend(_PooledBackend):
    """Fan site tasks out to a shared-memory thread pool."""

    name = "thread"

    def _make_executor(self) -> Executor:
        return ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="repro-site"
        )


class ProcessPoolBackend(_PooledBackend):
    """Fan site tasks out to worker processes (tasks must be picklable)."""

    name = "process"

    def _make_executor(self) -> Executor:
        return ProcessPoolExecutor(max_workers=self.max_workers)


_BACKEND_FACTORIES: Dict[str, BackendFactory] = {}


def register_backend(name: str, factory: BackendFactory, *, overwrite: bool = False) -> None:
    """Register a backend under ``name`` so :func:`resolve_backend` finds it.

    ``factory`` receives the optional worker count parsed from a
    ``"name:workers"`` spec (``None`` when the spec is just the bare name).
    New backends plug in here — the resolver never needs editing.
    """
    key = str(name).lower()
    if not key or ":" in key:
        raise ValueError(f"backend name must be non-empty and ':'-free, got {name!r}")
    if key in _BACKEND_FACTORIES and not overwrite:
        raise ValueError(f"backend {key!r} is already registered")
    _BACKEND_FACTORIES[key] = factory


def available_backends() -> List[str]:
    """Sorted names of all registered backends."""
    return sorted(_BACKEND_FACTORIES)


def _serial_factory(workers: Optional[int]) -> ExecutionBackend:
    if workers is not None:
        raise ValueError("the serial backend runs inline and takes no worker count")
    return SerialBackend()


#: When set (to anything but ``""``/``"0"``), ``"cluster:N"`` specs resolve
#: to a job checked out of the process-wide shared :class:`~repro.cluster.
#: service.ClusterService` pool instead of spawning a private pool per run —
#: the service-mode coordinator CI exercises the whole suite under.
CLUSTER_SERVICE_ENV = "REPRO_CLUSTER_SERVICE"


def _cluster_service_mode() -> bool:
    return os.environ.get(CLUSTER_SERVICE_ENV, "") not in ("", "0")


def _cluster_factory(workers: Optional[int]) -> ExecutionBackend:
    # Imported lazily: the cluster subsystem pulls in sockets/multiprocessing
    # machinery that purely in-process runs never need.
    if _cluster_service_mode():
        return _service_factory(workers)
    from repro.cluster.backend import ClusterBackend

    return ClusterBackend(n_hosts=workers)


def _service_factory(workers: Optional[int]) -> ExecutionBackend:
    # One admitted job on the process-wide shared warm pool: closing the
    # returned backend releases the job's lane, never the pool.
    from repro.cluster.service import shared_service

    return shared_service(workers).checkout()


register_backend("serial", _serial_factory)
register_backend("thread", lambda workers: ThreadPoolBackend(max_workers=workers))
register_backend("process", lambda workers: ProcessPoolBackend(max_workers=workers))
register_backend("cluster", _cluster_factory)
register_backend("service", _service_factory)


def resolve_backend(backend: BackendLike) -> ExecutionBackend:
    """Normalise a backend spec into an :class:`ExecutionBackend` instance.

    Accepts ``None`` (serial), a registered name — optionally with a worker
    count, e.g. ``"thread:4"`` or ``"cluster:3"`` — or an existing backend
    instance (returned unchanged, so pools can be shared across protocol
    runs).
    """
    if backend is None:
        return SerialBackend()
    if isinstance(backend, ExecutionBackend):
        return backend
    if isinstance(backend, str):
        name, sep, count = backend.partition(":")
        workers: Optional[int] = None
        if sep:
            try:
                workers = int(count)
            except ValueError as exc:
                raise ValueError(
                    f"malformed backend spec {backend!r}: worker count {count!r} is not an integer"
                ) from exc
            if workers < 1:
                raise ValueError(f"backend spec {backend!r} needs a worker count >= 1")
        try:
            factory = _BACKEND_FACTORIES[name.lower()]
        except KeyError as exc:
            raise ValueError(
                f"unknown backend {name!r}; choose from {available_backends()}"
            ) from exc
        return factory(workers)
    raise TypeError(f"backend must be None, a name or an ExecutionBackend, got {backend!r}")


def apply_retry_policy(backend: ExecutionBackend, retry: Any) -> ExecutionBackend:
    """Install a fault-tolerance retry policy on backends that support one.

    The hook protocol drivers use to thread their ``retry=`` parameter
    through to the execution backend: a cluster backend (anything exposing
    ``set_retry_policy``) adopts the policy.  In-process backends have no
    hosts to lose — the fault-tolerance guarantee holds vacuously — so a
    policy on a backend without the hook is a no-op, letting driver code
    pass the same ``retry=`` regardless of which backend spec it resolves.
    Returns the backend for chaining.
    """
    if retry is None:
        return backend
    setter = getattr(backend, "set_retry_policy", None)
    if setter is not None:
        setter(retry)
    return backend


def apply_telemetry(backend: ExecutionBackend, telemetry: Any) -> ExecutionBackend:
    """Install a live-telemetry session on backends that support one.

    Mirror of :func:`apply_retry_policy` for the ``telemetry=`` driver
    parameter: a cluster backend (anything exposing ``set_telemetry``)
    adopts the session — runner resource samples over heartbeats, runner
    log forwarding.  In-process backends have nothing runner-side to
    sample, so a session on a backend without the hook is a no-op (the
    coordinator-side sampler and snapshot thread run regardless, inside
    :func:`repro.obs.live.telemetry_scope`).  Disabled sessions are
    skipped.  Returns the backend for chaining.
    """
    if telemetry is None or not getattr(telemetry, "enabled", False):
        return backend
    setter = getattr(backend, "set_telemetry", None)
    if setter is not None:
        setter(telemetry)
    return backend


@contextmanager
def backend_scope(backend: BackendLike) -> Iterator[ExecutionBackend]:
    """Resolve a backend spec, closing the pool afterwards only if we made it.

    A caller-supplied :class:`ExecutionBackend` instance is yielded as-is and
    left open (the caller owns its lifetime and may be sharing the pool
    across rounds or protocol runs); a ``None``/string spec is resolved to a
    fresh backend that is closed on exit.  Either way, backends that tie
    out-of-band accounting to the current run (heartbeat frames against the
    run's wire ledger — ``detach_run_accounting``) are detached on exit, so
    a warm pool's idle traffic never lands on a finished run's books.
    """
    owned = not isinstance(backend, ExecutionBackend)
    resolved = resolve_backend(backend)
    try:
        yield resolved
    finally:
        detach = getattr(resolved, "detach_run_accounting", None)
        if detach is not None:
            detach()
        if owned:
            resolved.close()


__all__ = [
    "BackendFactory",
    "BackendLike",
    "CLUSTER_SERVICE_ENV",
    "apply_retry_policy",
    "apply_telemetry",
    "available_backends",
    "backend_scope",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadPoolBackend",
    "ProcessPoolBackend",
    "default_worker_count",
    "effective_cpu_count",
    "register_backend",
    "resolve_backend",
]
