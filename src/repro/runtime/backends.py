"""Execution backends: where site-local computation actually runs.

A backend is a strategy for evaluating a batch of independent callables —
one per site — and returning their results in submission order.  Three
are provided:

``SerialBackend``
    The reference implementation: a plain Python loop in the calling
    process, in submission (site-id) order.  Zero overhead, always
    available, and the behaviour every other backend must reproduce
    bit-for-bit.

``ThreadPoolBackend``
    A :class:`concurrent.futures.ThreadPoolExecutor`.  Site tasks share the
    interpreter, so speedup comes from numpy/BLAS kernels releasing the GIL
    during distance and linear-algebra work; task payloads are shared by
    reference (no serialisation).

``ProcessPoolBackend``
    A :class:`concurrent.futures.ProcessPoolExecutor`.  Every task and its
    context crosses a process boundary through pickle, which makes the
    backend honest about message materialisation: nothing reaches a worker
    that could not have been transmitted.  True parallelism, at the price
    of serialisation overhead — the right trade at large ``n_i``.

Backends evaluate eagerly and join deterministically: results come back in
the order tasks were submitted regardless of completion order, and the
first failing task re-raises its original exception in the caller.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from contextlib import contextmanager
from typing import Any, Callable, Iterator, List, Optional, Sequence, Union

BackendLike = Union[None, str, "ExecutionBackend"]


def effective_cpu_count() -> int:
    """CPUs actually available to this process (at least 1).

    ``os.cpu_count()`` reports the *host's* cores and ignores cgroup / CPU
    affinity limits, so inside a constrained container it wildly overstates
    the useful pool size (and makes speedup assertions unsound).  The
    scheduler affinity mask, where the platform exposes it, is the honest
    number.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return max(1, len(getaffinity(0)))
        except OSError:  # pragma: no cover - platform quirk
            pass
    return max(1, os.cpu_count() or 1)


def default_worker_count() -> int:
    """Default pool size: the CPUs available to this process (at least 1)."""
    return effective_cpu_count()


class ExecutionBackend(ABC):
    """Strategy for running a batch of independent site-local callables."""

    name: str = "abstract"

    @abstractmethod
    def map_ordered(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        """Evaluate ``fn`` over ``items``, returning results in input order.

        Implementations must propagate the first raised exception to the
        caller (in input order, so failures are deterministic too).
        """

    def close(self) -> None:
        """Release pooled workers, if any.  Safe to call more than once."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class SerialBackend(ExecutionBackend):
    """Run every task inline, one after the other (the reference semantics)."""

    name = "serial"

    def map_ordered(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        return [fn(item) for item in items]


class _PooledBackend(ExecutionBackend):
    """Shared plumbing for executor-based backends (lazy pool creation)."""

    def __init__(self, max_workers: Optional[int] = None):
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers or default_worker_count()
        self._executor: Optional[Executor] = None

    def _make_executor(self) -> Executor:  # pragma: no cover - overridden
        raise NotImplementedError

    def map_ordered(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        items = list(items)
        if not items:
            return []
        # Even a single task goes through the pool: the process backend's
        # isolation/pickling guarantee must not silently vary with batch size.
        if self._executor is None:
            self._executor = self._make_executor()
        futures = [self._executor.submit(fn, item) for item in items]
        # Joining in submission order keeps both results and failures
        # deterministic: the earliest-submitted failing task wins.
        return [future.result() for future in futures]

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(max_workers={self.max_workers})"


class ThreadPoolBackend(_PooledBackend):
    """Fan site tasks out to a shared-memory thread pool."""

    name = "thread"

    def _make_executor(self) -> Executor:
        return ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="repro-site"
        )


class ProcessPoolBackend(_PooledBackend):
    """Fan site tasks out to worker processes (tasks must be picklable)."""

    name = "process"

    def _make_executor(self) -> Executor:
        return ProcessPoolExecutor(max_workers=self.max_workers)


_BACKENDS = {
    "serial": SerialBackend,
    "thread": ThreadPoolBackend,
    "process": ProcessPoolBackend,
}


def resolve_backend(backend: BackendLike) -> ExecutionBackend:
    """Normalise a backend spec into an :class:`ExecutionBackend` instance.

    Accepts ``None`` (serial), one of the names ``"serial"`` / ``"thread"``
    / ``"process"``, or an existing backend instance (returned unchanged,
    so pools can be shared across protocol runs).
    """
    if backend is None:
        return SerialBackend()
    if isinstance(backend, ExecutionBackend):
        return backend
    if isinstance(backend, str):
        try:
            return _BACKENDS[backend.lower()]()
        except KeyError as exc:
            raise ValueError(
                f"unknown backend {backend!r}; choose from {sorted(_BACKENDS)}"
            ) from exc
    raise TypeError(f"backend must be None, a name or an ExecutionBackend, got {backend!r}")


@contextmanager
def backend_scope(backend: BackendLike) -> Iterator[ExecutionBackend]:
    """Resolve a backend spec, closing the pool afterwards only if we made it.

    A caller-supplied :class:`ExecutionBackend` instance is yielded as-is and
    left open (the caller owns its lifetime and may be sharing the pool
    across rounds or protocol runs); a ``None``/string spec is resolved to a
    fresh backend that is closed on exit.
    """
    owned = not isinstance(backend, ExecutionBackend)
    resolved = resolve_backend(backend)
    try:
        yield resolved
    finally:
        if owned:
            resolved.close()


__all__ = [
    "BackendLike",
    "backend_scope",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadPoolBackend",
    "ProcessPoolBackend",
    "default_worker_count",
    "effective_cpu_count",
    "resolve_backend",
]
