"""Transport policies: how payloads are materialised between parties.

The star-network simulator charges every message a semantic word count but
delivers the payload object by reference.  That is the right accounting for
the paper's claims — yet it lets an in-process backend accidentally share
state a real network never could (a site mutating an object the coordinator
also holds).  A :class:`TransportPolicy` closes that gap: it encodes and
decodes payloads at the process boundary of :func:`repro.runtime.run_site_tasks`,
so the serial and thread backends can opt into the same materialisation the
process backend gets for free from pickle.

Word accounting is *never* derived from the encoded size — the protocols
compute ``words`` from what they semantically transmit, identically on all
backends — but each policy keeps byte counters as a rough materialisation
gauge.  Note the counters are an *upper bound* on real wire traffic: some
simulator payloads carry uncharged side-channel data (e.g. the per-point
``members`` lists a :class:`~repro.core.combine.PreclusterSummary` keeps for
the free output-realization step), which pickle serialises along with the
charged content.
"""

from __future__ import annotations

import pickle
from abc import ABC, abstractmethod
from typing import Any, Union

TransportLike = Union[None, str, "TransportPolicy"]


class TransportPolicy(ABC):
    """Strategy for materialising payloads that cross a party boundary."""

    name: str = "abstract"

    def __init__(self):
        self.messages_encoded = 0
        self.bytes_encoded = 0

    @abstractmethod
    def encode(self, payload: Any) -> Any:
        """Turn a payload into its transmitted form."""

    @abstractmethod
    def decode(self, encoded: Any) -> Any:
        """Recover a payload from its transmitted form."""

    def roundtrip(self, payload: Any) -> Any:
        """Encode then decode — what a receiving party actually observes."""
        return self.decode(self.encode(payload))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class ReferenceTransport(TransportPolicy):
    """Deliver payloads by reference (the simulator's historical behaviour)."""

    name = "reference"

    def encode(self, payload: Any) -> Any:
        self.messages_encoded += 1
        return payload

    def decode(self, encoded: Any) -> Any:
        return encoded


class PickleTransport(TransportPolicy):
    """Materialise every payload through :mod:`pickle`.

    The receiving party observes a deep, independent copy — exactly what a
    real network delivers — and the byte counters record the serialised size
    of each payload (an upper bound on wire traffic; see the module
    docstring).  numpy arrays ride through pickle protocol 5 as raw buffers.
    """

    name = "pickle"

    def __init__(self, protocol: int = pickle.HIGHEST_PROTOCOL):
        super().__init__()
        self.protocol = protocol

    def encode(self, payload: Any) -> bytes:
        data = pickle.dumps(payload, protocol=self.protocol)
        self.messages_encoded += 1
        self.bytes_encoded += len(data)
        return data

    def decode(self, encoded: bytes) -> Any:
        return pickle.loads(encoded)


_TRANSPORTS = {
    "reference": ReferenceTransport,
    "pickle": PickleTransport,
}


def resolve_transport(transport: TransportLike) -> TransportPolicy:
    """Normalise a transport spec into a :class:`TransportPolicy` instance.

    Accepts ``None`` (reference delivery), ``"reference"`` / ``"pickle"``,
    or an existing policy instance (returned unchanged so its byte counters
    accumulate across rounds).
    """
    if transport is None:
        return ReferenceTransport()
    if isinstance(transport, TransportPolicy):
        return transport
    if isinstance(transport, str):
        try:
            return _TRANSPORTS[transport.lower()]()
        except KeyError as exc:
            raise ValueError(
                f"unknown transport {transport!r}; choose from {sorted(_TRANSPORTS)}"
            ) from exc
    raise TypeError(
        f"transport must be None, a name or a TransportPolicy, got {transport!r}"
    )


__all__ = [
    "TransportLike",
    "TransportPolicy",
    "ReferenceTransport",
    "PickleTransport",
    "resolve_transport",
]
