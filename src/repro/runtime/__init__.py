"""Pluggable parallel execution backends for site-local computation.

The coordinator model is embarrassingly parallel across sites: in every
round each site computes its summary (preclustering profile, Gonzalez
traversal, aggregated distances) independently, and only the coordinator
steps synchronise.  This subsystem separates *what* a site computes from
*where* it runs:

* :mod:`repro.runtime.backends` — the execution strategies.
  :class:`SerialBackend` (the reference loop), :class:`ThreadPoolBackend`
  (shared memory, GIL-releasing numpy kernels run concurrently) and
  :class:`ProcessPoolBackend` (true parallelism; everything crosses the
  boundary through pickle).
* :mod:`repro.runtime.transport` — :class:`TransportPolicy` controls how
  payloads are materialised between parties.  :class:`PickleTransport`
  gives the in-process backends the same honest message materialisation
  the process backend gets for free, and counts the actual bytes a real
  wire would carry (word accounting stays semantic and backend-invariant).
* :mod:`repro.runtime.tasks` — :class:`SiteTask` / :class:`SiteContext` and
  the scheduler :func:`run_site_tasks`, which fans a round's site tasks out
  to a backend, joins deterministically in site order, and merges state,
  timers, RNG streams and ledger charges back into the
  :class:`~repro.distributed.network.StarNetwork`.
* :mod:`repro.runtime.state` — the *state-ownership contract*: after a
  round joins, ``Site.state`` is a mutable mapping, not necessarily the
  dict itself.  In-process backends hand the dict back; the cluster
  backend keeps mutable state resident on the runner that produced it and
  hands back a :class:`~repro.runtime.state.RemoteStateProxy` that faults
  entries over the wire only on explicit access (``pull_state()`` /
  ``evict()`` for bulk control).  Protocol results are bit-identical
  either way.

Every distributed protocol accepts ``backend=`` — ``"serial"`` (the
default), ``"thread"``, ``"process"``, ``"cluster"`` (one spawned runner
process per host, payloads over real sockets — see :mod:`repro.cluster`),
any of those with a worker count (``"thread:4"``, ``"cluster:3"``), or an
:class:`~repro.runtime.backends.ExecutionBackend` instance — and is
bit-identical across backends for a fixed seed: same centers, same cost,
same ledger word counts.  New backends plug in through
:func:`~repro.runtime.backends.register_backend`.  Pass an instance to
share one warm pool across many runs::

    from repro import partial_kmedian
    from repro.runtime import ProcessPoolBackend

    with ProcessPoolBackend(max_workers=4) as pool:
        for seed in range(10):
            partial_kmedian(points, k=3, t=30, seed=seed, backend=pool)

Protocols also accept ``async_rounds=True``: round joins stream, so the
coordinator consumes each completed site (allocation marginals, ledger
charges) while the remaining sites are still computing.  Never changes any
result — merge order stays the submission order.
"""

from repro.runtime.backends import (
    BackendFactory,
    BackendLike,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
    available_backends,
    backend_scope,
    default_worker_count,
    effective_cpu_count,
    register_backend,
    resolve_backend,
)
from repro.runtime.state import (
    RemoteStateProxy,
    materialize_state,
    snapshot_site_state,
)
from repro.runtime.tasks import (
    Outgoing,
    SiteContext,
    SiteTask,
    SiteTaskResult,
    run_site_tasks,
    run_tasks,
)
from repro.runtime.transport import (
    PickleTransport,
    ReferenceTransport,
    TransportLike,
    TransportPolicy,
    resolve_transport,
)

__all__ = [
    "BackendFactory",
    "BackendLike",
    "available_backends",
    "register_backend",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadPoolBackend",
    "ProcessPoolBackend",
    "backend_scope",
    "default_worker_count",
    "effective_cpu_count",
    "resolve_backend",
    "TransportLike",
    "TransportPolicy",
    "ReferenceTransport",
    "PickleTransport",
    "resolve_transport",
    "RemoteStateProxy",
    "materialize_state",
    "snapshot_site_state",
    "Outgoing",
    "SiteContext",
    "SiteTask",
    "SiteTaskResult",
    "run_site_tasks",
    "run_tasks",
]
