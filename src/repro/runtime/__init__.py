"""Pluggable parallel execution backends for site-local computation.

The coordinator model is embarrassingly parallel across sites: in every
round each site computes its summary (preclustering profile, Gonzalez
traversal, aggregated distances) independently, and only the coordinator
steps synchronise.  This subsystem separates *what* a site computes from
*where* it runs:

* :mod:`repro.runtime.backends` — the execution strategies.
  :class:`SerialBackend` (the reference loop), :class:`ThreadPoolBackend`
  (shared memory, GIL-releasing numpy kernels run concurrently) and
  :class:`ProcessPoolBackend` (true parallelism; everything crosses the
  boundary through pickle).
* :mod:`repro.runtime.transport` — :class:`TransportPolicy` controls how
  payloads are materialised between parties.  :class:`PickleTransport`
  gives the in-process backends the same honest message materialisation
  the process backend gets for free, and counts the actual bytes a real
  wire would carry (word accounting stays semantic and backend-invariant).
* :mod:`repro.runtime.tasks` — :class:`SiteTask` / :class:`SiteContext` and
  the scheduler :func:`run_site_tasks`, which fans a round's site tasks out
  to a backend, joins deterministically in site order, and merges state,
  timers, RNG streams and ledger charges back into the
  :class:`~repro.distributed.network.StarNetwork`.

Every distributed protocol accepts ``backend=`` (``"serial"`` — the
default — ``"thread"``, ``"process"``, or an
:class:`~repro.runtime.backends.ExecutionBackend` instance) and is
bit-identical across backends for a fixed seed: same centers, same cost,
same ledger word counts.  Pass an instance to share one warm pool across
many runs::

    from repro import partial_kmedian
    from repro.runtime import ProcessPoolBackend

    with ProcessPoolBackend(max_workers=4) as pool:
        for seed in range(10):
            partial_kmedian(points, k=3, t=30, seed=seed, backend=pool)
"""

from repro.runtime.backends import (
    BackendLike,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
    backend_scope,
    default_worker_count,
    effective_cpu_count,
    resolve_backend,
)
from repro.runtime.tasks import (
    Outgoing,
    SiteContext,
    SiteTask,
    SiteTaskResult,
    run_site_tasks,
    run_tasks,
)
from repro.runtime.transport import (
    PickleTransport,
    ReferenceTransport,
    TransportLike,
    TransportPolicy,
    resolve_transport,
)

__all__ = [
    "BackendLike",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadPoolBackend",
    "ProcessPoolBackend",
    "backend_scope",
    "default_worker_count",
    "effective_cpu_count",
    "resolve_backend",
    "TransportLike",
    "TransportPolicy",
    "ReferenceTransport",
    "PickleTransport",
    "resolve_transport",
    "Outgoing",
    "SiteContext",
    "SiteTask",
    "SiteTaskResult",
    "run_site_tasks",
    "run_tasks",
]
