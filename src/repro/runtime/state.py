"""The site-state ownership contract: who holds ``ctx.state`` between rounds.

A :class:`~repro.runtime.tasks.SiteTask` mutates its site's ``ctx.state``
dict; :func:`~repro.runtime.tasks.run_site_tasks` merges whatever comes back
into ``Site.state`` so the next round continues where this one stopped.  The
*contract* is deliberately weaker than "a plain dict comes back":

    After a round joins, ``Site.state`` is a **mutable mapping** holding the
    site's state entries.  In-process backends (serial / thread / process)
    satisfy it with the state dict itself; a wire backend may satisfy it
    with a :class:`RemoteStateProxy` whose entries *live on the runner that
    produced them* and are faulted over the wire only on explicit access.

That weakening is what lets the cluster backend keep a site's mutable state
(e.g. the precluster's cached ``n_i x n_i`` cost matrix) resident on its
runner: the result frame carries only a :data:`STATE_DIGEST_TAG` digest —
the entry keys, each entry's pickled size and a monotonically increasing
*state epoch* — and the next dispatch ships a :data:`STATE_TOKEN_TAG` token
naming that epoch instead of re-pickling the dict.  Protocol code never sees
the difference: reads fault transparently, writes land in a local overlay
that rides along with the next dispatch token, and results stay bit-identical
on every backend.

Coordinator-side code that reads site state after a protocol run should do so
*while the backend is still open* (faults need the wire); the
:func:`snapshot_site_state` helper pulls exactly the named small entries in
one place.  :meth:`RemoteStateProxy.pull_state` materialises everything and
detaches the proxy from the wire for callers that need the full dict.
"""

from __future__ import annotations

import weakref
from typing import Any, Callable, Dict, Iterable, Iterator, List, MutableMapping, Optional, Tuple

#: Result-frame marker: ``(STATE_DIGEST_TAG, epoch, {key: pickled_bytes})``
#: replaces the full state dict when the runner kept the state resident.
STATE_DIGEST_TAG = "__state_digest__"

#: Dispatch-frame marker: ``(STATE_TOKEN_TAG, epoch, writes, deleted)`` ships
#: an epoch reference (plus the coordinator-side write overlay) instead of
#: the state dict the runner already holds.
STATE_TOKEN_TAG = "__state_token__"


def is_state_digest(value: Any) -> bool:
    """True if ``value`` is a resident-state digest from a runner result frame."""
    return isinstance(value, tuple) and len(value) == 3 and value[0] == STATE_DIGEST_TAG


def is_state_token(value: Any) -> bool:
    """True if ``value`` is a resident-state dispatch token."""
    return isinstance(value, tuple) and len(value) == 4 and value[0] == STATE_TOKEN_TAG


def _rebuild_as_dict(items: Tuple[Tuple[str, Any], ...]) -> Dict[str, Any]:
    """Pickle target for proxies: a proxy crossing a transport becomes a dict."""
    return dict(items)


class RemoteStateProxy(MutableMapping):
    """Coordinator-side view of site state that lives on a cluster runner.

    The proxy is created from a state *digest* — entry keys, per-entry
    pickled sizes and the state epoch — and faults individual entries over
    the wire only when they are actually read (e.g. final solution
    extraction reading ``state["t_i"]``).  Faulted entries are cached
    locally; writes and deletions land in a local overlay that the next
    dispatch ships as a delta alongside the epoch token, so the heavy
    unread entries never leave the runner.

    Reading an entry needs the owning backend to still be open (and the
    resident epoch to still be current); :meth:`pull_state` materialises
    everything up front and *detaches* the proxy, after which it behaves
    like a plain local dict.  Pickling a proxy materialises it too — a
    proxy crossing a transport boundary arrives as an ordinary dict.
    """

    def __init__(
        self,
        *,
        resident_key: Any,
        site_id: int,
        epoch: int,
        sizes: Dict[str, int],
        fetch: Callable[[List[str]], Dict[str, Any]],
        owner: Any = None,
    ):
        self.resident_key = resident_key
        self.site_id = int(site_id)
        self.epoch = int(epoch)
        #: Per-entry pickled size from the digest (the wire cost a fault
        #: would pay); keys still resident on the runner.
        self.sizes: Dict[str, int] = dict(sizes)
        self._fetch = fetch
        self._owner = weakref.ref(owner) if owner is not None else None
        self._cache: Dict[str, Any] = {}
        self._writes: Dict[str, Any] = {}
        self._deleted: set = set()
        self._detached = False

    # ------------------------------------------------------------------
    # Mapping interface
    # ------------------------------------------------------------------

    def _remote_keys(self) -> List[str]:
        return [k for k in self.sizes if k not in self._deleted and k not in self._writes]

    def __iter__(self) -> Iterator[str]:
        yield from self._remote_keys()
        yield from self._writes

    def __len__(self) -> int:
        return len(self._remote_keys()) + len(self._writes)

    def __contains__(self, key: object) -> bool:
        if key in self._writes:
            return True
        return key in self.sizes and key not in self._deleted

    def __getitem__(self, key: str) -> Any:
        if key in self._writes:
            return self._writes[key]
        if key in self._deleted or key not in self.sizes:
            raise KeyError(key)
        if key not in self._cache:
            self._cache.update(self._fault([key]))
        return self._cache[key]

    def __setitem__(self, key: str, value: Any) -> None:
        self._writes[key] = value
        self._deleted.discard(key)

    def __delitem__(self, key: str) -> None:
        if key in self._writes:
            del self._writes[key]
            if key in self.sizes:
                self._deleted.add(key)
            return
        if key in self.sizes and key not in self._deleted:
            self._deleted.add(key)
            self._cache.pop(key, None)
            return
        raise KeyError(key)

    # ------------------------------------------------------------------
    # Wire plumbing
    # ------------------------------------------------------------------

    def _fault(self, keys: List[str]) -> Dict[str, Any]:
        if self._detached:
            raise RuntimeError(
                f"state entries {keys!r} of site {self.site_id} were dropped from "
                "the detached proxy; pull_state() before evicting or clearing"
            )
        return self._fetch(list(keys))

    @property
    def detached(self) -> bool:
        """True once every entry is local and the wire is no longer needed."""
        return self._detached

    def owner(self) -> Any:
        """The backend this proxy faults through (None once collected/detached)."""
        if self._owner is None:
            return None
        return self._owner()

    def resident_bytes(self) -> int:
        """Pickled bytes still resident on the runner (per the digest)."""
        return int(sum(self.sizes[k] for k in self._remote_keys() if k not in self._cache))

    def dispatch_token(self) -> Tuple[str, int, Dict[str, Any], Tuple[str, ...]]:
        """The ``(tag, epoch, writes, deleted)`` tuple a dispatch ships
        instead of the state dict.  Only valid while attached."""
        if self._detached:
            raise RuntimeError("a detached proxy has no resident epoch to reference")
        return (STATE_TOKEN_TAG, self.epoch, dict(self._writes), tuple(sorted(self._deleted)))

    def rebind(self, fetch: Callable[[List[str]], Dict[str, Any]], *, epoch: int) -> None:
        """Point an attached proxy at a new resident copy of its state.

        Recovery calls this after replaying the proxy's site log onto a
        surviving host: the replayed copy is bit-identical (digest-verified)
        but lives at a new host under that host's own monotonic epoch, so
        both the fault path and the epoch a future :meth:`dispatch_token`
        references must move together.  Locally cached entries, the write
        overlay and deletions are untouched — they describe coordinator-side
        intent, not the resident copy.  No-op on a detached proxy (it no
        longer reads through any wire).
        """
        if self._detached:
            return
        self._fetch = fetch
        self.epoch = int(epoch)

    def pull_state(self) -> Dict[str, Any]:
        """Fault every remaining entry, detach from the wire, return the dict.

        After this call the proxy serves all reads and writes locally — the
        backend may be closed, the runner may evict, nothing is lost.
        """
        if not self._detached:
            missing = [k for k in self._remote_keys() if k not in self._cache]
            if missing:
                self._cache.update(self._fault(missing))
            self._detached = True
        return dict(self.items())

    def prefetch(self, keys: Iterable[str]) -> None:
        """Fault the named entries in one batched wire round-trip.

        Keys that are absent, deleted, overwritten locally or already cached
        are skipped; a detached proxy has nothing left to fetch.  Reads that
        follow are served from the cache, so ``prefetch`` turns N
        one-key faults into a single frame exchange.
        """
        if self._detached:
            return
        missing = [
            k
            for k in keys
            if k in self.sizes
            and k not in self._deleted
            and k not in self._writes
            and k not in self._cache
        ]
        if missing:
            self._cache.update(self._fault(missing))

    def evict(self, *keys: str) -> None:
        """Drop locally cached faulted entries (all of them when no keys given).

        Frees coordinator memory only — the authoritative copy stays on the
        runner and re-faults on the next read.  No-op once detached (the
        local copy *is* the authoritative one then).
        """
        if self._detached:
            return
        if keys:
            for key in keys:
                self._cache.pop(key, None)
        else:
            self._cache.clear()

    def __reduce__(self):
        # A proxy crossing a transport boundary materialises into a plain
        # dict: the receiving side cannot fault through our socket.
        return (_rebuild_as_dict, (tuple(self.pull_state().items()),))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = "detached" if self._detached else f"epoch={self.epoch}"
        return (
            f"RemoteStateProxy(site={self.site_id}, {mode}, "
            f"keys={list(self)!r}, resident_bytes={self.resident_bytes()})"
        )


def materialize_state(state: Any) -> Dict[str, Any]:
    """A plain dict from a state mapping, pulling a proxy's entries if needed."""
    if isinstance(state, RemoteStateProxy):
        return state.pull_state()
    return state if isinstance(state, dict) else dict(state)


def snapshot_site_state(sites: Iterable[Any], keys: Iterable[str]) -> List[Dict[str, Any]]:
    """Per-site ``{key: state.get(key)}`` snapshots for the named keys.

    The one-stop hook protocol drivers use to read the small state entries
    their result metadata needs *while the execution backend is still open*:
    on a cluster backend reads fault over the wire, which is impossible
    after ``backend_scope`` closed the pool.  A proxy's missing entries are
    prefetched as one batched fault per site (one frame exchange, not one
    per key).  Missing keys snapshot as ``None``, mirroring ``dict.get``.
    """
    keys = list(keys)
    out = []
    for site in sites:
        state = site.state
        if isinstance(state, RemoteStateProxy):
            state.prefetch(keys)
        out.append({key: state.get(key) for key in keys})
    return out


__all__ = [
    "RemoteStateProxy",
    "STATE_DIGEST_TAG",
    "STATE_TOKEN_TAG",
    "is_state_digest",
    "is_state_token",
    "materialize_state",
    "snapshot_site_state",
]
