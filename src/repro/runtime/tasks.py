"""Site tasks: the unit of work a backend schedules.

A protocol round is an embarrassingly parallel batch of *site tasks*: each
task runs one site's share of the round against a :class:`SiteContext` — a
self-contained, picklable view of that site (shard, local metric, mutable
state, RNG stream, inbox) — and buffers its transmissions in an outbox
instead of touching the shared :class:`~repro.distributed.network.StarNetwork`
directly.  :func:`run_site_tasks` fans the batch out to an execution backend,
joins the results in site order, and merges everything back into the
network: state replaces state, per-task timers fold into the site timers,
outboxes replay through the instrumented ledger, and the advanced RNG
streams come back to the caller so the next round continues each site's
stream exactly where it stopped.

Because a task only ever sees its own context and results are merged in a
fixed order, a protocol run is bit-identical across backends for a fixed
seed: same centers, same costs, same ledger word counts.

Dispatch is future-based: each backend returns one future per task
(:meth:`~repro.runtime.backends.ExecutionBackend.submit_ordered`), and the
join walks them in submission order.  With ``async_rounds=True`` the
coordinator *streams* the join — site ``i``'s state, ledger charges and
``consume`` callback run while sites ``i+1..`` are still computing, the
latency-hiding idea of the tile prefetcher one level up.  The merge order is
the submission order either way, so results are identical; only wall-clock
overlap changes.

On a :class:`~repro.cluster.backend.ClusterBackend` the pairs are shipped
through :meth:`~repro.cluster.backend.ClusterBackend.submit_site_pairs`
instead: payloads cross real sockets, the network ledger's wire ledger
records every frame's bytes, and uplink messages come back stamped with the
serialized size of their payload (``Message.n_bytes``).

State ownership follows the :mod:`repro.runtime.state` contract: the merged
``site.state`` is a *mutable mapping*, not necessarily the dict the task
mutated.  In-process backends hand the dict back directly; the cluster
backend keeps each site's mutable state resident on its runner and merges a
:class:`~repro.runtime.state.RemoteStateProxy` built from a compact digest,
so heavy state (a precluster's cached ``n_i x n_i`` cost matrix) never
round-trips the wire between rounds.  Coordinator code that reads site
state must therefore do so while the backend is still open (reads may fault
over the wire) — or call ``pull_state()`` to materialise everything first.
Either way, reads observe identical values on every backend.

Task functions must be module-level callables (the process backend ships
them to workers by pickling their qualified name).
"""

from __future__ import annotations

from concurrent.futures import Future, wait as _wait_futures
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.distributed.messages import Message
from repro.obs.trace import NULL_TRACER, TraceBuffer, collector_scope
from repro.runtime.backends import BackendLike, backend_scope
from repro.runtime.transport import TransportLike, resolve_transport
from repro.utils.timing import Timer


@dataclass
class Outgoing:
    """One buffered site-to-coordinator transmission.

    ``n_bytes`` is stamped by the cluster runner with the payload's
    serialized (raw pickle) size and ``n_bytes_encoded`` with what the same
    blob costs under the result frame's wire codec; in-process backends
    leave both ``None``.
    """

    kind: str
    payload: Any
    words: float
    n_bytes: Optional[int] = None
    n_bytes_encoded: Optional[int] = None


class SiteContext:
    """Everything a site task may touch — and nothing else.

    The context mirrors the :class:`~repro.distributed.network.Site` interface
    that protocol code relies on (``site_id``, ``shard``, ``local_metric``,
    ``state``, ``to_global``) so per-site phase functions read the same
    whether they run inline or in a worker.  Transmissions go through
    :meth:`send_to_coordinator`, which buffers them for deterministic replay
    into the ledger after the task joins.
    """

    def __init__(
        self,
        site_id: int,
        shard: np.ndarray,
        local_metric,
        state: Dict[str, Any],
        rng: Optional[np.random.Generator],
        inbox: List[Message],
        resident_key: Optional[str] = None,
        trace: Optional[TraceBuffer] = None,
    ):
        self.site_id = int(site_id)
        self.shard = shard
        self.local_metric = local_metric
        self.state = state
        self.rng = rng
        self.inbox = inbox
        self.timer = Timer()
        self.outbox: List[Outgoing] = []
        #: Cache identity of (shard, local_metric) for runner-resident state
        #: on the cluster backend; ``None`` disables caching for this context.
        self.resident_key = resident_key
        #: Span/counter recorder for this task's execution (``None`` when the
        #: run is untraced, so the hot path allocates nothing).
        self.trace = trace

    @property
    def n_points(self) -> int:
        """Number of points held by the site."""
        return int(self.shard.size)

    def to_global(self, local_indices) -> np.ndarray:
        """Map site-local indices to global point indices."""
        return self.local_metric.to_parent(local_indices)

    def messages(self, kind: Optional[str] = None) -> List[Message]:
        """Messages delivered to this site this round (optionally of one kind)."""
        return [m for m in self.inbox if kind is None or m.kind == kind]

    def send_to_coordinator(self, kind: str, payload: Any, words: float) -> None:
        """Buffer a transmission; it is charged when the task joins."""
        self.outbox.append(Outgoing(kind=kind, payload=payload, words=float(words)))


@dataclass
class SiteTask:
    """One site's share of a protocol round.

    ``fn`` is called as ``fn(ctx, *args, **kwargs)`` with a
    :class:`SiteContext`; its return value comes back as
    :attr:`SiteTaskResult.value`.  ``rng`` is the site's RNG stream for the
    round (spawn one per site with :func:`repro.utils.rng.spawn_rngs`).
    """

    site_id: int
    fn: Callable[..., Any]
    args: Tuple = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    rng: Optional[np.random.Generator] = None


@dataclass
class SiteTaskResult:
    """What comes back from one site task after the join."""

    site_id: int
    value: Any
    state: Dict[str, Any]
    timer: Timer
    rng: Optional[np.random.Generator]
    outbox: List[Outgoing]
    trace: Optional[TraceBuffer] = None


def _execute_site_task(task_and_ctx: Tuple[SiteTask, SiteContext]) -> SiteTaskResult:
    """Run one task against its context (in the caller or in a worker)."""
    task, ctx = task_and_ctx
    if ctx.trace is not None:
        # Traced run: the buffer collects the task span plus any counters the
        # metrics layer bumps through the ambient collector, and rides back
        # on the result for the coordinator to absorb.
        with collector_scope(ctx.trace):
            with ctx.trace.span("site_task", site=ctx.site_id):
                value = task.fn(ctx, *task.args, **task.kwargs)
    else:
        value = task.fn(ctx, *task.args, **task.kwargs)
    return SiteTaskResult(
        site_id=ctx.site_id,
        value=value,
        state=ctx.state,
        timer=ctx.timer,
        rng=ctx.rng,
        outbox=ctx.outbox,
        trace=ctx.trace,
    )


def _barrier_check(futures: Sequence[Future]) -> None:
    """Wait for every future; re-raise the earliest-submitted failure.

    The synchronous (non-async) join semantics: nothing is merged into the
    network until the whole round completed, and a failing round leaves the
    network untouched.
    """
    _wait_futures(futures)
    for future in futures:
        future.result()


def run_site_tasks(
    network,
    tasks: Sequence[SiteTask],
    *,
    backend: BackendLike = None,
    transport: TransportLike = None,
    async_rounds: bool = False,
    consume: Optional[Callable[[SiteTaskResult], None]] = None,
) -> List[SiteTaskResult]:
    """Fan site tasks out to a backend and merge the results into the network.

    Parameters
    ----------
    network:
        The :class:`~repro.distributed.network.StarNetwork` being driven.
        Inboxes of the addressed sites are drained into the task contexts;
        after the join, site state, timers and buffered transmissions are
        merged back in submission order.
    tasks:
        At most one :class:`SiteTask` per site.
    backend:
        ``None`` / a registered backend name (optionally ``"name:workers"``,
        e.g. ``"thread:4"`` or ``"cluster:3"``) or an
        :class:`~repro.runtime.backends.ExecutionBackend` instance.
    transport:
        ``None`` / ``"reference"`` / ``"pickle"`` or a
        :class:`~repro.runtime.transport.TransportPolicy`; applied to inbox
        payloads entering a task and outbox payloads leaving it.
    async_rounds:
        ``False`` (default): barrier join — every site completes before any
        result is merged.  ``True``: streaming join — each result is merged
        (and handed to ``consume``) as soon as it *and all its predecessors*
        completed, overlapping coordinator-side work with the still-running
        sites.  Merge order is submission order either way, so results and
        ledgers are identical.
    consume:
        Optional callback invoked once per merged result, in submission
        order, right after the result's state and ledger charges landed —
        the hook protocols use to overlap per-site coordinator work (e.g.
        computing allocation marginals) with site compute.

    Returns
    -------
    list of :class:`SiteTaskResult` in submission order.  Callers that
    carry RNG streams across rounds must adopt ``result.rng`` (under the
    process backend the stream advanced in the worker, not in the parent).

    Recovery contract
    -----------------
    On a cluster backend with a retry policy enabled
    (:class:`~repro.cluster.recovery.RetryPolicy`), a runner death during the
    join is transparent: each site's dispatches are checkpointed in a
    coordinator-side log, the dead host's sites are re-pinned
    deterministically to survivors, their logs are replayed from record 0
    (full state + RNG carry-over travel with record 0, so the replay is
    bit-identical, which recovery asserts against the state digests), and
    the futures resolve as if nothing happened — same results, same merge
    order, same ledger words.  Only the wire ledger differs: replay traffic
    appears under ``replay_*`` frame kinds plus a
    :class:`~repro.cluster.wire.RecoveryEvent` per handled death.  Once the
    retry budget is exhausted (or on a fail-fast backend), the join raises
    :class:`~repro.cluster.recovery.DeadHostError` naming the host, round,
    in-flight tasks and last committed state epochs.
    """
    tasks = list(tasks)
    seen = set()
    for task in tasks:
        if not (0 <= task.site_id < network.n_sites):
            raise ValueError(f"task addresses unknown site id {task.site_id}")
        if task.site_id in seen:
            raise ValueError(f"multiple tasks address site {task.site_id}")
        seen.add(task.site_id)

    policy = resolve_transport(transport)
    tracer = getattr(network, "tracer", None) or NULL_TRACER
    round_index = network.current_round

    pairs: List[Tuple[SiteTask, SiteContext]] = []
    for task in tasks:
        site = network.sites[task.site_id]
        inbox = [replace(m, payload=policy.roundtrip(m.payload)) for m in site.drain_inbox()]
        ctx = SiteContext(
            site_id=site.site_id,
            shard=site.shard,
            local_metric=site.local_metric,
            state=site.state,
            rng=task.rng,
            inbox=inbox,
            resident_key=getattr(site, "resident_key", None),
            trace=TraceBuffer(origin=f"site-{site.site_id}") if tracer.enabled else None,
        )
        pairs.append((task, ctx))

    with backend_scope(backend) as exec_backend:
        with tracer.span("round", round=round_index, tasks=len(tasks),
                         backend=type(exec_backend).__name__):
            t_dispatch = tracer.clock()
            if tracer.enabled:
                # Progress gauges a live snapshot reads mid-run; the null
                # tracer path stays allocation-free.
                tracer.gauge("progress.round", round_index)
                tracer.gauge("progress.tasks_in_flight", len(tasks))
            submit_site_pairs = getattr(exec_backend, "submit_site_pairs", None)
            if submit_site_pairs is not None:
                # Wire-capable backend (cluster): payloads cross real sockets
                # and every frame's bytes land in the run ledger's wire
                # ledger.  The tracer rides along only when enabled so the
                # untraced dispatch path (and its frames) stay byte-identical.
                extra = {"tracer": tracer} if tracer.enabled else {}
                futures = submit_site_pairs(
                    pairs,
                    round_index=round_index,
                    wire=network.ledger.ensure_wire(),
                    **extra,
                )
            else:
                futures = exec_backend.submit_ordered(_execute_site_task, pairs)

            if not async_rounds:
                _barrier_check(futures)

            results: List[SiteTaskResult] = []
            for future in futures:
                result = future.result()
                site = network.sites[result.site_id]
                site.state = result.state
                site.timer.merge(result.timer)
                if tracer.enabled:
                    # Cluster results come back with their buffers already
                    # absorbed by the backend (result.trace is None there).
                    if result.trace is not None:
                        tracer.absorb(
                            result.trace,
                            window=(t_dispatch, tracer.clock()),
                            tags={"round": round_index},
                        )
                    tracer.event("absorb", site=result.site_id, round=round_index)
                    tracer.inc("progress.tasks_done")
                    tracer.gauge("progress.tasks_in_flight",
                                 len(tasks) - len(results) - 1)
                for out in result.outbox:
                    network.send_to_coordinator(
                        result.site_id,
                        out.kind,
                        policy.roundtrip(out.payload),
                        out.words,
                        n_bytes=out.n_bytes,
                        n_bytes_encoded=out.n_bytes_encoded,
                    )
                if consume is not None:
                    consume(result)
                results.append(result)
    return results


class _TracedCall:
    """Picklable wrapper running a payload task under a fresh trace buffer.

    Returns ``(value, buffer)`` so the coordinator can absorb the buffer;
    ``fn`` and its result are untouched, keeping traced and untraced runs
    bit-identical.
    """

    def __init__(self, fn: Callable[[Any], Any]):
        self.fn = fn

    def __call__(self, indexed_payload: Tuple[int, Any]) -> Tuple[Any, TraceBuffer]:
        index, payload = indexed_payload
        buffer = TraceBuffer(origin=f"task-{index}")
        with collector_scope(buffer):
            with buffer.span("task", index=index,
                             fn=getattr(self.fn, "__name__", str(self.fn))):
                value = self.fn(payload)
        return value, buffer


def run_tasks(
    fn: Callable[[Any], Any],
    payloads: Sequence[Any],
    *,
    backend: BackendLike = None,
    ledger=None,
    round_index: int = 0,
    async_rounds: bool = False,
    consume: Optional[Callable[[int, Any], None]] = None,
    tracer=None,
) -> List[Any]:
    """Evaluate ``fn`` over independent payloads on a backend, in order.

    The structure-free sibling of :func:`run_site_tasks`, used by protocols
    that manage their own ledger and timers (the uncertain Algorithms 3 and
    4).  ``fn`` must be a module-level callable and each payload picklable
    for the process and cluster backends.

    ``ledger`` (a :class:`~repro.distributed.messages.CommunicationLedger`)
    and ``round_index`` give a wire-capable backend somewhere to account the
    frames it exchanges; in-process backends ignore both.  ``async_rounds``
    streams the join exactly as in :func:`run_site_tasks`, calling
    ``consume(index, result)`` per completed payload in submission order.
    ``tracer`` (a :class:`~repro.obs.trace.Tracer`) records a round span,
    per-task spans and absorb events; ``None`` (the default) traces nothing.
    """
    payloads = list(payloads)
    tracer = tracer or NULL_TRACER
    with backend_scope(backend) as exec_backend:
        with tracer.span("round", round=round_index, tasks=len(payloads),
                         fn=getattr(fn, "__name__", str(fn)),
                         backend=type(exec_backend).__name__):
            t_dispatch = tracer.clock()
            if tracer.enabled:
                tracer.gauge("progress.round", round_index)
                tracer.gauge("progress.tasks_in_flight", len(payloads))
            traced_inline = False
            submit_tasks = getattr(exec_backend, "submit_tasks", None)
            if submit_tasks is not None:
                wire = ledger.ensure_wire() if ledger is not None else None
                extra = {"tracer": tracer} if tracer.enabled else {}
                futures = submit_tasks(fn, payloads, round_index=round_index,
                                       wire=wire, **extra)
            elif tracer.enabled:
                traced_inline = True
                futures = exec_backend.submit_ordered(
                    _TracedCall(fn), list(enumerate(payloads))
                )
            else:
                futures = exec_backend.submit_ordered(fn, payloads)
            if not async_rounds:
                _barrier_check(futures)
            results: List[Any] = []
            for index, future in enumerate(futures):
                result = future.result()
                if traced_inline:
                    result, buffer = result
                    tracer.absorb(buffer, window=(t_dispatch, tracer.clock()),
                                  tags={"round": round_index})
                if tracer.enabled:
                    tracer.event("absorb", index=index, round=round_index)
                    tracer.inc("progress.tasks_done")
                    tracer.gauge("progress.tasks_in_flight",
                                 len(payloads) - len(results) - 1)
                if consume is not None:
                    consume(index, result)
                results.append(result)
            return results


__all__ = [
    "Outgoing",
    "SiteContext",
    "SiteTask",
    "SiteTaskResult",
    "run_site_tasks",
    "run_tasks",
]
