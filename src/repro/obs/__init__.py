"""repro.obs — run tracing, metrics, and round-by-round run reports.

The observability substrate every layer of a run reports through: a
:class:`~repro.obs.trace.Tracer` with spans/events/counters on one
monotonic timeline (runner-side work rides back on picklable
:class:`~repro.obs.trace.TraceBuffer`\\ s), a round-by-round report that
cross-checks trace-derived byte totals against the wire ledger, and a
Chrome/Perfetto ``trace_event`` export.  Enable with ``trace=True`` on any
protocol driver; the tracer is attached to the result as ``result.trace``.
"""

from repro.obs.export import to_chrome_trace, write_chrome_trace
from repro.obs.report import (
    SUMMARY_COUNTERS,
    protocol_summary,
    render_protocol_summary,
    render_round_report,
    round_report,
)
from repro.obs.trace import (
    NULL_TRACER,
    EventRecord,
    MetricsRegistry,
    NullTracer,
    SpanRecord,
    TraceBuffer,
    TraceLike,
    Tracer,
    active_collector,
    collector_scope,
    resolve_tracer,
    trace_run,
)

__all__ = [
    "NULL_TRACER",
    "SUMMARY_COUNTERS",
    "EventRecord",
    "MetricsRegistry",
    "NullTracer",
    "SpanRecord",
    "TraceBuffer",
    "TraceLike",
    "Tracer",
    "active_collector",
    "collector_scope",
    "protocol_summary",
    "render_protocol_summary",
    "render_round_report",
    "resolve_tracer",
    "round_report",
    "to_chrome_trace",
    "trace_run",
    "write_chrome_trace",
]
