"""repro.obs — run tracing, live telemetry, and round-by-round run reports.

The observability substrate every layer of a run reports through: a
:class:`~repro.obs.trace.Tracer` with spans/events/counters on one
monotonic timeline (runner-side work rides back on picklable
:class:`~repro.obs.trace.TraceBuffer`\\ s), a round-by-round report that
cross-checks trace-derived byte totals against the wire ledger, and a
Chrome/Perfetto ``trace_event`` export.  Enable with ``trace=True`` on any
protocol driver; the tracer is attached to the result as ``result.trace``.

The live plane (PR 9) adds ``telemetry=`` on the same drivers: background
resource sampling on the coordinator and (over heartbeat frames) every
runner (:mod:`~repro.obs.sampler`), mid-run metric snapshots to
Prometheus/JSONL sinks (:mod:`~repro.obs.live`), structured span-correlated
JSON-lines logs (:mod:`~repro.obs.logs`), and a persistent run-history
registry with a ``python -m repro.obs.history`` regression CLI
(:mod:`~repro.obs.history`).
"""

from repro.obs.export import to_chrome_trace, write_chrome_trace
from repro.obs.live import (
    NULL_TELEMETRY,
    JsonlSink,
    LiveMetrics,
    NullTelemetry,
    PrometheusFileSink,
    PrometheusHttpSink,
    TelemetryLike,
    TelemetrySession,
    build_snapshot,
    prometheus_text,
    resolve_telemetry,
    telemetry_scope,
)
from repro.obs.logs import LogBuffer, LogRecord, RunLog, active_log, log, log_scope
from repro.obs.report import (
    SUMMARY_COUNTERS,
    assert_byte_parity,
    byte_parity_diff,
    protocol_summary,
    render_protocol_summary,
    render_round_report,
    round_report,
)
from repro.obs.sampler import (
    RESOURCE_SAMPLE_ENV,
    ResourceSampler,
    read_resource_sample,
    resource_samples_enabled,
)
from repro.obs.trace import (
    NULL_TRACER,
    EventRecord,
    MetricsRegistry,
    NullTracer,
    SpanRecord,
    TraceBuffer,
    TraceLike,
    Tracer,
    active_collector,
    collector_scope,
    rebase_offset,
    resolve_tracer,
    trace_run,
)

# The run-history registry is re-exported lazily (PEP 562) rather than
# imported here: ``python -m repro.obs.history`` first imports this package,
# and an eager ``from repro.obs.history import ...`` would leave the module
# in sys.modules before runpy executes it, tripping a RuntimeWarning on
# every CLI invocation.
_HISTORY_EXPORTS = ("RUN_HISTORY_ENV", "RunHistory", "summary_record")


def __getattr__(name):
    if name in _HISTORY_EXPORTS:
        from repro.obs import history

        return getattr(history, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "NULL_TELEMETRY",
    "NULL_TRACER",
    "RESOURCE_SAMPLE_ENV",
    "RUN_HISTORY_ENV",
    "SUMMARY_COUNTERS",
    "EventRecord",
    "JsonlSink",
    "LiveMetrics",
    "LogBuffer",
    "LogRecord",
    "MetricsRegistry",
    "NullTelemetry",
    "NullTracer",
    "PrometheusFileSink",
    "PrometheusHttpSink",
    "ResourceSampler",
    "RunHistory",
    "RunLog",
    "SpanRecord",
    "TelemetryLike",
    "TelemetrySession",
    "TraceBuffer",
    "TraceLike",
    "Tracer",
    "active_collector",
    "active_log",
    "assert_byte_parity",
    "build_snapshot",
    "byte_parity_diff",
    "collector_scope",
    "log",
    "log_scope",
    "prometheus_text",
    "protocol_summary",
    "read_resource_sample",
    "rebase_offset",
    "render_protocol_summary",
    "render_round_report",
    "resolve_telemetry",
    "resolve_tracer",
    "resource_samples_enabled",
    "round_report",
    "summary_record",
    "telemetry_scope",
    "to_chrome_trace",
    "trace_run",
    "write_chrome_trace",
]
