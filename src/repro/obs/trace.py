"""Run tracing and metrics: one timeline across coordinator, runners, wire.

The paper's evaluation is *accounting* — communication per protocol, local
vs. coordinator time — and the repo already has three disjoint instruments
for it (``Timer`` labels, the word-count ``CommunicationLedger``, the
physical ``WireLedger``).  This module adds the layer that ties them
together: a :class:`Tracer` records *spans* (named intervals with tags) and
*events* on a single monotonic timeline, plus a :class:`MetricsRegistry` of
counters and gauges, cheap enough to thread through every hot path.

Three design points carry the module:

``Tracer`` vs. ``TraceBuffer``
    The coordinator holds the :class:`Tracer`; work that executes elsewhere
    (a site task in a worker process, a frame handler in a cluster runner)
    records into a picklable :class:`TraceBuffer` in its *own* raw
    ``perf_counter`` clock.  The buffer rides back on the existing result
    path (worker result / cluster result-frame extras) and the coordinator
    :meth:`Tracer.absorb`\\ s it: if the buffer's clock is comparable (Linux
    ``CLOCK_MONOTONIC`` is system-wide, so same-machine runners usually
    are), spans land at their true instants; otherwise they are rebased
    into the dispatch window ``[t_send, t_recv]`` the coordinator observed,
    centred, preserving order and duration.  Either way the merged timeline
    is monotone and runner spans nest inside the wire span that carried them.

Zero overhead when off
    ``trace=False`` resolves to the shared :data:`NULL_TRACER`, whose
    ``span()`` returns one reusable no-op context manager and whose
    counters are no-ops — no per-task allocation, no branching beyond an
    attribute check, and protocol results stay bit-identical (tracing never
    touches RNG streams or payloads).

Ambient collector
    Deep layers (the tile ``ReductionPlan``, the prefetcher) cannot thread a
    tracer argument through every call.  They look up the thread-local
    :func:`active_collector` — a ``Tracer`` or ``TraceBuffer`` installed by
    :func:`collector_scope` — and bump counters on it, so plan executions
    inside a runner land in that frame's buffer and coordinator-side plans
    land in the run tracer, without any API change in the metrics layer.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

#: Spans recorded via ``span()`` follow thread stack discipline; spans added
#: with explicit endpoints (``add_span``, e.g. wire round-trips observed by a
#: reader thread) may overlap freely and are marked async.
SYNC = "sync"
ASYNC = "async"


@dataclass
class SpanRecord:
    """One named interval on a timeline.

    ``start``/``end`` are seconds — on the tracer's timeline once absorbed,
    in the recorder's raw ``perf_counter`` clock inside a
    :class:`TraceBuffer`.  ``origin`` names the party ("coordinator",
    "host-2", "site-0"); ``tid`` is the recording thread.  ``flow`` is
    :data:`SYNC` for stack-disciplined spans and :data:`ASYNC` for
    explicit-endpoint spans that may overlap (wire round-trips).  ``sid`` is
    the recorder-local span id structured log records correlate to
    (:mod:`repro.obs.logs`); unique per recorder, so ``(origin, sid)``
    identifies a span on the merged timeline.  ``0`` marks records from
    before span ids existed.
    """

    name: str
    start: float
    end: float
    origin: str
    tid: int
    tags: Dict[str, Any] = field(default_factory=dict)
    flow: str = SYNC
    sid: int = 0

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class EventRecord:
    """One instantaneous marker on a timeline."""

    name: str
    time: float
    origin: str
    tid: int
    tags: Dict[str, Any] = field(default_factory=dict)


class MetricsRegistry:
    """Named counters (monotone adds) and gauges (last-write-wins).

    Picklable and mergeable: runner-side registries fold into the
    coordinator's with :meth:`merge` (counters add, gauges overwrite).
    Reading an unset counter returns ``0.0`` so report code can list a fixed
    set of counters without caring which layers ran.
    """

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}

    def inc(self, name: str, value: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + value

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = float(value)

    def counter(self, name: str) -> float:
        return self.counters.get(name, 0.0)

    def merge(self, other: "MetricsRegistry") -> None:
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0.0) + value
        self.gauges.update(other.gauges)

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        return {"counters": dict(self.counters), "gauges": dict(self.gauges)}

    def __bool__(self) -> bool:
        return bool(self.counters or self.gauges)


class TraceBuffer:
    """Picklable span/event/counter recorder for work that runs off-coordinator.

    Records in the local raw ``perf_counter`` clock; the coordinator rebases
    on :meth:`Tracer.absorb`.  Single-threaded by design (one buffer per
    task or frame), so appends are lock-free.
    """

    enabled = True

    def __init__(self, origin: str):
        self.origin = origin
        self.spans: List[SpanRecord] = []
        self.events: List[EventRecord] = []
        self.metrics = MetricsRegistry()
        self._sids = itertools.count(1)
        self._sid_stack: List[int] = []

    # -- recording ----------------------------------------------------------

    @contextmanager
    def span(self, name: str, **tags: Any) -> Iterator[None]:
        start = time.perf_counter()
        sid = next(self._sids)
        self._sid_stack.append(sid)
        try:
            yield
        finally:
            self._sid_stack.pop()
            self.spans.append(
                SpanRecord(name, start, time.perf_counter(), self.origin,
                           threading.get_ident(), tags, sid=sid)
            )

    def current_span_id(self) -> int:
        """Span id of the innermost open ``span()`` (0 outside any span)."""
        return self._sid_stack[-1] if self._sid_stack else 0

    def event(self, name: str, **tags: Any) -> None:
        self.events.append(
            EventRecord(name, time.perf_counter(), self.origin, threading.get_ident(), tags)
        )

    def inc(self, name: str, value: float = 1.0) -> None:
        self.metrics.inc(name, value)

    def gauge(self, name: str, value: float) -> None:
        self.metrics.gauge(name, value)

    # -- introspection ------------------------------------------------------

    def bounds(self) -> Optional[Tuple[float, float]]:
        """Earliest and latest recorded instant (raw clock), or ``None``."""
        times = [s.start for s in self.spans] + [e.time for e in self.events]
        times += [s.end for s in self.spans]
        if not times:
            return None
        return min(times), max(times)

    def __bool__(self) -> bool:
        return bool(self.spans or self.events or self.metrics)


class Tracer:
    """The coordinator-side trace: spans, events and metrics on one timeline.

    The timeline's zero is the tracer's creation instant (monotonic
    ``perf_counter``); :meth:`clock` reads it.  Appends are lock-protected —
    cluster reader threads record wire spans concurrently with the
    coordinator thread.
    """

    enabled = True

    def __init__(self) -> None:
        self._epoch = time.perf_counter()
        self._lock = threading.Lock()
        self.spans: List[SpanRecord] = []
        self.events: List[EventRecord] = []
        self.metrics = MetricsRegistry()
        self._sids = itertools.count(1)
        self._sid_local = threading.local()

    @property
    def epoch(self) -> float:
        """Raw ``perf_counter`` instant of the timeline's zero (read-only;
        :class:`~repro.obs.logs.RunLog` rebases foreign buffers against it)."""
        return self._epoch

    def clock(self) -> float:
        """Seconds since the tracer's epoch (monotonic)."""
        return time.perf_counter() - self._epoch

    # -- recording ----------------------------------------------------------

    def _sid_stack(self) -> List[int]:
        stack = getattr(self._sid_local, "stack", None)
        if stack is None:
            stack = self._sid_local.stack = []
        return stack

    @contextmanager
    def span(self, name: str, *, origin: str = "coordinator", **tags: Any) -> Iterator[None]:
        start = self.clock()
        sid = next(self._sids)
        stack = self._sid_stack()
        stack.append(sid)
        try:
            yield
        finally:
            stack.pop()
            record = SpanRecord(name, start, self.clock(), origin,
                                threading.get_ident(), tags, sid=sid)
            with self._lock:
                self.spans.append(record)

    def current_span_id(self) -> int:
        """Span id of this thread's innermost open ``span()`` (0 outside)."""
        stack = getattr(self._sid_local, "stack", None)
        return stack[-1] if stack else 0

    def add_span(
        self,
        name: str,
        start: float,
        end: float,
        *,
        origin: str = "coordinator",
        **tags: Any,
    ) -> None:
        """Record a span with explicit on-timeline endpoints (marked async —
        wire round-trips observed by a reader thread may overlap freely)."""
        record = SpanRecord(name, start, end, origin, threading.get_ident(), tags,
                            ASYNC, sid=next(self._sids))
        with self._lock:
            self.spans.append(record)

    def event(self, name: str, *, origin: str = "coordinator", **tags: Any) -> None:
        record = EventRecord(name, self.clock(), origin, threading.get_ident(), tags)
        with self._lock:
            self.events.append(record)

    def inc(self, name: str, value: float = 1.0) -> None:
        with self._lock:
            self.metrics.inc(name, value)

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self.metrics.gauge(name, value)

    def counter(self, name: str) -> float:
        """Current value of a counter (0.0 if never bumped)."""
        return self.metrics.counter(name)

    # -- merging remote buffers ---------------------------------------------

    def absorb(
        self,
        buffer: Optional[TraceBuffer],
        *,
        window: Optional[Tuple[float, float]] = None,
        tags: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Merge a :class:`TraceBuffer` onto this timeline.

        ``window`` is the dispatch interval ``(t_send, t_recv)`` the
        coordinator observed for the work that filled the buffer, in tracer
        time.  The buffer's raw clock is first tried as directly comparable
        (offset by the tracer epoch — exact on same-machine runners, where
        ``perf_counter`` is the system-wide monotonic clock); if the
        resulting instants fall outside the window, the buffer is rebased
        to the window's centre instead, preserving order and durations.
        ``tags`` (e.g. ``{"round": 2, "host": 1}``) are added to every
        absorbed record without overriding the record's own tags.
        """
        if buffer is None or not buffer:
            return
        offset = rebase_offset(self._epoch, buffer.bounds(), window)
        extra = tags or {}
        with self._lock:
            for span in buffer.spans:
                self.spans.append(
                    SpanRecord(span.name, span.start + offset, span.end + offset,
                               span.origin, span.tid, {**extra, **span.tags}, span.flow,
                               sid=span.sid)
                )
            for ev in buffer.events:
                self.events.append(
                    EventRecord(ev.name, ev.time + offset, ev.origin, ev.tid,
                                {**extra, **ev.tags})
                )
            self.metrics.merge(buffer.metrics)

    # -- introspection ------------------------------------------------------

    def origins(self) -> List[str]:
        """Sorted distinct origins across spans and events."""
        seen = {s.origin for s in self.spans} | {e.origin for e in self.events}
        return sorted(seen)

    def find_spans(self, name: Optional[str] = None, **tags: Any) -> List[SpanRecord]:
        """Spans matching a name and/or exact tag values, in record order."""
        out = []
        for span in self.spans:
            if name is not None and span.name != name:
                continue
            if any(span.tags.get(k) != v for k, v in tags.items()):
                continue
            out.append(span)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Tracer(spans={len(self.spans)}, events={len(self.events)}, "
            f"counters={len(self.metrics.counters)})"
        )


def rebase_offset(
    epoch: float,
    bounds: Optional[Tuple[float, float]],
    window: Optional[Tuple[float, float]],
) -> float:
    """Offset mapping a foreign buffer's raw clock onto a tracer timeline.

    The rebase rule :meth:`Tracer.absorb` applies, shared with the log layer
    (:class:`~repro.obs.logs.RunLog` rebases :class:`~repro.obs.logs.LogBuffer`
    records identically): try ``-epoch`` first — exact when the recorder
    shares this machine's ``perf_counter`` stream — and fall back to centring
    the buffer inside the observed dispatch ``window`` when the resulting
    instants fall outside it.
    """
    offset = -epoch
    if window is not None and bounds is not None:
        w0, w1 = window
        b0, b1 = bounds
        slack = 1e-6
        if not (w0 - slack <= b0 + offset and b1 + offset <= w1 + slack):
            # Clocks are not comparable: centre the buffer in the window.
            width = w1 - w0
            length = b1 - b0
            offset = (w0 + max(0.0, (width - length) / 2.0)) - b0
    return offset


class _NullSpan:
    """The reusable no-op context manager behind a disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """A disabled tracer: every operation is a no-op, nothing is allocated.

    ``span()`` hands back one shared context manager and the record lists
    stay empty forever, so the hot path pays an attribute check and nothing
    else when tracing is off.
    """

    enabled = False
    spans: List[SpanRecord] = []
    events: List[EventRecord] = []

    def __init__(self) -> None:
        self.metrics = MetricsRegistry()

    def clock(self) -> float:
        return 0.0

    def span(self, name: str, **tags: Any) -> _NullSpan:
        return _NULL_SPAN

    def current_span_id(self) -> int:
        return 0

    def add_span(self, name: str, start: float, end: float, **tags: Any) -> None:
        return None

    def event(self, name: str, **tags: Any) -> None:
        return None

    def inc(self, name: str, value: float = 1.0) -> None:
        return None

    def gauge(self, name: str, value: float) -> None:
        return None

    def counter(self, name: str) -> float:
        return 0.0

    def absorb(self, buffer: Any, **kwargs: Any) -> None:
        return None

    def origins(self) -> List[str]:
        return []

    def find_spans(self, name: Optional[str] = None, **tags: Any) -> List[SpanRecord]:
        return []


#: The shared disabled tracer every untraced run uses.
NULL_TRACER = NullTracer()

#: What a driver's ``trace=`` knob accepts: a bool or an existing tracer.
TraceLike = Union[bool, None, Tracer, NullTracer]


def resolve_tracer(trace: Any) -> Any:
    """Resolve a ``trace=`` knob to a tracer.

    ``False``/``None`` → the shared :data:`NULL_TRACER`; ``True`` → a fresh
    :class:`Tracer`; an existing :class:`Tracer`/:class:`NullTracer` passes
    through (so a caller can share one tracer across runs).
    """
    if trace is None or trace is False:
        return NULL_TRACER
    if trace is True:
        return Tracer()
    if isinstance(trace, (Tracer, NullTracer)):
        return trace
    raise TypeError(f"trace must be a bool or a Tracer, got {type(trace).__name__}")


# ---------------------------------------------------------------------------
# Ambient collector: counters from layers too deep to thread a tracer through
# ---------------------------------------------------------------------------

_AMBIENT = threading.local()


def active_collector() -> Optional[Any]:
    """The thread's installed metrics collector (a ``Tracer`` or
    ``TraceBuffer``), or ``None`` when nothing is tracing."""
    return getattr(_AMBIENT, "collector", None)


@contextmanager
def collector_scope(collector: Optional[Any]) -> Iterator[None]:
    """Install ``collector`` as the thread's ambient metrics sink.

    Scopes nest: a site-task buffer installed inside a traced driver shadows
    the run tracer for the task's duration and the tracer is restored on
    exit, so coordinator-side plan executions and task-side ones land in
    the right place.
    """
    previous = getattr(_AMBIENT, "collector", None)
    _AMBIENT.collector = collector
    try:
        yield
    finally:
        _AMBIENT.collector = previous


@contextmanager
def trace_run(tracer: Any, name: str, **tags: Any) -> Iterator[Any]:
    """Driver-body scope: one root span plus the ambient collector.

    The single line protocol drivers add around their body: when the tracer
    is disabled this degenerates to a bare yield.
    """
    if not tracer.enabled:
        yield tracer
        return
    with collector_scope(tracer):
        with tracer.span(name, **tags):
            yield tracer


__all__ = [
    "ASYNC",
    "SYNC",
    "EventRecord",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "SpanRecord",
    "TraceBuffer",
    "TraceLike",
    "Tracer",
    "active_collector",
    "collector_scope",
    "rebase_offset",
    "resolve_tracer",
    "trace_run",
]
