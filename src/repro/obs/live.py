"""Live metrics plane: mid-run snapshots, pluggable sinks, telemetry sessions.

PR 6's tracer answers "what happened" after a run returns; this module makes
the same counters and gauges observable *while the run executes*:

:func:`build_snapshot`
    One point-in-time view of a tracer — every counter and gauge it holds,
    plus derived gauges (resident/payload cache hit rates, compression
    ratio) that are cheap to compute once per snapshot but wasteful to
    maintain per increment.

Sinks
    :class:`JsonlSink` appends each snapshot as one JSON line;
    :class:`PrometheusFileSink` atomically rewrites a text-exposition file
    (node-exporter textfile-collector style); :class:`PrometheusHttpSink`
    serves the latest exposition from a stdlib HTTP endpoint
    (``port=0`` picks a free port — see :attr:`~PrometheusHttpSink.port`).
    All sinks implement ``publish(snapshot)``/``close()``; anything with
    that shape plugs in.

:class:`LiveMetrics`
    The snapshot thread: every ``interval`` seconds it builds a snapshot
    and publishes it to every sink.  ``stop()`` publishes one final
    snapshot so short runs still export a complete view.

:class:`TelemetrySession`
    The user-facing ``telemetry=`` knob's value: bundles a tracer, a
    coordinator :class:`~repro.obs.sampler.ResourceSampler`, a
    :class:`LiveMetrics` thread, a structured :class:`~repro.obs.logs.RunLog`
    and an optional run-history store.  ``telemetry=False`` (the default on
    every driver) resolves to the shared :data:`NULL_TELEMETRY` — the same
    zero-per-task-allocation null-object guarantee as ``NULL_TRACER``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence, TextIO

from repro.obs.logs import RunLog, log_scope
from repro.obs.sampler import ResourceSampler
from repro.obs.trace import Tracer

#: ``telemetry=`` accepts bool / None / a session, mirroring ``TraceLike``.
TelemetryLike = Any


# ---------------------------------------------------------------------------
# Snapshots
# ---------------------------------------------------------------------------

def _hit_rate(hits: float, misses: float) -> Optional[float]:
    total = hits + misses
    return (hits / total) if total > 0 else None


def build_snapshot(tracer: Any, *, label: Optional[str] = None) -> Dict[str, Any]:
    """One point-in-time view of a tracer's counters and gauges.

    Adds derived gauges no layer maintains incrementally:
    ``cluster.resident_hit_rate`` / ``cluster.payload_hit_rate`` (cache
    effectiveness so far) and ``wire.compression`` (raw/encoded bytes ratio).
    Safe to call from any thread; dict copies are atomic under the GIL and a
    snapshot is allowed to be ~one increment stale.
    """
    metrics = getattr(tracer, "metrics", None)
    counters = dict(metrics.counters) if metrics is not None else {}
    gauges = dict(metrics.gauges) if metrics is not None else {}

    derived: Dict[str, float] = {}
    for key, hit, miss in (
        ("cluster.resident_hit_rate", "cluster.resident_hit", "cluster.resident_miss"),
        ("cluster.payload_hit_rate", "cluster.payload_hit", "cluster.payload_miss"),
        ("prefetch.hit_rate", "prefetch.hit", "prefetch.miss"),
    ):
        rate = _hit_rate(counters.get(hit, 0.0), counters.get(miss, 0.0))
        if rate is not None:
            derived[key] = rate
    encoded = counters.get("wire.bytes_encoded", 0.0)
    if encoded > 0:
        derived["wire.compression"] = counters.get("wire.bytes", 0.0) / encoded

    snapshot: Dict[str, Any] = {
        "t": time.time(),
        "clock": float(tracer.clock()) if getattr(tracer, "enabled", False) else 0.0,
        "counters": counters,
        "gauges": {**gauges, **derived},
    }
    if label is not None:
        snapshot["label"] = label
    return snapshot


def _metric_name(name: str) -> str:
    """Sanitize a dotted counter/gauge name into a Prometheus metric name."""
    out = []
    for ch in name:
        out.append(ch if (ch.isalnum() or ch == "_") else "_")
    sanitized = "".join(out)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return "repro_" + sanitized


def prometheus_text(snapshot: Dict[str, Any]) -> str:
    """Render a snapshot in the Prometheus text exposition format (v0.0.4).

    Counters become ``counter`` metrics, gauges ``gauge`` metrics; dotted
    names are flattened (``wire.bytes`` → ``repro_wire_bytes``).  A run
    ``label`` lands as a ``run`` label on every sample.
    """
    label = snapshot.get("label")
    suffix = "{run=%s}" % json.dumps(str(label)) if label is not None else ""
    lines: List[str] = []
    for kind, family in (("counter", "counters"), ("gauge", "gauges")):
        for name in sorted(snapshot.get(family, {})):
            metric = _metric_name(name)
            lines.append(f"# TYPE {metric} {kind}")
            lines.append(f"{metric}{suffix} {snapshot[family][name]:.10g}")
    lines.append("")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Sinks
# ---------------------------------------------------------------------------

class JsonlSink:
    """Appends every snapshot as one JSON line to ``path``."""

    def __init__(self, path: str):
        self.path = path
        self._fh: Optional[TextIO] = None
        self._lock = threading.Lock()

    def publish(self, snapshot: Dict[str, Any]) -> None:
        with self._lock:
            if self._fh is None:
                self._fh = open(self.path, "a", encoding="utf-8")
            json.dump(snapshot, self._fh)
            self._fh.write("\n")
            self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None


class PrometheusFileSink:
    """Rewrites a Prometheus text-exposition file on every snapshot.

    The write is atomic (temp file + ``os.replace``) so a scraper using the
    node-exporter textfile collector never reads a half-written exposition.
    """

    def __init__(self, path: str):
        self.path = path

    def publish(self, snapshot: Dict[str, Any]) -> None:
        tmp = self.path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(prometheus_text(snapshot))
        os.replace(tmp, self.path)

    def close(self) -> None:
        pass


class PrometheusHttpSink:
    """Serves the latest snapshot as Prometheus text from a stdlib endpoint.

    ``GET /metrics`` (or ``/``) returns the most recent exposition.  The
    server is a daemon-threaded ``ThreadingHTTPServer`` bound to
    ``(host, port)``; ``port=0`` binds a free port, readable from
    :attr:`port` after construction.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0):
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        sink = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - stdlib API
                if self.path not in ("/", "/metrics"):
                    self.send_error(404)
                    return
                body = sink._latest_text.encode("utf-8")
                self.send_response(200)
                self.send_header("Content-Type", "text/plain; version=0.0.4")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args: Any) -> None:
                pass  # scrape traffic must not spam the run's stderr

        self._latest_text = "# no snapshot published yet\n"
        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._server.daemon_threads = True
        self.host = self._server.server_address[0]
        self.port = int(self._server.server_address[1])
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="repro-prom-http", daemon=True
        )
        self._thread.start()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def publish(self, snapshot: Dict[str, Any]) -> None:
        self._latest_text = prometheus_text(snapshot)

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)


# ---------------------------------------------------------------------------
# The snapshot thread
# ---------------------------------------------------------------------------

class LiveMetrics:
    """Publishes tracer snapshots to every sink, every ``interval`` seconds.

    ``start()`` publishes immediately, so even a run shorter than one
    interval exports at least two snapshots (initial + the final one
    ``stop()`` publishes and returns).
    """

    def __init__(
        self,
        tracer: Any,
        sinks: Sequence[Any],
        *,
        interval: float = 0.25,
        label: Optional[str] = None,
    ):
        if interval <= 0:
            raise ValueError(f"snapshot interval must be positive, got {interval}")
        self.tracer = tracer
        self.sinks = list(sinks)
        self.interval = float(interval)
        self.label = label
        self.snapshots_published = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def publish_once(self) -> Dict[str, Any]:
        snapshot = build_snapshot(self.tracer, label=self.label)
        for sink in self.sinks:
            try:
                sink.publish(snapshot)
            except Exception:  # pragma: no cover - a sink must not kill a run
                pass
        self.snapshots_published += 1
        return snapshot

    def start(self) -> "LiveMetrics":
        if self._thread is not None:
            return self
        self.publish_once()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-live-metrics", daemon=True
        )
        self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.publish_once()
            except Exception:  # pragma: no cover - snapshots must never kill a run
                pass

    def stop(self) -> Dict[str, Any]:
        """Stop the thread (idempotent) and publish+return one final snapshot."""
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=5.0)
            self._thread = None
        return self.publish_once()


# ---------------------------------------------------------------------------
# Telemetry sessions: the ``telemetry=`` knob's value
# ---------------------------------------------------------------------------

class TelemetrySession:
    """Everything the live-telemetry plane runs for one (or several) runs.

    Construct once, pass as ``telemetry=`` to any driver.  The session is
    reusable across runs: each :func:`telemetry_scope` entry starts a fresh
    coordinator sampler + snapshot thread against the session's tracer, and
    exit stops them (publishing a final snapshot into
    :attr:`last_snapshot`).  Cluster backends it is applied to additionally
    ask runners for heartbeat-piggybacked resource samples and forward
    runner log buffers into :attr:`run_log`.

    Parameters name the sinks declaratively so callers don't need to import
    sink classes: ``prometheus_path``/``jsonl_path`` for file sinks,
    ``prometheus_port`` (0 = free port) to serve HTTP, ``log_path`` to
    stream the structured log, plus ``sinks`` for anything custom.
    """

    enabled = True

    def __init__(
        self,
        *,
        sample_interval: float = 0.05,
        snapshot_interval: float = 0.25,
        sinks: Optional[Sequence[Any]] = None,
        prometheus_path: Optional[str] = None,
        prometheus_port: Optional[int] = None,
        jsonl_path: Optional[str] = None,
        log_path: Optional[str] = None,
        history: Optional[Any] = None,
        label: Optional[str] = None,
    ):
        self.sample_interval = float(sample_interval)
        self.snapshot_interval = float(snapshot_interval)
        self.label = label
        self.history = history
        self.sinks: List[Any] = list(sinks or [])
        if jsonl_path is not None:
            self.sinks.append(JsonlSink(jsonl_path))
        if prometheus_path is not None:
            self.sinks.append(PrometheusFileSink(prometheus_path))
        self.http_sink: Optional[PrometheusHttpSink] = None
        if prometheus_port is not None:
            self.http_sink = PrometheusHttpSink(port=prometheus_port)
            self.sinks.append(self.http_sink)
        self._log_path = log_path
        self.tracer: Optional[Tracer] = None
        self.run_log: Optional[RunLog] = None
        self.sampler: Optional[ResourceSampler] = None
        self.live: Optional[LiveMetrics] = None
        self.last_snapshot: Optional[Dict[str, Any]] = None

    # -- wiring --------------------------------------------------------------

    def adopt_tracer(self, tracer: Any) -> Any:
        """Bind the session to the run's tracer (creating one if the run is
        untraced) and return the tracer the driver should use.

        Telemetry implies tracing: gauges and counters live on the tracer,
        so a ``telemetry=session`` run with ``trace=False`` gets a private
        enabled tracer.  Idempotent — re-adopting the same tracer (or
        adopting while already bound) keeps the existing binding so one
        session can watch several sequential runs on one timeline.
        """
        if getattr(tracer, "enabled", False):
            if self.tracer is not tracer:
                self.tracer = tracer
                self.run_log = RunLog(tracer, path=self._log_path)
        elif self.tracer is None:
            self.tracer = Tracer()
            self.run_log = RunLog(self.tracer, path=self._log_path)
        return self.tracer

    # -- lifecycle (driven by telemetry_scope) -------------------------------

    def _start(self) -> None:
        if self.tracer is None:
            self.adopt_tracer(None)
        self.sampler = ResourceSampler(
            self.sample_interval, tracer=self.tracer, origin="coordinator"
        ).start()
        self.live = LiveMetrics(
            self.tracer, self.sinks,
            interval=self.snapshot_interval, label=self.label,
        ).start()

    def _stop(self) -> None:
        if self.sampler is not None:
            self.sampler.stop()
            self.peak_rss = self.sampler.peak_rss()
            self.sampler = None
        if self.live is not None:
            self.last_snapshot = self.live.stop()
            self.live = None

    def close(self) -> None:
        """Release every sink (idempotent); sessions are reusable until then."""
        self._stop()
        for sink in self.sinks:
            try:
                sink.close()
            except Exception:  # pragma: no cover
                pass
        if self.run_log is not None:
            self.run_log.close()

    #: Peak coordinator RSS over the most recent scoped run (bytes); 0.0
    #: before any run completes.
    peak_rss: float = 0.0


class NullTelemetry:
    """The ``telemetry=False`` object: inert, shared, allocation-free.

    Same null-object standard as ``NULL_TRACER`` — every method is a cheap
    no-op returning a fixed value, so the default path costs one attribute
    read and zero allocations per call site.
    """

    enabled = False
    tracer = None
    run_log = None
    sampler = None
    live = None
    history = None
    last_snapshot = None
    peak_rss = 0.0
    sample_interval = 0.0

    def adopt_tracer(self, tracer: Any) -> Any:
        return tracer

    def _start(self) -> None:
        return None

    def _stop(self) -> None:
        return None

    def close(self) -> None:
        return None


#: Shared inert session used whenever ``telemetry`` is off.
NULL_TELEMETRY = NullTelemetry()


def resolve_telemetry(telemetry: TelemetryLike) -> Any:
    """Resolve a ``telemetry=`` knob to a session.

    ``False``/``None`` → the shared :data:`NULL_TELEMETRY`; ``True`` → a
    fresh default :class:`TelemetrySession`; an existing session (anything
    with an ``enabled`` attribute) passes through.  Mirrors
    :func:`~repro.obs.trace.resolve_tracer` exactly, including the
    ``TypeError`` on unrecognised values.
    """
    if telemetry is None or telemetry is False:
        return NULL_TELEMETRY
    if telemetry is True:
        return TelemetrySession()
    if hasattr(telemetry, "enabled"):
        return telemetry
    raise TypeError(
        f"telemetry= expects bool, None, or a TelemetrySession; got {telemetry!r}"
    )


@contextmanager
def telemetry_scope(session: Any) -> Iterator[Any]:
    """Run one driver body under a telemetry session.

    Disabled sessions yield immediately (nothing started, nothing to stop).
    Enabled sessions start a fresh coordinator sampler + snapshot thread,
    install the session's :class:`~repro.obs.logs.RunLog` as the ambient
    structured-log sink, and on exit stop both (the final snapshot lands in
    ``session.last_snapshot``).  Appending to ``session.history`` stays the
    caller's decision — drivers measure, they don't persist.
    """
    if not getattr(session, "enabled", False):
        yield session
        return
    session._start()
    try:
        with log_scope(session.run_log):
            yield session
    finally:
        session._stop()


__all__ = [
    "JsonlSink",
    "LiveMetrics",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "PrometheusFileSink",
    "PrometheusHttpSink",
    "TelemetryLike",
    "TelemetrySession",
    "build_snapshot",
    "prometheus_text",
    "resolve_telemetry",
    "telemetry_scope",
]
