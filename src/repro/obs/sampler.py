"""Background resource sampling: RSS, CPU seconds, thread and fd counts.

The live-telemetry plane needs to answer "what is this process *using* right
now" on both ends of a cluster run.  :func:`read_resource_sample` takes one
cheap point-in-time sample — ``/proc`` where the platform has it, the
``resource``/``os`` stdlib fallbacks elsewhere — as a small picklable dict,
so the same function serves two callers:

* the coordinator's :class:`ResourceSampler`, a daemon thread sampling every
  ``interval`` seconds and (when given a tracer) publishing the latest and
  peak values as ``resource.<origin>.*`` gauges; and
* the cluster runner's heartbeat loop, which piggybacks one sample per
  heartbeat frame when :data:`RESOURCE_SAMPLE_ENV` is set in its (inherited)
  environment — zero extra round trips, and the frame bytes are accounted in
  the :class:`~repro.cluster.wire.WireLedger` under the ``hb`` kind like
  every other frame.

Sampling never raises into the caller's hot path: a platform without
``/proc`` degrades field by field (``n_fds`` becomes ``-1.0``), and the
sampler thread swallows per-sample errors rather than dying mid-run.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, Optional

#: Environment knob asking a cluster runner to piggyback one resource sample
#: on every heartbeat frame it sends (set by the backend when a telemetry
#: session is installed; inherited at runner spawn).
RESOURCE_SAMPLE_ENV = "REPRO_RESOURCE_SAMPLE"

#: The fields every sample dict carries (floats throughout, so samples
#: serialize identically everywhere; ``-1.0`` marks an unavailable field).
SAMPLE_FIELDS = ("t", "rss_bytes", "cpu_s", "n_threads", "n_fds")

try:  # pragma: no cover - trivially platform-dependent
    _PAGE_SIZE = os.sysconf("SC_PAGE_SIZE")
except (AttributeError, ValueError, OSError):  # pragma: no cover
    _PAGE_SIZE = 4096


def _read_rss_bytes() -> float:
    """Current resident set size in bytes (``/proc/self/statm``, else peak)."""
    try:
        with open("/proc/self/statm", "rb") as fh:
            return float(int(fh.read().split()[1]) * _PAGE_SIZE)
    except (OSError, ValueError, IndexError):
        pass
    try:  # pragma: no cover - non-/proc platforms
        import resource

        # ru_maxrss is the *peak* (KiB on Linux, bytes on macOS); better than
        # nothing where statm is unavailable.
        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        return float(peak if peak > 1 << 32 else peak * 1024)
    except Exception:  # pragma: no cover
        return -1.0


def _read_n_threads() -> float:
    """Kernel thread count of this process (``/proc``, else Python's view)."""
    try:
        with open("/proc/self/status", "rb") as fh:
            for line in fh:
                if line.startswith(b"Threads:"):
                    return float(int(line.split()[1]))
    except (OSError, ValueError, IndexError):
        pass
    return float(threading.active_count())


def _read_n_fds() -> float:
    """Open file descriptors of this process (``-1.0`` without ``/proc``)."""
    try:
        return float(len(os.listdir("/proc/self/fd")))
    except OSError:
        return -1.0


def read_resource_sample() -> Dict[str, float]:
    """One point-in-time resource sample of the calling process.

    Returns a plain ``{field: float}`` dict (see :data:`SAMPLE_FIELDS`) —
    small, picklable, and cheap enough to ride on every heartbeat frame.
    ``cpu_s`` is user+system seconds from ``os.times()`` (portable and
    monotone), ``t`` the wall-clock instant the sample was taken.
    """
    times = os.times()
    return {
        "t": time.time(),
        "rss_bytes": _read_rss_bytes(),
        "cpu_s": float(times.user + times.system),
        "n_threads": _read_n_threads(),
        "n_fds": _read_n_fds(),
    }


def resource_samples_enabled(env: Optional[Dict[str, str]] = None) -> bool:
    """Whether :data:`RESOURCE_SAMPLE_ENV` asks for heartbeat samples."""
    source = os.environ if env is None else env
    return source.get(RESOURCE_SAMPLE_ENV, "") not in ("", "0")


class ResourceSampler:
    """Daemon thread sampling this process's resources every ``interval`` s.

    Samples accumulate in a bounded deque (``max_samples``, oldest dropped)
    with the running RSS peak tracked separately, so :meth:`peak_rss` is
    exact over the whole run even after old samples rotate out.  When a
    ``tracer`` is given, every sample also lands as
    ``resource.<origin>.rss_bytes`` / ``.cpu_s`` / ``.n_threads`` /
    ``.n_fds`` gauges plus a monotone ``resource.<origin>.peak_rss_bytes``
    — the values a :class:`~repro.obs.live.LiveMetrics` snapshot publishes
    mid-run.
    """

    def __init__(
        self,
        interval: float = 0.05,
        *,
        tracer: Optional[Any] = None,
        origin: str = "coordinator",
        max_samples: int = 10_000,
    ):
        if interval <= 0:
            raise ValueError(f"sample interval must be positive, got {interval}")
        self.interval = float(interval)
        self.origin = str(origin)
        self.tracer = tracer if (tracer is not None and getattr(tracer, "enabled", False)) else None
        self.samples: Deque[Dict[str, float]] = deque(maxlen=int(max_samples))
        self._peak_rss = 0.0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "ResourceSampler":
        """Take one sample immediately and start the background thread."""
        if self._thread is not None:
            return self
        self.sample_once()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name=f"repro-sampler-{self.origin}", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the thread (idempotent); takes one final sample."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        self.sample_once()

    def __enter__(self) -> "ResourceSampler":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # -- sampling -----------------------------------------------------------

    def sample_once(self) -> Dict[str, float]:
        """Take, record, and return one sample (also publishes gauges)."""
        sample = read_resource_sample()
        self.samples.append(sample)
        rss = sample.get("rss_bytes", -1.0)
        if rss > self._peak_rss:
            self._peak_rss = rss
        if self.tracer is not None:
            prefix = f"resource.{self.origin}."
            for field in ("rss_bytes", "cpu_s", "n_threads", "n_fds"):
                self.tracer.gauge(prefix + field, sample[field])
            self.tracer.gauge(prefix + "peak_rss_bytes", self._peak_rss)
        return sample

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.sample_once()
            except Exception:  # pragma: no cover - sampling must never kill a run
                pass

    # -- introspection ------------------------------------------------------

    def latest(self) -> Optional[Dict[str, float]]:
        """The most recent sample, or ``None`` before the first one."""
        return self.samples[-1] if self.samples else None

    def peak_rss(self) -> float:
        """Highest RSS observed across every sample taken (bytes)."""
        return self._peak_rss


__all__ = [
    "RESOURCE_SAMPLE_ENV",
    "SAMPLE_FIELDS",
    "ResourceSampler",
    "read_resource_sample",
    "resource_samples_enabled",
]
