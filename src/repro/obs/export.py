"""Chrome / Perfetto ``trace_event`` export for a recorded run.

:func:`to_chrome_trace` converts a :class:`~repro.obs.trace.Tracer` into the
JSON object format both ``chrome://tracing`` and https://ui.perfetto.dev
load: each trace origin ("coordinator", "host-0", ...) becomes a process
with named threads, stack-disciplined spans become complete ``"X"`` events,
wire round-trips (which overlap freely) become async ``"b"``/``"e"`` pairs,
and point events become instants.  Timestamps are microseconds since the
tracer's epoch.  Final counter values ride in ``otherData`` — trace viewers
ignore the key, report code reads it back.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.obs.trace import ASYNC, Tracer


def _json_safe(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def _safe_tags(tags: Dict[str, Any]) -> Dict[str, Any]:
    return {str(k): _json_safe(v) for k, v in tags.items()}


def to_chrome_trace(tracer: Tracer) -> Dict[str, Any]:
    """The tracer's records as a loadable ``trace_event`` JSON object."""
    if not getattr(tracer, "enabled", False):
        raise ValueError("cannot export a disabled tracer: run with trace=True")

    origins = tracer.origins()
    # Stable pids: coordinator first (pid 1), everything else in sorted order.
    ordered = [o for o in ("coordinator",) if o in origins]
    ordered += [o for o in origins if o != "coordinator"]
    pid_of = {origin: index + 1 for index, origin in enumerate(ordered)}

    tid_of: Dict[tuple, int] = {}

    def tid(origin: str, raw_tid: int) -> int:
        key = (origin, raw_tid)
        if key not in tid_of:
            tid_of[key] = sum(1 for k in tid_of if k[0] == origin) + 1
        return tid_of[key]

    events: List[Dict[str, Any]] = []
    for origin in ordered:
        events.append(
            {"ph": "M", "name": "process_name", "pid": pid_of[origin], "tid": 0,
             "args": {"name": origin}}
        )

    async_id = 0
    for span in tracer.spans:
        args = _safe_tags(span.tags)
        if span.sid:
            # Correlates the rendered span with structured-log records
            # carrying the same (origin, sid); 0 = pre-span-id record.
            args["sid"] = span.sid
        base = {
            "name": span.name,
            "pid": pid_of[span.origin],
            "cat": span.origin,
            "args": args,
        }
        ts = span.start * 1e6
        if span.flow == ASYNC:
            # Overlapping intervals (wire round-trips) go on async tracks.
            async_id += 1
            ident = f"a{async_id}"
            events.append({**base, "ph": "b", "id": ident, "ts": ts,
                           "tid": tid(span.origin, span.tid)})
            events.append({"name": span.name, "pid": pid_of[span.origin],
                           "cat": span.origin, "ph": "e", "id": ident,
                           "ts": span.end * 1e6, "tid": tid(span.origin, span.tid),
                           "args": {}})
        else:
            events.append({**base, "ph": "X", "ts": ts,
                           "dur": max(0.0, span.duration * 1e6),
                           "tid": tid(span.origin, span.tid)})

    for ev in tracer.events:
        events.append(
            {"name": ev.name, "pid": pid_of[ev.origin], "cat": ev.origin,
             "ph": "i", "s": "t", "ts": ev.time * 1e6,
             "tid": tid(ev.origin, ev.tid), "args": _safe_tags(ev.tags)}
        )

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "counters": {k: v for k, v in sorted(tracer.metrics.counters.items())},
            "gauges": {k: v for k, v in sorted(tracer.metrics.gauges.items())},
        },
    }


def write_chrome_trace(tracer: Tracer, path: str) -> str:
    """Serialize the tracer to ``path`` as trace_event JSON; returns the path."""
    payload = to_chrome_trace(tracer)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


__all__ = ["to_chrome_trace", "write_chrome_trace"]
