"""Round-by-round run reports from a trace and its ledgers.

The report layer answers the paper's accounting questions from one run:
where do a protocol's bytes go per round and host, what did each runner
spend its wall-clock on, and how often did the caches hit.  It reads three
sources that a traced run ties together — the :class:`~repro.obs.trace.Tracer`
attached to the result, the word-count
:class:`~repro.distributed.messages.CommunicationLedger` and (on the cluster
backend) its physical :class:`~repro.cluster.wire.WireLedger` — and renders
plain-text tables via :func:`repro.analysis.format_table`.

The per-protocol summary doubles as a *cross-check*: the tracer counts wire
bytes independently at the same instrumentation points the wire ledger
records, so ``wire_bytes_trace == wire_bytes_ledger`` holds bit-for-bit on a
healthy run and a mismatch means an unaccounted frame path.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

#: Counters the summary always lists (0.0 when the layer never ran), so
#: reports across protocols and backends line up column-for-column.
SUMMARY_COUNTERS = (
    "cluster.resident_hit",
    "cluster.resident_miss",
    "cluster.state_token",
    "cluster.state_ship",
    "cluster.state_pulls",
    "cluster.payload_hit",
    "cluster.payload_miss",
    "plan.executions",
    "plan.tiles",
    "prefetch.hit",
    "prefetch.miss",
    "recovery.host_failures",
    "recovery.repinned_sites",
    "recovery.replayed_frames",
    "recovery.replay_bytes",
    "recovery.digest_checks",
)


def _wire_of(result: Any):
    ledger = getattr(result, "ledger", None)
    return getattr(ledger, "wire", None)


def byte_parity_diff(result: Any) -> List[str]:
    """Per-counter diff of trace-counted vs ledger wire bytes.

    Empty on a healthy run.  On a mismatch, each line names one
    disagreeing pair — the raw/encoded totals, the per-direction splits
    (``wire.bytes.send``/``.recv`` vs the ledger's direction sums) and the
    per-kind splits (``wire.bytes.<kind>`` vs ``bytes_by_kind``) — so a CI
    log shows *which* frame path went unaccounted, not just that one did.
    """
    tracer = getattr(result, "trace", None)
    if tracer is None or not getattr(tracer, "enabled", False):
        raise ValueError("result has no trace: run the protocol with trace=True")
    wire = _wire_of(result)

    def ledger_int(value: float) -> int:
        return int(value)

    pairs: List[tuple] = [
        ("wire.bytes (raw total)", tracer.counter("wire.bytes"),
         wire.total_raw_bytes() if wire is not None else 0),
        ("wire.bytes_encoded (encoded total)", tracer.counter("wire.bytes_encoded"),
         wire.total_bytes() if wire is not None else 0),
    ]
    by_direction = wire.bytes_by_direction() if wire is not None else {}
    raw_by_direction: Dict[str, int] = {}
    if wire is not None:
        for rec in wire.records:
            raw_by_direction[rec.direction] = (
                raw_by_direction.get(rec.direction, 0) + rec.raw_bytes
            )
    for direction in ("send", "recv"):
        pairs.append(
            (f"wire.bytes.{direction}", tracer.counter(f"wire.bytes.{direction}"),
             raw_by_direction.get(direction, 0))
        )
        pairs.append(
            (f"wire.bytes_encoded.{direction}",
             tracer.counter(f"wire.bytes_encoded.{direction}"),
             by_direction.get(direction, 0))
        )
    if wire is not None:
        raw_by_kind = wire.raw_bytes_by_kind()
        by_kind = wire.bytes_by_kind()
        tracked = sorted(set(raw_by_kind) | set(by_kind))
        for kind in tracked:
            trace_raw_kind = tracer.counter(f"wire.bytes.{kind}")
            trace_enc_kind = tracer.counter(f"wire.bytes_encoded.{kind}")
            # Per-kind tracer counters only exist for kinds recorded through
            # instrumented paths; skip kinds the tracer never mirrored so
            # the diff stays about *disagreement*, not coverage gaps.
            if trace_raw_kind or trace_enc_kind:
                pairs.append((f"wire.bytes.{kind}", trace_raw_kind,
                              raw_by_kind.get(kind, 0)))
                pairs.append((f"wire.bytes_encoded.{kind}", trace_enc_kind,
                              by_kind.get(kind, 0)))

    diff: List[str] = []
    for name, traced, ledgered in pairs:
        traced_i, ledgered_i = int(traced), ledger_int(ledgered)
        if traced_i != ledgered_i:
            diff.append(
                f"{name}: trace={traced_i} ledger={ledgered_i} "
                f"(delta {traced_i - ledgered_i:+d})"
            )
    return diff


def assert_byte_parity(result: Any, *, label: str = "") -> None:
    """Assert bit-for-bit trace/ledger byte parity with a diagnosable message.

    Replaces bare ``assert trace == ledger`` checks: on mismatch the
    ``AssertionError`` carries the full :func:`byte_parity_diff`, one line
    per disagreeing counter, readable straight from a CI log.
    """
    diff = byte_parity_diff(result)
    if diff:
        prefix = f"[{label}] " if label else ""
        raise AssertionError(
            prefix + "trace/ledger wire byte mismatch "
            f"({len(diff)} counter(s) disagree):\n  " + "\n  ".join(diff)
        )


def round_report(result: Any) -> List[Dict[str, Any]]:
    """Per ``(round, host)`` activity rows for a traced run.

    Each row combines the wire ledger's frame accounting (bytes split by
    kind, state pulls) with the trace's timing (tasks executed, runner
    busy-seconds from absorbed runner spans, wire round-trip seconds from
    the coordinator's rpc spans).  In-process traced runs have no wire or
    hosts; their rows carry ``host=None`` with task counts and busy time
    from the absorbed site-task spans.
    """
    tracer = getattr(result, "trace", None)
    if tracer is None or not getattr(tracer, "enabled", False):
        raise ValueError("result has no trace: run the protocol with trace=True")

    rows: Dict[tuple, Dict[str, Any]] = {}

    def row(round_index: int, host: Optional[int]) -> Dict[str, Any]:
        key = (round_index, host)
        if key not in rows:
            rows[key] = {
                "round": round_index,
                "host": host if host is not None else "-",
                "tasks": 0,
                "task_s": 0.0,
                "rpc_s": 0.0,
                "sent_bytes": 0,
                "recv_bytes": 0,
                "raw_bytes": 0,
                "compression": 1.0,
                "state_pulls": 0,
                "bytes_by_kind": {},
            }
        return rows[key]

    wire = _wire_of(result)
    if wire is not None:
        for rec in wire.records:
            r = row(rec.round_index, rec.host)
            r["sent_bytes" if rec.direction == "send" else "recv_bytes"] += rec.n_bytes
            r["raw_bytes"] += rec.raw_bytes
            r["bytes_by_kind"][rec.kind] = r["bytes_by_kind"].get(rec.kind, 0) + rec.n_bytes
            if rec.kind == "state_pull_dispatch":
                r["state_pulls"] += 1
        for r in rows.values():
            encoded = r["sent_bytes"] + r["recv_bytes"]
            r["compression"] = (r["raw_bytes"] / encoded) if encoded else 1.0

    for span in tracer.spans:
        if span.name == "rpc":
            r = row(span.tags.get("round", 0), span.tags.get("host"))
            r["rpc_s"] += span.duration
            if span.tags.get("kind") in ("site", "task"):
                r["tasks"] += 1
        elif span.name in ("site_task", "task") and "round" in span.tags:
            host = span.tags.get("host")
            r = row(span.tags["round"], host)
            r["task_s"] += span.duration
            if host is None:
                # In-process run: the absorbed task span is the only record
                # of the task having run (no rpc span counts it).
                r["tasks"] += 1

    return [rows[key] for key in sorted(rows, key=lambda k: (k[0], str(k[1])))]


def render_round_report(result: Any, *, title: Optional[str] = None) -> str:
    """The round-by-round report as a fixed-width text table."""
    # Imported lazily: repro.analysis sits above the metrics layer, which
    # itself reaches into repro.obs.trace for the ambient collector.
    from repro.analysis import format_table

    rows = round_report(result)
    printable = []
    for r in rows:
        flat = dict(r)
        kinds = flat.pop("bytes_by_kind")
        flat["kinds"] = ",".join(f"{k}:{v}" for k, v in sorted(kinds.items())) or "-"
        printable.append(flat)
    return format_table(
        printable,
        columns=["round", "host", "tasks", "task_s", "rpc_s",
                 "sent_bytes", "recv_bytes", "raw_bytes", "compression",
                 "state_pulls", "kinds"],
        title=title or "Round-by-round run report",
    )


def protocol_summary(result: Any) -> Dict[str, Any]:
    """One-run summary reproducing the bytes/word numbers from the trace.

    The cross-check runs over *both* columns of the raw/encoded split:
    ``wire_raw_trace`` (the tracer's ``wire.bytes`` counter) against
    ``wire_raw_ledger`` (the wire ledger's pre-codec totals), and
    ``wire_bytes_trace`` (``wire.bytes_encoded``) against
    ``wire_bytes_ledger`` (the physically transmitted totals).
    ``bytes_match`` flags bit-for-bit equality of both pairs (vacuously
    true on in-process runs, where all four are zero) and ``bytes_diff``
    carries the per-counter :func:`byte_parity_diff` lines (empty on a
    healthy run) so a failing cross-check is diagnosable; ``compression`` is
    the run's raw-over-encoded ratio.  The fixed :data:`SUMMARY_COUNTERS`
    are always present.
    """
    tracer = getattr(result, "trace", None)
    if tracer is None or not getattr(tracer, "enabled", False):
        raise ValueError("result has no trace: run the protocol with trace=True")
    ledger = result.ledger
    wire = _wire_of(result)
    ledger_bytes = int(wire.total_bytes()) if wire is not None else 0
    ledger_raw = int(wire.total_raw_bytes()) if wire is not None else 0
    trace_bytes = int(tracer.counter("wire.bytes_encoded"))
    trace_raw = int(tracer.counter("wire.bytes"))
    total_words = float(ledger.total_words())
    summary: Dict[str, Any] = {
        "total_words": total_words,
        "wire_bytes_ledger": ledger_bytes,
        "wire_bytes_trace": trace_bytes,
        "wire_raw_ledger": ledger_raw,
        "wire_raw_trace": trace_raw,
        "bytes_match": trace_bytes == ledger_bytes and trace_raw == ledger_raw,
        "bytes_diff": byte_parity_diff(result),
        "bytes_per_word": (ledger_bytes / total_words) if total_words else 0.0,
        "raw_bytes_per_word": (ledger_raw / total_words) if total_words else 0.0,
        "compression": (ledger_raw / ledger_bytes) if ledger_bytes else 1.0,
        "rounds": result.rounds,
        "n_spans": len(tracer.spans),
        "origins": tracer.origins(),
    }
    for name in SUMMARY_COUNTERS:
        summary[name] = tracer.counter(name)
    return summary


def render_protocol_summary(results: Dict[str, Any], *, title: Optional[str] = None) -> str:
    """Summary table across protocols: ``{label: traced DistributedResult}``."""
    from repro.analysis import format_table

    rows = []
    for label, result in results.items():
        summary = protocol_summary(result)
        rows.append(
            {
                "protocol": label,
                "words": summary["total_words"],
                "wire_bytes": summary["wire_bytes_ledger"],
                "raw_bytes": summary["wire_raw_ledger"],
                "compression": summary["compression"],
                "match": summary["bytes_match"],
                "bytes_per_word": summary["bytes_per_word"],
                "resident_hit": summary["cluster.resident_hit"],
                "resident_miss": summary["cluster.resident_miss"],
                "payload_hit": summary["cluster.payload_hit"],
                "payload_miss": summary["cluster.payload_miss"],
                "prefetch_hit": summary["prefetch.hit"],
                "prefetch_miss": summary["prefetch.miss"],
            }
        )
    return format_table(
        rows, title=title or "Per-protocol summary (trace vs. ledger cross-check)"
    )


__all__ = [
    "SUMMARY_COUNTERS",
    "assert_byte_parity",
    "byte_parity_diff",
    "protocol_summary",
    "render_protocol_summary",
    "render_round_report",
    "round_report",
]
