"""Persistent run-history registry: every run becomes a regression datapoint.

The benchmark table in ``BENCH_cluster_bytes.json`` is a point-in-time
snapshot of the communication story; this module turns it into a time
series.  :class:`RunHistory` appends one JSON line per run — the run's
:func:`~repro.obs.report.protocol_summary` (bytes/word raw+encoded, wall
time, counters, recovery block) plus identifying metadata — to a store that
local runs and CI both write, and the ``python -m repro.obs.history`` CLI
reads it back:

``report``
    The latest record per protocol (or the full series with ``--all``) as a
    text table.

``compare --baseline BENCH_cluster_bytes.json``
    Regression gate: the latest record per protocol against a committed
    baseline (either another history store or the benchmark artifact's
    ``rows`` format), failing — exit status 1 — when any tracked metric
    (bytes/word raw+encoded, wall seconds) exceeds ``headroom``× its
    baseline value.  CI runs this as a smoke step after appending its own
    benchmark run.

Set :data:`RUN_HISTORY_ENV` to a path to make the cluster benchmark append
its rows automatically.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

#: Environment knob: path of the run-history JSONL store benchmark runs
#: append to (unset = no history persistence).
RUN_HISTORY_ENV = "REPRO_RUN_HISTORY"

#: Metrics ``compare`` gates on, when present on both sides of a pair.
COMPARE_FIELDS = ("bytes_per_word", "raw_bytes_per_word", "wall_s")

#: Default regression headroom: fail when current > headroom x baseline.
DEFAULT_HEADROOM = 2.0


def summary_record(
    protocol: str,
    summary: Dict[str, Any],
    *,
    wall_s: Optional[float] = None,
    peak_rss_bytes: Optional[float] = None,
    run_id: Optional[str] = None,
    **extra: Any,
) -> Dict[str, Any]:
    """Shape one history record from a :func:`protocol_summary` dict.

    Flat JSON-friendly dict: protocol + timestamp + the summary verbatim,
    with wall time, sampler peak RSS and any caller metadata (git sha,
    workload shape, ...) layered on top.
    """
    record: Dict[str, Any] = {"protocol": str(protocol), "t": time.time()}
    if run_id is not None:
        record["run_id"] = str(run_id)
    record.update(summary)
    if wall_s is not None:
        record["wall_s"] = float(wall_s)
    if peak_rss_bytes is not None:
        record["peak_rss_bytes"] = float(peak_rss_bytes)
    record.update(extra)
    return record


class RunHistory:
    """Append-only JSONL store of run summaries.

    Appends are atomic at the line level (single ``write`` of one line on an
    ``"a"``-mode handle), so concurrent CI shards appending to a shared
    store interleave whole records.
    """

    def __init__(self, path: str):
        self.path = path

    # -- writing -------------------------------------------------------------

    def append(self, record: Dict[str, Any]) -> Dict[str, Any]:
        line = json.dumps(record, sort_keys=True, default=str)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
        return record

    def append_result(
        self,
        protocol: str,
        result: Any,
        *,
        wall_s: Optional[float] = None,
        peak_rss_bytes: Optional[float] = None,
        **extra: Any,
    ) -> Dict[str, Any]:
        """Summarize a traced driver result and append it in one step."""
        from repro.obs.report import protocol_summary

        summary = protocol_summary(result)
        summary.pop("origins", None)  # lists bloat the store; counters suffice
        return self.append(
            summary_record(protocol, summary, wall_s=wall_s,
                           peak_rss_bytes=peak_rss_bytes, **extra)
        )

    # -- reading -------------------------------------------------------------

    def records(self) -> List[Dict[str, Any]]:
        """Every record in append order; missing store = empty history."""
        if not os.path.exists(self.path):
            return []
        out: List[Dict[str, Any]] = []
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    out.append(json.loads(line))
        return out

    def latest_by_protocol(self) -> Dict[str, Dict[str, Any]]:
        """The most recent record per protocol (append order wins)."""
        latest: Dict[str, Dict[str, Any]] = {}
        for record in self.records():
            name = record.get("protocol")
            if name is not None:
                latest[str(name)] = record
        return latest


def load_baseline(path: str) -> Dict[str, Dict[str, Any]]:
    """Per-protocol baseline metrics from either supported format.

    Accepts a history JSONL store (latest record per protocol wins) or the
    committed benchmark artifact (``BENCH_cluster_bytes.json``: a dict with
    ``rows`` of per-protocol metrics), so ``compare`` can gate directly
    against the same file the byte-regression CI step already trusts.  The
    formats are told apart by parsing, not sniffing: a multi-record JSONL
    store is not one JSON document, and a single-record store is a dict
    without ``rows``.
    """
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    try:
        doc = json.loads(text)
    except ValueError:
        doc = None  # several JSONL lines: not one document
    if isinstance(doc, dict):
        if "rows" in doc:
            rows = doc["rows"]
            return {
                str(row["protocol"]): dict(row)
                for row in rows if isinstance(row, dict) and "protocol" in row
            }
        name = doc.get("protocol")  # a one-line history store
        return {str(name): doc} if name is not None else {}
    return RunHistory(path).latest_by_protocol()


def compare(
    current: Dict[str, Dict[str, Any]],
    baseline: Dict[str, Dict[str, Any]],
    *,
    headroom: float = DEFAULT_HEADROOM,
    fields: Sequence[str] = COMPARE_FIELDS,
) -> Tuple[List[Dict[str, Any]], List[str]]:
    """Gate current per-protocol metrics against a baseline.

    Returns ``(rows, regressions)``: one row per (protocol, field) pair
    present on both sides, and human-readable regression messages for every
    pair where ``current > headroom * baseline`` (baseline 0 never flags —
    nothing meaningful to be 2x of).  Protocols on one side only are
    skipped: a new protocol is not a regression and a retired one is not a
    pass.
    """
    rows: List[Dict[str, Any]] = []
    regressions: List[str] = []
    for protocol in sorted(set(current) & set(baseline)):
        for field in fields:
            if field not in current[protocol] or field not in baseline[protocol]:
                continue
            now = float(current[protocol][field])
            base = float(baseline[protocol][field])
            ratio = (now / base) if base > 0 else 1.0
            failed = base > 0 and now > headroom * base
            rows.append(
                {"protocol": protocol, "field": field, "current": now,
                 "baseline": base, "ratio": ratio, "ok": not failed}
            )
            if failed:
                regressions.append(
                    f"{protocol}.{field}: {now:.3f} > {headroom:g}x baseline "
                    f"{base:.3f} ({ratio:.2f}x)"
                )
    return rows, regressions


def _format_rows(rows: Iterable[Dict[str, Any]], columns: Sequence[str]) -> str:
    rows = list(rows)
    table = [columns] + [
        [("%.4g" % r[c]) if isinstance(r[c], float) else str(r[c]) for c in columns]
        for r in rows
    ]
    widths = [max(len(row[i]) for row in table) for i in range(len(columns))]
    return "\n".join(
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)) for row in table
    )


# ---------------------------------------------------------------------------
# CLI: python -m repro.obs.history {report,compare}
# ---------------------------------------------------------------------------

def _cmd_report(args: argparse.Namespace) -> int:
    history = RunHistory(args.store)
    if args.all:
        records = history.records()
    else:
        records = list(history.latest_by_protocol().values())
    if not records:
        print(f"no run history at {args.store}")
        return 0
    columns = ["protocol", "bytes_per_word", "raw_bytes_per_word", "wall_s",
               "peak_rss_bytes", "rounds"]
    rows = [{c: record.get(c, "-") for c in columns} for record in records]
    print(f"run history: {args.store} ({len(history.records())} records)")
    print(_format_rows(rows, columns))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    current = RunHistory(args.store).latest_by_protocol()
    if not current:
        print(f"no run history at {args.store}", file=sys.stderr)
        return 2
    baseline = load_baseline(args.baseline)
    rows, regressions = compare(current, baseline, headroom=args.headroom)
    if not rows:
        print("no overlapping (protocol, field) pairs to compare", file=sys.stderr)
        return 2
    print(f"compare {args.store} vs baseline {args.baseline} "
          f"(headroom {args.headroom:g}x)")
    print(_format_rows(rows, ["protocol", "field", "current", "baseline",
                              "ratio", "ok"]))
    if regressions:
        print(f"\n{len(regressions)} regression(s):", file=sys.stderr)
        for message in regressions:
            print(f"  REGRESSION {message}", file=sys.stderr)
        return 1
    print("\nall metrics within headroom")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.history",
        description="Inspect and gate the persistent run-history store.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser("report", help="print run-history records")
    report.add_argument("store", nargs="?",
                        default=os.environ.get(RUN_HISTORY_ENV, "RUN_HISTORY.jsonl"),
                        help="history JSONL store (default: $%s)" % RUN_HISTORY_ENV)
    report.add_argument("--all", action="store_true",
                        help="every record, not just the latest per protocol")
    report.set_defaults(func=_cmd_report)

    cmp_ = sub.add_parser("compare", help="gate latest records against a baseline")
    cmp_.add_argument("store", nargs="?",
                      default=os.environ.get(RUN_HISTORY_ENV, "RUN_HISTORY.jsonl"),
                      help="history JSONL store (default: $%s)" % RUN_HISTORY_ENV)
    cmp_.add_argument("--baseline", required=True,
                      help="baseline: a history store or BENCH_cluster_bytes.json")
    cmp_.add_argument("--headroom", type=float, default=DEFAULT_HEADROOM,
                      help="fail when current > headroom x baseline (default %(default)s)")
    cmp_.set_defaults(func=_cmd_compare)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess smoke
    sys.exit(main())


__all__ = [
    "COMPARE_FIELDS",
    "DEFAULT_HEADROOM",
    "RUN_HISTORY_ENV",
    "RunHistory",
    "compare",
    "load_baseline",
    "main",
    "summary_record",
]
