"""Structured JSON-lines logging, correlated to trace span ids.

The tracing layer answers "what ran when"; this module adds the *narrative*
channel next to it: discrete, levelled records (``debug``/``info``/
``warning``/``error``) with arbitrary structured fields, each stamped with
the :attr:`~repro.obs.trace.SpanRecord.sid` of the span that was open when
it was emitted, so a log line is one click away from its interval on the
timeline.  The design deliberately mirrors ``Tracer``/``TraceBuffer``:

:class:`RunLog`
    The coordinator-side log, recording on the run tracer's timeline
    (``tracer.clock()`` instants, span ids from
    :meth:`~repro.obs.trace.Tracer.current_span_id`).  Optionally streams
    each record to a JSON-lines file as it is emitted — the live tail a
    run can be watched through — and always keeps the records in memory
    for :meth:`to_jsonl` / assertions.

:class:`LogBuffer`
    The picklable recorder for work that executes elsewhere (a site task in
    a worker, a frame handler in a cluster runner).  Records carry the
    recorder's raw ``perf_counter`` clock and its *local* span ids; the
    buffer rides back on the existing result path (cluster result-frame
    extras, exactly like a ``TraceBuffer``) and :meth:`RunLog.absorb`
    rebases it into the coordinator timeline with the same
    :func:`~repro.obs.trace.rebase_offset` rule tracer absorption uses.

Ambient emission
    Deep layers call the module-level :func:`log` function, which writes to
    the innermost installed sink — a :class:`RunLog` on the coordinator, a
    :class:`LogBuffer` inside a runner frame — or does nothing when no
    telemetry session installed one, so instrumented code needs no knob
    threading and costs one thread-local read when logging is off.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, TextIO, Tuple

from repro.obs.trace import active_collector, rebase_offset

#: Accepted record levels, in increasing severity.
LEVELS = ("debug", "info", "warning", "error")


@dataclass
class LogRecord:
    """One structured log record.

    ``time`` is seconds on the owning timeline (tracer clock in a
    :class:`RunLog`, raw ``perf_counter`` inside a :class:`LogBuffer` until
    absorbed).  ``span`` is the recorder-local id of the span open at
    emission (0 = outside any span); ``(origin, span)`` locates the record
    on the merged trace.
    """

    time: float
    origin: str
    level: str
    event: str
    span: int = 0
    fields: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "t": self.time,
            "origin": self.origin,
            "level": self.level,
            "event": self.event,
            "span": self.span,
            "fields": dict(self.fields),
        }


def _json_default(value: Any) -> Any:
    """Last-resort JSON coercion for numpy scalars and other field values."""
    for attr in ("item",):  # numpy scalar -> python scalar
        if hasattr(value, attr):
            try:
                return getattr(value, attr)()
            except Exception:  # pragma: no cover - exotic .item()
                break
    return str(value)


def _current_span_of(collector: Any) -> int:
    getter = getattr(collector, "current_span_id", None)
    return int(getter()) if getter is not None else 0


class LogBuffer:
    """Picklable structured-log recorder for off-coordinator work.

    Single-threaded by design (one buffer per task or frame), records in the
    local raw ``perf_counter`` clock.  Span ids are resolved from the ambient
    trace collector (the frame's ``TraceBuffer`` installed by
    ``collector_scope``), so a record emitted inside ``buffer.span(...)``
    correlates to that span after both ride home on the same result frame.
    """

    def __init__(self, origin: str):
        self.origin = origin
        self.records: List[LogRecord] = []

    def log(self, level: str, event: str, *, span: Optional[int] = None, **fields: Any) -> None:
        if span is None:
            span = _current_span_of(active_collector())
        self.records.append(
            LogRecord(time.perf_counter(), self.origin, str(level), str(event),
                      int(span), fields)
        )

    def bounds(self) -> Optional[Tuple[float, float]]:
        """Earliest and latest recorded instant (raw clock), or ``None``."""
        if not self.records:
            return None
        times = [r.time for r in self.records]
        return min(times), max(times)

    def __bool__(self) -> bool:
        return bool(self.records)


class RunLog:
    """The coordinator-side structured log of one (or several) runs.

    Records live on the ``tracer``'s timeline and inherit its current span
    id.  With ``path`` set, every record is appended to the file as one JSON
    line the moment it is emitted (flushed, so an external tail observes the
    run live); the in-memory list is kept either way.  Appends are
    lock-protected — cluster reader threads absorb runner buffers while the
    coordinator thread logs.
    """

    def __init__(self, tracer: Optional[Any] = None, *, path: Optional[str] = None):
        self.tracer = tracer if (tracer is not None and getattr(tracer, "enabled", False)) else None
        self.path = path
        self.records: List[LogRecord] = []
        self._lock = threading.Lock()
        self._fh: Optional[TextIO] = None

    # -- emission -----------------------------------------------------------

    def _clock(self) -> float:
        return self.tracer.clock() if self.tracer is not None else time.perf_counter()

    def log(self, level: str, event: str, *, origin: str = "coordinator", **fields: Any) -> LogRecord:
        span = self.tracer.current_span_id() if self.tracer is not None else 0
        record = LogRecord(self._clock(), origin, str(level), str(event), span, fields)
        self._append(record)
        return record

    def debug(self, event: str, **fields: Any) -> LogRecord:
        return self.log("debug", event, **fields)

    def info(self, event: str, **fields: Any) -> LogRecord:
        return self.log("info", event, **fields)

    def warning(self, event: str, **fields: Any) -> LogRecord:
        return self.log("warning", event, **fields)

    def error(self, event: str, **fields: Any) -> LogRecord:
        return self.log("error", event, **fields)

    def _append(self, record: LogRecord) -> None:
        with self._lock:
            self.records.append(record)
            if self.path is not None:
                if self._fh is None:
                    self._fh = open(self.path, "a", encoding="utf-8")
                json.dump(record.as_dict(), self._fh, default=_json_default)
                self._fh.write("\n")
                self._fh.flush()

    # -- absorbing remote buffers -------------------------------------------

    def absorb(
        self,
        buffer: Optional[LogBuffer],
        *,
        window: Optional[Tuple[float, float]] = None,
        **extra_fields: Any,
    ) -> None:
        """Rebase a :class:`LogBuffer` onto this log's timeline.

        Same contract as :meth:`~repro.obs.trace.Tracer.absorb`: ``window``
        is the dispatch interval the coordinator observed for the work that
        filled the buffer, and :func:`~repro.obs.trace.rebase_offset` first
        tries the clocks as directly comparable before centring the buffer
        in the window.  ``extra_fields`` (e.g. ``round=2, host=1``) are
        added to every absorbed record without overriding its own fields.
        """
        if buffer is None or not buffer:
            return
        epoch = self.tracer.epoch if self.tracer is not None else 0.0
        offset = rebase_offset(epoch, buffer.bounds(), window)
        for record in buffer.records:
            self._append(
                LogRecord(record.time + offset, record.origin, record.level,
                          record.event, record.span,
                          {**extra_fields, **record.fields})
            )

    # -- output -------------------------------------------------------------

    def to_jsonl(self, path: str) -> str:
        """Write every record (time-ordered) as JSON lines; returns the path."""
        with self._lock:
            records = sorted(self.records, key=lambda r: r.time)
        with open(path, "w", encoding="utf-8") as fh:
            for record in records:
                json.dump(record.as_dict(), fh, default=_json_default)
                fh.write("\n")
        return path

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def find(self, event: Optional[str] = None, *, level: Optional[str] = None) -> List[LogRecord]:
        """Records matching an event name and/or level, in emission order."""
        with self._lock:
            return [
                r for r in self.records
                if (event is None or r.event == event)
                and (level is None or r.level == level)
            ]

    def __len__(self) -> int:
        return len(self.records)


# ---------------------------------------------------------------------------
# Ambient log sink: emission from layers too deep to thread a RunLog through
# ---------------------------------------------------------------------------

_AMBIENT = threading.local()


def active_log() -> Optional[Any]:
    """The thread's installed log sink (:class:`RunLog` or
    :class:`LogBuffer`), or ``None`` when structured logging is off."""
    return getattr(_AMBIENT, "sink", None)


@contextmanager
def log_scope(sink: Optional[Any]) -> Iterator[None]:
    """Install ``sink`` as the thread's ambient structured-log target.

    Scopes nest like ``collector_scope``: a runner frame's
    :class:`LogBuffer` shadows nothing (runners have no outer sink), while
    a telemetry session's :class:`RunLog` installed around a driver body is
    restored after any nested scope exits.
    """
    previous = getattr(_AMBIENT, "sink", None)
    _AMBIENT.sink = sink
    try:
        yield
    finally:
        _AMBIENT.sink = previous


def log(level: str, event: str, **fields: Any) -> None:
    """Emit one structured record to the ambient sink; no-op when none is
    installed — the single line instrumented code adds, knob-free."""
    sink = active_log()
    if sink is not None:
        sink.log(level, event, **fields)


__all__ = [
    "LEVELS",
    "LogBuffer",
    "LogRecord",
    "RunLog",
    "active_log",
    "log",
    "log_scope",
]
