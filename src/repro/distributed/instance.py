"""A clustering input partitioned across sites."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.metrics.base import MetricSpace
from repro.utils.validation import check_k_t


@dataclass
class DistributedInstance:
    """A partial-clustering input split across ``s`` sites.

    Attributes
    ----------
    metric:
        The global metric space containing every input point.  Sites only
        ever evaluate distances among their own points and points explicitly
        communicated to them; protocols are written to respect this.
    shards:
        One array of global point indices per site; the arrays are disjoint.
    k, t:
        Number of centers and outlier budget of the global problem.
    objective:
        ``"median"``, ``"means"`` or ``"center"``.
    """

    metric: MetricSpace
    shards: List[np.ndarray]
    k: int
    t: int
    objective: str = "median"
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.shards = [np.asarray(s, dtype=int) for s in self.shards]
        if not self.shards:
            raise ValueError("instance needs at least one site")
        for shard in self.shards:
            self.metric.validate_indices(shard)
            if shard.size == 0:
                raise ValueError("every site must hold at least one point")
        all_points = np.concatenate(self.shards)
        if np.unique(all_points).size != all_points.size:
            raise ValueError("shards must be disjoint")
        check_k_t(int(all_points.size), self.k, self.t)

    # ------------------------------------------------------------------

    @property
    def n_sites(self) -> int:
        """Number of sites ``s``."""
        return len(self.shards)

    @property
    def n_points(self) -> int:
        """Total number of input points ``n``."""
        return int(sum(s.size for s in self.shards))

    @property
    def site_sizes(self) -> np.ndarray:
        """Shard sizes ``n_i``."""
        return np.asarray([s.size for s in self.shards], dtype=int)

    def all_indices(self) -> np.ndarray:
        """All point indices, concatenated in site order."""
        return np.concatenate(self.shards)

    def shard(self, site: int) -> np.ndarray:
        """Global indices held by ``site``."""
        return self.shards[site]

    def site_of_point(self) -> np.ndarray:
        """Array mapping each global point index in the instance to its site.

        Only valid when the shards exactly cover ``0..n-1`` (the common case);
        otherwise a dictionary-style lookup is built from the shard arrays.
        """
        n = int(max(s.max() for s in self.shards)) + 1
        owner = np.full(n, -1, dtype=int)
        for i, shard in enumerate(self.shards):
            owner[shard] = i
        return owner

    def words_per_point(self) -> int:
        """The paper's ``B`` for this instance's metric."""
        return int(self.metric.words_per_point)

    @classmethod
    def from_partition(
        cls,
        metric: MetricSpace,
        partition: Sequence[Sequence[int]],
        k: int,
        t: int,
        objective: str = "median",
        metadata: Optional[dict] = None,
    ) -> "DistributedInstance":
        """Build an instance from an explicit partition of point indices."""
        return cls(
            metric=metric,
            shards=[np.asarray(p, dtype=int) for p in partition],
            k=k,
            t=t,
            objective=objective,
            metadata=dict(metadata or {}),
        )


@dataclass
class UncertainDistributedInstance:
    """An uncertain clustering input whose *nodes* are split across sites.

    Attributes
    ----------
    uncertain:
        The underlying :class:`repro.uncertain.UncertainInstance` (ground
        metric + node distributions).
    shards:
        One array of node indices per site; disjoint.
    k, t:
        Number of centers and outlier budget (in nodes).
    objective:
        ``"median"``, ``"means"``, ``"center"`` (center-pp) or ``"center-g"``.
    """

    uncertain: "object"
    shards: List[np.ndarray]
    k: int
    t: int
    objective: str = "median"
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.shards = [np.asarray(s, dtype=int) for s in self.shards]
        if not self.shards:
            raise ValueError("instance needs at least one site")
        n_nodes = self.uncertain.n_nodes
        for shard in self.shards:
            if shard.size == 0:
                raise ValueError("every site must hold at least one node")
            if shard.min() < 0 or shard.max() >= n_nodes:
                raise ValueError("shard refers to nodes outside the uncertain instance")
        all_nodes = np.concatenate(self.shards)
        if np.unique(all_nodes).size != all_nodes.size:
            raise ValueError("shards must be disjoint")
        check_k_t(int(all_nodes.size), self.k, self.t)

    @property
    def n_sites(self) -> int:
        """Number of sites ``s``."""
        return len(self.shards)

    @property
    def n_nodes(self) -> int:
        """Total number of uncertain nodes in the instance."""
        return int(sum(s.size for s in self.shards))

    @property
    def site_sizes(self) -> np.ndarray:
        """Shard sizes ``n_i`` (in nodes)."""
        return np.asarray([s.size for s in self.shards], dtype=int)

    @property
    def ground_metric(self):
        """Metric over the ground point set ``P``."""
        return self.uncertain.ground_metric

    def shard(self, site: int) -> np.ndarray:
        """Node indices held by ``site``."""
        return self.shards[site]

    def words_per_point(self) -> int:
        """The paper's ``B`` (words to transmit one ground point)."""
        return int(self.uncertain.ground_metric.words_per_point)

    def node_words(self) -> float:
        """The paper's ``I`` (words to transmit one node's distribution)."""
        return self.uncertain.max_node_words()

    @classmethod
    def from_partition(
        cls,
        uncertain,
        partition: Sequence[Sequence[int]],
        k: int,
        t: int,
        objective: str = "median",
        metadata: Optional[dict] = None,
    ) -> "UncertainDistributedInstance":
        """Build an instance from an explicit partition of node indices."""
        return cls(
            uncertain=uncertain,
            shards=[np.asarray(p, dtype=int) for p in partition],
            k=k,
            t=t,
            objective=objective,
            metadata=dict(metadata or {}),
        )


__all__ = ["DistributedInstance", "UncertainDistributedInstance"]
