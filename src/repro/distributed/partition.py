"""Data partitioners: how the input is split across sites.

The paper's bounds hold for *any* adversarial partition; the benchmark
harness therefore exercises several regimes:

* balanced random shards (the ``n_i ~ n/s`` case the running-time claims use),
* skewed shards drawn from a Dirichlet distribution,
* partitions that concentrate all planted outliers on a few sites (the
  worst case for naive ``t_i = t`` budget splitting), and
* partitions aligned with cluster structure (every site sees only a few of
  the true clusters — the hardest case for purely local preclustering).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.utils.rng import RngLike, ensure_rng


def _validate(n: int, s: int) -> None:
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if s < 1:
        raise ValueError(f"number of sites must be >= 1, got {s}")
    if s > n:
        raise ValueError(f"cannot split {n} points across {s} non-empty sites")


def partition_balanced(n: int, s: int, rng: RngLike = None) -> List[np.ndarray]:
    """Random partition into ``s`` shards whose sizes differ by at most one."""
    _validate(n, s)
    generator = ensure_rng(rng)
    perm = generator.permutation(n)
    return [np.sort(part) for part in np.array_split(perm, s)]


def partition_round_robin(n: int, s: int, rng: RngLike = None) -> List[np.ndarray]:
    """Deterministic partition: point ``i`` goes to site ``i mod s``.

    ``rng`` is accepted (and ignored) so every named partitioner shares the
    ``(n, s, rng)`` signature the high-level drivers call with.
    """
    _validate(n, s)
    return [np.arange(n)[i::s] for i in range(s)]


def partition_dirichlet(
    n: int, s: int, alpha: float = 0.5, rng: RngLike = None
) -> List[np.ndarray]:
    """Skewed random partition with Dirichlet(``alpha``) shard-size proportions.

    Small ``alpha`` produces highly unbalanced shards; every shard is
    guaranteed at least one point.
    """
    _validate(n, s)
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    generator = ensure_rng(rng)
    proportions = generator.dirichlet(np.full(s, alpha))
    sizes = np.maximum(1, np.floor(proportions * n).astype(int))
    # Fix rounding so sizes sum exactly to n while keeping every shard >= 1.
    while sizes.sum() > n:
        candidates = np.flatnonzero(sizes > 1)
        sizes[generator.choice(candidates)] -= 1
    while sizes.sum() < n:
        sizes[generator.integers(0, s)] += 1
    perm = generator.permutation(n)
    shards = []
    offset = 0
    for size in sizes:
        shards.append(np.sort(perm[offset : offset + size]))
        offset += size
    return shards


def partition_outliers_concentrated(
    outlier_mask: Sequence[bool],
    s: int,
    n_outlier_sites: int = 1,
    rng: RngLike = None,
) -> List[np.ndarray]:
    """Partition that places *all* outliers on the first ``n_outlier_sites`` sites.

    Inliers are spread evenly over all sites.  This is the adversarial regime
    where splitting the outlier budget uniformly (``t_i = t / s``) fails badly
    and the paper's convex-hull allocation shines.
    """
    mask = np.asarray(outlier_mask, dtype=bool)
    n = mask.size
    _validate(n, s)
    if not (1 <= n_outlier_sites <= s):
        raise ValueError(f"n_outlier_sites must be in [1, {s}], got {n_outlier_sites}")
    generator = ensure_rng(rng)
    outliers = generator.permutation(np.flatnonzero(mask))
    inliers = generator.permutation(np.flatnonzero(~mask))
    shards: List[List[int]] = [[] for _ in range(s)]
    for pos, idx in enumerate(outliers):
        shards[pos % n_outlier_sites].append(int(idx))
    for pos, idx in enumerate(inliers):
        shards[pos % s].append(int(idx))
    out = [np.sort(np.asarray(shard, dtype=int)) for shard in shards]
    for shard in out:
        if shard.size == 0:
            raise ValueError("partition produced an empty site; use fewer sites")
    return out


def partition_by_cluster(
    labels: Sequence[int],
    s: int,
    clusters_per_site: Optional[int] = None,
    rng: RngLike = None,
) -> List[np.ndarray]:
    """Partition aligned with cluster structure.

    Each cluster's points are sent (mostly) to a single site chosen at
    random, so every site sees only a subset of the true clusters.  Points
    with label ``-1`` (planted outliers) are spread uniformly.
    """
    labels = np.asarray(labels, dtype=int)
    n = labels.size
    _validate(n, s)
    generator = ensure_rng(rng)
    unique = np.unique(labels[labels >= 0])
    shards: List[List[int]] = [[] for _ in range(s)]
    # Assign whole clusters to sites round-robin over a random cluster order.
    cluster_order = generator.permutation(unique)
    for pos, label in enumerate(cluster_order):
        target = pos % s
        shards[target].extend(np.flatnonzero(labels == label).tolist())
    noise = generator.permutation(np.flatnonzero(labels < 0))
    for pos, idx in enumerate(noise):
        shards[pos % s].append(int(idx))
    # Guarantee non-empty shards by stealing single points from the largest shard.
    for i in range(s):
        if not shards[i]:
            donor = int(np.argmax([len(x) for x in shards]))
            shards[i].append(shards[donor].pop())
    _ = clusters_per_site  # reserved for future use; one-cluster-per-site is the default behaviour
    return [np.sort(np.asarray(shard, dtype=int)) for shard in shards]


__all__ = [
    "partition_balanced",
    "partition_round_robin",
    "partition_dirichlet",
    "partition_outliers_concentrated",
    "partition_by_cluster",
]
