"""Result container returned by every distributed protocol."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from repro.distributed.messages import CommunicationLedger
from repro.sequential.solution import ClusterSolution


@dataclass
class DistributedResult:
    """Outcome of a coordinator-model protocol run.

    Attributes
    ----------
    centers:
        Global point indices chosen as centers by the coordinator.
    outlier_budget:
        The number of points the protocol is allowed to exclude (e.g.
        ``(1 + eps) t`` for Algorithm 1).
    outliers:
        Global indices of points explicitly designated as outliers by the
        protocol (may be smaller than the budget).  ``None`` for protocol
        variants that only certify a budget without naming the points
        (Theorem 3.8's no-shipping mode).
    cost:
        The protocol's own estimate of its cost (on the weighted instance the
        coordinator solved).  The *realized* global cost is computed by
        :func:`repro.analysis.evaluation.evaluate_centers` and stored by the
        analysis layer, not here.
    objective:
        ``"median"``, ``"means"`` or ``"center"``.
    ledger:
        Communication accounting for the run.
    rounds:
        Number of synchronous rounds used.
    site_time, coordinator_time:
        Wall-clock seconds spent in site-local and coordinator-local
        computation (max over sites for ``site_time_max``).
    coordinator_solution:
        The weighted solution computed at the coordinator (in coordinator-
        local index space), useful for debugging and tests.
    metadata:
        Protocol-specific extras (outlier allocations ``t_i``, thresholds,
        epsilon, ...).
    trace:
        The :class:`~repro.obs.trace.Tracer` a ``trace=True`` run recorded
        into (spans, events, counters — feed it to
        :func:`repro.obs.round_report` or :func:`repro.obs.to_chrome_trace`).
        ``None`` for untraced runs.
    """

    centers: np.ndarray
    outlier_budget: float
    objective: str
    cost: float
    ledger: CommunicationLedger
    rounds: int
    outliers: Optional[np.ndarray] = None
    site_time: Dict[int, float] = field(default_factory=dict)
    coordinator_time: float = 0.0
    coordinator_solution: Optional[ClusterSolution] = None
    metadata: dict = field(default_factory=dict)
    trace: Optional[Any] = None

    def __post_init__(self) -> None:
        self.centers = np.asarray(self.centers, dtype=int)
        if self.outliers is not None:
            self.outliers = np.asarray(self.outliers, dtype=int)

    @property
    def n_centers(self) -> int:
        """Number of distinct centers returned."""
        return int(np.unique(self.centers).size)

    @property
    def total_words(self) -> float:
        """Total communication in words."""
        return self.ledger.total_words()

    @property
    def site_time_max(self) -> float:
        """Maximum site-local computation time (the parallel-time bottleneck)."""
        return max(self.site_time.values(), default=0.0)

    @property
    def site_time_total(self) -> float:
        """Sum of site-local computation times (the sequential-simulation cost)."""
        return float(sum(self.site_time.values()))

    def summary(self) -> dict:
        """Compact dictionary for reports and benchmark rows."""
        return {
            "objective": self.objective,
            "n_centers": self.n_centers,
            "outlier_budget": float(self.outlier_budget),
            "protocol_cost": float(self.cost),
            "rounds": int(self.rounds),
            "total_words": self.total_words,
            "site_time_max": self.site_time_max,
            "coordinator_time": float(self.coordinator_time),
        }


__all__ = ["DistributedResult"]
