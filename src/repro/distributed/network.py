"""Sites, coordinator and the instrumented star network.

The simulator is synchronous: a protocol advances the network round by round
(:meth:`StarNetwork.next_round`), and every message sent is charged to the
current round in the :class:`CommunicationLedger`.  Payloads are delivered
in-process (no serialisation); what matters for the paper's claims is the
*word count* attached to each message, which the protocol computes from what
it semantically transmits (hull vertices, centers, counts, outlier points).

Site-local and coordinator-local computation times are accumulated in
:class:`repro.utils.timing.Timer` objects so the benchmark harness can report
the paper's "Local Time" columns.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional
from uuid import uuid4

import numpy as np

from repro.distributed.instance import DistributedInstance
from repro.distributed.messages import COORDINATOR, CommunicationLedger, Message
from repro.metrics.base import MetricSpace, SubsetMetric
from repro.utils.timing import Timer


class Site:
    """A site in the coordinator model.

    A site owns a shard of global point indices and may evaluate distances
    among its own points (``local_metric``) or between its points and points
    that have been communicated to it.  The inbox holds messages delivered by
    the coordinator in the current round.
    """

    def __init__(self, site_id: int, metric: MetricSpace, shard: np.ndarray):
        self.site_id = int(site_id)
        self.shard = np.asarray(shard, dtype=int)
        self._metric = metric
        self._local_metric = SubsetMetric(metric, self.shard)
        self.inbox: List[Message] = []
        self.timer = Timer()
        #: Mutable per-round state.  Starts as a plain dict; after a round
        #: on a wire backend it may be a lazy mapping proxy whose entries
        #: live on the site's runner (see :mod:`repro.runtime.state`) —
        #: treat it as a MutableMapping, and read it while the backend is
        #: still open (or ``pull_state()`` first).
        self.state: Dict[str, Any] = {}
        # Identity of this site's immutable half (shard + local metric) for
        # runner-resident caching: unique per Site instance, so a new
        # protocol run (new StarNetwork, new Sites) never aliases stale
        # remote state.
        self.resident_key = f"site-{self.site_id}-{uuid4().hex}"

    @property
    def n_points(self) -> int:
        """Number of points held by the site (the paper's ``n_i``)."""
        return int(self.shard.size)

    @property
    def local_metric(self) -> SubsetMetric:
        """Metric restricted to the site's own points (local indices ``0..n_i-1``)."""
        return self._local_metric

    def to_global(self, local_indices) -> np.ndarray:
        """Map site-local indices to global point indices."""
        return self._local_metric.to_parent(local_indices)

    def receive(self, message: Message) -> None:
        """Deliver a message into the site's inbox."""
        self.inbox.append(message)

    def drain_inbox(self) -> List[Message]:
        """Return and clear the inbox."""
        out, self.inbox = self.inbox, []
        return out


class Coordinator:
    """The coordinator: no input data, only what the sites send it."""

    def __init__(self):
        self.inbox: List[Message] = []
        self.timer = Timer()
        self.state: Dict[str, Any] = {}

    def receive(self, message: Message) -> None:
        """Deliver a message into the coordinator's inbox."""
        self.inbox.append(message)

    def drain_inbox(self) -> List[Message]:
        """Return and clear the inbox."""
        out, self.inbox = self.inbox, []
        return out

    def messages_from(self, site_id: int, kind: Optional[str] = None) -> List[Message]:
        """Messages currently in the inbox sent by ``site_id`` (optionally of one kind)."""
        return [
            m
            for m in self.inbox
            if m.sender == site_id and (kind is None or m.kind == kind)
        ]


class StarNetwork:
    """The star communication network of the coordinator model.

    Every transmission goes through :meth:`send_to_coordinator` or
    :meth:`send_to_site`, which records a :class:`Message` in the ledger and
    delivers the payload.  Rounds are advanced explicitly by the protocol.
    """

    def __init__(self, instance: DistributedInstance):
        self.instance = instance
        self.sites = [
            Site(i, instance.metric, shard) for i, shard in enumerate(instance.shards)
        ]
        self.coordinator = Coordinator()
        self.ledger = CommunicationLedger()
        self._round = 0
        #: Optional :class:`~repro.obs.trace.Tracer` a traced protocol run
        #: installs; :func:`~repro.runtime.tasks.run_site_tasks` reads it to
        #: record round spans and absorb task buffers.  ``None`` (the
        #: default) keeps the network entirely untraced.
        self.tracer = None

    # ------------------------------------------------------------------
    # Round management
    # ------------------------------------------------------------------

    @property
    def n_sites(self) -> int:
        """Number of sites."""
        return len(self.sites)

    @property
    def current_round(self) -> int:
        """The current round index (0 before the protocol starts)."""
        return self._round

    def next_round(self) -> int:
        """Advance to the next synchronous round and return its index."""
        self._round += 1
        return self._round

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------

    def _require_started(self) -> None:
        if self._round < 1:
            raise RuntimeError("call next_round() before sending messages")

    def send_to_coordinator(
        self,
        site_id: int,
        kind: str,
        payload: Any,
        words: float,
        *,
        n_bytes: Optional[int] = None,
        n_bytes_encoded: Optional[int] = None,
    ) -> Message:
        """Send ``payload`` from a site to the coordinator, charging ``words``.

        ``n_bytes`` is the payload's serialized size when it physically
        crossed a wire (cluster backend) and ``n_bytes_encoded`` its size
        under the result frame's codec; in-process deliveries leave both
        ``None``.
        """
        self._require_started()
        if not (0 <= site_id < self.n_sites):
            raise ValueError(f"unknown site id {site_id}")
        message = Message(
            sender=site_id,
            receiver=COORDINATOR,
            round_index=self._round,
            kind=kind,
            words=float(words),
            payload=payload,
            n_bytes=n_bytes,
            n_bytes_encoded=n_bytes_encoded,
        )
        self.ledger.record(message)
        self.coordinator.receive(message)
        return message

    def send_to_site(
        self,
        site_id: int,
        kind: str,
        payload: Any,
        words: float,
        *,
        n_bytes: Optional[int] = None,
    ) -> Message:
        """Send ``payload`` from the coordinator to one site, charging ``words``."""
        self._require_started()
        if not (0 <= site_id < self.n_sites):
            raise ValueError(f"unknown site id {site_id}")
        message = Message(
            sender=COORDINATOR,
            receiver=site_id,
            round_index=self._round,
            kind=kind,
            words=float(words),
            payload=payload,
            n_bytes=n_bytes,
        )
        self.ledger.record(message)
        self.sites[site_id].receive(message)
        return message

    def broadcast(self, kind: str, payload: Any, words_per_site: float) -> List[Message]:
        """Send the same payload from the coordinator to every site.

        Each copy is charged separately (the star network has no physical
        broadcast), matching the paper's accounting.
        """
        return [
            self.send_to_site(i, kind, payload, words_per_site) for i in range(self.n_sites)
        ]

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def site_times(self, label: Optional[str] = None) -> Dict[int, float]:
        """Per-site accumulated computation time.

        With ``label=None`` the sum over all labels is returned for each site.
        """
        out: Dict[int, float] = {}
        for site in self.sites:
            if label is None:
                out[site.site_id] = float(sum(site.timer.totals.values()))
            else:
                out[site.site_id] = site.timer.total(label)
        return out

    def coordinator_time(self, label: Optional[str] = None) -> float:
        """Accumulated coordinator computation time."""
        if label is None:
            return float(sum(self.coordinator.timer.totals.values()))
        return self.coordinator.timer.total(label)


__all__ = ["Site", "Coordinator", "StarNetwork"]
