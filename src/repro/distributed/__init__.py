"""Coordinator-model substrate.

The paper's model: ``s`` sites hold disjoint shards of the input and talk
only to a central coordinator over a star network, in synchronous rounds.
Communication is the resource being optimised, so the simulator's job is to
*account* for every word that crosses the star, not to move bytes.

* :class:`Message`, :class:`CommunicationLedger` — per-message word counts,
  per-round / per-direction totals.
* :class:`Site`, :class:`Coordinator`, :class:`StarNetwork` — the parties and
  the instrumented channel between them.
* :class:`DistributedInstance` — a clustering input split across sites.
* :class:`DistributedResult` — centers + outliers + accounting returned by
  every protocol in :mod:`repro.core` and :mod:`repro.baselines`.
* :mod:`repro.distributed.partition` — balanced / skewed / adversarial data
  partitioners.
"""

from repro.distributed.messages import Message, CommunicationLedger
from repro.distributed.network import Site, Coordinator, StarNetwork
from repro.distributed.instance import DistributedInstance, UncertainDistributedInstance
from repro.distributed.result import DistributedResult
from repro.distributed.partition import (
    partition_balanced,
    partition_dirichlet,
    partition_round_robin,
    partition_outliers_concentrated,
    partition_by_cluster,
)

__all__ = [
    "Message",
    "CommunicationLedger",
    "Site",
    "Coordinator",
    "StarNetwork",
    "DistributedInstance",
    "UncertainDistributedInstance",
    "DistributedResult",
    "partition_balanced",
    "partition_dirichlet",
    "partition_round_robin",
    "partition_outliers_concentrated",
    "partition_by_cluster",
]
